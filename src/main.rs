//! `fua` — command-line front end for the reproduction.
//!
//! ```text
//! fua tables                  regenerate Tables 1–3
//! fua figure4 <ialu|fpau>     regenerate Figure 4(a)/(b)
//! fua headline                the paper's headline numbers
//! fua fig1                    Figure 1 routing example
//! fua synth                   Section-5 gate-cost report
//! fua chip                    chip-level power extrapolation (§1)
//! fua breakdown <ialu|fpau>   per-workload results
//! fua sensitivity             compiler-swap cross-input study
//! fua staticswap <ialu|fpau>  static vs profile-guided swapping
//! fua analyze <workload>      static information-bit predictions
//! fua estimate <w|all>        static switched-bit upper bounds per PC/block
//! fua lint [workload]         lint one workload (or all 15)
//! fua workloads               list the bundled workloads
//! fua run <workload>          simulate one workload under every scheme
//! fua trace <workload>        cycle-level trace of one workload
//! fua profile-energy <w|all>  attribute switched bits to PCs/blocks
//! fua profile-cycles <w|all>  attribute issue slots to stall reasons/PCs
//! fua bench-suite             run the quick suite, write BENCH_<tag>.json
//!                             (or append to the run store with --store)
//! fua report                  diff a BENCH artifact against a baseline
//! fua store <ls|show|put|gc>  inspect the content-addressed run store
//! fua trends                  metric trajectories over the stored runs
//! fua harness-report          observe the harness observing: worker
//!                             timelines, arena traffic, allocations
//!
//! options: --limit <N>      retired-instruction cap per run
//!                           (default 150000; 20000 for `trace`; 25000 for
//!                           `bench-suite`/`report`/`profile-energy`/
//!                           `profile-cycles`)
//!          --scale <N>      workload scale factor (default 1)
//!          --jobs <N>       worker threads for the parallel sweeps
//!                           (figure4/headline/bench-suite/report;
//!                           default: available parallelism; 1 = serial)
//!          --json           emit machine-readable JSON instead of tables
//!          --metrics        print a metrics snapshot (run/figure4/headline/trace)
//!          --out <FILE>     write Chrome trace-event JSON (trace only)
//!          --last <N>       print the last N trace events (trace only)
//!          --window <N>     telemetry window in cycles (trace/bench-suite/report)
//!          --csv <FILE>     write windowed telemetry CSV (trace only)
//!          --scheme <S>     steering scheme for profile-energy/
//!                           profile-cycles/estimate (default lut4)
//!          --compare <A> <B> differential attribution of two schemes
//!          --per-block      aggregate estimate output per basic block
//!          --verify         check static bounds against dynamic attribution
//!          --top <N>        hotspot/mover rows to print (default 10)
//!          --flame <FILE>   write a collapsed-stack flamegraph file
//!          --critical-path  print the retirement critical path (profile-cycles)
//!          --tag <T>        artifact tag for bench-suite (default "local")
//!          --baseline <F>   baseline BENCH json for report (or --store)
//!          --current <F>    current BENCH json for report (default: fresh run)
//!          --store          bench-suite appends to the run store; report
//!                           diffs the two newest stored runs
//!          --store-dir <D>  run-store directory (default .fua-store;
//!                           implies --store)
//!          --progress       heartbeat lines on stderr; stdout and artifacts
//!                           are byte-identical with or without it
//!          --quiet          suppress the heartbeat (wins over --progress)
//!          --openmetrics <F> write an OpenMetrics text exposition
//!                           (harness-report only)
//!          --version        print the version and exit
//!          --help           print the command table and exit
//! ```
//!
//! Parallel runs are deterministic: `--jobs N` produces byte-identical
//! tables, artifacts and exports for every `N` (see EXPERIMENTS.md).
//!
//! Human-readable progress and log lines go to **stderr**; stdout carries
//! only the command's actual output (tables, JSON, trace tails, report
//! findings), so `fua run --json`, `fua trace --out` and the report
//! commands compose cleanly with pipes.

use std::process::ExitCode;

mod cli;

use cli::{
    bench_config, config, dispatch, help, parse_options, parse_scheme, profile_workloads,
    unknown_workload, usage, Cmd, Options, StoreAction, DEFAULT_LIMIT, PROFILE_DEFAULT_LIMIT,
};
use fua::core::{
    chip_estimate, figure4_jobs, headline_jobs, profile_suite, routing_example,
    static_swap_comparison, swap_sensitivity, synthesis_report, workload_breakdown, Unit,
};
use fua::exec::{enable_heartbeat, heartbeat_stage};
use fua::isa::FuClass;
use fua::report::{
    bench_suite_jobs, compare, trends, BenchReport, Severity, Tolerance, TrendError,
    DEFAULT_WINDOW_CYCLES,
};
use fua::sim::{MachineConfig, Simulator, SteeringConfig};
use fua::stats::TextTable;
use fua::steer::SteeringKind;
use fua::store::{IndexEntry, Store};

// With `--features harness-obs` every allocation in the binary routes
// through the counting wrapper, so `harness-report` and the BENCH
// harness digest carry real allocs/bytes figures. The default build
// keeps the untouched system allocator; results are byte-identical
// either way (the wrapper changes no allocation behaviour).
#[cfg(feature = "harness-obs")]
#[global_allocator]
static COUNTING_ALLOC: fua::obs::CountingAlloc = fua::obs::CountingAlloc;

#[cfg(not(feature = "trace"))]
fn warn_missing_trace_feature(opts: &Options) {
    if opts.metrics || opts.out.is_some() || opts.last.is_some() {
        eprintln!(
            "warning: this binary was built without the `trace` feature; \
             --metrics/--out/--last are ignored"
        );
    }
}

#[cfg(feature = "trace")]
fn warn_missing_trace_feature(_opts: &Options) {}

fn cmd_tables(opts: &Options) {
    let p = profile_suite(&config(opts));
    println!("{}", p.table1());
    println!("{}", p.table2());
    println!("{}", p.table3());
}

#[cfg(feature = "json")]
fn emit<T: fua::core::ToJson>(value: &T, rendered: String, json: bool) {
    if json {
        println!("{}", value.to_json().pretty());
    } else {
        println!("{rendered}");
    }
}

#[cfg(not(feature = "json"))]
fn emit<T>(_value: &T, rendered: String, json: bool) {
    if json {
        eprintln!("warning: this binary was built without the `json` feature; emitting text");
    }
    println!("{rendered}");
}

/// Runs each unit's suite with a metrics recorder attached.
#[cfg(feature = "trace")]
fn unit_metrics(
    units: &[Unit],
    cfg: &fua::core::ExperimentConfig,
) -> Vec<(Unit, fua::trace::MetricsRegistry)> {
    units
        .iter()
        .map(|&u| (u, fua::core::suite_metrics(u, cfg)))
        .collect()
}

#[cfg(feature = "trace")]
fn print_metrics_text(metrics: &[(Unit, fua::trace::MetricsRegistry)]) {
    for (unit, registry) in metrics {
        println!("\nmetrics — {unit} suite under 4-bit LUT + hardware swap:\n{registry}");
    }
}

/// Like [`emit`], but carries per-unit metrics snapshots: JSON output
/// wraps the report as `{"report": ..., "metrics": {...}}`, text output
/// appends the rendered registries.
#[cfg(all(feature = "json", feature = "trace"))]
fn emit_with_metrics<T: fua::core::ToJson>(
    value: &T,
    rendered: String,
    metrics: &[(Unit, fua::trace::MetricsRegistry)],
    json: bool,
) {
    use fua::core::{Json, ToJson};
    if json {
        let m = Json::Obj(
            metrics
                .iter()
                .map(|(u, r)| (u.to_string(), r.to_json()))
                .collect(),
        );
        let doc = Json::obj([("report", value.to_json()), ("metrics", m)]);
        println!("{}", doc.pretty());
    } else {
        println!("{rendered}");
        print_metrics_text(metrics);
    }
}

#[cfg(all(not(feature = "json"), feature = "trace"))]
fn emit_with_metrics<T>(
    _value: &T,
    rendered: String,
    metrics: &[(Unit, fua::trace::MetricsRegistry)],
    json: bool,
) {
    if json {
        eprintln!("warning: this binary was built without the `json` feature; emitting text");
    }
    println!("{rendered}");
    print_metrics_text(metrics);
}

fn cmd_figure4(unit: Unit, opts: &Options) {
    let cfg = config(opts);
    heartbeat_stage("figure4: scheme sweep");
    let fig = figure4_jobs(unit, &cfg, opts.jobs);
    let rendered = fig.render();
    #[cfg(feature = "trace")]
    if opts.metrics {
        let metrics = unit_metrics(&[unit], &cfg);
        emit_with_metrics(&fig, rendered, &metrics, opts.json);
        return;
    }
    emit(&fig, rendered, opts.json);
}

fn cmd_headline(opts: &Options) {
    let cfg = config(opts);
    heartbeat_stage("headline: scheme sweeps");
    let h = headline_jobs(&cfg, opts.jobs);
    let rendered = format!(
        "IALU 4-bit LUT + hw swap:            {:>6.1}%   (paper ~17%)\n\
         FPAU 4-bit LUT + hw swap:            {:>6.1}%   (paper ~18%)\n\
         IALU 4-bit LUT + hw + compiler swap: {:>6.1}%   (paper ~26%)",
        h.ialu_pct, h.fpau_pct, h.ialu_compiler_pct
    );
    #[cfg(feature = "trace")]
    if opts.metrics {
        let metrics = unit_metrics(&[Unit::Ialu, Unit::Fpau], &cfg);
        emit_with_metrics(&h, rendered, &metrics, opts.json);
        return;
    }
    emit(&h, rendered, opts.json);
}

fn cmd_workloads(opts: &Options) {
    let mut t = TextTable::new(["name", "category", "static insts", "description"]);
    for w in fua::workloads::all(opts.scale) {
        t.push_row([
            w.name.to_string(),
            w.category.to_string(),
            w.program.len().to_string(),
            w.description.to_string(),
        ]);
    }
    println!("{t}");
}

/// Renders an abstract bit as `0`, `1`, or `?`.
fn bit_glyph(bit: fua::analysis::AbsBit) -> &'static str {
    match bit.definite() {
        Some(false) => "0",
        Some(true) => "1",
        None => "?",
    }
}

fn cmd_analyze(name: &str, opts: &Options) -> Result<(), String> {
    let w = fua::workloads::by_name(name, opts.scale)
        .ok_or_else(|| unknown_workload(name, opts.scale))?;
    let analysis = fua::analysis::InfoBitAnalysis::run(&w.program);
    let mut t = TextTable::new(["#", "op", "class", "op1", "op2", "case"]);
    for idx in 0..w.program.len() {
        let inst = w.program.inst(idx);
        if !analysis.is_reachable(idx) {
            t.push_row([
                idx.to_string(),
                inst.op.to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "unreachable".to_string(),
            ]);
            continue;
        }
        let Some(p) = analysis.prediction(idx) else {
            continue; // j/halt/fli occupy no FU
        };
        t.push_row([
            idx.to_string(),
            inst.op.to_string(),
            p.class.to_string(),
            bit_glyph(p.op1).to_string(),
            bit_glyph(p.op2).to_string(),
            match p.case() {
                Some(c) => c.to_string(),
                None => "?".to_string(),
            },
        ]);
    }
    let (with_fu, definite) = analysis.coverage();
    println!(
        "{}: static information-bit predictions (sign / low-4-mantissa domains)\n{t}\
         {definite}/{with_fu} FU instructions with a definite case",
        w.name
    );
    Ok(())
}

fn lint_one(w: &fua::workloads::Workload) -> usize {
    let lints = fua::analysis::lint_program(&w.program);
    if lints.is_empty() {
        println!("{}: clean", w.name);
    } else {
        for l in &lints {
            println!("{}: {l}", w.name);
        }
    }
    lints.len()
}

fn cmd_lint(name: Option<&str>, opts: &Options) -> Result<bool, String> {
    let total = match name {
        Some(n) => {
            let w = fua::workloads::by_name(n, opts.scale)
                .ok_or_else(|| unknown_workload(n, opts.scale))?;
            lint_one(&w)
        }
        None => fua::workloads::all(opts.scale).iter().map(lint_one).sum(),
    };
    if total > 0 {
        println!("{total} finding(s)");
    }
    Ok(total == 0)
}

fn cmd_run(name: &str, opts: &Options) -> Result<(), String> {
    let w = fua::workloads::by_name(name, opts.scale)
        .ok_or_else(|| unknown_workload(name, opts.scale))?;
    let class = match w.category {
        fua::workloads::Category::Integer => FuClass::IntAlu,
        fua::workloads::Category::FloatingPoint => FuClass::FpAlu,
    };
    let limit = opts.limit.unwrap_or(DEFAULT_LIMIT);

    // Baseline run — with `--metrics` it carries a recorder so the
    // snapshot can be cross-checked against the ledger.
    let baseline;
    #[cfg(feature = "trace")]
    let mut registry: Option<fua::trace::MetricsRegistry> = None;
    #[cfg(feature = "trace")]
    {
        if opts.metrics {
            let mut sim = Simulator::with_sink(
                MachineConfig::paper_default(),
                SteeringConfig::original(),
                fua::trace::MetricsRecorder::new(),
            );
            baseline = sim
                .run_program(&w.program, limit)
                .map_err(|e| e.to_string())?;
            registry = Some(sim.into_sink().into_registry());
        } else {
            let mut sim =
                Simulator::new(MachineConfig::paper_default(), SteeringConfig::original());
            baseline = sim
                .run_program(&w.program, limit)
                .map_err(|e| e.to_string())?;
        }
    }
    #[cfg(not(feature = "trace"))]
    {
        let mut sim = Simulator::new(MachineConfig::paper_default(), SteeringConfig::original());
        baseline = sim
            .run_program(&w.program, limit)
            .map_err(|e| e.to_string())?;
    }

    // (label, switched bits, reduction vs baseline) per scheme.
    let mut rows: Vec<(String, u64, Option<f64>)> = vec![(
        "Original".to_string(),
        baseline.ledger.switched_bits(class),
        None,
    )];
    for kind in SteeringKind::FIGURE4 {
        if kind == SteeringKind::Original {
            continue;
        }
        let mut sim = Simulator::new(
            MachineConfig::paper_default(),
            SteeringConfig::paper_scheme(kind, true),
        );
        let r = sim
            .run_program(&w.program, limit)
            .map_err(|e| e.to_string())?;
        rows.push((
            format!("{kind} + hw swap"),
            r.ledger.switched_bits(class),
            Some(100.0 * r.reduction_vs(&baseline, class)),
        ));
    }

    #[cfg(feature = "json")]
    if opts.json {
        use fua::core::{Json, ToJson};
        let schemes = Json::Arr(
            rows.iter()
                .map(|(label, bits, red)| {
                    Json::obj([
                        ("scheme", Json::Str(label.clone())),
                        ("switched_bits", Json::UInt(*bits)),
                        ("reduction_pct", red.map(Json::Float).unwrap_or(Json::Null)),
                    ])
                })
                .collect(),
        );
        #[cfg_attr(not(feature = "trace"), allow(unused_mut))]
        let mut fields = vec![
            ("workload".to_string(), Json::Str(w.name.to_string())),
            ("class".to_string(), Json::Str(class.to_string())),
            ("retired".to_string(), Json::UInt(baseline.retired)),
            ("cycles".to_string(), Json::UInt(baseline.cycles)),
            ("ipc".to_string(), Json::Float(baseline.ipc())),
            ("halted".to_string(), Json::Bool(baseline.halted)),
            ("branches".to_string(), baseline.branches.to_json()),
            ("cache".to_string(), baseline.cache.to_json()),
            ("swaps".to_string(), baseline.swaps.to_json()),
            ("ledger".to_string(), baseline.ledger.to_json()),
            ("schemes".to_string(), schemes),
        ];
        #[cfg(feature = "trace")]
        if let Some(reg) = &registry {
            fields.push(("metrics".to_string(), reg.to_json()));
        }
        println!("{}", Json::Obj(fields).pretty());
        return Ok(());
    }
    #[cfg(not(feature = "json"))]
    if opts.json {
        eprintln!("warning: this binary was built without the `json` feature; emitting text");
    }

    println!(
        "{}: retired {} in {} cycles (IPC {:.2}), branch mispredict {:.1}%, \
         D-cache hit {:.1}%",
        w.name,
        baseline.retired,
        baseline.cycles,
        baseline.ipc(),
        100.0 * baseline.branches.mispredict_rate(),
        100.0 * baseline.cache.hit_rate(),
    );
    let mut t = TextTable::new(["scheme", format!("{class} bits").as_str(), "reduction"]);
    for (label, bits, red) in &rows {
        t.push_row([
            label.clone(),
            bits.to_string(),
            match red {
                Some(r) => format!("{r:.1}%"),
                None => "-".to_string(),
            },
        ]);
    }
    println!("{t}");
    #[cfg(feature = "trace")]
    if let Some(reg) = &registry {
        println!("metrics — baseline (Original) run:\n{reg}");
    }
    Ok(())
}

/// One-line rendering of a trace event for the terminal tail view.
#[cfg(feature = "trace")]
fn fmt_event(e: &fua::trace::TraceEvent) -> String {
    use fua::trace::TraceEvent as E;
    match *e {
        E::Stage {
            stage,
            cycle,
            serial,
            opcode,
        } => format!("[{cycle:>7}] {:<9} #{serial} {opcode}", stage.name()),
        E::Steer {
            cycle,
            serial,
            class,
            case,
            module,
            swap,
            cost_bits,
        } => format!(
            "[{cycle:>7}] steer     #{serial} {class} case{case} -> m{module}{} ({cost_bits} bits)",
            if swap { " swapped" } else { "" }
        ),
        E::OperandSwap {
            cycle,
            serial,
            class,
            kind,
        } => format!("[{cycle:>7}] swap      #{serial} {class} ({})", kind.name()),
        E::Energy {
            cycle,
            serial,
            pc,
            class,
            module,
            case,
            bits,
        } => format!(
            "[{cycle:>7}] energy    #{serial} pc{pc} {class}.m{module} case{case} +{bits} bits"
        ),
        E::Execute {
            cycle,
            serial,
            class,
            module,
            latency,
            opcode,
        } => {
            format!("[{cycle:>7}] execute   #{serial} {opcode} on {class}.m{module} ({latency} cy)")
        }
        E::Cache {
            cycle,
            serial,
            addr,
            hit,
            latency,
        } => format!(
            "[{cycle:>7}] d-cache   #{serial} @{addr:#010x} {} ({latency} cy)",
            if hit { "hit" } else { "miss" }
        ),
        E::Branch {
            cycle,
            serial,
            taken,
            predicted,
        } => format!("[{cycle:>7}] branch    #{serial} taken={taken} predicted={predicted}"),
        E::Stall {
            cycle,
            class,
            reason,
            slots,
            pc,
            ..
        } => format!(
            "[{cycle:>7}] stall     {class} {} x{slots}{}",
            reason.name(),
            match pc {
                Some(pc) => format!(" pc{pc}"),
                None => String::new(),
            }
        ),
        E::Dependence {
            cycle,
            serial,
            pc,
            dep1,
            dep2,
        } => format!(
            "[{cycle:>7}] deps      #{serial} pc{pc} <- {}",
            match (dep1, dep2) {
                (None, None) => "none".to_string(),
                (Some(a), None) => format!("#{a}"),
                (None, Some(b)) => format!("#{b}"),
                (Some(a), Some(b)) => format!("#{a} #{b}"),
            }
        ),
        E::CycleSummary {
            cycle,
            window,
            issued,
        } => format!("[{cycle:>7}] cycle     window={window} issued={issued}"),
    }
}

#[cfg(feature = "trace")]
fn cmd_trace(name: &str, opts: &Options) -> Result<(), String> {
    use fua::trace::{ChromeTraceSink, Json, MetricsRecorder, RingBufferSink, WindowedSink};

    let w = fua::workloads::by_name(name, opts.scale)
        .ok_or_else(|| unknown_workload(name, opts.scale))?;
    let limit = opts.limit.unwrap_or(cli::TRACE_DEFAULT_LIMIT);
    let window = opts.window.unwrap_or(DEFAULT_WINDOW_CYCLES);
    let mut sim = Simulator::with_sink(
        MachineConfig::paper_default(),
        fua::core::observed_scheme(),
        (
            ChromeTraceSink::for_workload(w.name),
            (
                RingBufferSink::default(),
                (MetricsRecorder::new(), WindowedSink::new(window)),
            ),
        ),
    );
    let result = sim
        .run_program(&w.program, limit)
        .map_err(|e| e.to_string())?;
    let (chrome, (ring, (recorder, windowed))) = sim.into_sink();
    let registry = recorder.into_registry();
    let series = windowed.into_series();

    // Progress lines go to stderr; stdout stays machine-clean for
    // `--out`/`--csv` pipelines.
    eprintln!(
        "{}: retired {} in {} cycles (IPC {:.2}) under 4-bit LUT + hw swap; \
         {} trace events ({} retained in ring), {} telemetry windows of {} cycles",
        w.name,
        result.retired,
        result.cycles,
        result.ipc(),
        ring.recorded(),
        ring.events().len(),
        series.len(),
        series.window_cycles(),
    );

    if let Some(path) = &opts.out {
        // Merge the windowed counter tracks into the Chrome document so
        // Perfetto shows counters alongside the per-instruction slices.
        let mut doc = chrome.into_json();
        if let Json::Obj(fields) = &mut doc {
            if let Some((_, Json::Arr(events))) =
                fields.iter_mut().find(|(k, _)| k == "traceEvents")
            {
                events.extend(series.counter_events());
            }
        }
        std::fs::write(path, doc.compact()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote Chrome trace JSON to {path} — load it at https://ui.perfetto.dev");
    }

    if let Some(path) = &opts.csv {
        std::fs::write(path, series.to_csv()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote windowed telemetry CSV to {path}");
    }

    let tail = opts.last.unwrap_or(16);
    if opts.last.is_some() || (opts.out.is_none() && opts.csv.is_none()) {
        println!("last {} events:", tail.min(ring.events().len()));
        for e in ring.tail(tail) {
            println!("{}", fmt_event(e));
        }
    }

    if opts.metrics {
        println!("\nmetrics:\n{registry}");
    } else {
        eprintln!(
            "(--metrics prints the counter/histogram snapshot; \
             --out FILE exports Perfetto JSON; --csv FILE the telemetry series; \
             --last N sizes the tail)"
        );
    }
    Ok(())
}

#[cfg(not(feature = "trace"))]
fn cmd_trace(_name: &str, _opts: &Options) -> Result<(), String> {
    Err("`fua trace` requires the `trace` feature (rebuild with `--features trace`)".into())
}

fn write_flame(path: &str, runs: &[fua::attr::AttributedRun]) -> Result<(), String> {
    let mut stacks = String::new();
    for run in runs {
        stacks.push_str(&run.attribution.collapsed_stacks());
    }
    std::fs::write(path, &stacks).map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!(
        "profile-energy: wrote {} collapsed-stack line(s) to {path}",
        stacks.lines().count()
    );
    Ok(())
}

/// Checks every run's exact-partition invariant, logging per workload.
fn verify_exact(runs: &[fua::attr::AttributedRun]) -> Result<(), String> {
    for run in runs {
        let a = &run.attribution;
        eprintln!(
            "profile-energy: {} under {}: {} cycles, {} switched bits over {} sites, exact: {}",
            a.workload,
            a.scheme,
            run.result.cycles,
            a.total_bits(),
            a.rows().len(),
            run.exact()
        );
        if !run.exact() {
            return Err(format!(
                "attribution for {} did not reproduce the energy ledger",
                a.workload
            ));
        }
    }
    Ok(())
}

/// Renders the suite-wide top-N hotspot table for one scheme's runs.
fn hotspot_table(runs: &[fua::attr::AttributedRun], top: usize) -> TextTable {
    let suite_bits: u64 = runs.iter().map(|r| r.attribution.total_bits()).sum();
    let mut spots: Vec<(String, fua::attr::Hotspot)> = Vec::new();
    for run in runs {
        for h in run.attribution.hotspots(top) {
            spots.push((run.attribution.workload.clone(), h));
        }
    }
    spots.sort_by(|(wa, a), (wb, b)| {
        b.bits
            .cmp(&a.bits)
            .then_with(|| wa.cmp(wb))
            .then(a.pc.cmp(&b.pc))
    });
    spots.truncate(top);
    let mut table = TextTable::new(["workload", "pc", "block", "opcode", "bits", "ops", "share"]);
    for (workload, h) in &spots {
        let share = if suite_bits == 0 {
            0.0
        } else {
            100.0 * h.bits as f64 / suite_bits as f64
        };
        table.push_row([
            workload.clone(),
            format!("pc{}", h.pc),
            h.block.clone(),
            h.opcode.clone(),
            h.bits.to_string(),
            h.ops.to_string(),
            format!("{share:.2}%"),
        ]);
    }
    table
}

/// The per-module and per-case switched-bit breakdown for the
/// duplicated FU classes, summed across runs.
fn breakdown_table(runs: &[fua::attr::AttributedRun]) -> TextTable {
    let mut table = TextTable::new(["class", "m0", "m1", "m2", "m3", "c00", "c01", "c10", "c11"]);
    for class in [FuClass::IntAlu, FuClass::FpAlu] {
        let mut modules = [0u64; fua::attr::MAX_MODULES];
        let mut cases = [0u64; 4];
        for run in runs {
            let m = run.attribution.module_bits(class);
            let c = run.attribution.case_bits(class);
            for (acc, v) in modules.iter_mut().zip(m) {
                *acc += v;
            }
            for (acc, v) in cases.iter_mut().zip(c) {
                *acc += v;
            }
        }
        table.push_row(
            std::iter::once(class.to_string())
                .chain(modules.iter().take(4).map(u64::to_string))
                .chain(cases.iter().map(u64::to_string)),
        );
    }
    table
}

fn cmd_profile_energy(name: &str, opts: &Options) -> Result<(), String> {
    use fua::attr::{attribute_suite, AttributionDiff};
    use fua::trace::Json;

    if opts.scheme.is_some() && opts.compare.is_some() {
        return Err("--scheme and --compare are mutually exclusive".into());
    }
    let workloads = profile_workloads(name, opts.scale)?;
    let limit = opts.limit.unwrap_or(PROFILE_DEFAULT_LIMIT);
    let top = opts.top.unwrap_or(10);
    heartbeat_stage("profile-energy: attributing");

    if let Some((name_a, name_b)) = &opts.compare {
        let scheme_a = parse_scheme("--compare", name_a)?;
        let scheme_b = parse_scheme("--compare", name_b)?;
        eprintln!(
            "profile-energy: comparing {} vs {} over {} workload(s) (limit {limit}, {} job(s))",
            scheme_a.label(),
            scheme_b.label(),
            workloads.len(),
            opts.jobs
        );
        let runs_a = attribute_suite(&workloads, scheme_a, limit, opts.jobs);
        let runs_b = attribute_suite(&workloads, scheme_b, limit, opts.jobs);
        verify_exact(&runs_a)?;
        verify_exact(&runs_b)?;
        let diffs: Vec<AttributionDiff> = runs_a
            .iter()
            .zip(&runs_b)
            .map(|(a, b)| AttributionDiff::between(&a.attribution, &b.attribution))
            .collect();

        if opts.json {
            let doc = Json::Arr(diffs.iter().map(AttributionDiff::to_json).collect());
            println!("{}", doc.pretty());
        } else {
            let mut totals = TextTable::new([
                "workload".to_string(),
                format!("bits A ({})", scheme_a.name()),
                format!("bits B ({})", scheme_b.name()),
                "delta".to_string(),
                "saving".to_string(),
            ]);
            for d in &diffs {
                totals.push_row([
                    d.workload.clone(),
                    d.total_a.to_string(),
                    d.total_b.to_string(),
                    d.total_delta().to_string(),
                    format!("{:.2}%", d.saving_pct()),
                ]);
            }
            println!(
                "switched bits, {} (A) vs {} (B):",
                scheme_a.label(),
                scheme_b.label()
            );
            println!("{totals}");

            let mut movers: Vec<(&str, &fua::attr::PcDelta)> = diffs
                .iter()
                .flat_map(|d| d.movers.iter().map(move |m| (d.workload.as_str(), m)))
                .collect();
            movers.sort_by(|(wa, a), (wb, b)| {
                b.delta
                    .unsigned_abs()
                    .cmp(&a.delta.unsigned_abs())
                    .then_with(|| wa.cmp(wb))
                    .then(a.pc.cmp(&b.pc))
            });
            movers.truncate(top);
            let mut table = TextTable::new([
                "workload", "pc", "block", "opcode", "bits A", "bits B", "delta",
            ]);
            for (w, m) in &movers {
                table.push_row([
                    (*w).to_string(),
                    format!("pc{}", m.pc),
                    m.block.clone(),
                    m.opcode.clone(),
                    m.bits_a.to_string(),
                    m.bits_b.to_string(),
                    m.delta.to_string(),
                ]);
            }
            println!(
                "top {} mover(s) by |delta| (negative = B saves):",
                movers.len()
            );
            println!("{table}");
            println!("per-module / per-case switched bits under A:");
            println!("{}", breakdown_table(&runs_a));
            println!("per-module / per-case switched bits under B:");
            println!("{}", breakdown_table(&runs_b));
        }
        if let Some(path) = &opts.flame {
            // The flamegraph shows where the energy still goes under
            // scheme B (the "after" profile of the comparison).
            write_flame(path, &runs_b)?;
        }
        return Ok(());
    }

    let scheme = match opts.scheme.as_deref() {
        Some(s) => parse_scheme("--scheme", s)?,
        None => fua::attr::Scheme::Lut4,
    };
    eprintln!(
        "profile-energy: attributing {} workload(s) under {} (limit {limit}, {} job(s))",
        workloads.len(),
        scheme.label(),
        opts.jobs
    );
    let runs = attribute_suite(&workloads, scheme, limit, opts.jobs);
    verify_exact(&runs)?;

    if opts.json {
        let doc = Json::Arr(runs.iter().map(|r| r.attribution.to_json()).collect());
        println!("{}", doc.pretty());
    } else {
        println!("top {top} energy hotspot(s) under {}:", scheme.label());
        println!("{}", hotspot_table(&runs, top));
        println!("per-module / per-case switched bits:");
        println!("{}", breakdown_table(&runs));
    }
    if let Some(path) = &opts.flame {
        write_flame(path, &runs)?;
    }
    Ok(())
}

/// Writes the cycle-side collapsed stacks of `runs` to `path`.
fn write_cycle_flame(path: &str, runs: &[fua::attr::CycleProfiledRun]) -> Result<(), String> {
    let mut stacks = String::new();
    for run in runs {
        stacks.push_str(&run.cycles.collapsed_stacks());
    }
    std::fs::write(path, &stacks).map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!(
        "profile-cycles: wrote {} collapsed-stack line(s) to {path}",
        stacks.lines().count()
    );
    Ok(())
}

/// Checks every run's exact-partition invariants (ledger and issue
/// bandwidth), logging per workload — the cycle-side sibling of
/// [`verify_exact`].
fn verify_cycles_exact(runs: &[fua::attr::CycleProfiledRun]) -> Result<(), String> {
    for run in runs {
        let c = &run.cycles;
        eprintln!(
            "profile-cycles: {} under {}: {} cycles x {} slots = {} issue slots \
             over {} sites, exact: {}",
            c.workload,
            c.scheme,
            c.cycles,
            c.issue_width,
            c.total_slots(),
            c.rows().len(),
            run.exact()
        );
        if !run.exact() {
            return Err(format!(
                "cycle attribution for {} did not partition the issue bandwidth exactly",
                c.workload
            ));
        }
    }
    Ok(())
}

/// The per-workload stall-mix table: one row per run, one percentage
/// column per [`StallReason`](fua::trace::StallReason).
fn stall_mix_table(runs: &[fua::attr::CycleProfiledRun]) -> TextTable {
    use fua::trace::StallReason;
    let mut headers = vec![
        "workload".to_string(),
        "cycles".to_string(),
        "IPC".to_string(),
    ];
    headers.extend(StallReason::ALL.iter().map(|r| r.name().to_string()));
    let mut t = TextTable::new(headers);
    for run in runs {
        let totals = run.cycles.reason_totals();
        let slots = run.cycles.total_slots();
        let mut row = vec![
            run.cycles.workload.clone(),
            run.cycles.cycles.to_string(),
            format!("{:.2}", run.result.ipc()),
        ];
        row.extend(StallReason::ALL.iter().map(|r| {
            let share = if slots == 0 {
                0.0
            } else {
                100.0 * totals[r.index()] as f64 / slots as f64
            };
            format!("{share:.1}%")
        }));
        t.push_row(row);
    }
    t
}

/// The suite-wide top-N stall hotspot table for one scheme's runs.
fn stall_hotspot_table(runs: &[fua::attr::CycleProfiledRun], top: usize) -> TextTable {
    let suite_stalled: u64 = runs
        .iter()
        .map(|r| r.cycles.total_slots() - r.cycles.issued_slots())
        .sum();
    let mut spots: Vec<(String, fua::attr::StallHotspot)> = Vec::new();
    for run in runs {
        for h in run.cycles.hotspots(top) {
            spots.push((run.cycles.workload.clone(), h));
        }
    }
    spots.sort_by(|(wa, a), (wb, b)| {
        b.stalled
            .cmp(&a.stalled)
            .then_with(|| wa.cmp(wb))
            .then(a.pc.is_none().cmp(&b.pc.is_none()))
            .then(a.pc.cmp(&b.pc))
    });
    spots.truncate(top);
    let mut table = TextTable::new([
        "workload", "pc", "block", "opcode", "reason", "stalled", "issued", "share",
    ]);
    for (workload, h) in &spots {
        let share = if suite_stalled == 0 {
            0.0
        } else {
            100.0 * h.stalled as f64 / suite_stalled as f64
        };
        table.push_row([
            workload.clone(),
            match h.pc {
                Some(pc) => format!("pc{pc}"),
                None => "-".to_string(),
            },
            h.block.clone(),
            h.opcode.clone(),
            h.top_reason.name().to_string(),
            h.stalled.to_string(),
            h.issued.to_string(),
            format!("{share:.2}%"),
        ]);
    }
    table
}

/// The suite-wide joint energy × cycles table, ranked by switched bits.
fn joint_energy_cycles_table(runs: &[fua::attr::CycleProfiledRun], top: usize) -> TextTable {
    let mut rows: Vec<(String, fua::attr::JointRow)> = Vec::new();
    for run in runs {
        for r in fua::attr::joint_table(&run.energy, &run.cycles, top) {
            rows.push((run.cycles.workload.clone(), r));
        }
    }
    rows.sort_by(|(wa, a), (wb, b)| {
        b.bits
            .cmp(&a.bits)
            .then_with(|| wa.cmp(wb))
            .then(a.pc.cmp(&b.pc))
    });
    rows.truncate(top);
    let mut table = TextTable::new([
        "workload", "pc", "block", "opcode", "bits", "ops", "bits/op", "issued", "stalled",
    ]);
    for (workload, r) in &rows {
        table.push_row([
            workload.clone(),
            format!("pc{}", r.pc),
            r.block.clone(),
            r.opcode.clone(),
            r.bits.to_string(),
            r.ops.to_string(),
            format!("{:.1}", r.bits_per_op),
            r.issued_slots.to_string(),
            r.stalled_slots.to_string(),
        ]);
    }
    table
}

/// Prints one run's critical path: the summary line plus the last
/// `top` nodes of the chain (the tail decides the run's length).
fn print_critical_path(run: &fua::attr::CycleProfiledRun, top: usize) {
    let nodes = run.path.nodes();
    println!(
        "critical path — {}: {} node(s), span {} cycles, operand wait {}, \
         structural wait {}",
        run.cycles.workload,
        nodes.len(),
        run.path.span_cycles(),
        run.path.operand_wait(),
        run.path.structural_wait(),
    );
    let shown = nodes.len().min(top);
    let mut t = TextTable::new([
        "serial",
        "pc",
        "opcode",
        "dispatch",
        "issue",
        "done",
        "op wait",
        "struct wait",
    ]);
    for n in &nodes[nodes.len() - shown..] {
        t.push_row([
            format!("#{}", n.serial),
            format!("pc{}", n.pc),
            n.opcode.clone(),
            n.dispatch_cycle.to_string(),
            n.issue_cycle.to_string(),
            n.done_cycle.to_string(),
            n.operand_wait.to_string(),
            n.structural_wait.to_string(),
        ]);
    }
    if shown < nodes.len() {
        println!("(last {shown} of {} nodes)", nodes.len());
    }
    println!("{t}");
}

/// One cycle-profiled run as a JSON document: the slot attribution,
/// the critical path, and the joint energy × cycles rows.
fn cycle_run_json(run: &fua::attr::CycleProfiledRun, top: usize) -> fua::trace::Json {
    use fua::trace::Json;
    let joint = Json::Arr(
        fua::attr::joint_table(&run.energy, &run.cycles, top)
            .iter()
            .map(|r| {
                Json::obj([
                    ("pc", Json::UInt(r.pc as u64)),
                    ("block", Json::Str(r.block.clone())),
                    ("opcode", Json::Str(r.opcode.clone())),
                    ("bits", Json::UInt(r.bits)),
                    ("ops", Json::UInt(r.ops)),
                    ("bits_per_op", Json::Float(r.bits_per_op)),
                    ("issued_slots", Json::UInt(r.issued_slots)),
                    ("stalled_slots", Json::UInt(r.stalled_slots)),
                ])
            })
            .collect(),
    );
    Json::obj([
        ("attribution", run.cycles.to_json()),
        ("critical_path", run.path.to_json()),
        ("joint", joint),
    ])
}

fn cmd_profile_cycles(name: &str, opts: &Options) -> Result<(), String> {
    use fua::attr::profile_cycles_suite;
    use fua::trace::{Json, StallReason};

    if opts.scheme.is_some() && opts.compare.is_some() {
        return Err("--scheme and --compare are mutually exclusive".into());
    }
    let workloads = profile_workloads(name, opts.scale)?;
    let limit = opts.limit.unwrap_or(PROFILE_DEFAULT_LIMIT);
    let top = opts.top.unwrap_or(10);
    heartbeat_stage("profile-cycles: attributing");

    if let Some((name_a, name_b)) = &opts.compare {
        let scheme_a = parse_scheme("--compare", name_a)?;
        let scheme_b = parse_scheme("--compare", name_b)?;
        eprintln!(
            "profile-cycles: comparing {} vs {} over {} workload(s) (limit {limit}, {} job(s))",
            scheme_a.label(),
            scheme_b.label(),
            workloads.len(),
            opts.jobs
        );
        let runs_a = profile_cycles_suite(&workloads, scheme_a, limit, opts.jobs);
        let runs_b = profile_cycles_suite(&workloads, scheme_b, limit, opts.jobs);
        verify_cycles_exact(&runs_a)?;
        verify_cycles_exact(&runs_b)?;

        if opts.json {
            let doc = Json::Arr(
                runs_a
                    .iter()
                    .zip(&runs_b)
                    .map(|(a, b)| {
                        Json::obj([
                            ("workload", Json::Str(a.cycles.workload.clone())),
                            ("a", cycle_run_json(a, top)),
                            ("b", cycle_run_json(b, top)),
                        ])
                    })
                    .collect(),
            );
            println!("{}", doc.pretty());
        } else {
            let mut totals = TextTable::new([
                "workload".to_string(),
                format!("cycles A ({})", scheme_a.name()),
                format!("cycles B ({})", scheme_b.name()),
                "delta".to_string(),
                "issued A".to_string(),
                "issued B".to_string(),
            ]);
            for (a, b) in runs_a.iter().zip(&runs_b) {
                let issued_share = |r: &fua::attr::CycleProfiledRun| {
                    let slots = r.cycles.total_slots();
                    if slots == 0 {
                        0.0
                    } else {
                        100.0 * r.cycles.issued_slots() as f64 / slots as f64
                    }
                };
                totals.push_row([
                    a.cycles.workload.clone(),
                    a.cycles.cycles.to_string(),
                    b.cycles.cycles.to_string(),
                    (b.cycles.cycles as i64 - a.cycles.cycles as i64).to_string(),
                    format!("{:.1}%", issued_share(a)),
                    format!("{:.1}%", issued_share(b)),
                ]);
            }
            println!(
                "cycles, {} (A) vs {} (B):",
                scheme_a.label(),
                scheme_b.label()
            );
            println!("{totals}");

            // Suite-wide stall mix, side by side: where does each
            // scheme's issue bandwidth go?
            let sum_mix = |runs: &[fua::attr::CycleProfiledRun]| {
                let mut mix = [0u64; 8];
                for r in runs {
                    for (acc, v) in mix.iter_mut().zip(r.cycles.reason_totals()) {
                        *acc += v;
                    }
                }
                mix
            };
            let (mix_a, mix_b) = (sum_mix(&runs_a), sum_mix(&runs_b));
            let (slots_a, slots_b) = (
                mix_a.iter().sum::<u64>().max(1),
                mix_b.iter().sum::<u64>().max(1),
            );
            let mut mix = TextTable::new(["reason", "slots A", "share A", "slots B", "share B"]);
            for r in StallReason::ALL {
                mix.push_row([
                    r.name().to_string(),
                    mix_a[r.index()].to_string(),
                    format!("{:.1}%", 100.0 * mix_a[r.index()] as f64 / slots_a as f64),
                    mix_b[r.index()].to_string(),
                    format!("{:.1}%", 100.0 * mix_b[r.index()] as f64 / slots_b as f64),
                ]);
            }
            println!("suite stall mix (every issue slot, A vs B):");
            println!("{mix}");
            if opts.critical_path {
                for (a, b) in runs_a.iter().zip(&runs_b) {
                    print_critical_path(a, top);
                    print_critical_path(b, top);
                }
            }
        }
        if let Some(path) = &opts.flame {
            // The flamegraph shows where the cycles still go under
            // scheme B (the "after" profile of the comparison).
            write_cycle_flame(path, &runs_b)?;
        }
        return Ok(());
    }

    let scheme = match opts.scheme.as_deref() {
        Some(s) => parse_scheme("--scheme", s)?,
        None => fua::attr::Scheme::Lut4,
    };
    eprintln!(
        "profile-cycles: attributing {} workload(s) under {} (limit {limit}, {} job(s))",
        workloads.len(),
        scheme.label(),
        opts.jobs
    );
    let runs = profile_cycles_suite(&workloads, scheme, limit, opts.jobs);
    verify_cycles_exact(&runs)?;

    if opts.json {
        let doc = Json::Arr(runs.iter().map(|r| cycle_run_json(r, top)).collect());
        println!("{}", doc.pretty());
    } else {
        println!(
            "issue-slot mix under {} ({} slots/cycle; every slot accounted):",
            scheme.label(),
            runs.first().map_or(0, |r| r.cycles.issue_width)
        );
        println!("{}", stall_mix_table(&runs));
        println!("top {top} stall hotspot(s) under {}:", scheme.label());
        println!("{}", stall_hotspot_table(&runs, top));
        println!("energy x cycles, top {top} PC(s) by switched bits:");
        println!("{}", joint_energy_cycles_table(&runs, top));
        if opts.critical_path {
            for run in &runs {
                print_critical_path(run, top);
            }
        }
    }
    if let Some(path) = &opts.flame {
        write_cycle_flame(path, &runs)?;
    }
    Ok(())
}

/// Renders a [`SwapModel`](fua::analysis::SwapModel) for logs and JSON.
fn model_name(model: fua::analysis::SwapModel) -> &'static str {
    match model {
        fua::analysis::SwapModel::Direct => "direct",
        fua::analysis::SwapModel::Either => "either",
    }
}

/// The FU classes in [`fua::isa::FuClass::index`] display order.
const ESTIMATE_CLASSES: [FuClass; 4] = [
    FuClass::IntAlu,
    FuClass::IntMul,
    FuClass::FpAlu,
    FuClass::FpMul,
];

/// Maps block ids to their labels (every bounded PC's block carries at
/// least one FU op, so it appears in the estimate's block list).
fn estimate_block_labels(
    est: &fua::analysis::TransitionEstimate,
) -> std::collections::BTreeMap<usize, String> {
    est.blocks()
        .iter()
        .map(|b| (b.block, b.label.clone()))
        .collect()
}

/// The per-PC bound table for one workload's estimate.
fn estimate_pc_table(est: &fua::analysis::TransitionEstimate) -> TextTable {
    let labels = estimate_block_labels(est);
    let mut t = TextTable::new(["pc", "block", "opcode", "class", "case", "bits/op"]);
    for b in est.pc_bounds() {
        t.push_row([
            format!("pc{}", b.pc),
            labels
                .get(&b.block)
                .cloned()
                .unwrap_or_else(|| format!("bb{}", b.block)),
            b.opcode.clone(),
            b.class.to_string(),
            match b.case {
                Some(c) => c.to_string(),
                None => "?".to_string(),
            },
            b.bits_per_op.to_string(),
        ]);
    }
    t
}

/// The per-basic-block aggregate table for one workload's estimate.
fn estimate_block_table(est: &fua::analysis::TransitionEstimate) -> TextTable {
    let mut t = TextTable::new(["block", "ops", "bits/pass"]);
    for b in est.blocks() {
        t.push_row([
            b.label.clone(),
            b.ops.to_string(),
            b.bits_per_pass.to_string(),
        ]);
    }
    t
}

/// The suite summary table: one row per workload, with the per-class
/// breakdown of the bits-per-pass bound.
fn estimate_summary_table(ests: &[(String, fua::analysis::TransitionEstimate)]) -> TextTable {
    let mut headers = vec![
        "workload".to_string(),
        "PCs".to_string(),
        "definite".to_string(),
        "bits/pass".to_string(),
    ];
    headers.extend(ESTIMATE_CLASSES.iter().map(|c| c.to_string()));
    let mut t = TextTable::new(headers);
    for (w, est) in ests {
        let (bounded, definite) = est.coverage();
        let class_bits = est.class_bits_per_pass();
        let mut row = vec![
            w.clone(),
            bounded.to_string(),
            definite.to_string(),
            est.total_bits_per_pass().to_string(),
        ];
        row.extend(
            ESTIMATE_CLASSES
                .iter()
                .map(|c| class_bits[c.index()].to_string()),
        );
        t.push_row(row);
    }
    t
}

/// One workload's estimate as a JSON document.
fn estimate_json(
    scheme: fua::attr::Scheme,
    workload: &str,
    est: &fua::analysis::TransitionEstimate,
) -> fua::trace::Json {
    use fua::trace::Json;
    let labels = estimate_block_labels(est);
    let (bounded, definite) = est.coverage();
    let class_bits = est.class_bits_per_pass();
    let classes = Json::Obj(
        ESTIMATE_CLASSES
            .iter()
            .map(|c| (c.to_string(), Json::UInt(class_bits[c.index()])))
            .collect(),
    );
    let pcs = Json::Arr(
        est.pc_bounds()
            .map(|b| {
                Json::obj([
                    ("pc", Json::UInt(b.pc as u64)),
                    (
                        "block",
                        Json::Str(
                            labels
                                .get(&b.block)
                                .cloned()
                                .unwrap_or_else(|| format!("bb{}", b.block)),
                        ),
                    ),
                    ("opcode", Json::Str(b.opcode.clone())),
                    ("class", Json::Str(b.class.to_string())),
                    (
                        "case",
                        match b.case {
                            Some(c) => Json::Str(c.to_string()),
                            None => Json::Null,
                        },
                    ),
                    ("bits_per_op", Json::UInt(b.bits_per_op as u64)),
                ])
            })
            .collect(),
    );
    let blocks = Json::Arr(
        est.blocks()
            .iter()
            .map(|b| {
                Json::obj([
                    ("block", Json::Str(b.label.clone())),
                    ("ops", Json::UInt(b.ops as u64)),
                    ("bits_per_pass", Json::UInt(b.bits_per_pass)),
                ])
            })
            .collect(),
    );
    Json::obj([
        ("workload", Json::Str(workload.to_string())),
        ("scheme", Json::Str(scheme.name().to_string())),
        ("model", Json::Str(model_name(est.model()).to_string())),
        ("bounded_pcs", Json::UInt(bounded as u64)),
        ("definite_cases", Json::UInt(definite as u64)),
        ("total_bits_per_pass", Json::UInt(est.total_bits_per_pass())),
        ("class_bits_per_pass", classes),
        ("pc_bounds", pcs),
        ("blocks", blocks),
    ])
}

/// One soundness check as a JSON document (the `--verify` row shape).
fn estimate_check_json(c: &fua::attr::EstimateCheck) -> fua::trace::Json {
    use fua::trace::Json;
    Json::obj([
        ("workload", Json::Str(c.workload.clone())),
        ("scheme", Json::Str(c.scheme.clone())),
        ("pcs", Json::UInt(c.pcs as u64)),
        ("bound_bits", Json::UInt(c.bound_bits)),
        ("actual_bits", Json::UInt(c.actual_bits)),
        ("ratio", Json::Float(c.ratio())),
        ("sound", Json::Bool(c.sound())),
        (
            "worst_block",
            match &c.worst_block {
                Some((label, ratio)) => Json::obj([
                    ("block", Json::Str(label.clone())),
                    ("ratio", Json::Float(*ratio)),
                ]),
                None => Json::Null,
            },
        ),
        (
            "violations",
            Json::Arr(
                c.violations
                    .iter()
                    .map(|v| {
                        Json::obj([
                            ("pc", Json::UInt(v.pc as u64)),
                            ("bound_bits", Json::UInt(v.bound_bits)),
                            ("actual_bits", Json::UInt(v.actual_bits)),
                            ("ops", Json::UInt(v.ops)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The `estimate --verify` path: joins the static bounds with measured
/// attribution for every scheme under test and gates on soundness.
fn cmd_estimate_verify(
    workloads: &[fua::workloads::Workload],
    opts: &Options,
) -> Result<(), String> {
    use fua::attr::{check_suite, EstimateCheck, Scheme};
    use fua::trace::Json;

    let schemes: Vec<Scheme> = match opts.scheme.as_deref() {
        Some(s) => vec![parse_scheme("--scheme", s)?],
        None => Scheme::ALL.to_vec(),
    };
    let limit = opts.limit.unwrap_or(PROFILE_DEFAULT_LIMIT);
    eprintln!(
        "estimate: verifying static bounds against measured attribution, \
         {} workload(s) x {} scheme(s) (limit {limit}, {} job(s))",
        workloads.len(),
        schemes.len(),
        opts.jobs
    );
    let mut checks: Vec<EstimateCheck> = Vec::new();
    for &scheme in &schemes {
        checks.extend(check_suite(workloads, scheme, limit, opts.jobs));
    }
    let violations: usize = checks.iter().map(|c| c.violations.len()).sum();

    if opts.json {
        let doc = Json::Arr(checks.iter().map(estimate_check_json).collect());
        println!("{}", doc.pretty());
    } else {
        let mut t = TextTable::new([
            "workload",
            "scheme",
            "PCs",
            "bound bits",
            "actual bits",
            "ratio",
            "worst block",
            "sound",
        ]);
        for c in &checks {
            let worst = match &c.worst_block {
                Some((label, ratio)) => format!("{label} ({ratio:.2}x)"),
                None => "-".to_string(),
            };
            t.push_row([
                c.workload.clone(),
                c.scheme.clone(),
                c.pcs.to_string(),
                c.bound_bits.to_string(),
                c.actual_bits.to_string(),
                format!("{:.2}x", c.ratio()),
                worst,
                if c.sound() { "yes" } else { "NO" }.to_string(),
            ]);
        }
        println!("static-vs-dynamic soundness and precision:");
        println!("{t}");
        let mean =
            checks.iter().map(EstimateCheck::ratio).sum::<f64>() / checks.len().max(1) as f64;
        println!(
            "{} check(s), {violations} violation(s); mean bound/actual ratio {mean:.2}x",
            checks.len()
        );
    }
    if violations > 0 {
        return Err(format!(
            "{violations} static bound(s) violated by the measured attribution"
        ));
    }
    Ok(())
}

fn cmd_estimate(name: &str, opts: &Options) -> Result<(), String> {
    use fua::analysis::{estimate_transitions, TransitionEstimate};
    use fua::attr::Scheme;
    use fua::exec::map_indexed;
    use fua::trace::Json;

    if opts.scheme.is_some() && opts.compare.is_some() {
        return Err("--scheme and --compare are mutually exclusive".into());
    }
    if opts.verify && opts.compare.is_some() {
        return Err("--verify and --compare are mutually exclusive".into());
    }
    let workloads = profile_workloads(name, opts.scale)?;
    heartbeat_stage("estimate: bounding");

    if opts.verify {
        return cmd_estimate_verify(&workloads, opts);
    }

    if let Some((name_a, name_b)) = &opts.compare {
        let scheme_a = parse_scheme("--compare", name_a)?;
        let scheme_b = parse_scheme("--compare", name_b)?;
        eprintln!(
            "estimate: bounding {} workload(s), {} vs {} ({} job(s))",
            workloads.len(),
            scheme_a.label(),
            scheme_b.label(),
            opts.jobs
        );
        let ests: Vec<(String, TransitionEstimate, TransitionEstimate)> =
            map_indexed(opts.jobs, &workloads, |_, w| {
                (
                    w.name.to_string(),
                    estimate_transitions(&w.program, scheme_a.swap_model()),
                    estimate_transitions(&w.program, scheme_b.swap_model()),
                )
            });
        if opts.json {
            let doc = Json::Arr(
                ests.iter()
                    .map(|(w, ea, eb)| {
                        Json::obj([
                            ("workload", Json::Str(w.clone())),
                            ("a", estimate_json(scheme_a, w, ea)),
                            ("b", estimate_json(scheme_b, w, eb)),
                        ])
                    })
                    .collect(),
            );
            println!("{}", doc.pretty());
        } else {
            let mut t = TextTable::new([
                "workload".to_string(),
                format!("bits/pass A ({})", scheme_a.name()),
                format!("bits/pass B ({})", scheme_b.name()),
                "delta".to_string(),
            ]);
            for (w, ea, eb) in &ests {
                let (a, b) = (ea.total_bits_per_pass(), eb.total_bits_per_pass());
                t.push_row([
                    w.clone(),
                    a.to_string(),
                    b.to_string(),
                    (b as i64 - a as i64).to_string(),
                ]);
            }
            println!(
                "static bits/pass bounds, {} (A) vs {} (B):",
                scheme_a.label(),
                scheme_b.label()
            );
            println!("{t}");
        }
        return Ok(());
    }

    let scheme = match opts.scheme.as_deref() {
        Some(s) => parse_scheme("--scheme", s)?,
        None => Scheme::Lut4,
    };
    let model = scheme.swap_model();
    eprintln!(
        "estimate: bounding {} workload(s) under {} ({} operand order, {} job(s))",
        workloads.len(),
        scheme.label(),
        model_name(model),
        opts.jobs
    );
    let ests: Vec<(String, TransitionEstimate)> = map_indexed(opts.jobs, &workloads, |_, w| {
        (w.name.to_string(), estimate_transitions(&w.program, model))
    });

    if opts.json {
        let doc = Json::Arr(
            ests.iter()
                .map(|(w, e)| estimate_json(scheme, w, e))
                .collect(),
        );
        println!("{}", doc.pretty());
        return Ok(());
    }

    for (w, est) in &ests {
        if ests.len() == 1 || opts.per_block {
            let (bounded, definite) = est.coverage();
            println!(
                "{w}: static switched-bit bounds under {} ({} operand order)",
                scheme.label(),
                model_name(est.model())
            );
            let table = if opts.per_block {
                estimate_block_table(est)
            } else {
                estimate_pc_table(est)
            };
            println!("{table}");
            println!(
                "{bounded} FU instruction(s) bounded ({definite} with a definite case); \
                 <= {} bits per straight-line pass\n",
                est.total_bits_per_pass()
            );
        }
    }
    if ests.len() > 1 {
        println!(
            "static bits/pass upper bounds under {} ({} operand order):",
            scheme.label(),
            model_name(model)
        );
        println!("{}", estimate_summary_table(&ests));
    }
    Ok(())
}

fn load_bench(path: &str) -> Result<BenchReport, String> {
    let contents = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    contents
        .parse::<BenchReport>()
        .map_err(|e| format!("{path}: {e}"))
}

fn cmd_bench_suite(opts: &Options) -> Result<(), String> {
    let tag = opts.tag.as_deref().unwrap_or("local");
    let cfg = bench_config(opts);
    let window = opts.window.unwrap_or(DEFAULT_WINDOW_CYCLES);
    eprintln!(
        "bench-suite: measuring quick suite (scale {}, limit {}, window {} cycles, \
         {} job(s)) ...",
        cfg.scale, cfg.inst_limit, window, opts.jobs
    );
    heartbeat_stage("bench-suite: measuring");
    let report = bench_suite_jobs(tag, &cfg, window, opts.jobs);
    heartbeat_stage("bench-suite: writing artifact");
    let mut rendered = report.to_json().pretty();
    rendered.push('\n');
    let destination = if opts.use_store() {
        let store =
            Store::open(std::path::Path::new(opts.store_root())).map_err(|e| e.to_string())?;
        let receipt = store
            .put(&rendered, std::path::Path::new("bench-suite"))
            .map_err(|e| e.to_string())?;
        format!(
            "run #{} (key {}{}) to {}",
            receipt.entry.seq,
            &receipt.entry.key[..12],
            if receipt.deduplicated {
                ", object deduplicated"
            } else {
                ""
            },
            opts.store_root()
        )
    } else {
        let path = format!("BENCH_{tag}.json");
        std::fs::write(&path, rendered).map_err(|e| format!("writing {path}: {e}"))?;
        path
    };
    eprintln!(
        "bench-suite: wrote {destination} (IALU {:.1}%, FPAU {:.1}%, {} windows, \
         telemetry exact: {}, attribution exact: {}, stall partition exact: {})",
        report.headline_ialu_pct,
        report.headline_fpau_pct,
        report.telemetry.windows,
        report.telemetry.exact,
        report.attribution.as_ref().is_some_and(|a| a.exact),
        report.stalls.as_ref().is_some_and(|s| s.exact)
    );
    if let Some(t) = &report.throughput {
        eprintln!(
            "bench-suite: simulated {} cycles / {} instructions in {:.2}s hot loop — \
             {:.2} MHz simulated ({:.0} kinst/s, IPC {:.3})",
            t.cycles,
            t.instructions,
            t.hot_nanos as f64 / 1e9,
            t.sim_mhz(),
            t.kips(),
            t.ipc()
        );
    }
    if let Some(p) = &report.parallel {
        eprintln!(
            "bench-suite: {} job(s), {:.2}s wall",
            p.jobs,
            p.wall_nanos as f64 / 1e9
        );
    }
    if !report.telemetry.exact {
        return Err("windowed telemetry sums did not reproduce the energy ledger".into());
    }
    if !report.attribution.as_ref().is_some_and(|a| a.exact) {
        return Err("energy attribution did not reproduce the energy ledger".into());
    }
    if !report.stalls.as_ref().is_some_and(|s| s.exact) {
        return Err("stall partition did not account every issue slot".into());
    }
    Ok(())
}

/// The newest stored run's manifest-key history, parsed in sequence
/// order — the artifact series `report --store` and `trends` operate
/// on.
fn store_history(store: &Store) -> Result<Vec<(IndexEntry, BenchReport)>, String> {
    let entries = store.entries().map_err(|e| e.to_string())?;
    let Some(newest) = entries.last() else {
        return Err(format!(
            "the run store at {} is empty; record runs with \
             `fua bench-suite --store` first",
            store.root().display()
        ));
    };
    entries
        .iter()
        .filter(|e| e.key == newest.key)
        .map(|entry| {
            let text = store.read(entry).map_err(|e| e.to_string())?;
            let report = text
                .parse::<BenchReport>()
                .map_err(|e| format!("stored run #{} ({}): {e}", entry.seq, &entry.key[..12]))?;
            Ok((entry.clone(), report))
        })
        .collect()
}

fn cmd_report(opts: &Options) -> Result<bool, String> {
    if opts.use_store() && (opts.baseline.is_some() || opts.current.is_some()) {
        return Err("report --store picks both artifacts from the run store; \
                    it cannot be combined with --baseline/--current"
            .into());
    }
    let (baseline, current) = if opts.use_store() {
        let store =
            Store::open(std::path::Path::new(opts.store_root())).map_err(|e| e.to_string())?;
        let mut history = store_history(&store)?;
        if history.len() < 2 {
            return Err(format!(
                "report --store needs two stored runs of the newest configuration, \
                 have {}; record another with `fua bench-suite --store`",
                history.len()
            ));
        }
        let (cur_entry, current) = history.pop().expect("len checked above");
        let (base_entry, baseline) = history.pop().expect("len checked above");
        eprintln!(
            "report: diffing stored run #{} ({}) against #{} ({})",
            cur_entry.seq, cur_entry.tag, base_entry.seq, base_entry.tag
        );
        (baseline, current)
    } else {
        let baseline_path = opts
            .baseline
            .as_deref()
            .ok_or("report needs --baseline <FILE> (a BENCH_<tag>.json artifact) or --store")?;
        let baseline = load_bench(baseline_path)?;
        let current = match opts.current.as_deref() {
            Some(path) => load_bench(path)?,
            None => {
                let cfg = bench_config(opts);
                let window = opts.window.unwrap_or(DEFAULT_WINDOW_CYCLES);
                eprintln!(
                    "report: no --current given; running a fresh bench-suite \
                     (scale {}, limit {}, {} job(s)) ...",
                    cfg.scale, cfg.inst_limit, opts.jobs
                );
                heartbeat_stage("report: fresh bench-suite");
                bench_suite_jobs("current", &cfg, window, opts.jobs)
            }
        };
        (baseline, current)
    };

    let cmp = compare(&baseline, &current, &Tolerance::default());
    for f in &cmp.findings {
        let tag = match f.severity {
            Severity::Regression => "REGRESSION",
            Severity::Info => "info",
        };
        println!("{tag:<10} [{}] {}", f.category, f.message);
    }
    println!(
        "{}: {} finding(s), {} regression(s) vs baseline \"{}\"",
        if cmp.passed() { "PASS" } else { "FAIL" },
        cmp.findings.len(),
        cmp.regressions(),
        baseline.manifest.tag
    );
    Ok(cmp.passed())
}

fn cmd_store(action: &StoreAction, opts: &Options) -> Result<(), String> {
    let store = Store::open(std::path::Path::new(opts.store_root())).map_err(|e| e.to_string())?;
    match action {
        StoreAction::Ls => {
            let entries = store.entries().map_err(|e| e.to_string())?;
            if entries.is_empty() {
                println!("store at {} is empty", store.root().display());
                return Ok(());
            }
            let mut table = TextTable::new(["seq", "key", "tag", "schema", "bytes"]);
            for e in &entries {
                table.push_row([
                    e.seq.to_string(),
                    e.key[..12].to_string(),
                    e.tag.clone(),
                    e.bench_schema.clone(),
                    e.bytes.to_string(),
                ]);
            }
            println!("{table}");
            println!(
                "{} run(s) over {} configuration(s) in {}",
                entries.len(),
                Store::summarize(&entries).len(),
                store.root().display()
            );
        }
        StoreAction::Show(reference) => {
            let entry = store.resolve(reference).map_err(|e| e.to_string())?;
            let text = store.read(&entry).map_err(|e| e.to_string())?;
            // Byte-identical: the artifact already ends in a newline.
            print!("{text}");
        }
        StoreAction::Put(file) => {
            let text = std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))?;
            let receipt = store
                .put(&text, std::path::Path::new(file))
                .map_err(|e| e.to_string())?;
            println!(
                "stored run #{} (key {}, tag \"{}\", {} bytes{})",
                receipt.entry.seq,
                &receipt.entry.key[..12],
                receipt.entry.tag,
                receipt.entry.bytes,
                if receipt.deduplicated {
                    ", object deduplicated"
                } else {
                    ""
                }
            );
        }
        StoreAction::Gc => {
            let report = store.gc().map_err(|e| e.to_string())?;
            println!(
                "gc: kept {} object(s), removed {} unreferenced object(s) and {} staging file(s)",
                report.kept_objects, report.removed_objects, report.removed_tmp
            );
        }
    }
    Ok(())
}

fn cmd_trends(opts: &Options) -> Result<bool, String> {
    let store = Store::open(std::path::Path::new(opts.store_root())).map_err(|e| e.to_string())?;
    let history = store_history(&store)?;
    let points: Vec<(String, BenchReport)> = history
        .into_iter()
        .map(|(entry, report)| (format!("#{} {}", entry.seq, entry.tag), report))
        .collect();
    let trend = trends(&points, &Tolerance::default()).map_err(|e| match e {
        TrendError::TooFew { have } => format!(
            "{e}; record more with `fua bench-suite --store` \
             (store holds {have} run(s) of the newest configuration)"
        ),
        other => other.to_string(),
    })?;

    if opts.json {
        println!("{}", trend.to_json().pretty());
        return Ok(trend.passed());
    }

    let mut table = TextTable::new(["metric", "trend", "newest"]);
    for series in &trend.series {
        table.push_row([
            series.metric.clone(),
            fua::report::sparkline(&series.values),
            match series.newest() {
                Some(v) => format!("{v:.3}"),
                None => "-".to_string(),
            },
        ]);
    }
    println!(
        "trends over {} stored run(s) ({} .. {}):",
        trend.labels.len(),
        trend.labels.first().map(String::as_str).unwrap_or("-"),
        trend.labels.last().map(String::as_str).unwrap_or("-")
    );
    println!("{table}");
    for f in &trend.findings {
        let tag = match f.severity {
            Severity::Regression => "REGRESSION",
            Severity::Info => "info",
        };
        println!("{tag:<10} [{}] {}", f.category, f.message);
    }
    println!(
        "{}: {} finding(s), {} regression(s) on the newest run",
        if trend.passed() { "PASS" } else { "FAIL" },
        trend.findings.len(),
        trend.regressions()
    );
    Ok(trend.passed())
}

/// One sweep cell of `harness-report`: a full run of `w` under the
/// observed scheme on the untraced engine (the configuration the real
/// sweeps spend their time in).
fn harness_cell(w: &fua::workloads::Workload, machine: &MachineConfig, limit: u64) -> (u64, u64) {
    let mut sim = Simulator::new(machine.clone(), fua::core::observed_scheme());
    let result = sim
        .run_program(&w.program, limit)
        .unwrap_or_else(|e| panic!("workload {} faulted: {e}", w.name));
    (result.cycles, result.retired)
}

/// Frame-name sanitizer for the folded-stack export: `flamegraph.pl`
/// splits frames on `;` and the sample count on the last space, so
/// neither may appear inside a frame.
fn flame_frame(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c == ';' || c.is_whitespace() {
                '-'
            } else {
                c
            }
        })
        .collect()
}

/// `fua harness-report` — observe the harness observing. Sweeps the
/// full workload set twice with span collection on: a serial reference
/// pass that doubles as the allocation-measurement window (it is the
/// only thread doing work, so the process-wide counters see exactly its
/// allocations), then the parallel sweep under `--jobs` that feeds the
/// worker timeline.
///
/// Stdout carries only model-deterministic figures — cell counts,
/// simulated cycles, arena-lease totals, and the serial-pass allocation
/// counts (constant for a given build) — and is **byte-identical for
/// every `--jobs N`**; CI `cmp`s the `--jobs 1` and `--jobs 4` outputs.
/// Everything wall-clock (worker busy spans, utilization, imbalance,
/// folded stacks) goes to stderr and the opt-in side files:
/// `--out` (Perfetto timeline), `--flame` (folded stacks),
/// `--openmetrics` (text exposition).
fn cmd_harness_report(opts: &Options) -> Result<(), String> {
    let cfg = bench_config(opts);
    let workloads = fua::workloads::all(cfg.scale);
    eprintln!(
        "harness-report: sweeping {} workload(s) twice (scale {}, limit {}, {} job(s)) ...",
        workloads.len(),
        cfg.scale,
        cfg.inst_limit,
        opts.jobs
    );
    fua::obs::enable_spans();

    // Serial reference pass: the allocation window. Snapshot deltas are
    // attributable because nothing else runs concurrently yet.
    heartbeat_stage("harness-report: serial pass");
    let arena_before = fua::obs::arena_counters();
    let alloc_before = fua::obs::alloc_snapshot();
    let (serial_cells, serial_exec) =
        fua::exec::map_indexed_timed(fua::exec::Jobs::serial(), &workloads, |_, w| {
            harness_cell(w, &cfg.machine, cfg.inst_limit)
        });
    let alloc_delta = fua::obs::alloc_snapshot().delta(&alloc_before);
    let serial_arena = fua::obs::arena_counters().delta(&arena_before);

    // The observed parallel sweep: same cells, `--jobs` workers.
    heartbeat_stage("harness-report: parallel sweep");
    let arena_before = fua::obs::arena_counters();
    let (parallel_cells, parallel_exec) =
        fua::exec::map_indexed_timed(opts.jobs, &workloads, |_, w| {
            harness_cell(w, &cfg.machine, cfg.inst_limit)
        });
    let parallel_arena = fua::obs::arena_counters().delta(&arena_before);

    let spans = fua::obs::drain_spans();
    let events = fua::obs::drain_arena_events();

    // The determinism claim the stdout report leans on: both passes run
    // the same deterministic engine, so their model totals must agree.
    let serial_cycles: u64 = serial_cells.iter().map(|c| c.0).sum();
    let parallel_cycles: u64 = parallel_cells.iter().map(|c| c.0).sum();
    if serial_cycles != parallel_cycles {
        return Err(format!(
            "parallel sweep diverged from the serial reference: \
             {parallel_cycles} simulated cycles vs {serial_cycles}"
        ));
    }
    let retired: u64 = serial_cells.iter().map(|c| c.1).sum();
    let allocs =
        fua::obs::counting_allocator_active().then_some((alloc_delta.allocs, alloc_delta.bytes));

    // --- Deterministic stdout report -----------------------------------
    if opts.json {
        let alloc_json = match allocs {
            Some((a, b)) => fua::trace::Json::obj([
                ("allocs", fua::trace::Json::UInt(a)),
                ("bytes", fua::trace::Json::UInt(b)),
            ]),
            None => fua::trace::Json::Null,
        };
        let stage = |arena: &fua::obs::ArenaCounters| {
            fua::trace::Json::obj([
                ("cells", fua::trace::Json::UInt(workloads.len() as u64)),
                ("cycles", fua::trace::Json::UInt(serial_cycles)),
                ("retired", fua::trace::Json::UInt(retired)),
                ("arena_leases", fua::trace::Json::UInt(arena.leases)),
            ])
        };
        let doc = fua::trace::Json::obj([
            (
                "schema",
                fua::trace::Json::Str("fua-harness-report/1".into()),
            ),
            ("serial_pass", stage(&serial_arena)),
            ("parallel_sweep", stage(&parallel_arena)),
            ("serial_pass_allocations", alloc_json),
        ]);
        println!("{}", doc.pretty());
    } else {
        let mut table = TextTable::new(["stage", "cells", "simulated cycles", "arena leases"]);
        for (stage, arena) in [
            ("serial pass", &serial_arena),
            ("parallel sweep", &parallel_arena),
        ] {
            table.push_row([
                stage.to_string(),
                workloads.len().to_string(),
                serial_cycles.to_string(),
                arena.leases.to_string(),
            ]);
        }
        println!("{table}");
        println!("retired {retired} instruction(s) per pass");
        match allocs {
            Some((a, b)) => println!("serial-pass allocations: {a} alloc(s), {b} byte(s)"),
            None => println!(
                "serial-pass allocations: n/a \
                 (counting allocator not installed; build with --features harness-obs)"
            ),
        }
    }

    // --- Wall-clock views: stderr and the opt-in side files ------------
    eprintln!(
        "harness-report: parallel sweep busy {:.1}% over {} worker(s), imbalance {:.2}, \
         wall {:.3}s ({} span(s), {} arena event(s) collected)",
        parallel_exec.busy_fraction() * 100.0,
        parallel_exec.jobs,
        parallel_exec.imbalance(),
        parallel_exec.wall_nanos as f64 / 1e9,
        spans.len(),
        events.len()
    );

    if let Some(path) = &opts.out {
        let mut timeline = fua::trace::HarnessTimeline::new("harness-report");
        for s in &spans {
            timeline.worker_span(
                s.worker,
                &s.stage,
                s.lo,
                s.hi,
                s.queue_depth,
                s.start_nanos,
                s.end_nanos,
            );
        }
        for e in &events {
            timeline.arena_event(e.kind.label(), e.nanos);
        }
        let mut text = timeline.into_json().pretty();
        text.push('\n');
        std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("harness-report: wrote Perfetto timeline to {path}");
    }

    if let Some(path) = &opts.flame {
        // Folded stacks: harness;worker-N;stage  <busy nanoseconds>.
        let mut folded: std::collections::BTreeMap<(u32, String), u64> =
            std::collections::BTreeMap::new();
        for s in &spans {
            let stage = if s.stage.is_empty() {
                "chunk".to_string()
            } else {
                flame_frame(&s.stage)
            };
            *folded.entry((s.worker, stage)).or_insert(0) +=
                s.end_nanos.saturating_sub(s.start_nanos);
        }
        let mut text = String::new();
        for ((worker, stage), nanos) in &folded {
            text.push_str(&format!("harness;worker-{worker};{stage} {nanos}\n"));
        }
        std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("harness-report: wrote folded stacks to {path}");
    }

    if let Some(path) = &opts.openmetrics {
        use fua::trace::{metric_name, render_openmetrics, MetricsRegistry};
        let mut reg = MetricsRegistry::new();
        for (stage, exec) in [("serial", &serial_exec), ("parallel", &parallel_exec)] {
            let id = reg.counter(&metric_name("fua.harness.cells", &[("stage", stage)]));
            reg.add(id, exec.cells());
            let id = reg.counter(&metric_name("fua.harness.busy_nanos", &[("stage", stage)]));
            reg.add(id, exec.busy_nanos());
            let id = reg.counter(&metric_name("fua.harness.wall_nanos", &[("stage", stage)]));
            reg.add(id, exec.wall_nanos);
            let id = reg.gauge(&metric_name(
                "fua.harness.busy_fraction",
                &[("stage", stage)],
            ));
            reg.set(id, exec.busy_fraction());
            let id = reg.gauge(&metric_name("fua.harness.imbalance", &[("stage", stage)]));
            reg.set(id, exec.imbalance());
        }
        for (i, w) in parallel_exec.workers.iter().enumerate() {
            let worker = i.to_string();
            let id = reg.counter(&metric_name(
                "fua.harness.worker.busy_nanos",
                &[("worker", &worker)],
            ));
            reg.add(id, w.nanos);
            let id = reg.counter(&metric_name(
                "fua.harness.worker.cells",
                &[("worker", &worker)],
            ));
            reg.add(id, w.cells);
        }
        let qd = reg.histogram("fua.harness.queue_depth", &[0, 1, 2, 4, 8, 16, 32]);
        for s in &spans {
            reg.observe(qd, s.queue_depth as u64);
        }
        let id = reg.counter("fua.harness.arena.leases");
        reg.add(id, serial_arena.leases + parallel_arena.leases);
        let id = reg.counter("fua.harness.arena.fresh");
        reg.add(id, serial_arena.fresh + parallel_arena.fresh);
        let id = reg.counter("fua.harness.allocs");
        reg.add(id, alloc_delta.allocs);
        let id = reg.counter("fua.harness.alloc_bytes");
        reg.add(id, alloc_delta.bytes);
        std::fs::write(path, render_openmetrics(&reg))
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!(
            "harness-report: wrote OpenMetrics exposition to {path} ({} metric(s))",
            reg.len()
        );
    }

    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    match command.as_str() {
        "--version" | "-V" => {
            println!("fua {}", env!("CARGO_PKG_VERSION"));
            return ExitCode::SUCCESS;
        }
        "--help" | "-h" | "help" => {
            help();
            return ExitCode::SUCCESS;
        }
        _ => {}
    }
    // Positional arguments (for figure4/run/trace, and the two-word
    // store actions) precede the -- options.
    let mut opt_start = 1;
    let mut subs: Vec<&str> = Vec::new();
    while subs.len() < 2 {
        match args.get(opt_start).filter(|a| !a.starts_with("--")) {
            Some(sub) => {
                subs.push(sub.as_str());
                opt_start += 1;
            }
            None => break,
        }
    }
    let opts = match parse_options(&args[opt_start..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    warn_missing_trace_feature(&opts);
    if opts.progress && !opts.quiet {
        enable_heartbeat(std::time::Duration::from_secs(2));
    }

    let Some(cmd) = dispatch(command, &subs) else {
        return usage();
    };
    match cmd {
        Cmd::Tables => cmd_tables(&opts),
        Cmd::Figure4(unit) => cmd_figure4(unit, &opts),
        Cmd::Headline => cmd_headline(&opts),
        Cmd::Fig1 => {
            let ex = routing_example();
            let rendered = ex.render();
            emit(&ex, rendered, opts.json);
        }
        Cmd::Synth => {
            let report = synthesis_report();
            let rendered = report.render();
            emit(&report, rendered, opts.json);
        }
        Cmd::Chip => {
            let est = chip_estimate(&config(&opts));
            let rendered = est.render();
            emit(&est, rendered, opts.json);
        }
        Cmd::Breakdown(unit) => {
            let b = workload_breakdown(unit, &config(&opts));
            let rendered = b.render();
            emit(&b, rendered, opts.json);
        }
        Cmd::Sensitivity => {
            let s = swap_sensitivity(&config(&opts));
            let rendered = s.render();
            emit(&s, rendered, opts.json);
        }
        Cmd::StaticSwap(unit) => {
            let c = static_swap_comparison(unit, &config(&opts));
            let rendered = c.render();
            emit(&c, rendered, opts.json);
        }
        Cmd::Analyze(name) => {
            if let Err(e) = cmd_analyze(&name, &opts) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        Cmd::Lint(name) => match cmd_lint(name.as_deref(), &opts) {
            Ok(clean) => {
                if !clean {
                    return ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        Cmd::Workloads => cmd_workloads(&opts),
        Cmd::Run(name) => {
            if let Err(e) = cmd_run(&name, &opts) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        Cmd::Trace(name) => {
            if let Err(e) = cmd_trace(&name, &opts) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        Cmd::Estimate(name) => {
            if let Err(e) = cmd_estimate(&name, &opts) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        Cmd::ProfileEnergy(name) => {
            if let Err(e) = cmd_profile_energy(&name, &opts) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        Cmd::ProfileCycles(name) => {
            if let Err(e) = cmd_profile_cycles(&name, &opts) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        Cmd::BenchSuite => {
            if let Err(e) = cmd_bench_suite(&opts) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        Cmd::Report => match cmd_report(&opts) {
            Ok(passed) => {
                if !passed {
                    return ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        Cmd::Store(action) => {
            if let Err(e) = cmd_store(&action, &opts) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        Cmd::Trends => match cmd_trends(&opts) {
            Ok(passed) => {
                if !passed {
                    return ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        Cmd::HarnessReport => {
            if let Err(e) = cmd_harness_report(&opts) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
