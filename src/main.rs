//! `fua` — command-line front end for the reproduction.
//!
//! ```text
//! fua tables                  regenerate Tables 1–3
//! fua figure4 <ialu|fpau>     regenerate Figure 4(a)/(b)
//! fua headline                the paper's headline numbers
//! fua fig1                    Figure 1 routing example
//! fua synth                   Section-5 gate-cost report
//! fua chip                    chip-level power extrapolation (§1)
//! fua breakdown <ialu|fpau>   per-workload results
//! fua sensitivity             compiler-swap cross-input study
//! fua staticswap <ialu|fpau>  static vs profile-guided swapping
//! fua analyze <workload>      static information-bit predictions
//! fua lint [workload]         lint one workload (or all 15)
//! fua workloads               list the bundled workloads
//! fua run <workload>          simulate one workload under every scheme
//!
//! options: --limit <N>   retired-instruction cap per run (default 150000)
//!          --scale <N>   workload scale factor (default 1)
//!          --json        emit machine-readable JSON instead of tables
//! ```

use std::process::ExitCode;

use fua::core::{
    chip_estimate, figure4, headline, profile_suite, routing_example, static_swap_comparison,
    swap_sensitivity, synthesis_report, workload_breakdown, ExperimentConfig, Unit,
};
use fua::isa::FuClass;
use fua::sim::{MachineConfig, Simulator, SteeringConfig};
use fua::stats::TextTable;
use fua::steer::SteeringKind;

struct Options {
    limit: u64,
    scale: u32,
    json: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: fua <command> [--limit N] [--scale N]\n\
         commands: tables | figure4 <ialu|fpau> | headline | fig1 | synth | \
         chip | breakdown <ialu|fpau> | sensitivity | staticswap <ialu|fpau> | \
         analyze <workload> | lint [workload] | workloads | run <workload>"
    );
    ExitCode::FAILURE
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        limit: 150_000,
        scale: 1,
        json: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--limit" => {
                let v = it.next().ok_or("--limit needs a value")?;
                opts.limit = v.parse().map_err(|_| format!("bad --limit: {v}"))?;
            }
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                opts.scale = v.parse().map_err(|_| format!("bad --scale: {v}"))?;
            }
            "--json" => opts.json = true,
            other => return Err(format!("unknown option: {other}")),
        }
    }
    Ok(opts)
}

fn config(opts: &Options) -> ExperimentConfig {
    ExperimentConfig {
        scale: opts.scale,
        inst_limit: opts.limit,
        machine: MachineConfig::paper_default(),
    }
}

fn cmd_tables(opts: &Options) {
    let p = profile_suite(&config(opts));
    println!("{}", p.table1());
    println!("{}", p.table2());
    println!("{}", p.table3());
}

#[cfg(feature = "json")]
fn emit<T: fua::core::ToJson>(value: &T, rendered: String, json: bool) {
    if json {
        println!("{}", value.to_json().pretty());
    } else {
        println!("{rendered}");
    }
}

#[cfg(not(feature = "json"))]
fn emit<T>(_value: &T, rendered: String, json: bool) {
    if json {
        eprintln!("warning: this binary was built without the `json` feature; emitting text");
    }
    println!("{rendered}");
}

fn cmd_figure4(unit: Unit, opts: &Options) {
    let fig = figure4(unit, &config(opts));
    let rendered = fig.render();
    emit(&fig, rendered, opts.json);
}

fn cmd_headline(opts: &Options) {
    let h = headline(&config(opts));
    let rendered = format!(
        "IALU 4-bit LUT + hw swap:            {:>6.1}%   (paper ~17%)\n\
         FPAU 4-bit LUT + hw swap:            {:>6.1}%   (paper ~18%)\n\
         IALU 4-bit LUT + hw + compiler swap: {:>6.1}%   (paper ~26%)",
        h.ialu_pct, h.fpau_pct, h.ialu_compiler_pct
    );
    emit(&h, rendered, opts.json);
}

fn cmd_workloads(opts: &Options) {
    let mut t = TextTable::new(["name", "category", "static insts", "description"]);
    for w in fua::workloads::all(opts.scale) {
        t.push_row([
            w.name.to_string(),
            w.category.to_string(),
            w.program.len().to_string(),
            w.description.to_string(),
        ]);
    }
    println!("{t}");
}

/// Renders an abstract bit as `0`, `1`, or `?`.
fn bit_glyph(bit: fua::analysis::AbsBit) -> &'static str {
    match bit.definite() {
        Some(false) => "0",
        Some(true) => "1",
        None => "?",
    }
}

fn cmd_analyze(name: &str, opts: &Options) -> Result<(), String> {
    let w = fua::workloads::by_name(name, opts.scale)
        .ok_or_else(|| format!("unknown workload: {name} (try `fua workloads`)"))?;
    let analysis = fua::analysis::InfoBitAnalysis::run(&w.program);
    let mut t = TextTable::new(["#", "op", "class", "op1", "op2", "case"]);
    for idx in 0..w.program.len() {
        let inst = w.program.inst(idx);
        if !analysis.is_reachable(idx) {
            t.push_row([
                idx.to_string(),
                inst.op.to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "unreachable".to_string(),
            ]);
            continue;
        }
        let Some(p) = analysis.prediction(idx) else {
            continue; // j/halt/fli occupy no FU
        };
        t.push_row([
            idx.to_string(),
            inst.op.to_string(),
            p.class.to_string(),
            bit_glyph(p.op1).to_string(),
            bit_glyph(p.op2).to_string(),
            match p.case() {
                Some(c) => c.to_string(),
                None => "?".to_string(),
            },
        ]);
    }
    let (with_fu, definite) = analysis.coverage();
    println!(
        "{}: static information-bit predictions (sign / low-4-mantissa domains)\n{t}\
         {definite}/{with_fu} FU instructions with a definite case",
        w.name
    );
    Ok(())
}

fn lint_one(w: &fua::workloads::Workload) -> usize {
    let lints = fua::analysis::lint_program(&w.program);
    if lints.is_empty() {
        println!("{}: clean", w.name);
    } else {
        for l in &lints {
            println!("{}: {l}", w.name);
        }
    }
    lints.len()
}

fn cmd_lint(name: Option<&str>, opts: &Options) -> Result<bool, String> {
    let total = match name {
        Some(n) => {
            let w = fua::workloads::by_name(n, opts.scale)
                .ok_or_else(|| format!("unknown workload: {n} (try `fua workloads`)"))?;
            lint_one(&w)
        }
        None => fua::workloads::all(opts.scale).iter().map(lint_one).sum(),
    };
    if total > 0 {
        println!("{total} finding(s)");
    }
    Ok(total == 0)
}

fn cmd_run(name: &str, opts: &Options) -> Result<(), String> {
    let w = fua::workloads::by_name(name, opts.scale)
        .ok_or_else(|| format!("unknown workload: {name} (try `fua workloads`)"))?;
    let class = match w.category {
        fua::workloads::Category::Integer => FuClass::IntAlu,
        fua::workloads::Category::FloatingPoint => FuClass::FpAlu,
    };

    let mut baseline_sim =
        Simulator::new(MachineConfig::paper_default(), SteeringConfig::original());
    let baseline = baseline_sim
        .run_program(&w.program, opts.limit)
        .map_err(|e| e.to_string())?;
    println!(
        "{}: retired {} in {} cycles (IPC {:.2}), branch mispredict {:.1}%, \
         D-cache hit {:.1}%",
        w.name,
        baseline.retired,
        baseline.cycles,
        baseline.ipc(),
        100.0 * baseline.branches.mispredict_rate(),
        100.0 * baseline.cache.hit_rate(),
    );

    let mut t = TextTable::new(["scheme", format!("{class} bits").as_str(), "reduction"]);
    t.push_row([
        "Original".to_string(),
        baseline.ledger.switched_bits(class).to_string(),
        "-".to_string(),
    ]);
    for kind in SteeringKind::FIGURE4 {
        if kind == SteeringKind::Original {
            continue;
        }
        let mut sim = Simulator::new(
            MachineConfig::paper_default(),
            SteeringConfig::paper_scheme(kind, true),
        );
        let r = sim
            .run_program(&w.program, opts.limit)
            .map_err(|e| e.to_string())?;
        t.push_row([
            format!("{kind} + hw swap"),
            r.ledger.switched_bits(class).to_string(),
            format!("{:.1}%", 100.0 * r.reduction_vs(&baseline, class)),
        ]);
    }
    println!("{t}");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    // Sub-argument (for figure4/run) precedes the -- options.
    let sub = args.get(1).filter(|a| !a.starts_with("--")).cloned();
    let opt_start = 1 + sub.is_some() as usize;
    let opts = match parse_options(&args[opt_start..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };

    match (command.as_str(), sub.as_deref()) {
        ("tables", None) => cmd_tables(&opts),
        ("figure4", Some("ialu")) => cmd_figure4(Unit::Ialu, &opts),
        ("figure4", Some("fpau")) => cmd_figure4(Unit::Fpau, &opts),
        ("headline", None) => cmd_headline(&opts),
        ("fig1", None) => {
            let ex = routing_example();
            let rendered = ex.render();
            emit(&ex, rendered, opts.json);
        }
        ("synth", None) => {
            let report = synthesis_report();
            let rendered = report.render();
            emit(&report, rendered, opts.json);
        }
        ("chip", None) => {
            let est = chip_estimate(&config(&opts));
            let rendered = est.render();
            emit(&est, rendered, opts.json);
        }
        ("breakdown", Some("ialu")) => {
            let b = workload_breakdown(Unit::Ialu, &config(&opts));
            let rendered = b.render();
            emit(&b, rendered, opts.json);
        }
        ("breakdown", Some("fpau")) => {
            let b = workload_breakdown(Unit::Fpau, &config(&opts));
            let rendered = b.render();
            emit(&b, rendered, opts.json);
        }
        ("sensitivity", None) => {
            let s = swap_sensitivity(&config(&opts));
            let rendered = s.render();
            emit(&s, rendered, opts.json);
        }
        ("staticswap", Some("ialu")) => {
            let c = static_swap_comparison(Unit::Ialu, &config(&opts));
            let rendered = c.render();
            emit(&c, rendered, opts.json);
        }
        ("staticswap", Some("fpau")) => {
            let c = static_swap_comparison(Unit::Fpau, &config(&opts));
            let rendered = c.render();
            emit(&c, rendered, opts.json);
        }
        ("analyze", Some(name)) => {
            if let Err(e) = cmd_analyze(name, &opts) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        ("lint", name) => match cmd_lint(name, &opts) {
            Ok(clean) => {
                if !clean {
                    return ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        ("workloads", None) => cmd_workloads(&opts),
        ("run", Some(name)) => {
            if let Err(e) = cmd_run(name, &opts) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        _ => return usage(),
    }
    ExitCode::SUCCESS
}
