//! Command-line surface: flag/scheme parsing and subcommand dispatch.
//!
//! Everything the `fua` binary does *before* running a command lives
//! here — the [`Options`] grammar, the shared positive-integer and
//! scheme parsers, the workload-set resolver, and the [`Cmd`] table
//! that maps `(command, sub)` strings to a typed dispatch value.
//! `main.rs` keeps the command implementations; this module keeps the
//! strings, so the usage text, the help text and the dispatch table sit
//! next to each other and stay in sync.

use std::process::ExitCode;

use fua::core::{ExperimentConfig, Unit};
use fua::exec::Jobs;
use fua::report::DEFAULT_WINDOW_CYCLES;
use fua::sim::MachineConfig;
use fua::store::DEFAULT_STORE_DIR;

/// Default retired-instruction cap for simulation commands.
pub const DEFAULT_LIMIT: u64 = 150_000;
/// Default cap for `fua trace` — full runs would emit millions of
/// events; 20k instructions already gives Perfetto a rich timeline.
pub const TRACE_DEFAULT_LIMIT: u64 = 20_000;
/// Default retired-instruction cap for `fua profile-energy` and
/// `fua profile-cycles` — matches the bench-suite quick config so
/// profiles explain BENCH artifacts.
pub const PROFILE_DEFAULT_LIMIT: u64 = 25_000;

/// Parsed `--flag` options, shared by every subcommand.
pub struct Options {
    pub limit: Option<u64>,
    pub scale: u32,
    pub jobs: Jobs,
    pub json: bool,
    pub metrics: bool,
    pub out: Option<String>,
    pub last: Option<usize>,
    pub window: Option<u64>,
    pub csv: Option<String>,
    pub tag: Option<String>,
    pub baseline: Option<String>,
    pub current: Option<String>,
    pub scheme: Option<String>,
    pub compare: Option<(String, String)>,
    pub top: Option<usize>,
    pub flame: Option<String>,
    pub per_block: bool,
    pub verify: bool,
    pub critical_path: bool,
    pub store: bool,
    pub store_dir: Option<String>,
    pub progress: bool,
    pub quiet: bool,
    pub openmetrics: Option<String>,
}

impl Options {
    /// Whether the command should read/write the run store (`--store`,
    /// or `--store-dir` which implies it).
    pub fn use_store(&self) -> bool {
        self.store || self.store_dir.is_some()
    }

    /// The run-store directory: `--store-dir` or the default
    /// `.fua-store`.
    pub fn store_root(&self) -> &str {
        self.store_dir.as_deref().unwrap_or(DEFAULT_STORE_DIR)
    }
}

/// A `fua store <action>` subcommand.
pub enum StoreAction {
    /// List every stored run, newest last.
    Ls,
    /// Print one stored artifact, byte-identical, to stdout.
    Show(String),
    /// Add an existing artifact file to the store.
    Put(String),
    /// Remove unreferenced objects and stale staging files.
    Gc,
}

/// A recognised `(command, sub)` pair, ready to dispatch.
pub enum Cmd {
    Tables,
    Figure4(Unit),
    Headline,
    Fig1,
    Synth,
    Chip,
    Breakdown(Unit),
    Sensitivity,
    StaticSwap(Unit),
    Analyze(String),
    Lint(Option<String>),
    Workloads,
    Run(String),
    Trace(String),
    Estimate(String),
    ProfileEnergy(String),
    ProfileCycles(String),
    BenchSuite,
    Report,
    Store(StoreAction),
    Trends,
    HarnessReport,
}

/// Maps a command plus its leading positional arguments to a typed
/// command, or `None` for anything the binary does not recognise (the
/// caller prints usage). The table mirrors the command list in
/// [`usage`]/[`help`].
pub fn dispatch(command: &str, subs: &[&str]) -> Option<Cmd> {
    Some(match (command, subs) {
        ("tables", []) => Cmd::Tables,
        ("figure4", ["ialu"]) => Cmd::Figure4(Unit::Ialu),
        ("figure4", ["fpau"]) => Cmd::Figure4(Unit::Fpau),
        ("headline", []) => Cmd::Headline,
        ("fig1", []) => Cmd::Fig1,
        ("synth", []) => Cmd::Synth,
        ("chip", []) => Cmd::Chip,
        ("breakdown", ["ialu"]) => Cmd::Breakdown(Unit::Ialu),
        ("breakdown", ["fpau"]) => Cmd::Breakdown(Unit::Fpau),
        ("sensitivity", []) => Cmd::Sensitivity,
        ("staticswap", ["ialu"]) => Cmd::StaticSwap(Unit::Ialu),
        ("staticswap", ["fpau"]) => Cmd::StaticSwap(Unit::Fpau),
        ("analyze", [name]) => Cmd::Analyze(name.to_string()),
        ("lint", []) => Cmd::Lint(None),
        ("lint", [name]) => Cmd::Lint(Some(name.to_string())),
        ("workloads", []) => Cmd::Workloads,
        ("run", [name]) => Cmd::Run(name.to_string()),
        ("trace", [name]) => Cmd::Trace(name.to_string()),
        ("estimate", [name]) => Cmd::Estimate(name.to_string()),
        ("profile-energy", [name]) => Cmd::ProfileEnergy(name.to_string()),
        ("profile-cycles", [name]) => Cmd::ProfileCycles(name.to_string()),
        ("bench-suite", []) => Cmd::BenchSuite,
        ("report", []) => Cmd::Report,
        ("store", ["ls"]) => Cmd::Store(StoreAction::Ls),
        ("store", ["show", reference]) => Cmd::Store(StoreAction::Show(reference.to_string())),
        ("store", ["put", file]) => Cmd::Store(StoreAction::Put(file.to_string())),
        ("store", ["gc"]) => Cmd::Store(StoreAction::Gc),
        ("trends", []) => Cmd::Trends,
        ("harness-report", []) => Cmd::HarnessReport,
        _ => return None,
    })
}

/// Prints the one-screen usage summary to stderr and returns failure.
pub fn usage() -> ExitCode {
    eprintln!(
        "usage: fua <command> [sub] [options]\n\
         commands: tables | figure4 <ialu|fpau> | headline | fig1 | synth | \
         chip | breakdown <ialu|fpau> | sensitivity | staticswap <ialu|fpau> | \
         analyze <workload> | lint [workload] | workloads | run <workload> | \
         estimate <workload|all> [--scheme S | --compare A B] [--per-block] [--verify] | \
         trace <workload> [--out FILE] [--last N] [--window N] [--csv FILE] | \
         profile-energy <workload|all> [--scheme S | --compare A B] \
         [--top N] [--flame FILE] | \
         profile-cycles <workload|all> [--scheme S | --compare A B] \
         [--top N] [--flame FILE] [--critical-path] | \
         bench-suite [--tag T] [--window N] [--jobs N] [--store] | \
         report (--baseline FILE [--current FILE] | --store) | \
         store <ls|show REF|put FILE|gc> [--store-dir DIR] | \
         trends [--json] [--store-dir DIR] | \
         harness-report [--jobs N] [--json] [--openmetrics FILE] \
         [--flame FILE] [--out FILE]\n\
         try `fua --help` for the full reference"
    );
    ExitCode::FAILURE
}

/// The full CLI reference: every subcommand with its arguments, then
/// every flag with which commands consume it. Mirrored as the command
/// table in README.md — keep the two in sync.
pub fn help() {
    println!(
        "fua {} — dynamic functional unit assignment for low power\n\
         \n\
         usage: fua <command> [sub] [options]\n\
         \n\
         paper artefacts:\n\
         \x20 tables                  regenerate Tables 1-3 (bit patterns, occupancy)\n\
         \x20 figure4 <ialu|fpau>     regenerate Figure 4(a)/(b), the scheme sweep\n\
         \x20 headline                headline numbers (paper: ~17% / ~18% / ~26%)\n\
         \x20 fig1                    Figure 1 routing example\n\
         \x20 synth                   Section-5 gate-cost report (58 gates / 6 levels)\n\
         \x20 chip                    chip-level power extrapolation (Section 1)\n\
         \n\
         studies:\n\
         \x20 breakdown <ialu|fpau>   per-workload reduction results\n\
         \x20 sensitivity             compiler-swap cross-input sensitivity study\n\
         \x20 staticswap <ialu|fpau>  static analysis vs profile-guided swapping\n\
         \x20 analyze <workload>      static information-bit predictions\n\
         \x20 estimate <w|all>        static switched-bit upper bounds per PC, block\n\
         \x20                         and FU class; --verify gates them against the\n\
         \x20                         measured attribution (nonzero exit on violation)\n\
         \x20 lint [workload]         lint one workload (or all; nonzero exit on findings)\n\
         \n\
         simulation and observability:\n\
         \x20 workloads               list the bundled workloads\n\
         \x20 run <workload>          simulate one workload under every scheme\n\
         \x20 trace <workload>        cycle-level trace under 4-bit LUT + hw swap\n\
         \x20 profile-energy <w|all>  attribute every switched bit to its static PC,\n\
         \x20                         basic block, FU module and steering case;\n\
         \x20                         rank hotspots, export flamegraphs, diff schemes\n\
         \x20 profile-cycles <w|all>  attribute every issue slot of every cycle to a\n\
         \x20                         stall reason and its culprit PC — an exact\n\
         \x20                         partition of cycles x issue width; rank stall\n\
         \x20                         hotspots, join with the energy profile, export\n\
         \x20                         flamegraphs, extract the critical path\n\
         \n\
         experiment ledger:\n\
         \x20 bench-suite             quick suite -> BENCH_<tag>.json artifact\n\
         \x20                         (--store: append to the run store instead)\n\
         \x20 report                  tolerance-banded diff vs a BENCH baseline\n\
         \x20                         (nonzero exit on regression — the CI gate;\n\
         \x20                         --store: diff the two newest stored runs)\n\
         \x20 store ls                list the run store, newest last\n\
         \x20 store show <ref>        print one stored artifact byte-identically\n\
         \x20                         (<ref>: a sequence number or a key prefix)\n\
         \x20 store put <file>        add an existing BENCH artifact to the store\n\
         \x20 store gc                drop unreferenced objects and staging files\n\
         \x20 trends                  per-metric trajectories over the stored runs\n\
         \x20                         of the newest configuration, with rolling-\n\
         \x20                         median change points (nonzero exit when the\n\
         \x20                         newest run regresses)\n\
         \x20 harness-report          observe the harness observing: sweep the\n\
         \x20                         workloads with span collection on and print\n\
         \x20                         per-stage cell counts, simulated cycles,\n\
         \x20                         arena-pool traffic and allocation counts\n\
         \x20                         (stdout is byte-identical for every --jobs N;\n\
         \x20                         wall-clock views go to the side files:\n\
         \x20                         --openmetrics, --flame, --out for Perfetto)\n\
         \n\
         options (in [] the commands that consume each):\n\
         \x20 --limit <N>     retired-instruction cap per run [all simulating]\n\
         \x20                 (default {DEFAULT_LIMIT}; {TRACE_DEFAULT_LIMIT} for trace;\n\
         \x20                 {PROFILE_DEFAULT_LIMIT} for profile-energy/profile-cycles;\n\
         \x20                 quick-config 25000 for bench-suite/report)\n\
         \x20 --scale <N>     workload scale factor, default 1 [all simulating]\n\
         \x20 --jobs <N>      worker threads for the sweep [figure4, headline,\n\
         \x20                 bench-suite, report, profile-energy, profile-cycles,\n\
         \x20                 estimate]; default: available parallelism; 1 = serial\n\
         \x20                 reference path. Output is byte-identical for every N —\n\
         \x20                 parallelism only changes wall-clock\n\
         \x20 --json          emit machine-readable JSON instead of tables\n\
         \x20                 [figure4, headline, fig1, synth, chip, breakdown,\n\
         \x20                 sensitivity, staticswap, run, profile-energy,\n\
         \x20                 profile-cycles, estimate]\n\
         \x20 --metrics       print a metrics snapshot [run, figure4, headline, trace]\n\
         \x20 --out <FILE>    write Chrome trace-event JSON for Perfetto [trace,\n\
         \x20                 harness-report: worker/arena timeline tracks]\n\
         \x20 --last <N>      print the last N trace events, default 16 [trace]\n\
         \x20 --window <N>    telemetry window in cycles, default {DEFAULT_WINDOW_CYCLES}\n\
         \x20                 [trace, bench-suite, report]\n\
         \x20 --csv <FILE>    write the windowed telemetry time-series CSV [trace]\n\
         \x20 --scheme <S>    steering scheme to attribute or bound, default lut4\n\
         \x20                 (naive|fullham|1bitham|lut2|lut4|lut8)\n\
         \x20                 [profile-energy, profile-cycles, estimate]\n\
         \x20 --compare <A> <B>  run both schemes and report where B saves or\n\
         \x20                 loses switched bits (or cycles) vs A;\n\
         \x20                 for estimate, diff the two schemes' static bounds\n\
         \x20                 [profile-energy, profile-cycles, estimate]\n\
         \x20 --per-block     print per-basic-block aggregates instead of the\n\
         \x20                 per-PC bound table [estimate]\n\
         \x20 --verify        join the static bounds with a measured attribution\n\
         \x20                 and report soundness + precision; nonzero exit on\n\
         \x20                 any violated bound [estimate]\n\
         \x20 --top <N>       hotspot/mover rows to print, default 10\n\
         \x20                 [profile-energy, profile-cycles]\n\
         \x20 --flame <FILE>  write collapsed stacks (workload;block;pc weight)\n\
         \x20                 for flamegraph renderers [profile-energy,\n\
         \x20                 profile-cycles; harness-report:\n\
         \x20                 harness;worker;stage nanos]\n\
         \x20 --critical-path print the retirement-dependence critical path with\n\
         \x20                 per-node operand/structural wait [profile-cycles]\n\
         \x20 --tag <T>       artifact tag, default \"local\": bench-suite writes\n\
         \x20                 BENCH_<T>.json [bench-suite]\n\
         \x20 --baseline <F>  baseline artifact [report; or use --store]\n\
         \x20 --current <F>   current artifact; omitted = run a fresh bench-suite\n\
         \x20                 and diff that [report]\n\
         \x20 --store         use the run store: bench-suite appends its artifact\n\
         \x20                 to the store; report diffs the two newest stored\n\
         \x20                 runs of the newest configuration [bench-suite,\n\
         \x20                 report]\n\
         \x20 --store-dir <D> run-store directory, default {DEFAULT_STORE_DIR}\n\
         \x20                 (implies --store) [bench-suite, report, store,\n\
         \x20                 trends]\n\
         \x20 --progress      print a heartbeat line to stderr every few seconds\n\
         \x20                 (elapsed, stage, cells done/total, eta) plus a\n\
         \x20                 per-stage worker-utilization summary; stdout and\n\
         \x20                 artifacts are byte-identical with or without it\n\
         \x20                 [bench-suite, report, figure4, headline,\n\
         \x20                 profile-energy, profile-cycles, estimate,\n\
         \x20                 harness-report]\n\
         \x20 --quiet         suppress --progress heartbeat output (wins when\n\
         \x20                 both are given) [same commands as --progress]\n\
         \x20 --openmetrics <FILE>  write harness metrics (worker utilization,\n\
         \x20                 queue-depth histogram, imbalance, allocations) as\n\
         \x20                 an OpenMetrics text exposition [harness-report]\n\
         \x20 --version, -V   print the version and exit\n\
         \x20 --help, -h      print this help and exit\n\
         \n\
         stdout carries only the command's output (tables, JSON, findings);\n\
         progress and log lines go to stderr, so pipelines compose cleanly.",
        env!("CARGO_PKG_VERSION")
    );
}

/// Parses a flag value as a positive integer; 0 and non-numeric input
/// are rejected with an error naming the flag.
pub fn positive_u64(flag: &str, value: &str) -> Result<u64, String> {
    let n: u64 = value
        .parse()
        .map_err(|_| format!("{flag} expects a positive integer, got `{value}`"))?;
    if n == 0 {
        return Err(format!("{flag} must be at least 1, got 0"));
    }
    Ok(n)
}

/// Parses the `--flag` tail of an invocation into [`Options`].
pub fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        limit: None,
        scale: 1,
        jobs: Jobs::auto(),
        json: false,
        metrics: false,
        out: None,
        last: None,
        window: None,
        csv: None,
        tag: None,
        baseline: None,
        current: None,
        scheme: None,
        compare: None,
        top: None,
        flame: None,
        per_block: false,
        verify: false,
        critical_path: false,
        store: false,
        store_dir: None,
        progress: false,
        quiet: false,
        openmetrics: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--limit" => {
                let v = it.next().ok_or("--limit needs a value")?;
                opts.limit = Some(positive_u64("--limit", v)?);
            }
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                let n = positive_u64("--scale", v)?;
                opts.scale = u32::try_from(n).map_err(|_| format!("--scale is too large: {v}"))?;
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                opts.jobs = v.parse().map_err(|e| format!("--jobs: {e}"))?;
            }
            "--json" => opts.json = true,
            "--metrics" => opts.metrics = true,
            "--out" => {
                let v = it.next().ok_or("--out needs a file path")?;
                opts.out = Some(v.clone());
            }
            "--last" => {
                let v = it.next().ok_or("--last needs a value")?;
                opts.last = Some(positive_u64("--last", v)? as usize);
            }
            "--window" => {
                let v = it.next().ok_or("--window needs a value")?;
                opts.window = Some(positive_u64("--window", v)?);
            }
            "--csv" => {
                let v = it.next().ok_or("--csv needs a file path")?;
                opts.csv = Some(v.clone());
            }
            "--tag" => {
                let v = it.next().ok_or("--tag needs a value")?;
                opts.tag = Some(v.clone());
            }
            "--baseline" => {
                let v = it.next().ok_or("--baseline needs a file path")?;
                opts.baseline = Some(v.clone());
            }
            "--current" => {
                let v = it.next().ok_or("--current needs a file path")?;
                opts.current = Some(v.clone());
            }
            "--scheme" => {
                let v = it.next().ok_or("--scheme needs a value")?;
                opts.scheme = Some(v.clone());
            }
            "--compare" => {
                let a = it
                    .next()
                    .ok_or("--compare needs two scheme names (e.g. --compare naive lut4)")?;
                let b = it
                    .next()
                    .ok_or("--compare needs a second scheme name (e.g. --compare naive lut4)")?;
                opts.compare = Some((a.clone(), b.clone()));
            }
            "--top" => {
                let v = it.next().ok_or("--top needs a value")?;
                opts.top = Some(positive_u64("--top", v)? as usize);
            }
            "--flame" => {
                let v = it.next().ok_or("--flame needs a file path")?;
                opts.flame = Some(v.clone());
            }
            "--per-block" => opts.per_block = true,
            "--verify" => opts.verify = true,
            "--critical-path" => opts.critical_path = true,
            "--store" => opts.store = true,
            "--store-dir" => {
                let v = it.next().ok_or("--store-dir needs a directory path")?;
                opts.store_dir = Some(v.clone());
            }
            "--progress" => opts.progress = true,
            "--quiet" => opts.quiet = true,
            "--openmetrics" => {
                let v = it.next().ok_or("--openmetrics needs a file path")?;
                opts.openmetrics = Some(v.clone());
            }
            other => return Err(format!("unknown option: {other}")),
        }
    }
    Ok(opts)
}

/// The configuration a full-fat experiment command simulates under.
pub fn config(opts: &Options) -> ExperimentConfig {
    ExperimentConfig {
        scale: opts.scale,
        inst_limit: opts.limit.unwrap_or(DEFAULT_LIMIT),
        machine: MachineConfig::paper_default(),
    }
}

/// The configuration `bench-suite`/`report` measure under: the quick
/// experiment config unless `--limit`/`--scale` override it.
pub fn bench_config(opts: &Options) -> ExperimentConfig {
    let quick = ExperimentConfig::quick();
    ExperimentConfig {
        scale: opts.scale,
        inst_limit: opts.limit.unwrap_or(quick.inst_limit),
        machine: quick.machine,
    }
}

/// The error for a workload name that does not exist, listing the names
/// that do (the same list `fua workloads` prints).
pub fn unknown_workload(name: &str, scale: u32) -> String {
    let names: Vec<&str> = fua::workloads::all(scale).iter().map(|w| w.name).collect();
    format!(
        "unknown workload: {name}\navailable workloads: {}",
        names.join(", ")
    )
}

/// The workload set a `<workload|all>` sub-argument names.
pub fn profile_workloads(name: &str, scale: u32) -> Result<Vec<fua::workloads::Workload>, String> {
    if name == "all" {
        Ok(fua::workloads::all(scale))
    } else {
        Ok(vec![
            fua::workloads::by_name(name, scale).ok_or_else(|| unknown_workload(name, scale))?
        ])
    }
}

/// The error for a scheme name that does not exist, listing the names
/// that do — the same shape as [`unknown_workload`], prefixed with the
/// flag that carried the bad value.
pub fn unknown_scheme(flag: &str, name: &str) -> String {
    let names: Vec<&str> = fua::attr::Scheme::ALL.iter().map(|s| s.name()).collect();
    format!(
        "{flag}: unknown scheme: {name}\navailable schemes: {}",
        names.join(", ")
    )
}

/// Parses a scheme name carried by `flag` into a [`Scheme`](fua::attr::Scheme).
pub fn parse_scheme(flag: &str, name: &str) -> Result<fua::attr::Scheme, String> {
    name.parse().map_err(|_| unknown_scheme(flag, name))
}
