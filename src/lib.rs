//! Facade crate for the "Dynamic Functional Unit Assignment for Low Power"
//! reproduction. Re-exports every workspace crate under one roof so that
//! examples, integration tests, and downstream users need a single
//! dependency.
//!
//! # Examples
//!
//! ```
//! use fua::isa::Word;
//!
//! assert!(Word::int(-1).info_bit());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use fua_analysis as analysis;
pub use fua_attr as attr;
pub use fua_core as core;
pub use fua_exec as exec;
pub use fua_isa as isa;
pub use fua_obs as obs;
pub use fua_power as power;
pub use fua_report as report;
pub use fua_sim as sim;
pub use fua_stats as stats;
pub use fua_steer as steer;
pub use fua_store as store;
pub use fua_swap as swap;
pub use fua_synth as synth;
pub use fua_trace as trace;
pub use fua_vm as vm;
pub use fua_workloads as workloads;
