//! Append-only, content-addressed BENCH artifact store.
//!
//! Every `BENCH_<tag>.json` artifact is a loose file until it lands
//! here. The store gives the repo *cross-run memory*: artifacts are
//! filed under `.fua-store/` addressed by two hashes —
//!
//! - the **manifest key** ([`manifest_key`]): a 128-bit FNV-1a/SplitMix
//!   digest of everything in the [`RunManifest`] that determines the
//!   numbers (machine config, workloads, seeds, scale, instruction
//!   limit — everything except the tag) plus the artifact schema
//!   version. Two runs of the same configuration collide to one key on
//!   purpose; that key's entries, in insertion order, are the
//!   configuration's longitudinal history (`fua trends` walks them, and
//!   ROADMAP item 2's result cache will look them up).
//! - the **content key**: the same digest over the artifact's raw
//!   bytes. Objects are stored once per distinct content and verified
//!   against this hash on every read.
//!
//! Layout under the store root:
//!
//! ```text
//! .fua-store/
//!   index.json            append-only ledger: seq -> (key, content, tag)
//!   objects/<content>.json  one file per distinct artifact content
//!   tmp/                  staging area for atomic writes
//! ```
//!
//! **Atomicity.** Every file lands via write-to-`tmp/` + `rename` onto
//! its final path — atomic on POSIX filesystems — and objects are
//! written *before* the index entry that references them. A crash at
//! any point therefore leaves either the old index or the new one, and
//! whichever survives only ever references objects that are fully on
//! disk; the worst case is an orphaned object or staging file, which
//! [`Store::gc`] reclaims. The store is single-writer by design (the
//! CLI); concurrent writers could lose an index append to the
//! rewrite-and-rename race, which the serve-mode work (ROADMAP item 2)
//! will address with a lock when it arrives.
//!
//! Dependency-free on purpose: hashing is in-tree FNV-1a with a
//! SplitMix64 finalisher (the same mixer `fua-workloads` seeds data
//! with), JSON comes from [`fua_trace::Json`], and the filesystem is
//! `std::fs`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use fua_report::{BenchReport, ReportError, RunManifest};
use fua_trace::{Json, ToJson};

/// The index file's schema identifier; bump on any breaking change.
pub const STORE_SCHEMA: &str = "fua-store/1";

/// Default store root, relative to the working directory.
pub const DEFAULT_STORE_DIR: &str = ".fua-store";

// --------------------------------------------------------------------
// Hashing: FNV-1a accumulation, SplitMix64 finalisation.
// --------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// The golden-ratio constant SplitMix64 advances by; reused here to
/// decorrelate the second hash lane from the first.
const LANE_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// SplitMix64's output mixer: a bijective avalanche over one word.
fn splitmix_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Two independent FNV-1a lanes over the same byte stream.
struct Hasher {
    lanes: [u64; 2],
}

impl Hasher {
    fn new() -> Self {
        Hasher {
            lanes: [FNV_OFFSET, FNV_OFFSET ^ LANE_SALT],
        }
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            for lane in &mut self.lanes {
                *lane = (*lane ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            }
        }
    }

    /// A length-prefixed string: unambiguous against field concatenation.
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn finish(self) -> StoreKey {
        StoreKey([splitmix_mix(self.lanes[0]), splitmix_mix(self.lanes[1])])
    }
}

/// A 128-bit store address, rendered as 32 lowercase hex characters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StoreKey(pub [u64; 2]);

impl StoreKey {
    /// The 32-character hex spelling (the on-disk and CLI form).
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.0[0], self.0[1])
    }
}

impl fmt::Display for StoreKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.0[0], self.0[1])
    }
}

/// The manifest key of one run configuration under one artifact schema:
/// everything in the manifest that determines the numbers — scale,
/// instruction limit, the full machine config, and every workload with
/// its seed — plus the schema version. The tag is deliberately
/// excluded, so re-tagged runs of the same configuration share a key
/// and form one history.
pub fn manifest_key(manifest: &RunManifest, schema: &str) -> StoreKey {
    let mut h = Hasher::new();
    h.str(schema);
    h.u64(u64::from(manifest.scale));
    h.u64(manifest.inst_limit);
    let m = &manifest.machine;
    h.u64(m.fetch_width as u64);
    h.u64(m.commit_width as u64);
    h.u64(m.rob_size as u64);
    h.u64(m.rs_entries as u64);
    for &c in &m.fu_counts {
        h.u64(c as u64);
    }
    h.u64(m.mem_ports as u64);
    h.u64(u64::from(m.cache.size_bytes));
    h.u64(u64::from(m.cache.line_bytes));
    h.u64(m.cache.hit_latency);
    h.u64(m.cache.miss_latency);
    h.u64(m.mispredict_penalty);
    h.u64(u64::from(m.in_order_issue));
    h.u64(manifest.workloads.len() as u64);
    for w in &manifest.workloads {
        h.str(&w.name);
        h.str(&w.category);
        h.u64(w.seed);
    }
    h.finish()
}

/// The content key of an artifact: the digest of its raw bytes.
pub fn content_key(bytes: &[u8]) -> StoreKey {
    let mut h = Hasher::new();
    h.u64(bytes.len() as u64);
    h.bytes(bytes);
    h.finish()
}

// --------------------------------------------------------------------
// Errors.
// --------------------------------------------------------------------

/// An error talking to the store.
#[derive(Debug)]
pub enum StoreError {
    /// A filesystem operation failed; the path is named.
    Io {
        /// The file or directory the operation targeted.
        path: PathBuf,
        /// The underlying error, rendered.
        message: String,
    },
    /// An artifact failed to parse as a BENCH report.
    Artifact {
        /// Where the bytes came from (a put source or a stored object).
        path: PathBuf,
        /// The decode error.
        error: ReportError,
    },
    /// The index file is malformed.
    Index {
        /// The index path.
        path: PathBuf,
        /// What was wrong.
        message: String,
    },
    /// A stored object's bytes no longer match its content hash.
    Corrupt {
        /// The object path.
        path: PathBuf,
        /// The hash the index expects.
        expected: String,
        /// The hash the bytes produce.
        found: String,
    },
    /// A `show`/lookup reference matched nothing.
    NotFound {
        /// The reference as given.
        reference: String,
        /// A summary of what the store does hold.
        available: String,
    },
    /// A key-prefix reference matched more than one distinct key.
    Ambiguous {
        /// The reference as given.
        reference: String,
        /// The distinct full keys it matched.
        matches: Vec<String>,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, message } => {
                write!(f, "{}: {message}", path.display())
            }
            StoreError::Artifact { path, error } => {
                write!(f, "{}: {error}", path.display())
            }
            StoreError::Index { path, message } => {
                write!(f, "{}: malformed store index: {message}", path.display())
            }
            StoreError::Corrupt {
                path,
                expected,
                found,
            } => write!(
                f,
                "{}: stored artifact is corrupt (content hash {found}, index expects {expected})",
                path.display()
            ),
            StoreError::NotFound {
                reference,
                available,
            } => write!(f, "no stored artifact matches `{reference}`\n{available}"),
            StoreError::Ambiguous { reference, matches } => write!(
                f,
                "`{reference}` is ambiguous; it prefixes {} distinct keys:\n  {}",
                matches.len(),
                matches.join("\n  ")
            ),
        }
    }
}

impl std::error::Error for StoreError {}

fn io_err(path: &Path, e: std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    }
}

// --------------------------------------------------------------------
// Index.
// --------------------------------------------------------------------

/// One row of the append-only index: a single stored run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexEntry {
    /// Monotonically increasing insertion number (1-based); the
    /// longitudinal order `fua trends` walks.
    pub seq: u64,
    /// Manifest key (hex) — the configuration this run measured.
    pub key: String,
    /// Content key (hex) — which object file holds the bytes.
    pub content: String,
    /// The artifact's tag, for humans.
    pub tag: String,
    /// The artifact's BENCH schema version.
    pub bench_schema: String,
    /// Size of the stored artifact, in bytes.
    pub bytes: u64,
}

impl ToJson for IndexEntry {
    fn to_json(&self) -> Json {
        Json::obj([
            ("seq", Json::UInt(self.seq)),
            ("key", Json::Str(self.key.clone())),
            ("content", Json::Str(self.content.clone())),
            ("tag", Json::Str(self.tag.clone())),
            ("bench_schema", Json::Str(self.bench_schema.clone())),
            ("bytes", Json::UInt(self.bytes)),
        ])
    }
}

fn entry_from_json(e: &Json, path: &Path) -> Result<IndexEntry, StoreError> {
    let field = |name: &str| -> Result<&Json, StoreError> {
        e.get(name).ok_or_else(|| StoreError::Index {
            path: path.to_path_buf(),
            message: format!("entry is missing `{name}`"),
        })
    };
    let str_field = |name: &str| -> Result<String, StoreError> {
        field(name)?
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| StoreError::Index {
                path: path.to_path_buf(),
                message: format!("entry field `{name}` is not a string"),
            })
    };
    let u64_field = |name: &str| -> Result<u64, StoreError> {
        field(name)?.as_u64().ok_or_else(|| StoreError::Index {
            path: path.to_path_buf(),
            message: format!("entry field `{name}` is not an unsigned integer"),
        })
    };
    Ok(IndexEntry {
        seq: u64_field("seq")?,
        key: str_field("key")?,
        content: str_field("content")?,
        tag: str_field("tag")?,
        bench_schema: str_field("bench_schema")?,
        bytes: u64_field("bytes")?,
    })
}

/// The receipt [`Store::put`] returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PutReceipt {
    /// The index row the artifact was filed under.
    pub entry: IndexEntry,
    /// Whether the object bytes were already present (content dedup) —
    /// the index still gains a new history entry either way.
    pub deduplicated: bool,
}

/// What [`Store::gc`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Objects still referenced by the index (never touched).
    pub kept_objects: u64,
    /// Unreferenced objects removed.
    pub removed_objects: u64,
    /// Staging files swept out of `tmp/`.
    pub removed_tmp: u64,
}

/// Per-key rollup for listings and error messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeySummary {
    /// The manifest key (hex).
    pub key: String,
    /// Stored runs under the key.
    pub runs: u64,
    /// Tag of the newest run.
    pub latest_tag: String,
    /// BENCH schema of the newest run.
    pub bench_schema: String,
}

// --------------------------------------------------------------------
// The store proper.
// --------------------------------------------------------------------

/// Unique-enough staging-file counter; combined with the process id so
/// two processes staging concurrently cannot collide.
static STAGING: AtomicU64 = AtomicU64::new(0);

/// A handle on one on-disk store.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// Opens (creating if needed) the store at `root`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the directory tree cannot be
    /// created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Store, StoreError> {
        let root = root.into();
        for dir in [root.clone(), root.join("objects"), root.join("tmp")] {
            fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        }
        Ok(Store { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn index_path(&self) -> PathBuf {
        self.root.join("index.json")
    }

    fn object_path(&self, content: &str) -> PathBuf {
        self.root.join("objects").join(format!("{content}.json"))
    }

    /// Writes `bytes` to `target` atomically: stage in `tmp/`, then
    /// rename onto the final path.
    fn write_atomic(&self, target: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        let stage = self.root.join("tmp").join(format!(
            "stage-{}-{}",
            std::process::id(),
            STAGING.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&stage, bytes).map_err(|e| io_err(&stage, e))?;
        fs::rename(&stage, target).map_err(|e| io_err(target, e))
    }

    /// Every index entry, in insertion (seq) order. An absent index
    /// file is an empty store, not an error.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Index`] on a malformed index file.
    pub fn entries(&self) -> Result<Vec<IndexEntry>, StoreError> {
        let path = self.index_path();
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(io_err(&path, e)),
        };
        let json = Json::parse(&text).map_err(|e| StoreError::Index {
            path: path.clone(),
            message: e.to_string(),
        })?;
        let schema = json.get("schema").and_then(Json::as_str);
        if schema != Some(STORE_SCHEMA) {
            return Err(StoreError::Index {
                path,
                message: format!(
                    "schema `{}` (this build reads `{STORE_SCHEMA}`)",
                    schema.unwrap_or("<missing>")
                ),
            });
        }
        json.get("entries")
            .and_then(Json::as_arr)
            .ok_or_else(|| StoreError::Index {
                path: path.clone(),
                message: "missing `entries` array".to_string(),
            })?
            .iter()
            .map(|e| entry_from_json(e, &path))
            .collect()
    }

    fn write_index(&self, entries: &[IndexEntry]) -> Result<(), StoreError> {
        let json = Json::obj([
            ("schema", Json::Str(STORE_SCHEMA.to_string())),
            (
                "entries",
                Json::Arr(entries.iter().map(ToJson::to_json).collect()),
            ),
        ]);
        let mut text = json.pretty();
        text.push('\n');
        self.write_atomic(&self.index_path(), text.as_bytes())
    }

    /// Files one artifact: validates it as a BENCH report, stores its
    /// bytes content-addressed (once per distinct content), and appends
    /// an index entry under its manifest key. `source` names where the
    /// bytes came from, for error messages.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Artifact`] if the text is not a readable
    /// BENCH artifact, or [`StoreError::Io`]/[`StoreError::Index`] on
    /// filesystem trouble.
    pub fn put(&self, text: &str, source: &Path) -> Result<PutReceipt, StoreError> {
        let json = Json::parse(text).map_err(|e| StoreError::Artifact {
            path: source.to_path_buf(),
            error: ReportError::Parse(e),
        })?;
        let report = BenchReport::from_json(&json).map_err(|e| StoreError::Artifact {
            path: source.to_path_buf(),
            error: e,
        })?;
        // from_json validated the schema against the readable set; the
        // exact string goes into the key so histories never mix schemas.
        let schema = json
            .get("schema")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let key = manifest_key(&report.manifest, &schema);
        let content = content_key(text.as_bytes());

        // Object before index: the index must never reference bytes
        // that are not fully on disk.
        let object = self.object_path(&content.hex());
        let deduplicated = object.exists();
        if !deduplicated {
            self.write_atomic(&object, text.as_bytes())?;
        }

        let mut entries = self.entries()?;
        let seq = entries.last().map_or(1, |e| e.seq + 1);
        let entry = IndexEntry {
            seq,
            key: key.hex(),
            content: content.hex(),
            tag: report.manifest.tag.clone(),
            bench_schema: schema,
            bytes: text.len() as u64,
        };
        entries.push(entry.clone());
        self.write_index(&entries)?;
        Ok(PutReceipt {
            entry,
            deduplicated,
        })
    }

    /// Every entry under one manifest key, oldest first — the
    /// configuration's longitudinal history.
    ///
    /// # Errors
    ///
    /// Propagates [`Store::entries`] errors.
    pub fn history(&self, key: &StoreKey) -> Result<Vec<IndexEntry>, StoreError> {
        let hex = key.hex();
        Ok(self
            .entries()?
            .into_iter()
            .filter(|e| e.key == hex)
            .collect())
    }

    /// Reads one stored artifact back, verifying its content hash.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] if the bytes no longer match the
    /// index's content hash, or [`StoreError::Io`] if the object is
    /// missing or unreadable.
    pub fn read(&self, entry: &IndexEntry) -> Result<String, StoreError> {
        let path = self.object_path(&entry.content);
        let text = fs::read_to_string(&path).map_err(|e| io_err(&path, e))?;
        let found = content_key(text.as_bytes()).hex();
        if found != entry.content {
            return Err(StoreError::Corrupt {
                path,
                expected: entry.content.clone(),
                found,
            });
        }
        Ok(text)
    }

    /// Resolves a CLI reference — a decimal seq number, or a manifest-
    /// key hex prefix (newest entry of that key wins) — to an entry.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] when nothing matches, or
    /// [`StoreError::Ambiguous`] when a prefix spans several keys.
    pub fn resolve(&self, reference: &str) -> Result<IndexEntry, StoreError> {
        let entries = self.entries()?;
        if reference.chars().all(|c| c.is_ascii_digit()) && !reference.is_empty() {
            let seq: u64 = reference.parse().unwrap_or(u64::MAX);
            if let Some(e) = entries.iter().find(|e| e.seq == seq) {
                return Ok(e.clone());
            }
        } else {
            let keys: BTreeSet<&str> = entries
                .iter()
                .map(|e| e.key.as_str())
                .filter(|k| k.starts_with(reference))
                .collect();
            match keys.len() {
                0 => {}
                1 => {
                    let key = *keys.iter().next().expect("one key");
                    let newest = entries
                        .iter()
                        .filter(|e| e.key == key)
                        .max_by_key(|e| e.seq)
                        .expect("key came from the entries");
                    return Ok(newest.clone());
                }
                _ => {
                    return Err(StoreError::Ambiguous {
                        reference: reference.to_string(),
                        matches: keys.into_iter().map(str::to_string).collect(),
                    })
                }
            }
        }
        Err(StoreError::NotFound {
            reference: reference.to_string(),
            available: self.availability(&entries),
        })
    }

    /// One line per stored configuration, for listings and errors.
    pub fn summarize(entries: &[IndexEntry]) -> Vec<KeySummary> {
        let mut out: Vec<KeySummary> = Vec::new();
        for e in entries {
            match out.iter_mut().find(|s| s.key == e.key) {
                Some(s) => {
                    s.runs += 1;
                    s.latest_tag = e.tag.clone();
                    s.bench_schema = e.bench_schema.clone();
                }
                None => out.push(KeySummary {
                    key: e.key.clone(),
                    runs: 1,
                    latest_tag: e.tag.clone(),
                    bench_schema: e.bench_schema.clone(),
                }),
            }
        }
        out
    }

    /// A human summary of what the store holds, for error messages.
    fn availability(&self, entries: &[IndexEntry]) -> String {
        if entries.is_empty() {
            return format!(
                "the store at {} is empty (run `fua bench-suite --store` to populate it)",
                self.root.display()
            );
        }
        let lines: Vec<String> = Store::summarize(entries)
            .iter()
            .map(|s| {
                format!(
                    "  {} ({} run(s), latest tag \"{}\", {})",
                    s.key, s.runs, s.latest_tag, s.bench_schema
                )
            })
            .collect();
        format!(
            "available: {} run(s) under {} configuration key(s):\n{}",
            entries.len(),
            lines.len(),
            lines.join("\n")
        )
    }

    /// The store-holdings summary, public for CLI error messages.
    pub fn describe(&self) -> Result<String, StoreError> {
        let entries = self.entries()?;
        Ok(self.availability(&entries))
    }

    /// Sweeps unreferenced objects and staging leftovers. Indexed
    /// artifacts are never touched: removal candidates are exactly the
    /// object files whose content hash no index entry references.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if a directory scan or removal fails.
    pub fn gc(&self) -> Result<GcReport, StoreError> {
        let referenced: BTreeSet<String> = self.entries()?.into_iter().map(|e| e.content).collect();
        let mut report = GcReport::default();
        let objects = self.root.join("objects");
        let dir = fs::read_dir(&objects).map_err(|e| io_err(&objects, e))?;
        for item in dir {
            let item = item.map_err(|e| io_err(&objects, e))?;
            let path = item.path();
            let stem = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or_default();
            if referenced.contains(stem) {
                report.kept_objects += 1;
            } else {
                fs::remove_file(&path).map_err(|e| io_err(&path, e))?;
                report.removed_objects += 1;
            }
        }
        let tmp = self.root.join("tmp");
        let dir = fs::read_dir(&tmp).map_err(|e| io_err(&tmp, e))?;
        for item in dir {
            let item = item.map_err(|e| io_err(&tmp, e))?;
            let path = item.path();
            fs::remove_file(&path).map_err(|e| io_err(&path, e))?;
            report.removed_tmp += 1;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_report::WorkloadEntry;

    fn test_manifest() -> RunManifest {
        // Hand-built rather than simulated: key derivation must not
        // depend on running anything.
        RunManifest {
            tag: "t".into(),
            scale: 1,
            inst_limit: 25_000,
            machine: fua_report_test_machine(),
            workloads: vec![
                WorkloadEntry {
                    name: "compress".into(),
                    category: "integer".into(),
                    seed: 11,
                },
                WorkloadEntry {
                    name: "swim".into(),
                    category: "floating-point".into(),
                    seed: 22,
                },
            ],
        }
    }

    fn fua_report_test_machine() -> fua_sim::MachineConfig {
        fua_sim::MachineConfig::paper_default()
    }

    #[test]
    fn identical_manifests_collide_and_tags_do_not_split_keys() {
        let a = test_manifest();
        let mut b = a.clone();
        b.tag = "completely-different".into();
        assert_eq!(manifest_key(&a, "s"), manifest_key(&b, "s"));
    }

    #[test]
    fn every_manifest_field_feeds_the_key() {
        let base = test_manifest();
        let k0 = manifest_key(&base, "fua-bench/1.5");
        let mut variants: Vec<RunManifest> = Vec::new();
        {
            let mut m = base.clone();
            m.scale = 2;
            variants.push(m);
        }
        {
            let mut m = base.clone();
            m.inst_limit += 1;
            variants.push(m);
        }
        {
            let mut m = base.clone();
            m.machine.fetch_width += 1;
            variants.push(m);
        }
        {
            let mut m = base.clone();
            m.machine.fu_counts[2] += 1;
            variants.push(m);
        }
        {
            let mut m = base.clone();
            m.machine.cache.miss_latency += 1;
            variants.push(m);
        }
        {
            let mut m = base.clone();
            m.machine.in_order_issue = !m.machine.in_order_issue;
            variants.push(m);
        }
        {
            let mut m = base.clone();
            m.workloads[0].seed ^= 1;
            variants.push(m);
        }
        {
            let mut m = base.clone();
            m.workloads[1].name.push('x');
            variants.push(m);
        }
        {
            let mut m = base.clone();
            m.workloads.pop();
            variants.push(m);
        }
        let mut keys = vec![k0];
        for v in &variants {
            keys.push(manifest_key(v, "fua-bench/1.5"));
        }
        // The schema feeds the key too.
        keys.push(manifest_key(&base, "fua-bench/1.4"));
        let mut dedup = keys.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            keys.len(),
            "single-field changes must split keys"
        );
    }

    #[test]
    fn string_fields_hash_unambiguously() {
        // "ab" + "c" vs "a" + "bc": length prefixes keep them apart.
        let mut a = test_manifest();
        a.workloads[0].name = "ab".into();
        a.workloads[0].category = "c".into();
        let mut b = test_manifest();
        b.workloads[0].name = "a".into();
        b.workloads[0].category = "bc".into();
        assert_ne!(manifest_key(&a, "s"), manifest_key(&b, "s"));
    }

    #[test]
    fn content_key_is_stable_and_length_sensitive() {
        assert_eq!(content_key(b"abc"), content_key(b"abc"));
        assert_ne!(content_key(b"abc"), content_key(b"abd"));
        assert_ne!(content_key(b""), content_key(b"\0"));
        assert_eq!(content_key(b"x").hex().len(), 32);
    }

    #[test]
    fn key_renders_as_32_hex_chars() {
        let k = manifest_key(&test_manifest(), "s");
        let hex = k.hex();
        assert_eq!(hex.len(), 32);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(hex, k.to_string());
    }

    #[test]
    fn an_absent_index_is_an_empty_store() {
        let dir = std::env::temp_dir().join(format!(
            "fua-store-empty-{}-{}",
            std::process::id(),
            STAGING.fetch_add(1, Ordering::Relaxed)
        ));
        let store = Store::open(&dir).unwrap();
        assert!(store.entries().unwrap().is_empty());
        assert!(store.describe().unwrap().contains("empty"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_malformed_index_is_reported_with_its_path() {
        let dir = std::env::temp_dir().join(format!(
            "fua-store-badindex-{}-{}",
            std::process::id(),
            STAGING.fetch_add(1, Ordering::Relaxed)
        ));
        let store = Store::open(&dir).unwrap();
        fs::write(dir.join("index.json"), "{\"schema\": \"nope\"}").unwrap();
        let err = store.entries().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("index.json"), "{msg}");
        assert!(msg.contains(STORE_SCHEMA), "{msg}");
        let _ = fs::remove_dir_all(&dir);
    }
}
