//! Chrome trace-event / Perfetto JSON export.
//!
//! Produces the classic Chrome `traceEvents` JSON ("JSON trace format"),
//! which `ui.perfetto.dev` and `chrome://tracing` both load directly.
//! One simulated cycle maps to one microsecond of trace time. The export
//! lays out two processes:
//!
//! * **pid 1 "pipeline"** — one thread (track) per pipeline stage plus
//!   tracks for steering decisions, operand swaps, cache accesses and
//!   branch resolutions;
//! * **pid 2 "functional units"** — one thread per FU module (e.g.
//!   `IALU.m2`), carrying `X` (complete) events whose duration is the
//!   operation's latency, plus per-class cumulative switched-bit counter
//!   tracks and the window-occupancy counter.

use fua_isa::FuClass;

use crate::{Json, Stage, TraceEvent, TraceSink};

const PID_PIPELINE: u64 = 1;
const PID_UNITS: u64 = 2;
const PID_HARNESS: u64 = 3;

/// Thread id of the arena-pool event track in the harness process.
const TID_ARENA: u64 = 1_000;

// Pipeline-process thread ids: the six stages, then the decision tracks.
const TID_STEER: u64 = 6;
const TID_SWAP: u64 = 7;
const TID_CACHE: u64 = 8;
const TID_BRANCH: u64 = 9;
const TID_STALL: u64 = 10;

/// A [`TraceSink`] that accumulates Chrome trace events; call
/// [`into_json`](ChromeTraceSink::into_json) after the run and write the
/// result to a `.json` file for Perfetto.
#[derive(Debug, Clone, Default)]
pub struct ChromeTraceSink {
    events: Vec<Json>,
    cumulative_bits: [u64; 4],
    stage_named: [bool; 6],
    module_named: [[bool; 16]; 4],
}

fn module_tid(class: FuClass, module: u8) -> u64 {
    (class.index() as u64) * 16 + module as u64
}

fn meta(name: &str, pid: u64, tid: Option<u64>, value: &str) -> Json {
    let mut fields = vec![
        ("name".to_string(), Json::Str(name.into())),
        ("ph".to_string(), Json::Str("M".into())),
        ("pid".to_string(), Json::UInt(pid)),
    ];
    if let Some(tid) = tid {
        fields.push(("tid".to_string(), Json::UInt(tid)));
    }
    fields.push((
        "args".to_string(),
        Json::obj([("name", Json::Str(value.into()))]),
    ));
    Json::Obj(fields)
}

fn complete(name: String, cat: &str, ts: u64, dur: u64, pid: u64, tid: u64, args: Json) -> Json {
    Json::obj([
        ("name", Json::Str(name)),
        ("cat", Json::Str(cat.into())),
        ("ph", Json::Str("X".into())),
        ("ts", Json::UInt(ts)),
        ("dur", Json::UInt(dur.max(1))),
        ("pid", Json::UInt(pid)),
        ("tid", Json::UInt(tid)),
        ("args", args),
    ])
}

fn counter(name: String, ts: u64, pid: u64, key: &str, value: u64) -> Json {
    Json::obj([
        ("name", Json::Str(name)),
        ("ph", Json::Str("C".into())),
        ("ts", Json::UInt(ts)),
        ("pid", Json::UInt(pid)),
        ("args", Json::obj([(key, Json::UInt(value))])),
    ])
}

impl ChromeTraceSink {
    /// An empty exporter with the process metadata pre-recorded.
    pub fn new() -> Self {
        Self::with_process_labels("pipeline", "functional units")
    }

    /// As [`new`](ChromeTraceSink::new), labelling both processes with
    /// the workload name so multi-workload exports stay distinguishable
    /// in the Perfetto process list.
    ///
    /// The label travels through the JSON layer like every other string,
    /// so workload names containing quotes, backslashes or control
    /// characters are escaped, never spliced into the document raw.
    pub fn for_workload(workload: &str) -> Self {
        Self::with_process_labels(
            &format!("pipeline [{workload}]"),
            &format!("functional units [{workload}]"),
        )
    }

    fn with_process_labels(pipeline: &str, units: &str) -> Self {
        let mut sink = ChromeTraceSink::default();
        sink.events
            .push(meta("process_name", PID_PIPELINE, None, pipeline));
        sink.events
            .push(meta("process_name", PID_UNITS, None, units));
        for (tid, label) in [
            (TID_STEER, "steer"),
            (TID_SWAP, "operand-swap"),
            (TID_CACHE, "d-cache"),
            (TID_BRANCH, "branch"),
            (TID_STALL, "stall"),
        ] {
            sink.events
                .push(meta("thread_name", PID_PIPELINE, Some(tid), label));
        }
        sink
    }

    /// Events accumulated so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing beyond metadata has been recorded (the two
    /// process labels plus the five fixed decision-track labels).
    pub fn is_empty(&self) -> bool {
        self.events.len() <= 7
    }

    fn name_stage(&mut self, stage: Stage) {
        if !self.stage_named[stage as usize] {
            self.stage_named[stage as usize] = true;
            self.events.push(meta(
                "thread_name",
                PID_PIPELINE,
                Some(stage as u64),
                stage.name(),
            ));
        }
    }

    fn name_module(&mut self, class: FuClass, module: u8) {
        let m = (module as usize).min(15);
        if !self.module_named[class.index()][m] {
            self.module_named[class.index()][m] = true;
            self.events.push(meta(
                "thread_name",
                PID_UNITS,
                Some(module_tid(class, module)),
                &format!("{class}.m{m}"),
            ));
        }
    }

    /// The complete trace as a `{"traceEvents": [...]}` JSON document.
    pub fn into_json(self) -> Json {
        Json::obj([
            ("traceEvents", Json::Arr(self.events)),
            ("displayTimeUnit", Json::Str("ms".into())),
            (
                "otherData",
                Json::obj([("producer", Json::Str("fua-trace".into()))]),
            ),
        ])
    }
}

/// Builder for **harness** timelines: one Perfetto thread track per
/// `fua-exec` worker (pid 3, alongside the simulated pipeline's pid 1
/// and functional units' pid 2), a queue-depth counter sampled at every
/// chunk claim, and an arena-pool event track.
///
/// Timestamps are wall-clock nanoseconds since the harness span
/// collector's epoch, mapped to the Chrome trace's microsecond
/// timebase. Every name and label travels through the [`Json`] string
/// layer, so workload- or stage-derived strings with quotes, controls
/// or non-ASCII are escaped, never spliced raw.
#[derive(Debug, Clone, Default)]
pub struct HarnessTimeline {
    events: Vec<Json>,
    named_workers: Vec<u64>,
    arena_named: bool,
}

impl HarnessTimeline {
    /// An empty harness timeline whose process is labelled
    /// `harness [{label}]`.
    pub fn new(label: &str) -> Self {
        let mut timeline = HarnessTimeline::default();
        timeline.events.push(meta(
            "process_name",
            PID_HARNESS,
            None,
            &format!("harness [{label}]"),
        ));
        timeline
    }

    /// Events accumulated so far (including metadata records).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing beyond the process label has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.len() <= 1
    }

    fn name_worker(&mut self, worker: u64) {
        if !self.named_workers.contains(&worker) {
            self.named_workers.push(worker);
            self.events.push(meta(
                "thread_name",
                PID_HARNESS,
                Some(worker),
                &format!("worker {worker}"),
            ));
        }
    }

    /// Records one worker busy segment — a claimed chunk of sweep cells
    /// `[lo, hi)` executed under `stage` — plus a queue-depth counter
    /// sample at the claim instant.
    #[allow(clippy::too_many_arguments)]
    pub fn worker_span(
        &mut self,
        worker: u32,
        stage: &str,
        lo: u32,
        hi: u32,
        queue_depth: u32,
        start_nanos: u64,
        end_nanos: u64,
    ) {
        self.name_worker(worker as u64);
        let stage = if stage.is_empty() { "chunk" } else { stage };
        let ts = start_nanos / 1_000;
        self.events.push(complete(
            format!("{stage} [{lo}..{hi})"),
            "harness",
            ts,
            end_nanos.saturating_sub(start_nanos) / 1_000,
            PID_HARNESS,
            worker as u64,
            Json::obj([
                ("stage", Json::Str(stage.into())),
                ("lo", Json::UInt(lo.into())),
                ("hi", Json::UInt(hi.into())),
                ("queue_depth", Json::UInt(queue_depth.into())),
            ]),
        ));
        self.events.push(counter(
            "queue_depth".to_string(),
            ts,
            PID_HARNESS,
            "cells",
            queue_depth.into(),
        ));
    }

    /// Records an arena-pool event (lease/return) on the dedicated
    /// arena track.
    pub fn arena_event(&mut self, label: &str, nanos: u64) {
        if !self.arena_named {
            self.arena_named = true;
            self.events.push(meta(
                "thread_name",
                PID_HARNESS,
                Some(TID_ARENA),
                "arena-pool",
            ));
        }
        self.events.push(complete(
            label.to_string(),
            "arena",
            nanos / 1_000,
            1,
            PID_HARNESS,
            TID_ARENA,
            Json::obj([]),
        ));
    }

    /// The standalone timeline as a `{"traceEvents": [...]}` document.
    pub fn into_json(self) -> Json {
        Json::obj([
            ("traceEvents", Json::Arr(self.events)),
            ("displayTimeUnit", Json::Str("ms".into())),
            (
                "otherData",
                Json::obj([("producer", Json::Str("fua-trace".into()))]),
            ),
        ])
    }

    /// Merges this timeline's tracks into a sim trace export, so one
    /// file shows simulated events (pids 1–2) and harness timelines
    /// (pid 3) side by side.
    pub fn merge_into(self, sink: ChromeTraceSink) -> Json {
        let mut events = sink.events;
        events.extend(self.events);
        Json::obj([
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::Str("ms".into())),
            (
                "otherData",
                Json::obj([("producer", Json::Str("fua-trace".into()))]),
            ),
        ])
    }
}

impl TraceSink for ChromeTraceSink {
    fn record(&mut self, event: &TraceEvent) {
        match *event {
            TraceEvent::Stage {
                stage,
                cycle,
                serial,
                opcode,
            } => {
                self.name_stage(stage);
                self.events.push(complete(
                    opcode.to_string(),
                    "stage",
                    cycle,
                    1,
                    PID_PIPELINE,
                    stage as u64,
                    Json::obj([("serial", Json::UInt(serial))]),
                ));
            }
            TraceEvent::Steer {
                cycle,
                serial,
                class,
                case,
                module,
                swap,
                cost_bits,
            } => {
                self.events.push(complete(
                    format!("{class} case{case}→m{module}"),
                    "steer",
                    cycle,
                    1,
                    PID_PIPELINE,
                    TID_STEER,
                    Json::obj([
                        ("serial", Json::UInt(serial)),
                        ("case", Json::Str(case.to_string())),
                        ("module", Json::UInt(module.into())),
                        ("swap", Json::Bool(swap)),
                        ("cost_bits", Json::UInt(cost_bits.into())),
                    ]),
                ));
            }
            TraceEvent::OperandSwap {
                cycle,
                serial,
                class,
                kind,
            } => {
                self.events.push(complete(
                    format!("{} swap ({class})", kind.name()),
                    "swap",
                    cycle,
                    1,
                    PID_PIPELINE,
                    TID_SWAP,
                    Json::obj([("serial", Json::UInt(serial))]),
                ));
            }
            TraceEvent::Energy {
                cycle, class, bits, ..
            } => {
                self.cumulative_bits[class.index()] += bits as u64;
                self.events.push(counter(
                    format!("switched_bits.{class}"),
                    cycle,
                    PID_UNITS,
                    "bits",
                    self.cumulative_bits[class.index()],
                ));
            }
            TraceEvent::Execute {
                cycle,
                serial,
                class,
                module,
                latency,
                opcode,
            } => {
                self.name_module(class, module);
                self.events.push(complete(
                    opcode.to_string(),
                    "execute",
                    cycle,
                    latency,
                    PID_UNITS,
                    module_tid(class, module),
                    Json::obj([("serial", Json::UInt(serial))]),
                ));
            }
            TraceEvent::Cache {
                cycle,
                serial,
                addr,
                hit,
                latency,
            } => {
                self.events.push(complete(
                    (if hit { "hit" } else { "miss" }).to_string(),
                    "cache",
                    cycle,
                    latency,
                    PID_PIPELINE,
                    TID_CACHE,
                    Json::obj([
                        ("serial", Json::UInt(serial)),
                        ("addr", Json::UInt(addr.into())),
                    ]),
                ));
            }
            TraceEvent::Branch {
                cycle,
                serial,
                taken,
                predicted,
            } => {
                let mispredicted = taken != predicted;
                self.events.push(complete(
                    (if mispredicted {
                        "mispredict"
                    } else {
                        "predict"
                    })
                    .to_string(),
                    "branch",
                    cycle,
                    1,
                    PID_PIPELINE,
                    TID_BRANCH,
                    Json::obj([
                        ("serial", Json::UInt(serial)),
                        ("taken", Json::Bool(taken)),
                        ("predicted", Json::Bool(predicted)),
                    ]),
                ));
            }
            TraceEvent::Stall {
                cycle,
                class,
                reason,
                slots,
                pc,
                ..
            } => {
                // Issued slots already render as Issue-stage events;
                // the stall track shows only lost bandwidth.
                if reason != crate::StallReason::Issued {
                    let mut args = vec![
                        ("class".to_string(), Json::Str(class.to_string())),
                        ("slots".to_string(), Json::UInt(slots.into())),
                    ];
                    if let Some(pc) = pc {
                        args.push(("pc".to_string(), Json::UInt(pc.into())));
                    }
                    self.events.push(complete(
                        reason.name().to_string(),
                        "stall",
                        cycle,
                        1,
                        PID_PIPELINE,
                        TID_STALL,
                        Json::Obj(args),
                    ));
                }
            }
            // Dependence records carry no renderable span of their own.
            TraceEvent::Dependence { .. } => {}
            TraceEvent::CycleSummary { cycle, window, .. } => {
                self.events.push(counter(
                    "window".to_string(),
                    cycle,
                    PID_UNITS,
                    "entries",
                    window as u64,
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_isa::{Case, Opcode};

    #[test]
    fn export_has_the_chrome_trace_shape() {
        let mut sink = ChromeTraceSink::new();
        assert!(sink.is_empty());
        sink.record(&TraceEvent::Stage {
            stage: Stage::Fetch,
            cycle: 3,
            serial: 0,
            opcode: Opcode::Add,
        });
        sink.record(&TraceEvent::Execute {
            cycle: 4,
            serial: 0,
            class: FuClass::IntAlu,
            module: 2,
            latency: 3,
            opcode: Opcode::Add,
        });
        sink.record(&TraceEvent::Steer {
            cycle: 4,
            serial: 0,
            class: FuClass::IntAlu,
            case: Case::C11,
            module: 2,
            swap: false,
            cost_bits: 9,
        });
        assert!(!sink.is_empty());
        let json = sink.into_json().pretty();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"ph\": \"M\""));
        assert!(json.contains("\"ts\": 3"));
        assert!(json.contains("\"dur\": 3"));
        assert!(json.contains("IALU.m2"));
        assert!(json.contains("case11"));
    }

    #[test]
    fn energy_events_become_cumulative_counters() {
        let mut sink = ChromeTraceSink::new();
        for bits in [5u32, 7] {
            sink.record(&TraceEvent::Energy {
                cycle: 1,
                serial: 0,
                pc: 0,
                class: FuClass::FpAlu,
                module: 0,
                case: Case::C00,
                bits,
            });
        }
        let json = sink.into_json().compact();
        assert!(json.contains("\"bits\":5"));
        assert!(json.contains("\"bits\":12"));
        assert!(json.contains("switched_bits.FPAU"));
    }

    #[test]
    fn workload_labels_with_quotes_and_controls_round_trip() {
        // A deliberately hostile workload name: quote, backslash, tab,
        // newline and a raw control byte. The exported document must
        // still parse, and the label must come back verbatim.
        let name = "he\"ll\\o\tworld\n\u{1}";
        let sink = ChromeTraceSink::for_workload(name);
        let doc = sink.into_json().compact();
        let parsed = Json::parse(&doc).expect("escaped export parses");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        let labels: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("process_name"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert_eq!(
            labels,
            [
                format!("pipeline [{name}]"),
                format!("functional units [{name}]")
            ]
        );
    }

    #[test]
    fn stall_events_render_on_the_stall_track_except_issued() {
        let mut sink = ChromeTraceSink::new();
        sink.record(&TraceEvent::Stall {
            cycle: 2,
            class: FuClass::IntAlu,
            reason: crate::StallReason::OperandWait,
            slots: 2,
            pc: Some(17),
            case: None,
        });
        sink.record(&TraceEvent::Stall {
            cycle: 2,
            class: FuClass::IntAlu,
            reason: crate::StallReason::Issued,
            slots: 1,
            pc: Some(3),
            case: None,
        });
        let doc = sink.into_json().compact();
        let parsed = Json::parse(&doc).expect("export parses");
        let events = parsed.get("traceEvents").and_then(Json::as_arr).unwrap();
        let stalls: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("cat").and_then(Json::as_str) == Some("stall"))
            .collect();
        assert_eq!(stalls.len(), 1, "issued slots stay off the stall track");
        assert_eq!(
            stalls[0].get("name").and_then(Json::as_str),
            Some("operand-wait")
        );
        assert_eq!(
            stalls[0]
                .get("args")
                .and_then(|a| a.get("pc"))
                .and_then(Json::as_u64),
            Some(17)
        );
    }

    #[test]
    fn harness_timeline_renders_workers_queue_and_arena_tracks() {
        let mut t = HarnessTimeline::new("bench");
        assert!(t.is_empty());
        t.worker_span(0, "telemetry", 0, 4, 15, 2_000, 9_000);
        t.worker_span(1, "telemetry", 4, 8, 11, 2_500, 8_000);
        t.worker_span(0, "", 8, 9, 1, 10_000, 10_100);
        t.arena_event("lease-fresh", 1_500);
        assert!(!t.is_empty());
        assert!(t.len() > 5);
        let doc = t.into_json().compact();
        let parsed = Json::parse(&doc).expect("harness export parses");
        let events = parsed.get("traceEvents").and_then(Json::as_arr).unwrap();
        // Worker threads named once each, plus the arena track.
        let threads: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert_eq!(threads, ["worker 0", "worker 1", "arena-pool"]);
        // Spans land on pid 3 with their claim-time queue depth.
        let spans: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("cat").and_then(Json::as_str) == Some("harness"))
            .collect();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].get("pid").and_then(Json::as_u64), Some(3));
        assert_eq!(spans[0].get("ts").and_then(Json::as_u64), Some(2));
        assert_eq!(spans[0].get("dur").and_then(Json::as_u64), Some(7));
        assert_eq!(
            spans[0]
                .get("args")
                .and_then(|a| a.get("queue_depth"))
                .and_then(Json::as_u64),
            Some(15)
        );
        // The empty stage label falls back to "chunk".
        assert_eq!(
            spans[2].get("name").and_then(Json::as_str),
            Some("chunk [8..9)")
        );
        // Queue-depth counter samples ride along.
        let counters = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("queue_depth"))
            .count();
        assert_eq!(counters, 3);
        // Arena events live on their own track.
        assert!(events.iter().any(|e| {
            e.get("cat").and_then(Json::as_str) == Some("arena")
                && e.get("name").and_then(Json::as_str) == Some("lease-fresh")
        }));
    }

    #[test]
    fn harness_labels_with_quotes_and_controls_round_trip() {
        // Stage and process labels are workload-derived; a hostile one
        // must survive the JSON layer verbatim (same contract as the
        // sim trace's process labels).
        let hostile = "st\"a\\ge\tx\n\u{1}";
        let mut t = HarnessTimeline::new(hostile);
        t.worker_span(0, hostile, 0, 1, 1, 0, 10);
        let doc = t.into_json().compact();
        let parsed = Json::parse(&doc).expect("escaped harness export parses");
        let events = parsed.get("traceEvents").and_then(Json::as_arr).unwrap();
        let process: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("process_name"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert_eq!(process, [format!("harness [{hostile}]")]);
        let span = events
            .iter()
            .find(|e| e.get("cat").and_then(Json::as_str) == Some("harness"))
            .expect("span present");
        assert_eq!(
            span.get("args")
                .and_then(|a| a.get("stage"))
                .and_then(Json::as_str),
            Some(hostile)
        );
    }

    #[test]
    fn harness_tracks_merge_into_a_sim_trace() {
        let mut sink = ChromeTraceSink::for_workload("espresso");
        sink.record(&TraceEvent::Stage {
            stage: Stage::Fetch,
            cycle: 3,
            serial: 0,
            opcode: Opcode::Add,
        });
        let mut t = HarnessTimeline::new("espresso");
        t.worker_span(2, "figure4", 0, 8, 8, 0, 5_000);
        let doc = t.merge_into(sink).compact();
        let parsed = Json::parse(&doc).expect("merged export parses");
        let events = parsed.get("traceEvents").and_then(Json::as_arr).unwrap();
        let pids: Vec<u64> = events
            .iter()
            .filter_map(|e| e.get("pid")?.as_u64())
            .collect();
        assert!(pids.contains(&1), "sim pipeline process present");
        assert!(pids.contains(&3), "harness process present");
    }

    #[test]
    fn zero_latency_operations_still_render() {
        let mut sink = ChromeTraceSink::new();
        sink.record(&TraceEvent::Execute {
            cycle: 0,
            serial: 1,
            class: FuClass::IntMul,
            module: 0,
            latency: 0,
            opcode: Opcode::Mul,
        });
        let json = sink.into_json().compact();
        assert!(json.contains("\"dur\":1"), "durations are clamped to ≥1");
    }
}
