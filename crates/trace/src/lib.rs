//! Cycle-level observability for the steering pipeline: structured trace
//! events, pluggable sinks, a metrics registry, and Chrome
//! trace-event/Perfetto export.
//!
//! The paper's argument is per-cycle — which module each ready
//! instruction is steered to and how many input bits toggle — so the
//! engine emits a [`TraceEvent`] at every pipeline stage, steering
//! decision, operand swap, cache access and energy-ledger charge. Sinks
//! implement [`TraceSink`]; the default [`NullSink`] sets
//! [`TraceSink::ENABLED`] to `false` so the monomorphised engine contains
//! no tracing code at all and the untraced hot path is unchanged.
//!
//! Shipped sinks:
//!
//! * [`RingBufferSink`] — bounded tail of the event stream for
//!   post-mortem inspection;
//! * [`MetricsRecorder`] — folds events into a [`MetricsRegistry`] of
//!   counters, gauges and fixed-bucket histograms (per-module switching,
//!   Hamming-distance and occupancy distributions);
//! * [`ChromeTraceSink`] — Chrome trace-event JSON that loads directly in
//!   Perfetto (`ui.perfetto.dev`) or `chrome://tracing`;
//! * [`WindowedSink`] — per-K-cycle interval telemetry whose column sums
//!   reproduce the final energy ledger exactly (CSV + Perfetto counter
//!   export);
//! * [`StallSink`] — the cycle-side twin of the energy attribution: an
//!   exact partition of every issue slot of every cycle into the
//!   [`StallReason`] taxonomy, keyed by culprit site;
//! * [`DepSink`] — per-instruction dependence/timing records for
//!   retirement critical-path extraction;
//! * [`VecSink`] — unbounded capture for tests;
//! * tuples `(A, B)` — fan-out to several sinks at once.
//!
//! Beyond the sinks, the crate renders a [`MetricsRegistry`] as the
//! OpenMetrics text exposition ([`render_openmetrics`], the `/metrics`
//! wire format) and exports **harness** worker timelines
//! ([`HarnessTimeline`]) as a third Perfetto process next to the
//! simulated pipeline and functional units.
//!
//! This crate also hosts the workspace's dependency-free JSON emitter
//! ([`Json`]/[`ToJson`]), which moved here from `fua-core` so sinks can
//! serialise without a dependency cycle through the experiment layer,
//! and its matching parser ([`Json::parse`]) used by the baseline-
//! comparison tooling in `fua-report`.
//!
//! # Examples
//!
//! ```
//! use fua_trace::{MetricsRecorder, RingBufferSink, ToJson, TraceEvent, TraceSink};
//!
//! let mut sink = (RingBufferSink::new(1024), MetricsRecorder::new());
//! sink.record(&TraceEvent::CycleSummary { cycle: 0, window: 4, issued: 2 });
//! assert_eq!(sink.0.recorded(), 1);
//! assert!(sink.1.registry().to_json().pretty().contains("window.occupancy"));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod event;
mod json;
mod metrics;
mod openmetrics;
mod parse;
mod perfetto;
mod recorder;
mod ring;
mod stall;
mod windowed;

pub use event::{NullSink, Stage, StallReason, SwapKind, TraceEvent, TraceSink, VecSink};
pub use json::{Json, ToJson};
pub use metrics::{Histogram, Metric, MetricId, MetricsRegistry};
pub use openmetrics::{escape_label_value, metric_name, render_openmetrics, sanitize_name};
pub use parse::JsonParseError;
pub use perfetto::{ChromeTraceSink, HarnessTimeline};
pub use recorder::MetricsRecorder;
pub use ring::RingBufferSink;
pub use stall::{DepRecord, DepSink, StallKey, StallSink};
pub use windowed::{WindowRecord, WindowedSeries, WindowedSink, MAX_MODULES};
