//! OpenMetrics text-exposition serializer for [`MetricsRegistry`].
//!
//! Renders every registered counter, gauge and histogram as the
//! OpenMetrics text format (the `/metrics` wire format Prometheus
//! scrapes), ending with the mandatory `# EOF` marker. Dependency-free,
//! like the rest of the workspace: the format is lines of
//! `name{label="value"} number`, so no machinery beyond careful
//! escaping is needed.
//!
//! Registry names map onto OpenMetrics as follows:
//!
//! * A name may carry a label block composed by [`metric_name`]
//!   (`base{key="value"}`); everything before the first `{` is the
//!   family name, the rest is passed through (it was escaped at
//!   composition time).
//! * Family names are sanitized to the OpenMetrics charset
//!   (`[a-zA-Z0-9_:]`, not starting with a digit) — the registry's
//!   dotted names like `ham.IALU.m0` become `ham_IALU_m0`.
//! * Entries whose sanitized family collides (`a.b` vs `a_b`, or equal
//!   bases with different labels) merge under a single `# TYPE` header;
//!   the first-registered entry decides the family's declared type.
//! * Counters expose the mandatory `_total` sample suffix; histograms
//!   expose cumulative `_bucket{le=...}` series plus `_count`/`_sum`,
//!   with the `+Inf` bucket equal to `_count` as the spec requires.
//!
//! Label *values* escape `\`, `"` and newline per the OpenMetrics ABNF;
//! [`metric_name`] applies that escaping so workload-derived strings
//! can never break the exposition.

use crate::{Metric, MetricsRegistry};

/// Composes a registry metric name with a label block:
/// `base{key="value",...}`. Keys are sanitized to the OpenMetrics
/// label charset; values get ABNF escaping (`\\`, `\"`, `\n`). With no
/// labels the base is returned unchanged.
pub fn metric_name(base: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return base.to_string();
    }
    let mut out = String::with_capacity(base.len() + 16 * labels.len());
    out.push_str(base);
    out.push('{');
    for (i, (key, value)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&sanitize_name(key));
        out.push_str("=\"");
        out.push_str(&escape_label_value(value));
        out.push('"');
    }
    out.push('}');
    out
}

/// Escapes a label value per the OpenMetrics ABNF: backslash, double
/// quote and line feed become `\\`, `\"` and `\n`.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Maps an arbitrary string onto the OpenMetrics metric-name charset:
/// every character outside `[a-zA-Z0-9_:]` becomes `_`, and a leading
/// digit gets a `_` prefix. Empty input becomes `_`.
pub fn sanitize_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.is_empty() {
        out.push('_');
    }
    if out.as_bytes()[0].is_ascii_digit() {
        out.insert(0, '_');
    }
    out
}

/// Splits a registry name into its sanitized family name and its
/// (already-escaped) label block body, if any.
fn split_name(name: &str) -> (String, Option<&str>) {
    match name.split_once('{') {
        Some((base, rest)) => {
            let labels = rest.strip_suffix('}').unwrap_or(rest);
            (sanitize_name(base), Some(labels))
        }
        None => (sanitize_name(name), None),
    }
}

/// Joins a label block body with one extra label (`le` for histogram
/// buckets) into a full `{...}` block.
fn label_block(labels: Option<&str>, extra: Option<&str>) -> String {
    match (labels.filter(|l| !l.is_empty()), extra) {
        (None, None) => String::new(),
        (Some(l), None) => format!("{{{l}}}"),
        (None, Some(e)) => format!("{{{e}}}"),
        (Some(l), Some(e)) => format!("{{{l},{e}}}"),
    }
}

/// Formats a gauge value: finite floats in plain decimal, the spec
/// spellings for infinities and NaN.
fn format_float(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        let s = format!("{v}");
        // OpenMetrics numbers are fine without a decimal point, but a
        // gauge rendered "3" round-trips as an integer; keep floats
        // recognisably floaty.
        if s.contains('.') || s.contains('e') || s.contains('-') {
            s
        } else {
            format!("{s}.0")
        }
    }
}

fn type_keyword(metric: &Metric) -> &'static str {
    match metric {
        Metric::Counter(_) => "counter",
        Metric::Gauge(_) => "gauge",
        Metric::Histogram(_) => "histogram",
    }
}

/// Renders the registry as an OpenMetrics text exposition, terminated
/// by `# EOF`. An empty registry renders as just the terminator.
pub fn render_openmetrics(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    // One `# TYPE` header per family (first registration wins), even
    // when several registry entries — different label sets, or dotted
    // names that sanitize identically — share the family.
    let mut declared: Vec<String> = Vec::new();
    for (name, metric) in registry.iter() {
        let (family, labels) = split_name(name);
        // Counters declare the family without the `_total` suffix.
        let family = match metric {
            Metric::Counter(_) => family
                .strip_suffix("_total")
                .map(str::to_string)
                .unwrap_or(family),
            _ => family,
        };
        if !declared.iter().any(|f| f == &family) {
            declared.push(family.clone());
            out.push_str(&format!("# TYPE {family} {}\n", type_keyword(metric)));
        }
        match metric {
            Metric::Counter(v) => {
                out.push_str(&format!(
                    "{family}_total{} {v}\n",
                    label_block(labels, None)
                ));
            }
            Metric::Gauge(v) => {
                out.push_str(&format!(
                    "{family}{} {}\n",
                    label_block(labels, None),
                    format_float(*v)
                ));
            }
            Metric::Histogram(h) => {
                let mut cumulative = 0u64;
                for (le, count) in h.buckets() {
                    cumulative += count;
                    let le = match le {
                        Some(b) => format!("le=\"{b}\""),
                        None => "le=\"+Inf\"".to_string(),
                    };
                    out.push_str(&format!(
                        "{family}_bucket{} {cumulative}\n",
                        label_block(labels, Some(&le))
                    ));
                }
                out.push_str(&format!(
                    "{family}_count{} {}\n",
                    label_block(labels, None),
                    h.count()
                ));
                out.push_str(&format!(
                    "{family}_sum{} {}\n",
                    label_block(labels, None),
                    h.sum()
                ));
            }
        }
    }
    out.push_str("# EOF\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_registry_is_just_the_terminator() {
        assert_eq!(render_openmetrics(&MetricsRegistry::new()), "# EOF\n");
    }

    #[test]
    fn counters_expose_the_total_suffix() {
        let mut m = MetricsRegistry::new();
        let id = m.counter("sw.bits");
        m.add(id, 42);
        let text = render_openmetrics(&m);
        assert!(text.contains("# TYPE sw_bits counter\n"));
        assert!(text.contains("sw_bits_total 42\n"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn a_counter_already_named_total_is_not_doubled() {
        let mut m = MetricsRegistry::new();
        let id = m.counter("requests_total");
        m.add(id, 1);
        let text = render_openmetrics(&m);
        assert!(text.contains("# TYPE requests counter\n"));
        assert!(text.contains("requests_total 1\n"));
        assert!(!text.contains("requests_total_total"));
    }

    #[test]
    fn gauges_render_as_floats_with_spec_spellings() {
        let mut m = MetricsRegistry::new();
        let g = m.gauge("busy");
        m.set(g, 0.875);
        let whole = m.gauge("whole");
        m.set(whole, 3.0);
        let text = render_openmetrics(&m);
        assert!(text.contains("# TYPE busy gauge\n"));
        assert!(text.contains("busy 0.875\n"));
        assert!(text.contains("whole 3.0\n"));
        assert_eq!(format_float(f64::INFINITY), "+Inf");
        assert_eq!(format_float(f64::NEG_INFINITY), "-Inf");
        assert_eq!(format_float(f64::NAN), "NaN");
    }

    #[test]
    fn histograms_are_cumulative_with_an_inf_bucket() {
        let mut m = MetricsRegistry::new();
        let h = m.histogram("depth", &[1, 4]);
        for v in [0, 1, 2, 9] {
            m.observe(h, v);
        }
        let text = render_openmetrics(&m);
        assert!(text.contains("# TYPE depth histogram\n"));
        assert!(text.contains("depth_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("depth_bucket{le=\"4\"} 3\n"));
        assert!(text.contains("depth_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("depth_count 4\n"));
        assert!(text.contains("depth_sum 12\n"));
    }

    #[test]
    fn labels_compose_and_escape_per_the_abnf() {
        let hostile = "he\"ll\\o\nworld";
        let name = metric_name("fua.worker busy", &[("stage", hostile), ("worker", "0")]);
        let mut m = MetricsRegistry::new();
        let g = m.gauge(&name);
        m.set(g, 1.5);
        let text = render_openmetrics(&m);
        assert!(
            text.contains("fua_worker_busy{stage=\"he\\\"ll\\\\o\\nworld\",worker=\"0\"} 1.5\n"),
            "got: {text}"
        );
        // The exposition itself stays line-structured: no raw newline
        // or unescaped quote survives inside a label value.
        for line in text.lines() {
            assert!(line.len() < 200);
        }

        // Histograms splice `le` after the caller's labels.
        let mut m = MetricsRegistry::new();
        let h = m.histogram(&metric_name("queue", &[("stage", "telemetry")]), &[2]);
        m.observe(h, 1);
        let text = render_openmetrics(&m);
        assert!(text.contains("queue_bucket{stage=\"telemetry\",le=\"2\"} 1\n"));
        assert!(text.contains("queue_count{stage=\"telemetry\"} 1\n"));
    }

    #[test]
    fn colliding_sanitized_families_share_one_type_header() {
        let mut m = MetricsRegistry::new();
        let a = m.counter("a.b");
        m.add(a, 1);
        let b = m.counter("a_b");
        m.add(b, 2);
        let text = render_openmetrics(&m);
        assert_eq!(
            text.matches("# TYPE a_b counter").count(),
            1,
            "one family header for colliding names: {text}"
        );
        assert_eq!(text.matches("a_b_total").count(), 2, "both samples kept");
    }

    #[test]
    fn names_sanitize_to_the_openmetrics_charset() {
        assert_eq!(sanitize_name("ham.IALU.m0"), "ham_IALU_m0");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name(""), "_");
        assert_eq!(sanitize_name("ok:name_1"), "ok:name_1");
        assert_eq!(sanitize_name("spaß"), "spa_");
    }
}
