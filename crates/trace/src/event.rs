//! The structured event model and the sink contract.

use fua_isa::{Case, FuClass, Opcode};

/// A pipeline stage an instruction can enter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Pulled from the dynamic instruction source.
    Fetch,
    /// Decoded/renamed into the instruction window.
    Decode,
    /// Selected for issue to a functional unit.
    Issue,
    /// Executing on a functional-unit module.
    Execute,
    /// Result written back (completion).
    Writeback,
    /// Committed in program order.
    Retire,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::Fetch,
        Stage::Decode,
        Stage::Issue,
        Stage::Execute,
        Stage::Writeback,
        Stage::Retire,
    ];

    /// A short lowercase name ("fetch", "issue", ...).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Fetch => "fetch",
            Stage::Decode => "decode",
            Stage::Issue => "issue",
            Stage::Execute => "execute",
            Stage::Writeback => "writeback",
            Stage::Retire => "retire",
        }
    }
}

/// What one issue slot of one cycle was spent on.
///
/// The taxonomy is an **exact partition** of the machine's issue
/// bandwidth: every cycle offers `issue_width` slots (one per FU
/// module), and the engine classifies each slot into exactly one
/// reason, so summed [`Stall`](TraceEvent::Stall) slot counts equal
/// `cycles × issue_width` bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StallReason {
    /// The slot issued an instruction.
    Issued,
    /// No instruction of the slot's class was available: the frontend
    /// had nothing to deliver (source drained or fetch bandwidth).
    FetchStarved,
    /// The frontend is squashed behind an unresolved (or still
    /// penalised) mispredicted branch.
    BranchRecovery,
    /// Dispatch is blocked because the instruction window (ROB) is full.
    RobFull,
    /// Dispatch is blocked because a reservation station is full; the
    /// culprit PC names the parked instruction (whose class's RS
    /// overflowed).
    RsFull,
    /// A candidate of the slot's class is waiting on operands.
    OperandWait,
    /// A ready candidate could not issue: every module of its class was
    /// taken this cycle, or the memory ports were exhausted.
    FuBusy,
    /// A candidate was blocked purely by the in-order issue prefix rule
    /// (the only steering-induced issue delay in this model — the
    /// paper's policies themselves never reject an assignment).
    SteeringDelay,
}

impl StallReason {
    /// Every reason, in taxonomy order (the stall-mix array order).
    pub const ALL: [StallReason; 8] = [
        StallReason::Issued,
        StallReason::FetchStarved,
        StallReason::BranchRecovery,
        StallReason::RobFull,
        StallReason::RsFull,
        StallReason::OperandWait,
        StallReason::FuBusy,
        StallReason::SteeringDelay,
    ];

    /// Position in [`StallReason::ALL`] (stall-mix array index).
    pub fn index(self) -> usize {
        self as usize
    }

    /// A short lowercase name ("issued", "operand-wait", ...).
    pub fn name(self) -> &'static str {
        match self {
            StallReason::Issued => "issued",
            StallReason::FetchStarved => "fetch-starved",
            StallReason::BranchRecovery => "branch-recovery",
            StallReason::RobFull => "rob-full",
            StallReason::RsFull => "rs-full",
            StallReason::OperandWait => "operand-wait",
            StallReason::FuBusy => "fu-busy",
            StallReason::SteeringDelay => "steering-delay",
        }
    }
}

/// Which mechanism exchanged an instruction's operand ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SwapKind {
    /// The static hardware rule (paper Section 4.4).
    Rule,
    /// A cost-based steering policy's per-assignment swap.
    Policy,
    /// The multiplier swap rule.
    Multiplier,
}

impl SwapKind {
    /// A short lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            SwapKind::Rule => "rule",
            SwapKind::Policy => "policy",
            SwapKind::Multiplier => "multiplier",
        }
    }
}

/// One cycle-stamped event from the steering pipeline.
///
/// Every variant carries the cycle it happened in, so sinks never need
/// engine state; a [`Writeback`](Stage::Writeback) stage event may carry
/// a *future* cycle (the engine knows an operation's completion cycle at
/// issue time and emits the event eagerly). Events of one run are emitted
/// in a deterministic order: same program + same configuration ⇒ the
/// byte-identical event stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// An instruction entered a pipeline stage.
    Stage {
        /// The stage entered.
        stage: Stage,
        /// Cycle of entry.
        cycle: u64,
        /// Dynamic program-order serial of the instruction.
        serial: u64,
        /// The instruction's opcode.
        opcode: Opcode,
    },
    /// A steering decision for one instruction on a duplicated FU class.
    Steer {
        /// Cycle of the decision.
        cycle: u64,
        /// Dynamic serial of the steered instruction.
        serial: u64,
        /// The duplicated FU class.
        class: FuClass,
        /// The instruction's information-bit case (00/01/10/11) as
        /// presented to the policy (post rule-swap, pre policy-swap).
        case: Case,
        /// The module the instruction was steered to.
        module: u8,
        /// Whether the policy swapped the operand ports.
        swap: bool,
        /// Switched input bits this placement cost (Hamming distance
        /// from the module's previously latched operands).
        cost_bits: u32,
    },
    /// An operand-port exchange.
    OperandSwap {
        /// Cycle of the swap.
        cycle: u64,
        /// Dynamic serial of the swapped instruction.
        serial: u64,
        /// The FU class executing the instruction.
        class: FuClass,
        /// Which mechanism swapped.
        kind: SwapKind,
    },
    /// An energy-ledger delta: one operation latched onto a module.
    ///
    /// Carries full provenance — the dynamic serial, the static program
    /// counter and the information-bit case of the issuing instruction —
    /// so attribution sinks can partition the ledger by static site
    /// without any engine state.
    Energy {
        /// Cycle of the charge.
        cycle: u64,
        /// Dynamic serial of the issuing instruction.
        serial: u64,
        /// Static program counter (instruction index) of the issuing
        /// instruction.
        pc: u32,
        /// The FU class charged.
        class: FuClass,
        /// The module whose input latches toggled.
        module: u8,
        /// The instruction's information-bit case (post rule-swap, pre
        /// policy-swap — the same view a [`TraceEvent::Steer`] reports).
        case: Case,
        /// Switched input bits charged to the ledger.
        bits: u32,
    },
    /// An operation occupying a functional-unit module.
    Execute {
        /// Issue cycle.
        cycle: u64,
        /// Dynamic serial of the executing instruction.
        serial: u64,
        /// The FU class.
        class: FuClass,
        /// The executing module.
        module: u8,
        /// Execution latency in cycles (≥ 1).
        latency: u64,
        /// The instruction's opcode.
        opcode: Opcode,
    },
    /// A data-cache access.
    Cache {
        /// Cycle of the access.
        cycle: u64,
        /// Dynamic serial of the load/store.
        serial: u64,
        /// Byte address accessed.
        addr: u32,
        /// Whether the access hit.
        hit: bool,
        /// Access latency in cycles.
        latency: u64,
    },
    /// A conditional branch resolved at dispatch.
    Branch {
        /// Cycle of resolution.
        cycle: u64,
        /// Dynamic serial of the branch.
        serial: u64,
        /// The architectural outcome.
        taken: bool,
        /// The predictor's guess.
        predicted: bool,
    },
    /// One group of same-reason issue slots in one cycle.
    ///
    /// Emitted from the issue stage so that, per cycle and FU class,
    /// the `slots` of all `Stall` events sum to the class's module
    /// count — the exact-partition contract [`StallReason`] documents.
    /// Issued and blocked-candidate slots are emitted one event per
    /// instruction (`slots == 1`, `pc == Some(..)`); frontend-caused
    /// idle slots are aggregated per class with the culprit's PC
    /// (`None` when fetch-starved with no culprit instruction).
    Stall {
        /// The cycle the slots belong to.
        cycle: u64,
        /// The FU class owning the slots.
        class: FuClass,
        /// What the slots were spent on.
        reason: StallReason,
        /// How many slots this event accounts for (≥ 1).
        slots: u32,
        /// Static PC of the culprit instruction: the issued or blocked
        /// candidate itself, the blocking branch, the window head
        /// (ROB-full) or the parked instruction (RS-full).
        pc: Option<u32>,
        /// The culprit's information-bit case where one exists (issued
        /// slots report the steering view, blocked candidates their
        /// pre-swap operands; frontend reasons carry `None`).
        case: Option<Case>,
    },
    /// Rename-time dependence record: the producing serials an
    /// instruction waits on, for retirement critical-path extraction.
    Dependence {
        /// Dispatch cycle.
        cycle: u64,
        /// Dynamic serial of the dispatched instruction.
        serial: u64,
        /// Static program counter of the instruction.
        pc: u32,
        /// Producer serial feeding the first source operand, if any.
        dep1: Option<u64>,
        /// Producer serial feeding the second source operand, if any.
        dep2: Option<u64>,
    },
    /// End-of-cycle summary (window occupancy and issue width).
    CycleSummary {
        /// The cycle summarised.
        cycle: u64,
        /// Instruction-window occupancy at end of cycle.
        window: u32,
        /// Instructions issued this cycle across all FU classes.
        issued: u32,
    },
}

impl TraceEvent {
    /// The cycle the event is stamped with.
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::Stage { cycle, .. }
            | TraceEvent::Steer { cycle, .. }
            | TraceEvent::OperandSwap { cycle, .. }
            | TraceEvent::Energy { cycle, .. }
            | TraceEvent::Execute { cycle, .. }
            | TraceEvent::Cache { cycle, .. }
            | TraceEvent::Branch { cycle, .. }
            | TraceEvent::Stall { cycle, .. }
            | TraceEvent::Dependence { cycle, .. }
            | TraceEvent::CycleSummary { cycle, .. } => cycle,
        }
    }
}

/// Receives [`TraceEvent`]s from an instrumented engine.
///
/// The engine is generic over its sink and monomorphises per sink type,
/// so a sink whose [`ENABLED`](TraceSink::ENABLED) is `false` costs
/// nothing: every `if S::ENABLED { sink.record(..) }` hook compiles to
/// dead code the optimiser removes, including the event construction.
/// Implementations must be deterministic if they are used for
/// reproducibility checks — no clocks, no randomness.
pub trait TraceSink {
    /// Whether the engine should construct and deliver events at all.
    /// Leave at the default `true` for real sinks; only no-op sinks such
    /// as [`NullSink`] set it to `false`.
    const ENABLED: bool = true;

    /// Records one event.
    fn record(&mut self, event: &TraceEvent);
}

/// The default sink: drops everything, costs nothing.
///
/// Because [`TraceSink::ENABLED`] is `false`, an engine monomorphised
/// over `NullSink` contains no tracing code at all — the hooks are
/// compile-time `if false` blocks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _event: &TraceEvent) {}
}

/// Fan-out: a pair of sinks receives every event in order (first `A`,
/// then `B`). Nest pairs for wider fan-out: `(a, (b, c))`.
impl<A: TraceSink, B: TraceSink> TraceSink for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline]
    fn record(&mut self, event: &TraceEvent) {
        if A::ENABLED {
            self.0.record(event);
        }
        if B::ENABLED {
            self.1.record(event);
        }
    }
}

/// Collects events into a growable `Vec` (unbounded; prefer
/// [`RingBufferSink`](crate::RingBufferSink) for long runs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VecSink {
    /// Every recorded event, in order.
    pub events: Vec<TraceEvent>,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, event: &TraceEvent) {
        self.events.push(*event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent::CycleSummary {
            cycle,
            window: 1,
            issued: 0,
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn null_sink_is_disabled() {
        assert!(!NullSink::ENABLED);
        // A pair containing only disabled sinks stays disabled.
        assert!(!<(NullSink, NullSink) as TraceSink>::ENABLED);
        assert!(<(VecSink, NullSink) as TraceSink>::ENABLED);
    }

    #[test]
    fn pair_fans_out_in_order() {
        let mut pair = (VecSink::new(), VecSink::new());
        pair.record(&ev(1));
        pair.record(&ev(2));
        assert_eq!(pair.0.events, pair.1.events);
        assert_eq!(pair.0.events.len(), 2);
        assert_eq!(pair.0.events[1].cycle(), 2);
    }

    #[test]
    fn stall_reasons_index_their_order() {
        for (i, reason) in StallReason::ALL.iter().enumerate() {
            assert_eq!(reason.index(), i);
        }
        assert_eq!(StallReason::Issued.name(), "issued");
        assert_eq!(StallReason::SteeringDelay.name(), "steering-delay");
    }

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<_> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            ["fetch", "decode", "issue", "execute", "writeback", "retire"]
        );
    }
}
