//! Cycle attribution sinks: the exact stall-slot partition and the
//! dependence records critical-path extraction consumes.
//!
//! [`StallSink`] mirrors the energy `AttributionSink` design: every
//! [`Stall`](crate::TraceEvent::Stall) event lands in exactly one
//! [`StallKey`] bucket of a `BTreeMap`, so totals reassemble the
//! machine's issue bandwidth bit-for-bit (`cycles × issue_width`
//! slots), and [`merge`](StallSink::merge) is key-ordered addition —
//! per-workload sinks merged in index order reproduce a serial pass
//! exactly, which is what makes `fua profile-cycles --jobs N`
//! byte-identical to `--jobs 1`.

use std::collections::BTreeMap;

use fua_isa::{Case, FuClass};

use crate::{StallReason, TraceEvent, TraceSink};

/// One stall-slot charge site: the culprit PC (if any), the FU class
/// owning the slot, the taxonomy reason, and the culprit's
/// information-bit case where one exists.
///
/// Derived `Ord` makes map iteration — and therefore every rendered
/// table and export — deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StallKey {
    /// Static PC of the culprit instruction (`None` = fetch-starved
    /// with no culprit).
    pub pc: Option<u32>,
    /// The FU class the slots belong to.
    pub class: FuClass,
    /// What the slots were spent on.
    pub reason: StallReason,
    /// The culprit's information-bit case, where one exists.
    pub case: Option<Case>,
}

/// Accumulates the stall-slot partition of a run: every issue slot of
/// every cycle counted in exactly one [`StallKey`] bucket.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StallSink {
    sites: BTreeMap<StallKey, u64>,
    total_slots: u64,
}

impl StallSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The per-site slot counts, keyed deterministically.
    pub fn sites(&self) -> &BTreeMap<StallKey, u64> {
        &self.sites
    }

    /// Total slots accounted across every site — must equal
    /// `cycles × issue_width` for an instrumented run (the
    /// exact-partition invariant).
    pub fn total_slots(&self) -> u64 {
        self.total_slots
    }

    /// Slot totals per [`StallReason`], in [`StallReason::ALL`] order.
    pub fn reason_totals(&self) -> [u64; 8] {
        let mut totals = [0u64; 8];
        for (key, &slots) in &self.sites {
            totals[key.reason.index()] += slots;
        }
        totals
    }

    /// Adds another sink's counts into this one. Key-ordered addition:
    /// merging per-workload sinks in index order reproduces the sink a
    /// serial pass over the same cells would have produced.
    pub fn merge(&mut self, other: &StallSink) {
        for (key, &slots) in &other.sites {
            *self.sites.entry(*key).or_default() += slots;
        }
        self.total_slots += other.total_slots;
    }
}

impl TraceSink for StallSink {
    fn record(&mut self, event: &TraceEvent) {
        if let TraceEvent::Stall {
            class,
            reason,
            slots,
            pc,
            case,
            ..
        } = *event
        {
            let key = StallKey {
                pc,
                class,
                reason,
                case,
            };
            *self.sites.entry(key).or_default() += u64::from(slots);
            self.total_slots += u64::from(slots);
        }
    }
}

/// One instruction's lifecycle record assembled by [`DepSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepRecord {
    /// Dynamic program-order serial.
    pub serial: u64,
    /// Static program counter.
    pub pc: u32,
    /// Dispatch (rename) cycle.
    pub dispatch_cycle: u64,
    /// Issue cycle (`None` for instructions with no FU — they complete
    /// the cycle after dispatch without issuing).
    pub issue_cycle: Option<u64>,
    /// Completion cycle.
    pub done_cycle: u64,
    /// Producer serials feeding the source operands.
    pub deps: [Option<u64>; 2],
}

/// Collects per-instruction dependence and timing records, one per
/// dynamic instruction, for retirement critical-path extraction.
///
/// Records are stored in serial order (dispatch is in program order),
/// so [`records`](DepSink::records) indexes by serial directly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DepSink {
    records: Vec<DepRecord>,
}

impl DepSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Every record, in dynamic-serial order.
    pub fn records(&self) -> &[DepRecord] {
        &self.records
    }

    /// The record for a dynamic serial, if it was dispatched.
    pub fn record_of(&self, serial: u64) -> Option<&DepRecord> {
        self.records.get(serial as usize)
    }
}

impl TraceSink for DepSink {
    fn record(&mut self, event: &TraceEvent) {
        match *event {
            TraceEvent::Dependence {
                cycle,
                serial,
                pc,
                dep1,
                dep2,
            } => {
                debug_assert_eq!(serial as usize, self.records.len());
                self.records.push(DepRecord {
                    serial,
                    pc,
                    dispatch_cycle: cycle,
                    issue_cycle: None,
                    done_cycle: cycle + 1,
                    deps: [dep1, dep2],
                });
            }
            TraceEvent::Execute { cycle, serial, .. } => {
                if let Some(rec) = self.records.get_mut(serial as usize) {
                    rec.issue_cycle = Some(cycle);
                }
            }
            TraceEvent::Stage {
                stage: crate::Stage::Writeback,
                cycle,
                serial,
                ..
            } => {
                if let Some(rec) = self.records.get_mut(serial as usize) {
                    rec.done_cycle = cycle;
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stall(cycle: u64, reason: StallReason, slots: u32, pc: Option<u32>) -> TraceEvent {
        TraceEvent::Stall {
            cycle,
            class: FuClass::IntAlu,
            reason,
            slots,
            pc,
            case: None,
        }
    }

    #[test]
    fn stall_sink_partitions_slots_by_site() {
        let mut sink = StallSink::new();
        sink.record(&stall(0, StallReason::Issued, 1, Some(3)));
        sink.record(&stall(0, StallReason::FetchStarved, 3, None));
        sink.record(&stall(1, StallReason::Issued, 1, Some(3)));
        assert_eq!(sink.total_slots(), 5);
        assert_eq!(sink.sites().len(), 2);
        let totals = sink.reason_totals();
        assert_eq!(totals[StallReason::Issued.index()], 2);
        assert_eq!(totals[StallReason::FetchStarved.index()], 3);
    }

    #[test]
    fn merge_is_key_ordered_addition() {
        let mut a = StallSink::new();
        a.record(&stall(0, StallReason::Issued, 1, Some(7)));
        let mut b = StallSink::new();
        b.record(&stall(1, StallReason::OperandWait, 2, Some(2)));
        b.record(&stall(1, StallReason::Issued, 1, Some(7)));
        let mut merged = a.clone();
        merged.merge(&b);

        let mut serial = StallSink::new();
        serial.record(&stall(0, StallReason::Issued, 1, Some(7)));
        serial.record(&stall(1, StallReason::OperandWait, 2, Some(2)));
        serial.record(&stall(1, StallReason::Issued, 1, Some(7)));
        assert_eq!(merged, serial);
        assert_eq!(merged.total_slots(), 4);
    }

    #[test]
    fn dep_sink_assembles_lifecycle_records() {
        let mut sink = DepSink::new();
        sink.record(&TraceEvent::Dependence {
            cycle: 0,
            serial: 0,
            pc: 0,
            dep1: None,
            dep2: None,
        });
        sink.record(&TraceEvent::Dependence {
            cycle: 0,
            serial: 1,
            pc: 1,
            dep1: Some(0),
            dep2: None,
        });
        sink.record(&TraceEvent::Execute {
            cycle: 2,
            serial: 1,
            class: FuClass::IntAlu,
            module: 0,
            latency: 1,
            opcode: fua_isa::Opcode::Add,
        });
        sink.record(&TraceEvent::Stage {
            stage: crate::Stage::Writeback,
            cycle: 3,
            serial: 1,
            opcode: fua_isa::Opcode::Add,
        });
        let rec = sink.record_of(1).unwrap();
        assert_eq!(rec.deps, [Some(0), None]);
        assert_eq!(rec.issue_cycle, Some(2));
        assert_eq!(rec.done_cycle, 3);
        assert_eq!(sink.record_of(0).unwrap().issue_cycle, None);
    }
}
