//! Dependency-free JSON emission.
//!
//! The build environment has no network access, so the workspace cannot
//! depend on `serde`/`serde_json`. Reports, metrics snapshots and trace
//! exports are small-to-medium trees of numbers and strings; this module
//! gives them a tiny value type ([`Json`]) with pretty and compact
//! printers, and a [`ToJson`] trait implemented by hand. Output matches
//! `serde_json`'s pretty format (two-space indent) for the shapes used
//! here; compact output matches `serde_json::to_string` except for a
//! space after `:` in pretty mode only.
//!
//! This module used to live in `fua-core`; it moved down the stack so the
//! trace sinks (which `fua-sim` depends on) can emit JSON without a
//! dependency cycle through the experiment layer.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (kept exact; floats cannot hold all u64s).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float. Non-finite values render as `null`, as `serde_json`
    /// does for its lossy modes — JSON has no NaN/Inf.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<const N: usize>(fields: [(&str, Json); N]) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Builds an array by converting each element.
    pub fn arr<T: ToJson>(items: &[T]) -> Json {
        Json::Arr(items.iter().map(ToJson::to_json).collect())
    }

    /// Pretty-prints with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, true);
        out
    }

    /// Prints without any whitespace (for large machine-read files such
    /// as Chrome trace exports).
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        out
    }

    fn write(&self, out: &mut String, indent: usize, pretty: bool) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => write_float(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        newline(out, indent + 1);
                    }
                    item.write(out, indent + 1, pretty);
                }
                if pretty {
                    newline(out, indent);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        newline(out, indent + 1);
                    }
                    write_escaped(out, key);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    value.write(out, indent + 1, pretty);
                }
                if pretty {
                    newline(out, indent);
                }
                out.push('}');
            }
        }
    }
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Renders a float the way `serde_json` (via `ryu`) does: shortest
/// round-trip representation, with a `.0` appended when the shortest form
/// has neither fraction nor exponent — so `1.0` renders as `"1.0"`, not
/// `"1"`, and `-0.0` keeps its sign as `"-0.0"`.
fn write_float(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let s = v.to_string();
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.pretty())
    }
}

/// Conversion into a [`Json`] tree. Implemented by every report the
/// CLI can emit with `--json` and by the observability snapshots.
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::UInt(*self)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::UInt(*self as u64)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_as_json() {
        assert_eq!(Json::Null.pretty(), "null");
        assert_eq!(Json::Bool(true).pretty(), "true");
        assert_eq!(Json::UInt(u64::MAX).pretty(), u64::MAX.to_string());
        assert_eq!(Json::Int(-5).pretty(), "-5");
        assert_eq!(Json::Float(17.5).pretty(), "17.5");
        assert_eq!(Json::Float(f64::NAN).pretty(), "null");
        assert_eq!(Json::Float(f64::INFINITY).pretty(), "null");
        assert_eq!(Json::Float(f64::NEG_INFINITY).pretty(), "null");
    }

    #[test]
    fn whole_floats_keep_a_fraction_like_serde_json() {
        // serde_json (ryu) prints integral floats with a trailing `.0`.
        assert_eq!(Json::Float(1.0).pretty(), "1.0");
        assert_eq!(Json::Float(0.0).pretty(), "0.0");
        assert_eq!(Json::Float(-17.0).pretty(), "-17.0");
        assert_eq!(Json::Float(1e6).pretty(), "1000000.0");
    }

    #[test]
    fn negative_zero_keeps_its_sign() {
        assert_eq!(Json::Float(-0.0).pretty(), "-0.0");
    }

    #[test]
    fn subnormals_and_extremes_round_trip() {
        // Smallest positive subnormal and f64::MAX use e-notation, which
        // needs no `.0` suffix; both must parse back to the same value.
        for v in [
            f64::MIN_POSITIVE, // smallest normal
            5e-324,            // smallest subnormal
            -5e-324,
            f64::MAX,
            f64::MIN,
            1e-310, // another subnormal
        ] {
            let s = Json::Float(v).pretty();
            let back: f64 = s.parse().expect("rendered float parses");
            assert_eq!(back, v, "{s} did not round-trip");
        }
    }

    #[test]
    fn strings_are_escaped() {
        let s = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(s.pretty(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn control_characters_escape_as_unicode() {
        // Everything below 0x20 must be escaped; \n \r \t get short
        // forms, the rest \u00XX — exactly serde_json's behaviour.
        for c in (0u32..0x20).filter_map(char::from_u32) {
            let rendered = Json::Str(c.to_string()).pretty();
            let expected = match c {
                '\n' => "\"\\n\"".to_string(),
                '\r' => "\"\\r\"".to_string(),
                '\t' => "\"\\t\"".to_string(),
                c => format!("\"\\u{:04x}\"", c as u32),
            };
            assert_eq!(rendered, expected, "control char {:#x}", c as u32);
        }
    }

    #[test]
    fn non_ascii_passes_through_unescaped() {
        // serde_json emits non-ASCII as raw UTF-8, not \uXXXX.
        let s = Json::Str("héllo → 世界 🚀".into());
        assert_eq!(s.pretty(), "\"héllo → 世界 🚀\"");
    }

    #[test]
    fn quotes_and_backslashes_in_keys_are_escaped() {
        let v = Json::obj([("a\"b\\", Json::Null)]);
        assert_eq!(v.compact(), "{\"a\\\"b\\\\\":null}");
    }

    #[test]
    fn objects_pretty_print_with_two_space_indent() {
        let v = Json::obj([
            ("name", Json::Str("x".into())),
            ("vals", Json::Arr(vec![Json::UInt(1), Json::UInt(2)])),
            ("empty", Json::Arr(vec![])),
        ]);
        assert_eq!(
            v.pretty(),
            "{\n  \"name\": \"x\",\n  \"vals\": [\n    1,\n    2\n  ],\n  \"empty\": []\n}"
        );
    }

    #[test]
    fn compact_output_has_no_whitespace() {
        let v = Json::obj([
            ("a", Json::Arr(vec![Json::UInt(1), Json::Float(2.0)])),
            ("b", Json::Obj(vec![])),
        ]);
        assert_eq!(v.compact(), "{\"a\":[1,2.0],\"b\":{}}");
    }
}
