//! Dependency-free JSON parsing — the read half of [`crate::Json`].
//!
//! The emitter in [`crate::json`] exists because the offline build cannot
//! depend on `serde_json`; the baseline-comparison workflow (`fua report
//! --baseline BENCH_prev.json`) additionally needs to *read* artifacts
//! written by earlier runs, so this module adds a small recursive-descent
//! parser producing the same [`Json`] value type the emitter consumes.
//! Round-tripping is exact for everything the workspace emits: object key
//! order is preserved, integers stay integers ([`Json::UInt`]/
//! [`Json::Int`]), and floats parse via Rust's shortest-round-trip
//! grammar.

use std::fmt;

use crate::Json;

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonParseError> {
        Err(JsonParseError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!(
                "expected '{}', found {}",
                b as char,
                match self.peek() {
                    Some(c) => format!("'{}'", c as char),
                    None => "end of input".to_string(),
                }
            ))
        }
    }

    fn eat_keyword(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(format!("expected `{word}`"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        if depth > MAX_DEPTH {
            return self.err("nesting too deep");
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Json::Null),
            Some(b't') => self.eat_keyword("true", Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => self.err(format!("unexpected character '{}'", c as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => {
                    self.pos -= self.pos.min(1).min(usize::from(self.pos > 0));
                    return self.err("expected ',' or ']' in array");
                }
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(fields)),
                _ => return self.err("expected ',' or '}' in object"),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 (it is a &str) and we only
                // stopped on ASCII delimiters, so the run is valid UTF-8.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| {
                        JsonParseError {
                            offset: start,
                            message: "invalid UTF-8 in string".to_string(),
                        }
                    })?,
                );
            }
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => out.push(self.unicode_escape()?),
                    _ => return self.err("bad escape sequence"),
                },
                Some(_) => return self.err("unescaped control character in string"),
                None => return self.err("unterminated string"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return self.err("bad \\u escape"),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, JsonParseError> {
        let hi = self.hex4()?;
        // Surrogate pair: \uD800-\uDBFF must be followed by \uDC00-\uDFFF.
        if (0xD800..=0xDBFF).contains(&hi) {
            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                return self.err("lone high surrogate");
            }
            let lo = self.hex4()?;
            if !(0xDC00..=0xDFFF).contains(&lo) {
                return self.err("bad low surrogate");
            }
            let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            return char::from_u32(c).map_or_else(|| self.err("bad surrogate pair"), Ok);
        }
        if (0xDC00..=0xDFFF).contains(&hi) {
            return self.err("lone low surrogate");
        }
        char::from_u32(hi).map_or_else(|| self.err("bad \\u escape"), Ok)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        if !is_float {
            // Integers stay exact: non-negative → UInt, negative → Int,
            // out-of-range → fall back to f64 like serde_json's lossy mode.
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(f) => Ok(Json::Float(f)),
            Err(_) => Err(JsonParseError {
                offset: start,
                message: format!("bad number `{text}`"),
            }),
        }
    }
}

impl Json {
    /// Parses a JSON document. The whole input must be one value
    /// (surrounded by optional whitespace).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonParseError`] with a byte offset on malformed input.
    ///
    /// # Examples
    ///
    /// ```
    /// use fua_trace::Json;
    ///
    /// let v = Json::parse("{\"bits\": 42, \"pct\": 17.5}").unwrap();
    /// assert_eq!(v.get("bits").and_then(Json::as_u64), Some(42));
    /// assert_eq!(v.get("pct").and_then(Json::as_f64), Some(17.5));
    /// ```
    pub fn parse(input: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return p.err("trailing data after JSON value");
        }
        Ok(v)
    }

    /// Looks up a key in an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as an `f64` (accepts any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(v) => Some(*v),
            Json::UInt(v) => Some(*v as f64),
            Json::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool, if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("17.5").unwrap(), Json::Float(17.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("-2.5e-2").unwrap(), Json::Float(-0.025));
        assert_eq!(
            Json::parse(&u64::MAX.to_string()).unwrap(),
            Json::UInt(u64::MAX)
        );
    }

    #[test]
    fn strings_unescape() {
        assert_eq!(
            Json::parse("\"a\\\"b\\\\c\\nd\\u0041\"").unwrap(),
            Json::Str("a\"b\\c\ndA".into())
        );
        // Raw UTF-8 and surrogate pairs both decode.
        assert_eq!(
            Json::parse("\"héllo 世界\"").unwrap(),
            Json::Str("héllo 世界".into())
        );
        assert_eq!(
            Json::parse("\"\\ud83d\\ude80\"").unwrap(),
            Json::Str("🚀".into())
        );
    }

    #[test]
    fn containers_preserve_order() {
        let v = Json::parse("{\"b\": [1, 2.0, \"x\"], \"a\": {}}").unwrap();
        let Json::Obj(fields) = &v else { panic!() };
        assert_eq!(fields[0].0, "b");
        assert_eq!(fields[1].0, "a");
        assert_eq!(
            v.get("b").unwrap().as_arr().unwrap(),
            &[Json::UInt(1), Json::Float(2.0), Json::Str("x".into())]
        );
    }

    #[test]
    fn emitter_output_round_trips() {
        let doc = Json::obj([
            ("name", Json::Str("bench \"ci\"\n".into())),
            ("bits", Json::UInt(u64::MAX)),
            ("delta", Json::Int(-3)),
            ("pct", Json::Float(17.5)),
            ("whole", Json::Float(4.0)),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            (
                "rows",
                Json::Arr(vec![
                    Json::obj([("x", Json::Float(-0.0))]),
                    Json::Arr(vec![]),
                ]),
            ),
        ]);
        for rendered in [doc.pretty(), doc.compact()] {
            assert_eq!(Json::parse(&rendered).unwrap(), doc, "from {rendered}");
        }
    }

    #[test]
    fn malformed_inputs_error_with_offsets() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "01x",
            "1 2",
            "{\"a\":1,}",
            "\"\\q\"",
            "\"\\ud800\"",
            "nan",
        ] {
            let e = Json::parse(bad).expect_err(bad);
            assert!(e.to_string().contains("byte"), "{bad}: {e}");
        }
    }

    #[test]
    fn accessors_type_check() {
        let v = Json::parse("{\"n\": 3, \"s\": \"x\", \"f\": 1.5, \"b\": false}").unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("s").unwrap().as_u64(), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("x"), None);
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(Json::parse(&ok).is_ok());
    }
}
