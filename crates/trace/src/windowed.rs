//! Interval telemetry: per-K-cycle snapshots of the event stream.
//!
//! End-of-run aggregates hide phase behaviour — a steering policy that
//! wins on average can still lose badly during a pointer-chasing phase.
//! [`WindowedSink`] buckets every event into fixed windows of `K` cycles
//! and accumulates per-window deltas: switched bits per class and per
//! module, operation counts, steering-case mix, swap counts, retired/
//! issued instructions, window occupancy, cache and branch outcomes.
//!
//! The sink is **exact, not sampled**: every [`TraceEvent::Energy`]
//! charge lands in exactly one window (by its stamped cycle), so summing
//! any column over all windows reproduces the run total bit-for-bit.
//! That invariant is what lets `fua report` treat the time-series as an
//! alternative decomposition of the final `EnergyLedger` rather than an
//! approximation of it. Events may arrive out of cycle order (writeback
//! events are emitted eagerly with future cycles); the window store grows
//! on demand and attribution is by stamped cycle, so ordering does not
//! matter.
//!
//! # Examples
//!
//! ```
//! use fua_isa::{Case, FuClass};
//! use fua_trace::{TraceEvent, TraceSink, WindowedSink};
//!
//! let mut sink = WindowedSink::new(100);
//! sink.record(&TraceEvent::Energy {
//!     cycle: 5, serial: 0, pc: 2, class: FuClass::IntAlu, module: 1, case: Case::C00, bits: 9,
//! });
//! sink.record(&TraceEvent::Energy {
//!     cycle: 150, serial: 1, pc: 3, class: FuClass::IntAlu, module: 0, case: Case::C11, bits: 4,
//! });
//! let series = sink.into_series();
//! assert_eq!(series.len(), 2);
//! assert_eq!(series.total_switched_bits(), [13, 0, 0, 0]);
//! ```

use fua_isa::FuClass;

use crate::{Json, Stage, StallReason, ToJson, TraceEvent, TraceSink};

/// Per-class module capacity tracked by the windowed sink — matches
/// [`MetricsRecorder`](crate::MetricsRecorder)'s bound; modules past it
/// fold into the last slot (the paper's machine uses at most 4).
pub const MAX_MODULES: usize = 8;

/// The telemetry process id in Chrome trace exports (pid 1 is the
/// pipeline, pid 2 the functional units — see [`crate::ChromeTraceSink`]).
const PID_TELEMETRY: u64 = 3;

/// Accumulated deltas for one window of `K` cycles.
///
/// All fields are *deltas within the window*, never cumulative values;
/// cumulative series are recovered by prefix sums, and run totals by
/// column sums (exactly — see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowRecord {
    /// Switched input bits charged per FU class (indexed by
    /// [`FuClass::index`]).
    pub switched_bits: [u64; 4],
    /// Switched bits per class × module (modules ≥ [`MAX_MODULES`] fold
    /// into the last slot).
    pub module_bits: [[u64; MAX_MODULES]; 4],
    /// Operations latched (energy charges) per FU class.
    pub ops: [u64; 4],
    /// Steering decisions per class × information-bit case.
    pub steer_cases: [[u64; 4]; 4],
    /// Operand swaps by mechanism (indexed rule/policy/multiplier, the
    /// [`crate::SwapKind`] order).
    pub swaps: [u64; 3],
    /// Instructions retired (commit-stage events).
    pub retired: u64,
    /// Instructions issued (summed from cycle summaries).
    pub issued: u64,
    /// Cycles summarised in this window (< K only for the last window).
    pub cycles: u64,
    /// Sum of end-of-cycle window occupancies (divide by `cycles` for
    /// the mean).
    pub occupancy_sum: u64,
    /// D-cache hits.
    pub cache_hits: u64,
    /// D-cache misses.
    pub cache_misses: u64,
    /// Conditional branches resolved.
    pub branches: u64,
    /// Branches the bimodal predictor got wrong.
    pub mispredicts: u64,
    /// Issue-slot counts per [`StallReason`], in [`StallReason::ALL`]
    /// order. Within any fully-summarised window these sum to
    /// `cycles × issue_width` — the same exact partition the
    /// [`StallSink`](crate::StallSink) proves over sites, here proved
    /// over time intervals.
    pub stall_slots: [u64; 8],
}

impl WindowRecord {
    const ZERO: WindowRecord = WindowRecord {
        switched_bits: [0; 4],
        module_bits: [[0; MAX_MODULES]; 4],
        ops: [0; 4],
        steer_cases: [[0; 4]; 4],
        swaps: [0; 3],
        retired: 0,
        issued: 0,
        cycles: 0,
        occupancy_sum: 0,
        cache_hits: 0,
        cache_misses: 0,
        branches: 0,
        mispredicts: 0,
        stall_slots: [0; 8],
    };

    /// Adds another window's deltas into this one, field-wise. Window
    /// deltas are unsigned counters, so accumulation is associative and
    /// commutative — merging per-run sinks window-by-window yields the
    /// identical record a single sink threaded through the same runs
    /// would hold.
    pub fn merge(&mut self, other: &WindowRecord) {
        for (acc, v) in self.switched_bits.iter_mut().zip(other.switched_bits) {
            *acc += v;
        }
        for (accs, vs) in self.module_bits.iter_mut().zip(other.module_bits) {
            for (acc, v) in accs.iter_mut().zip(vs) {
                *acc += v;
            }
        }
        for (acc, v) in self.ops.iter_mut().zip(other.ops) {
            *acc += v;
        }
        for (accs, vs) in self.steer_cases.iter_mut().zip(other.steer_cases) {
            for (acc, v) in accs.iter_mut().zip(vs) {
                *acc += v;
            }
        }
        for (acc, v) in self.swaps.iter_mut().zip(other.swaps) {
            *acc += v;
        }
        self.retired += other.retired;
        self.issued += other.issued;
        self.cycles += other.cycles;
        self.occupancy_sum += other.occupancy_sum;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.branches += other.branches;
        self.mispredicts += other.mispredicts;
        for (acc, v) in self.stall_slots.iter_mut().zip(other.stall_slots) {
            *acc += v;
        }
    }

    /// Retired instructions per summarised cycle (0 for an empty window).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Mean end-of-cycle window occupancy (0 for an empty window).
    pub fn mean_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.cycles as f64
        }
    }
}

/// A [`TraceSink`] that folds the event stream into per-K-cycle
/// [`WindowRecord`]s; call [`into_series`](WindowedSink::into_series)
/// after the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowedSink {
    window_cycles: u64,
    windows: Vec<WindowRecord>,
}

impl WindowedSink {
    /// A sink bucketing by `window_cycles`-cycle windows.
    ///
    /// # Panics
    ///
    /// Panics if `window_cycles` is 0.
    pub fn new(window_cycles: u64) -> Self {
        assert!(window_cycles > 0, "window size must be at least one cycle");
        WindowedSink {
            window_cycles,
            windows: Vec::new(),
        }
    }

    /// The configured window size in cycles.
    pub fn window_cycles(&self) -> u64 {
        self.window_cycles
    }

    #[inline]
    fn window(&mut self, cycle: u64) -> &mut WindowRecord {
        let idx = (cycle / self.window_cycles) as usize;
        if idx >= self.windows.len() {
            self.windows.resize(idx + 1, WindowRecord::ZERO);
        }
        &mut self.windows[idx]
    }

    /// Merges another sink's windows into this one, index-aligned.
    ///
    /// Every run starts at cycle 0, so window *i* of each sink covers
    /// the same cycle interval; adding them window-by-window produces
    /// exactly the store a single sink moved through the same sequence
    /// of runs would have accumulated. This is what lets a parallel
    /// sweep give each cell its own sink and still emit a byte-identical
    /// time-series: cell sinks are merged in cell-index order.
    ///
    /// # Panics
    ///
    /// Panics if the window sizes differ — the bucketing would be
    /// incomparable.
    pub fn merge(&mut self, other: &WindowedSink) {
        assert_eq!(
            self.window_cycles, other.window_cycles,
            "cannot merge windowed sinks with different window sizes"
        );
        if self.windows.len() < other.windows.len() {
            self.windows.resize(other.windows.len(), WindowRecord::ZERO);
        }
        for (acc, w) in self.windows.iter_mut().zip(&other.windows) {
            acc.merge(w);
        }
    }

    /// Finishes the run and yields the time-series.
    pub fn into_series(self) -> WindowedSeries {
        WindowedSeries {
            window_cycles: self.window_cycles,
            windows: self.windows,
        }
    }
}

impl Default for WindowedSink {
    /// A sink with a 1 024-cycle window.
    fn default() -> Self {
        WindowedSink::new(1024)
    }
}

impl TraceSink for WindowedSink {
    fn record(&mut self, event: &TraceEvent) {
        let w = self.window(event.cycle());
        match *event {
            TraceEvent::Stage { stage, .. } => {
                if stage == Stage::Retire {
                    w.retired += 1;
                }
            }
            TraceEvent::Steer { class, case, .. } => {
                w.steer_cases[class.index()][case.index()] += 1;
            }
            TraceEvent::OperandSwap { kind, .. } => {
                w.swaps[kind as usize] += 1;
            }
            TraceEvent::Energy {
                class,
                module,
                bits,
                ..
            } => {
                let c = class.index();
                w.switched_bits[c] += bits as u64;
                w.module_bits[c][(module as usize).min(MAX_MODULES - 1)] += bits as u64;
                w.ops[c] += 1;
            }
            TraceEvent::Execute { .. } => {}
            TraceEvent::Cache { hit, .. } => {
                if hit {
                    w.cache_hits += 1;
                } else {
                    w.cache_misses += 1;
                }
            }
            TraceEvent::Branch {
                taken, predicted, ..
            } => {
                w.branches += 1;
                if taken != predicted {
                    w.mispredicts += 1;
                }
            }
            TraceEvent::Stall { reason, slots, .. } => {
                w.stall_slots[reason.index()] += slots as u64;
            }
            // Dependence records feed critical-path extraction only;
            // the interval series has no per-instruction columns.
            TraceEvent::Dependence { .. } => {}
            TraceEvent::CycleSummary { window, issued, .. } => {
                w.cycles += 1;
                w.issued += issued as u64;
                w.occupancy_sum += window as u64;
            }
        }
    }
}

/// The finished per-window time-series of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowedSeries {
    window_cycles: u64,
    windows: Vec<WindowRecord>,
}

impl WindowedSeries {
    /// The window size in cycles.
    pub fn window_cycles(&self) -> u64 {
        self.window_cycles
    }

    /// Number of windows (including interior all-zero windows).
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether no window was ever touched.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The window records, in time order.
    pub fn windows(&self) -> &[WindowRecord] {
        &self.windows
    }

    /// Per-class switched-bit totals summed over every window. By the
    /// exactness invariant this equals the final `EnergyLedger`'s
    /// per-class `switched_bits` exactly.
    pub fn total_switched_bits(&self) -> [u64; 4] {
        let mut t = [0u64; 4];
        for w in &self.windows {
            for (acc, v) in t.iter_mut().zip(w.switched_bits) {
                *acc += v;
            }
        }
        t
    }

    /// Per-class operation totals summed over every window (equals the
    /// ledger's per-class `ops`).
    pub fn total_ops(&self) -> [u64; 4] {
        let mut t = [0u64; 4];
        for w in &self.windows {
            for (acc, v) in t.iter_mut().zip(w.ops) {
                *acc += v;
            }
        }
        t
    }

    /// Per-class × per-module switched-bit totals (equals the metrics
    /// registry's `switched_bits.{class}.m{N}` counters).
    pub fn total_module_bits(&self) -> [[u64; MAX_MODULES]; 4] {
        let mut t = [[0u64; MAX_MODULES]; 4];
        for w in &self.windows {
            for (tc, wc) in t.iter_mut().zip(w.module_bits) {
                for (acc, v) in tc.iter_mut().zip(wc) {
                    *acc += v;
                }
            }
        }
        t
    }

    /// Per-reason stall-slot totals summed over every window, in
    /// [`StallReason::ALL`] order. By the exact-partition invariant the
    /// grand total equals `cycles × issue_width` — and equals the
    /// matching [`StallSink`](crate::StallSink) totals bit-for-bit.
    pub fn total_stall_slots(&self) -> [u64; 8] {
        let mut t = [0u64; 8];
        for w in &self.windows {
            for (acc, v) in t.iter_mut().zip(w.stall_slots) {
                *acc += v;
            }
        }
        t
    }

    /// Total retired instructions.
    pub fn total_retired(&self) -> u64 {
        self.windows.iter().map(|w| w.retired).sum()
    }

    /// Total summarised cycles.
    pub fn total_cycles(&self) -> u64 {
        self.windows.iter().map(|w| w.cycles).sum()
    }

    /// Highest module index that saw traffic in `class`, or `None`.
    fn max_module(&self, class: usize) -> Option<usize> {
        self.windows
            .iter()
            .flat_map(|w| {
                w.module_bits[class]
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| **b > 0)
                    .map(|(m, _)| m)
            })
            .max()
    }

    /// Renders the series as CSV: one row per window, a fixed header of
    /// per-class aggregates plus per-module columns for every module
    /// that saw traffic (so the column set is a function of the machine
    /// configuration, not of the run length).
    pub fn to_csv(&self) -> String {
        let module_cols: Vec<(usize, usize)> = FuClass::ALL
            .iter()
            .flat_map(|class| {
                let c = class.index();
                (0..=self.max_module(c).map_or(0, |m| m)).map(move |m| (c, m))
            })
            .collect();

        let mut out = String::from("window,start_cycle,cycles,retired,issued,ipc,occupancy_avg");
        for class in FuClass::ALL {
            out.push_str(&format!(",bits_{class},ops_{class}"));
        }
        for &(c, m) in &module_cols {
            out.push_str(&format!(",bits_{}_m{m}", FuClass::ALL[c]));
        }
        for class in FuClass::ALL {
            for case in 0..4 {
                out.push_str(&format!(",steer_{class}_case{case:02b}"));
            }
        }
        for reason in StallReason::ALL {
            out.push_str(&format!(",stall_{}", reason.name()));
        }
        out.push_str(
            ",swaps_rule,swaps_policy,swaps_multiplier,\
             cache_hits,cache_misses,branches,mispredicts\n",
        );

        for (i, w) in self.windows.iter().enumerate() {
            out.push_str(&format!(
                "{i},{},{},{},{},{:.4},{:.4}",
                i as u64 * self.window_cycles,
                w.cycles,
                w.retired,
                w.issued,
                w.ipc(),
                w.mean_occupancy(),
            ));
            for c in 0..4 {
                out.push_str(&format!(",{},{}", w.switched_bits[c], w.ops[c]));
            }
            for &(c, m) in &module_cols {
                out.push_str(&format!(",{}", w.module_bits[c][m]));
            }
            for c in 0..4 {
                for case in 0..4 {
                    out.push_str(&format!(",{}", w.steer_cases[c][case]));
                }
            }
            for slots in w.stall_slots {
                out.push_str(&format!(",{slots}"));
            }
            out.push_str(&format!(
                ",{},{},{},{},{},{},{}\n",
                w.swaps[0],
                w.swaps[1],
                w.swaps[2],
                w.cache_hits,
                w.cache_misses,
                w.branches,
                w.mispredicts,
            ));
        }
        out
    }

    /// Chrome trace-event counter tracks (`ph: "C"`) for the series,
    /// one sample per window at the window's start cycle (1 cycle =
    /// 1 µs), under a dedicated *telemetry* process. Concatenate with
    /// [`ChromeTraceSink`](crate::ChromeTraceSink) events or wrap with
    /// [`into_chrome_json`](WindowedSeries::into_chrome_json).
    pub fn counter_events(&self) -> Vec<Json> {
        let mut events = vec![Json::obj([
            ("name", Json::Str("process_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::UInt(PID_TELEMETRY)),
            ("args", Json::obj([("name", Json::Str("telemetry".into()))])),
        ])];
        let counter = |name: &str, ts: u64, args: Json| {
            Json::obj([
                ("name", Json::Str(name.into())),
                ("ph", Json::Str("C".into())),
                ("ts", Json::UInt(ts)),
                ("pid", Json::UInt(PID_TELEMETRY)),
                ("args", args),
            ])
        };
        for (i, w) in self.windows.iter().enumerate() {
            let ts = i as u64 * self.window_cycles;
            events.push(counter(
                "window.switched_bits",
                ts,
                Json::Obj(
                    FuClass::ALL
                        .iter()
                        .map(|c| (c.to_string(), Json::UInt(w.switched_bits[c.index()])))
                        .collect(),
                ),
            ));
            events.push(counter(
                "window.ipc",
                ts,
                Json::obj([("ipc", Json::Float(w.ipc()))]),
            ));
            events.push(counter(
                "window.occupancy",
                ts,
                Json::obj([("entries", Json::Float(w.mean_occupancy()))]),
            ));
            if w.stall_slots.iter().any(|&n| n > 0) {
                events.push(counter(
                    "window.stall_mix",
                    ts,
                    Json::Obj(
                        StallReason::ALL
                            .iter()
                            .map(|r| (r.name().to_string(), Json::UInt(w.stall_slots[r.index()])))
                            .collect(),
                    ),
                ));
            }
            for class in FuClass::ALL {
                let cases = w.steer_cases[class.index()];
                if cases.iter().all(|&n| n == 0) {
                    continue;
                }
                events.push(counter(
                    &format!("window.steer.{class}"),
                    ts,
                    Json::Obj(
                        (0..4)
                            .map(|k| (format!("case{k:02b}"), Json::UInt(cases[k])))
                            .collect(),
                    ),
                ));
            }
        }
        events
    }

    /// The counter tracks wrapped as a standalone Chrome trace JSON
    /// document, loadable at `ui.perfetto.dev`.
    pub fn into_chrome_json(self) -> Json {
        Json::obj([
            ("traceEvents", Json::Arr(self.counter_events())),
            ("displayTimeUnit", Json::Str("ms".into())),
            (
                "otherData",
                Json::obj([("producer", Json::Str("fua-trace windowed".into()))]),
            ),
        ])
    }
}

impl ToJson for WindowedSeries {
    /// A compact JSON form: window size plus per-window rows of the
    /// headline columns (bits/ops per class, retired, cycles, IPC).
    fn to_json(&self) -> Json {
        Json::obj([
            ("window_cycles", Json::UInt(self.window_cycles)),
            (
                "windows",
                Json::Arr(
                    self.windows
                        .iter()
                        .map(|w| {
                            Json::obj([
                                (
                                    "switched_bits",
                                    Json::Arr(
                                        w.switched_bits.iter().map(|&b| Json::UInt(b)).collect(),
                                    ),
                                ),
                                (
                                    "ops",
                                    Json::Arr(w.ops.iter().map(|&b| Json::UInt(b)).collect()),
                                ),
                                (
                                    "stall_slots",
                                    Json::Arr(
                                        w.stall_slots.iter().map(|&s| Json::UInt(s)).collect(),
                                    ),
                                ),
                                ("retired", Json::UInt(w.retired)),
                                ("issued", Json::UInt(w.issued)),
                                ("cycles", Json::UInt(w.cycles)),
                                ("ipc", Json::Float(w.ipc())),
                                ("occupancy", Json::Float(w.mean_occupancy())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SwapKind;
    use fua_isa::{Case, Opcode};

    fn energy(cycle: u64, class: FuClass, module: u8, bits: u32) -> TraceEvent {
        TraceEvent::Energy {
            cycle,
            serial: 0,
            pc: 0,
            class,
            module,
            case: Case::C00,
            bits,
        }
    }

    #[test]
    fn events_bucket_by_stamped_cycle() {
        let mut sink = WindowedSink::new(10);
        sink.record(&energy(0, FuClass::IntAlu, 0, 3));
        sink.record(&energy(9, FuClass::IntAlu, 1, 4));
        sink.record(&energy(10, FuClass::FpAlu, 0, 5));
        let series = sink.into_series();
        assert_eq!(series.len(), 2);
        assert_eq!(series.windows()[0].switched_bits[0], 7);
        assert_eq!(series.windows()[1].switched_bits[FuClass::FpAlu.index()], 5);
    }

    #[test]
    fn out_of_order_future_cycles_land_in_the_right_window() {
        let mut sink = WindowedSink::new(100);
        // Eagerly-emitted writeback for a far-future cycle, then an
        // earlier energy charge: both must land where stamped.
        sink.record(&TraceEvent::Stage {
            stage: Stage::Writeback,
            cycle: 950,
            serial: 1,
            opcode: Opcode::Add,
        });
        sink.record(&energy(350, FuClass::IntAlu, 2, 8));
        sink.record(&energy(955, FuClass::IntAlu, 2, 6));
        let series = sink.into_series();
        assert_eq!(series.len(), 10);
        assert_eq!(series.windows()[3].switched_bits[0], 8);
        assert_eq!(series.windows()[9].switched_bits[0], 6);
        assert_eq!(series.total_switched_bits(), [14, 0, 0, 0]);
    }

    #[test]
    fn totals_sum_every_window_exactly() {
        let mut sink = WindowedSink::new(7);
        let mut expect_bits = [0u64; 4];
        let mut expect_ops = [0u64; 4];
        // A deterministic pseudo-stream across all classes and modules.
        for i in 0..1000u64 {
            let class = FuClass::ALL[(i % 4) as usize];
            let module = (i % 5) as u8;
            let bits = (i * 7 % 33) as u32;
            sink.record(&energy(i * 3 % 400, class, module, bits));
            expect_bits[class.index()] += bits as u64;
            expect_ops[class.index()] += 1;
        }
        let series = sink.into_series();
        assert_eq!(series.total_switched_bits(), expect_bits);
        assert_eq!(series.total_ops(), expect_ops);
        let module_totals = series.total_module_bits();
        for c in 0..4 {
            assert_eq!(
                module_totals[c].iter().sum::<u64>(),
                expect_bits[c],
                "module partition of class {c}"
            );
        }
    }

    #[test]
    fn ipc_and_occupancy_derive_from_cycle_summaries() {
        let mut sink = WindowedSink::new(4);
        for cycle in 0..4 {
            sink.record(&TraceEvent::CycleSummary {
                cycle,
                window: 6,
                issued: 2,
            });
            sink.record(&TraceEvent::Stage {
                stage: Stage::Retire,
                cycle,
                serial: cycle,
                opcode: Opcode::Add,
            });
        }
        let series = sink.into_series();
        let w = &series.windows()[0];
        assert_eq!(w.cycles, 4);
        assert_eq!(w.issued, 8);
        assert_eq!(w.retired, 4);
        assert!((w.ipc() - 1.0).abs() < 1e-12);
        assert!((w.mean_occupancy() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn steering_swap_cache_branch_mixes_accumulate() {
        let mut sink = WindowedSink::new(100);
        sink.record(&TraceEvent::Steer {
            cycle: 1,
            serial: 0,
            class: FuClass::IntAlu,
            case: Case::C10,
            module: 1,
            swap: false,
            cost_bits: 2,
        });
        sink.record(&TraceEvent::OperandSwap {
            cycle: 1,
            serial: 0,
            class: FuClass::IntAlu,
            kind: SwapKind::Rule,
        });
        sink.record(&TraceEvent::Cache {
            cycle: 2,
            serial: 1,
            addr: 64,
            hit: false,
            latency: 10,
        });
        sink.record(&TraceEvent::Branch {
            cycle: 3,
            serial: 2,
            taken: true,
            predicted: false,
        });
        let w = sink.into_series().windows()[0];
        assert_eq!(w.steer_cases[FuClass::IntAlu.index()][Case::C10.index()], 1);
        assert_eq!(w.swaps[SwapKind::Rule as usize], 1);
        assert_eq!(w.cache_misses, 1);
        assert_eq!(w.branches, 1);
        assert_eq!(w.mispredicts, 1);
    }

    #[test]
    fn csv_has_one_row_per_window_and_a_stable_header() {
        let mut sink = WindowedSink::new(10);
        sink.record(&energy(0, FuClass::IntAlu, 3, 5));
        sink.record(&energy(25, FuClass::IntAlu, 0, 2));
        let csv = sink.into_series().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4, "header + 3 windows");
        assert!(lines[0].starts_with("window,start_cycle,cycles"));
        assert!(lines[0].contains("bits_IALU_m3"), "{}", lines[0]);
        assert!(lines[0].contains("steer_IALU_case00"));
        assert!(lines[1].starts_with("0,0,"));
        assert!(lines[2].starts_with("1,10,"));
        // Every row has the same column count as the header.
        let cols = lines[0].split(',').count();
        for row in &lines[1..] {
            assert_eq!(row.split(',').count(), cols);
        }
    }

    #[test]
    fn counter_events_form_a_loadable_chrome_trace() {
        let mut sink = WindowedSink::new(50);
        sink.record(&energy(10, FuClass::IntAlu, 0, 4));
        sink.record(&TraceEvent::CycleSummary {
            cycle: 10,
            window: 3,
            issued: 1,
        });
        let json = sink.into_series().into_chrome_json().compact();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("window.switched_bits"));
        assert!(json.contains("\"telemetry\""));
        // And the document round-trips through our own parser.
        assert!(Json::parse(&json).is_ok());
    }

    fn stall(cycle: u64, reason: StallReason, slots: u32) -> TraceEvent {
        TraceEvent::Stall {
            cycle,
            class: FuClass::IntAlu,
            reason,
            slots,
            pc: None,
            case: None,
        }
    }

    #[test]
    fn stall_mix_buckets_by_cycle_and_sums_exactly() {
        let mut sink = WindowedSink::new(10);
        sink.record(&stall(0, StallReason::Issued, 1));
        sink.record(&stall(3, StallReason::FetchStarved, 9));
        sink.record(&stall(15, StallReason::OperandWait, 2));
        let series = sink.into_series();
        assert_eq!(
            series.windows()[0].stall_slots[StallReason::FetchStarved.index()],
            9
        );
        let totals = series.total_stall_slots();
        assert_eq!(totals[StallReason::Issued.index()], 1);
        assert_eq!(totals[StallReason::OperandWait.index()], 2);
        assert_eq!(totals.iter().sum::<u64>(), 12);
    }

    #[test]
    fn csv_includes_one_column_per_stall_reason() {
        let mut sink = WindowedSink::new(10);
        sink.record(&stall(0, StallReason::RobFull, 4));
        let csv = sink.into_series().to_csv();
        let header = csv.lines().next().unwrap();
        for reason in StallReason::ALL {
            assert!(
                header.contains(&format!(",stall_{}", reason.name())),
                "missing stall_{} in {header}",
                reason.name()
            );
        }
    }

    #[test]
    fn stall_mix_counter_track_round_trips_through_the_parser() {
        let mut sink = WindowedSink::new(50);
        sink.record(&stall(10, StallReason::Issued, 3));
        sink.record(&stall(12, StallReason::BranchRecovery, 7));
        let json = sink.into_series().into_chrome_json().compact();
        assert!(json.contains("window.stall_mix"));
        assert!(json.contains("\"branch-recovery\":7"));
        let parsed = Json::parse(&json).expect("loadable chrome trace");
        let events = parsed.get("traceEvents").and_then(Json::as_arr).unwrap();
        let mix = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("window.stall_mix"))
            .expect("stall-mix counter present");
        assert_eq!(mix.get("ph").and_then(Json::as_str), Some("C"));
        let args = mix.get("args").expect("counter args");
        assert_eq!(args.get("issued").and_then(Json::as_u64), Some(3));
        assert_eq!(args.get("branch-recovery").and_then(Json::as_u64), Some(7));
    }

    #[test]
    fn all_zero_stall_mix_emits_no_counter_track() {
        let mut sink = WindowedSink::new(50);
        sink.record(&energy(10, FuClass::IntAlu, 0, 4));
        let json = sink.into_series().into_chrome_json().compact();
        assert!(!json.contains("window.stall_mix"));
    }

    #[test]
    fn oversized_module_indices_fold_into_the_last_slot() {
        let mut sink = WindowedSink::new(10);
        sink.record(&energy(0, FuClass::IntMul, 200, 7));
        let series = sink.into_series();
        assert_eq!(
            series.windows()[0].module_bits[FuClass::IntMul.index()][MAX_MODULES - 1],
            7
        );
        assert_eq!(series.total_switched_bits()[FuClass::IntMul.index()], 7);
    }

    #[test]
    #[should_panic(expected = "window size")]
    fn zero_window_size_panics() {
        WindowedSink::new(0);
    }

    #[test]
    fn merged_sinks_equal_one_threaded_sink() {
        // Reference: one sink fed two "runs" back to back (both starting
        // at cycle 0, as runs do).
        let runs: [Vec<TraceEvent>; 2] = [
            vec![
                energy(0, FuClass::IntAlu, 0, 3),
                energy(25, FuClass::FpAlu, 1, 9),
                TraceEvent::CycleSummary {
                    cycle: 3,
                    window: 2,
                    issued: 1,
                },
            ],
            vec![
                energy(7, FuClass::IntAlu, 2, 5),
                energy(31, FuClass::IntMul, 0, 2),
            ],
        ];
        let mut threaded = WindowedSink::new(10);
        for run in &runs {
            for e in run {
                threaded.record(e);
            }
        }
        // Candidate: one sink per run, merged in run order.
        let mut merged = WindowedSink::new(10);
        for run in &runs {
            let mut own = WindowedSink::new(10);
            for e in run {
                own.record(e);
            }
            merged.merge(&own);
        }
        assert_eq!(merged, threaded);
        assert_eq!(
            merged.clone().into_series().to_csv(),
            threaded.clone().into_series().to_csv()
        );
    }

    #[test]
    fn merge_grows_the_window_store() {
        let mut short = WindowedSink::new(10);
        short.record(&energy(5, FuClass::IntAlu, 0, 1));
        let mut long = WindowedSink::new(10);
        long.record(&energy(95, FuClass::IntAlu, 0, 4));
        short.merge(&long);
        let series = short.into_series();
        assert_eq!(series.len(), 10);
        assert_eq!(series.total_switched_bits(), [5, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "different window sizes")]
    fn mismatched_window_sizes_cannot_merge() {
        WindowedSink::new(10).merge(&WindowedSink::new(20));
    }
}
