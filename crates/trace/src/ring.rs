//! Bounded ring-buffer sink for post-mortem inspection.

use std::collections::VecDeque;

use crate::{TraceEvent, TraceSink};

/// Keeps the last `capacity` events of a run — cheap enough to leave on
/// for long simulations, and exactly what you want when a run ends in a
/// watchdog panic or a ledger regression: the tail of the event stream
/// is the post-mortem.
///
/// # Examples
///
/// ```
/// use fua_trace::{RingBufferSink, TraceEvent, TraceSink};
///
/// let mut ring = RingBufferSink::new(2);
/// for cycle in 0..5 {
///     ring.record(&TraceEvent::CycleSummary { cycle, window: 0, issued: 0 });
/// }
/// let cycles: Vec<u64> = ring.events().iter().map(|e| e.cycle()).collect();
/// assert_eq!(cycles, [3, 4]);
/// assert_eq!(ring.recorded(), 5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RingBufferSink {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    recorded: u64,
}

impl RingBufferSink {
    /// A ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a ring buffer needs capacity");
        RingBufferSink {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            recorded: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> &VecDeque<TraceEvent> {
        &self.buf
    }

    /// The last `n` retained events, oldest first.
    pub fn tail(&self, n: usize) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter().skip(self.buf.len().saturating_sub(n))
    }

    /// Total events ever recorded (≥ retained count).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl Default for RingBufferSink {
    /// A 4096-event ring.
    fn default() -> Self {
        RingBufferSink::new(4096)
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, event: &TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(*event);
        self.recorded += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent::CycleSummary {
            cycle,
            window: 0,
            issued: 0,
        }
    }

    #[test]
    fn ring_is_bounded_and_keeps_the_tail() {
        let mut ring = RingBufferSink::new(3);
        for c in 0..10 {
            ring.record(&ev(c));
        }
        assert_eq!(ring.events().len(), 3);
        assert_eq!(ring.recorded(), 10);
        let cycles: Vec<u64> = ring.events().iter().map(TraceEvent::cycle).collect();
        assert_eq!(cycles, [7, 8, 9]);
    }

    #[test]
    fn tail_returns_at_most_n() {
        let mut ring = RingBufferSink::new(8);
        for c in 0..4 {
            ring.record(&ev(c));
        }
        let last2: Vec<u64> = ring.tail(2).map(TraceEvent::cycle).collect();
        assert_eq!(last2, [2, 3]);
        assert_eq!(ring.tail(100).count(), 4);
    }
}
