//! A sink that folds the event stream into a [`MetricsRegistry`].

use fua_isa::FuClass;

use crate::{MetricId, MetricsRegistry, Stage, StallReason, SwapKind, TraceEvent, TraceSink};

/// Upper bounds for per-module switched-bit (inter-arrival Hamming
/// distance) histograms: a 32-bit pair can toggle at most 64 bits, an FP
/// mantissa pair fewer.
const HAM_BOUNDS: [u64; 9] = [0, 1, 2, 4, 8, 16, 24, 32, 64];

/// Upper bounds for the per-cycle instruction-window occupancy histogram.
const WINDOW_BOUNDS: [u64; 8] = [0, 1, 2, 4, 8, 16, 32, 64];

/// Upper bounds for the per-cycle issue-width histogram.
const ISSUE_BOUNDS: [u64; 6] = [0, 1, 2, 3, 4, 8];

/// Maximum modules per FU class the recorder tracks individually.
const MAX_MODULES: usize = 8;

#[derive(Debug, Clone, Copy)]
struct PerModule {
    switched: MetricId,
    ops: MetricId,
    ham: MetricId,
}

/// Builds the standard simulator metrics from the trace-event stream:
/// pipeline-stage throughput counters, per-cycle occupancy histograms,
/// per-FU-module switching counters and Hamming-distance histograms,
/// steering case counts, swap/branch/cache counters.
///
/// Because the registry is populated from the same [`TraceEvent`]s the
/// energy ledger is built from, the per-module `switched_bits.*` counters
/// sum exactly to the ledger's per-class totals — the invariant the
/// `--metrics` CLI flag and the observability tests rely on.
#[derive(Debug, Clone)]
pub struct MetricsRecorder {
    registry: MetricsRegistry,
    stage: [MetricId; 6],
    cycles: MetricId,
    window_h: MetricId,
    issue_h: MetricId,
    branches: MetricId,
    mispredicts: MetricId,
    cache_hits: MetricId,
    cache_misses: MetricId,
    swaps: [MetricId; 3],
    stalls: [MetricId; 8],
    per_module: [[Option<PerModule>; MAX_MODULES]; 4],
    cases: [Option<[MetricId; 4]>; 4],
}

impl MetricsRecorder {
    /// A recorder with the fixed metrics pre-registered (per-module and
    /// per-case metrics appear on first use, in event order).
    pub fn new() -> Self {
        let mut registry = MetricsRegistry::new();
        let stage = Stage::ALL.map(|s| registry.counter(&format!("stage.{}", s.name())));
        let cycles = registry.gauge("cycles");
        let window_h = registry.histogram("window.occupancy", &WINDOW_BOUNDS);
        let issue_h = registry.histogram("issue.width", &ISSUE_BOUNDS);
        let branches = registry.counter("branch.executed");
        let mispredicts = registry.counter("branch.mispredicted");
        let cache_hits = registry.counter("cache.hits");
        let cache_misses = registry.counter("cache.misses");
        let swaps = [SwapKind::Rule, SwapKind::Policy, SwapKind::Multiplier]
            .map(|k| registry.counter(&format!("swaps.{}", k.name())));
        let stalls = StallReason::ALL.map(|r| registry.counter(&format!("stall.{}", r.name())));
        MetricsRecorder {
            registry,
            stage,
            cycles,
            window_h,
            issue_h,
            branches,
            mispredicts,
            cache_hits,
            cache_misses,
            swaps,
            stalls,
            per_module: [[None; MAX_MODULES]; 4],
            cases: [None; 4],
        }
    }

    /// The populated registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Consumes the recorder, returning the registry.
    pub fn into_registry(self) -> MetricsRegistry {
        self.registry
    }

    fn module_ids(&mut self, class: FuClass, module: u8) -> PerModule {
        let m = (module as usize).min(MAX_MODULES - 1);
        let slot = &mut self.per_module[class.index()][m];
        if let Some(ids) = *slot {
            return ids;
        }
        let ids = PerModule {
            switched: self
                .registry
                .counter(&format!("switched_bits.{class}.m{m}")),
            ops: self.registry.counter(&format!("ops.{class}.m{m}")),
            ham: self
                .registry
                .histogram(&format!("ham.{class}.m{m}"), &HAM_BOUNDS),
        };
        *slot = Some(ids);
        ids
    }

    fn case_ids(&mut self, class: FuClass) -> [MetricId; 4] {
        if let Some(ids) = self.cases[class.index()] {
            return ids;
        }
        let ids =
            fua_isa::Case::ALL.map(|c| self.registry.counter(&format!("steer.{class}.case{c}")));
        self.cases[class.index()] = Some(ids);
        ids
    }
}

impl Default for MetricsRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink for MetricsRecorder {
    fn record(&mut self, event: &TraceEvent) {
        match *event {
            TraceEvent::Stage { stage, .. } => {
                self.registry.add(self.stage[stage as usize], 1);
            }
            TraceEvent::Steer { class, case, .. } => {
                let ids = self.case_ids(class);
                self.registry.add(ids[case.index()], 1);
            }
            TraceEvent::OperandSwap { kind, .. } => {
                self.registry.add(self.swaps[kind as usize], 1);
            }
            TraceEvent::Energy {
                class,
                module,
                bits,
                ..
            } => {
                let ids = self.module_ids(class, module);
                self.registry.add(ids.switched, bits as u64);
                self.registry.add(ids.ops, 1);
                self.registry.observe(ids.ham, bits as u64);
            }
            TraceEvent::Execute { .. } => {
                self.registry.add(self.stage[Stage::Execute as usize], 1);
            }
            TraceEvent::Cache { hit, .. } => {
                let id = if hit {
                    self.cache_hits
                } else {
                    self.cache_misses
                };
                self.registry.add(id, 1);
            }
            TraceEvent::Branch {
                taken, predicted, ..
            } => {
                self.registry.add(self.branches, 1);
                if taken != predicted {
                    self.registry.add(self.mispredicts, 1);
                }
            }
            TraceEvent::Stall { reason, slots, .. } => {
                self.registry.add(self.stalls[reason.index()], slots as u64);
            }
            // Dependence records are per-instruction critical-path
            // inputs; the registry keeps aggregate counters only.
            TraceEvent::Dependence { .. } => {}
            TraceEvent::CycleSummary {
                cycle,
                window,
                issued,
            } => {
                self.registry.set(self.cycles, (cycle + 1) as f64);
                self.registry.observe(self.window_h, window as u64);
                self.registry.observe(self.issue_h, issued as u64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ToJson;
    use fua_isa::{Case, Opcode};

    #[test]
    fn energy_events_build_per_module_counters() {
        let mut rec = MetricsRecorder::new();
        for (module, bits) in [(0u8, 5u32), (1, 7), (0, 3)] {
            rec.record(&TraceEvent::Energy {
                cycle: 1,
                serial: 0,
                pc: 0,
                class: FuClass::IntAlu,
                module,
                case: Case::C00,
                bits,
            });
        }
        let reg = rec.registry();
        assert_eq!(reg.counter_value("switched_bits.IALU.m0"), Some(8));
        assert_eq!(reg.counter_value("switched_bits.IALU.m1"), Some(7));
        assert_eq!(reg.counter_value("ops.IALU.m0"), Some(2));
        assert_eq!(reg.sum_counters("switched_bits.IALU"), 15);
    }

    #[test]
    fn steer_and_swap_events_count_cases() {
        let mut rec = MetricsRecorder::new();
        rec.record(&TraceEvent::Steer {
            cycle: 0,
            serial: 0,
            class: FuClass::FpAlu,
            case: Case::C01,
            module: 2,
            swap: true,
            cost_bits: 4,
        });
        rec.record(&TraceEvent::OperandSwap {
            cycle: 0,
            serial: 0,
            class: FuClass::FpAlu,
            kind: SwapKind::Policy,
        });
        let reg = rec.registry();
        assert_eq!(reg.counter_value("steer.FPAU.case01"), Some(1));
        assert_eq!(reg.counter_value("steer.FPAU.case00"), Some(0));
        assert_eq!(reg.counter_value("swaps.policy"), Some(1));
    }

    #[test]
    fn stall_events_fill_per_reason_counters() {
        let mut rec = MetricsRecorder::new();
        rec.record(&TraceEvent::Stall {
            cycle: 0,
            class: FuClass::IntAlu,
            reason: StallReason::OperandWait,
            slots: 1,
            pc: Some(4),
            case: None,
        });
        rec.record(&TraceEvent::Stall {
            cycle: 0,
            class: FuClass::FpAlu,
            reason: StallReason::FetchStarved,
            slots: 4,
            pc: None,
            case: None,
        });
        let reg = rec.registry();
        assert_eq!(reg.counter_value("stall.operand-wait"), Some(1));
        assert_eq!(reg.counter_value("stall.fetch-starved"), Some(4));
        assert_eq!(reg.counter_value("stall.issued"), Some(0));
    }

    #[test]
    fn stage_and_cycle_events_fill_throughput_metrics() {
        let mut rec = MetricsRecorder::new();
        rec.record(&TraceEvent::Stage {
            stage: Stage::Fetch,
            cycle: 0,
            serial: 0,
            opcode: Opcode::Add,
        });
        rec.record(&TraceEvent::CycleSummary {
            cycle: 9,
            window: 3,
            issued: 2,
        });
        let reg = rec.registry();
        assert_eq!(reg.counter_value("stage.fetch"), Some(1));
        let json = reg.to_json().pretty();
        assert!(json.contains("\"cycles\": 10"));
    }
}
