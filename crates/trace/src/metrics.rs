//! Counters, gauges, and fixed-bucket histograms with a JSON snapshot.

use std::fmt;

use crate::{Json, ToJson};

/// A fixed-bucket histogram: bucket `i` counts observations `v <=
/// bounds[i]`, plus one implicit overflow bucket. Bounds are fixed at
/// registration, so two runs that observe the same values snapshot
/// identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Histogram {
    /// A histogram with the given strictly increasing upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "a histogram needs buckets");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
        }
    }

    /// Records one observation. The running sum saturates instead of
    /// overflowing, so a histogram fed `u64::MAX`-ish values (the top
    /// bucket's natural diet) stays well-defined.
    pub fn observe(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// `(upper_bound, count)` pairs; the final pair has `None` as its
    /// bound (the overflow bucket).
    pub fn buckets(&self) -> impl Iterator<Item = (Option<u64>, u64)> + '_ {
        self.bounds
            .iter()
            .map(|&b| Some(b))
            .chain(std::iter::once(None))
            .zip(self.counts.iter().copied())
    }
}

impl ToJson for Histogram {
    fn to_json(&self) -> Json {
        let buckets = self
            .buckets()
            .map(|(le, count)| {
                Json::obj([
                    (
                        "le",
                        match le {
                            Some(b) => Json::UInt(b),
                            None => Json::Null,
                        },
                    ),
                    ("count", Json::UInt(count)),
                ])
            })
            .collect();
        Json::obj([
            ("type", Json::Str("histogram".into())),
            ("count", Json::UInt(self.count)),
            ("sum", Json::UInt(self.sum)),
            ("mean", Json::Float(self.mean())),
            ("buckets", Json::Arr(buckets)),
        ])
    }
}

/// One registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// A monotonically increasing count.
    Counter(u64),
    /// A point-in-time value.
    Gauge(f64),
    /// A fixed-bucket distribution.
    Histogram(Histogram),
}

/// A handle to a registered metric — cheap to copy, valid only for the
/// registry that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricId(usize);

/// An insertion-ordered collection of named metrics, snapshotable to
/// [`Json`] and renderable as text.
///
/// Registration is idempotent per name; re-registering returns the
/// existing handle (and, for histograms, keeps the original bounds).
///
/// # Examples
///
/// ```
/// use fua_trace::{MetricsRegistry, ToJson};
///
/// let mut m = MetricsRegistry::new();
/// let issued = m.counter("issued");
/// m.add(issued, 3);
/// let ham = m.histogram("ham.IALU.m0", &[0, 4, 16, 64]);
/// m.observe(ham, 12);
/// assert_eq!(m.counter_value("issued"), Some(3));
/// assert!(m.to_json().pretty().contains("\"issued\": 3"));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    entries: Vec<(String, Metric)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&mut self, name: &str, make: impl FnOnce() -> Metric) -> MetricId {
        if let Some(i) = self.entries.iter().position(|(n, _)| n == name) {
            return MetricId(i);
        }
        self.entries.push((name.to_string(), make()));
        MetricId(self.entries.len() - 1)
    }

    /// Registers (or finds) a counter.
    pub fn counter(&mut self, name: &str) -> MetricId {
        self.register(name, || Metric::Counter(0))
    }

    /// Registers (or finds) a gauge.
    pub fn gauge(&mut self, name: &str) -> MetricId {
        self.register(name, || Metric::Gauge(0.0))
    }

    /// Registers (or finds) a histogram with the given bucket bounds.
    pub fn histogram(&mut self, name: &str, bounds: &[u64]) -> MetricId {
        self.register(name, || Metric::Histogram(Histogram::new(bounds)))
    }

    /// Increments a counter.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not name a counter.
    pub fn add(&mut self, id: MetricId, delta: u64) {
        match &mut self.entries[id.0].1 {
            Metric::Counter(v) => *v += delta,
            other => panic!("add() on non-counter {other:?}"),
        }
    }

    /// Sets a gauge.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not name a gauge.
    pub fn set(&mut self, id: MetricId, value: f64) {
        match &mut self.entries[id.0].1 {
            Metric::Gauge(v) => *v = value,
            other => panic!("set() on non-gauge {other:?}"),
        }
    }

    /// Records a histogram observation.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not name a histogram.
    pub fn observe(&mut self, id: MetricId, value: u64) {
        match &mut self.entries[id.0].1 {
            Metric::Histogram(h) => h.observe(value),
            other => panic!("observe() on non-histogram {other:?}"),
        }
    }

    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, m)| m)
    }

    /// A counter's current value, if `name` is a registered counter.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            Metric::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Iterates metrics in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.entries.iter().map(|(n, m)| (n.as_str(), m))
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sums the values of every counter whose name starts with `prefix`.
    pub fn sum_counters(&self, prefix: &str) -> u64 {
        self.entries
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .filter_map(|(_, m)| match m {
                Metric::Counter(v) => Some(*v),
                _ => None,
            })
            .sum()
    }
}

impl ToJson for MetricsRegistry {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.entries
                .iter()
                .map(|(name, metric)| {
                    let value = match metric {
                        Metric::Counter(v) => Json::UInt(*v),
                        Metric::Gauge(v) => Json::Float(*v),
                        Metric::Histogram(h) => h.to_json(),
                    };
                    (name.clone(), value)
                })
                .collect(),
        )
    }
}

impl fmt::Display for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self.entries.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, metric) in &self.entries {
            match metric {
                Metric::Counter(v) => writeln!(f, "{name:width$}  {v}")?,
                Metric::Gauge(v) => writeln!(f, "{name:width$}  {v:.3}")?,
                Metric::Histogram(h) => {
                    write!(f, "{name:width$}  n={} mean={:.2} |", h.count(), h.mean())?;
                    for (le, count) in h.buckets() {
                        match le {
                            Some(b) => write!(f, " ≤{b}:{count}")?,
                            None => write!(f, " inf:{count}")?,
                        }
                    }
                    writeln!(f)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_upper_inclusive() {
        let mut h = Histogram::new(&[0, 4, 16]);
        for v in [0, 1, 4, 5, 16, 17, 1000] {
            h.observe(v);
        }
        let counts: Vec<u64> = h.buckets().map(|(_, c)| c).collect();
        assert_eq!(counts, [1, 2, 2, 2]); // {0}, {1,4}, {5,16}, {17,1000}
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1043);
    }

    #[test]
    fn registration_is_idempotent() {
        let mut m = MetricsRegistry::new();
        let a = m.counter("x");
        let b = m.counter("x");
        assert_eq!(a, b);
        m.add(a, 2);
        m.add(b, 3);
        assert_eq!(m.counter_value("x"), Some(5));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn sum_counters_matches_prefix() {
        let mut m = MetricsRegistry::new();
        for (name, v) in [("sw.a", 1), ("sw.b", 2), ("other", 4)] {
            let id = m.counter(name);
            m.add(id, v);
        }
        assert_eq!(m.sum_counters("sw."), 3);
        assert_eq!(m.sum_counters(""), 7);
    }

    #[test]
    fn snapshot_is_ordered_and_typed() {
        let mut m = MetricsRegistry::new();
        let c = m.counter("count");
        m.add(c, 1);
        let g = m.gauge("gauge");
        m.set(g, 2.5);
        let h = m.histogram("hist", &[1]);
        m.observe(h, 9);
        let json = m.to_json().pretty();
        let count_pos = json.find("\"count\"").expect("counter present");
        let gauge_pos = json.find("\"gauge\"").expect("gauge present");
        let hist_pos = json.find("\"hist\"").expect("histogram present");
        assert!(count_pos < gauge_pos && gauge_pos < hist_pos);
        assert!(json.contains("\"gauge\": 2.5"));
        assert!(json.contains("\"type\": \"histogram\""));
        let text = m.to_string();
        assert!(text.contains("count") && text.contains("inf:1"));
    }

    #[test]
    #[should_panic(expected = "non-counter")]
    fn type_confusion_panics() {
        let mut m = MetricsRegistry::new();
        let g = m.gauge("g");
        m.add(g, 1);
    }

    #[test]
    fn empty_registry_serializes_cleanly() {
        let m = MetricsRegistry::new();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.to_json().compact(), "{}");
        assert_eq!(m.to_string(), "");
        assert_eq!(m.sum_counters(""), 0);
    }

    #[test]
    fn single_sample_histogram_is_exact() {
        let mut h = Histogram::new(&[10]);
        h.observe(7);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 7);
        assert_eq!(h.mean(), 7.0);
        let buckets: Vec<(Option<u64>, u64)> = h.buckets().collect();
        assert_eq!(buckets, [(Some(10), 1), (None, 0)]);
    }

    #[test]
    fn top_bucket_saturates_instead_of_overflowing() {
        let mut h = Histogram::new(&[1, 2]);
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        // Both land in the overflow bucket; the sum saturates rather
        // than wrapping to a tiny number.
        let counts: Vec<u64> = h.buckets().map(|(_, c)| c).collect();
        assert_eq!(counts, [0, 0, 2]);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.mean() > 0.0);
    }

    #[test]
    fn name_collision_across_types_keeps_the_first_registration() {
        // Registration is keyed purely by name: a later registration
        // under the same name — even as a different metric type —
        // returns the original handle, and the original type wins.
        let mut m = MetricsRegistry::new();
        let c = m.counter("shared");
        let g = m.gauge("shared");
        let h = m.histogram("shared", &[1, 2]);
        assert_eq!(c, g);
        assert_eq!(c, h);
        assert_eq!(m.len(), 1);
        m.add(c, 5);
        assert!(matches!(m.get("shared"), Some(Metric::Counter(5))));
    }

    #[test]
    fn histogram_rebounds_on_collision_keep_original_bounds() {
        let mut m = MetricsRegistry::new();
        let a = m.histogram("h", &[1, 2, 3]);
        let b = m.histogram("h", &[100]);
        assert_eq!(a, b);
        m.observe(a, 2);
        match m.get("h") {
            Some(Metric::Histogram(h)) => {
                let bounds: Vec<Option<u64>> = h.buckets().map(|(le, _)| le).collect();
                assert_eq!(bounds, [Some(1), Some(2), Some(3), None]);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }
}
