//! The profiling pass behind Tables 1, 2 and 3.

use fua_exec::{map_indexed_timed, ExecReport, Jobs};
use fua_isa::FuClass;
use fua_sim::{SimResult, Simulator, SteeringConfig};
use fua_stats::{BitPatternProfiler, CaseProfile, OccupancyProfiler, TextTable};
use fua_workloads::{Category, WorkloadArena};

use crate::ExperimentConfig;

/// Suite-wide operand and occupancy statistics, gathered by running every
/// workload on the unmodified (Original, no-swap) machine — exactly how
/// the paper's Tables 1–3 were measured.
#[derive(Debug, Clone)]
pub struct SuiteProfile {
    /// IALU bit patterns over the integer workloads (Table 1 left half).
    pub ialu: BitPatternProfiler,
    /// FPAU bit patterns over the FP workloads (Table 1 right half).
    pub fpau: BitPatternProfiler,
    /// Integer-multiplier bit patterns (Table 3 left half).
    pub imul: BitPatternProfiler,
    /// FP-multiplier bit patterns (Table 3 right half).
    pub fpmul: BitPatternProfiler,
    /// IALU occupancy over the integer workloads (Table 2 row 1).
    pub ialu_occupancy: OccupancyProfiler,
    /// FPAU occupancy over the FP workloads (Table 2 row 2).
    pub fpau_occupancy: OccupancyProfiler,
}

/// Runs the whole suite on the baseline machine and collects the paper's
/// measurement tables.
pub fn profile_suite(config: &ExperimentConfig) -> SuiteProfile {
    let arena = WorkloadArena::build(config.scale);
    profile_suite_jobs(config, &arena, Jobs::serial()).0
}

/// As [`profile_suite`], fanning the per-workload profiling runs out
/// across `jobs` workers over an already-decoded [`WorkloadArena`].
///
/// Each workload's run is an independent cell; the per-category profiler
/// merges happen afterwards on the calling thread **in suite order**, so
/// the resulting [`SuiteProfile`] is identical to the serial pass no
/// matter how the cells were scheduled.
///
/// # Panics
///
/// Panics if a workload faults or the arena's scale differs from the
/// configuration's.
pub fn profile_suite_jobs(
    config: &ExperimentConfig,
    arena: &WorkloadArena,
    jobs: Jobs,
) -> (SuiteProfile, ExecReport) {
    assert_eq!(
        arena.scale(),
        config.scale,
        "arena scale must match the experiment configuration"
    );
    let (results, report) = map_indexed_timed(jobs, arena.all(), |_, w| {
        let mut sim = Simulator::new(config.machine.clone(), SteeringConfig::original());
        sim.run_program(&w.program, config.inst_limit)
            .unwrap_or_else(|e| panic!("workload {} faulted: {e}", w.name))
    });

    let modules_ialu = config.machine.modules(FuClass::IntAlu);
    let modules_fpau = config.machine.modules(FuClass::FpAlu);
    let mut profile = SuiteProfile {
        ialu: BitPatternProfiler::new(),
        fpau: BitPatternProfiler::new(),
        imul: BitPatternProfiler::new(),
        fpmul: BitPatternProfiler::new(),
        ialu_occupancy: OccupancyProfiler::new(modules_ialu),
        fpau_occupancy: OccupancyProfiler::new(modules_fpau),
    };
    let results: &[SimResult] = &results;
    for (w, result) in arena.all().iter().zip(results) {
        match w.category {
            Category::Integer => {
                profile.ialu.merge(result.bit_patterns_of(FuClass::IntAlu));
                profile.imul.merge(result.bit_patterns_of(FuClass::IntMul));
                profile
                    .ialu_occupancy
                    .merge(result.occupancy_of(FuClass::IntAlu));
            }
            Category::FloatingPoint => {
                profile.fpau.merge(result.bit_patterns_of(FuClass::FpAlu));
                profile.fpmul.merge(result.bit_patterns_of(FuClass::FpMul));
                profile
                    .fpau_occupancy
                    .merge(result.occupancy_of(FuClass::FpAlu));
            }
        }
    }
    (profile, report)
}

impl SuiteProfile {
    /// The measured [`CaseProfile`] of one duplicated unit, for LUT
    /// construction.
    pub fn case_profile(&self, class: FuClass) -> CaseProfile {
        match class {
            FuClass::IntAlu => self.ialu.case_profile(),
            FuClass::FpAlu => self.fpau.case_profile(),
            FuClass::IntMul => self.imul.case_profile(),
            FuClass::FpMul => self.fpmul.case_profile(),
        }
    }

    /// Renders Table 1: the eight operand-pattern rows for the IALU and
    /// FPAU side by side, plus the paper's derived one-liners.
    pub fn table1(&self) -> String {
        let mut t = TextTable::new([
            "OP1",
            "OP2",
            "Comm",
            "IALU freq%",
            "IALU p(OP1)",
            "IALU p(OP2)",
            "FPAU freq%",
            "FPAU p(OP1)",
            "FPAU p(OP2)",
        ]);
        let ialu_rows = self.ialu.rows();
        let fpau_rows = self.fpau.rows();
        for (ir, fr) in ialu_rows.iter().zip(&fpau_rows) {
            t.push_row([
                format!("{}", ir.case.op1_bit() as u8),
                format!("{}", ir.case.op2_bit() as u8),
                if ir.commutative { "Yes" } else { "No" }.to_string(),
                format!("{:.2}", ir.freq_pct),
                format!("{:.3}", ir.op1_prob),
                format!("{:.3}", ir.op2_prob),
                format!("{:.2}", fr.freq_pct),
                format!("{:.3}", fr.op1_prob),
                format!("{:.3}", fr.op2_prob),
            ]);
        }
        let ialu_info = self.ialu.operand_info_stats();
        let fpau_info = self.fpau.operand_info_stats();
        format!(
            "Table 1: bit patterns in data\n{t}\n\
             Derived (IALU): when the sign bit is 0, {:.1}% of bits are 0; \
             when it is 1, {:.1}% of bits are 1.\n\
             Derived (FPAU): {:.1}% of operands have zero low-4 mantissa bits; \
             among them {:.1}% of mantissa bits are 0.\n",
            100.0 * (1.0 - ialu_info.ones_frac_info0),
            100.0 * ialu_info.ones_frac_info1,
            100.0 * fpau_info.info0_fraction(),
            100.0 * (1.0 - fpau_info.ones_frac_info0),
        )
    }

    /// Renders Table 2: `P(Num(I)=k)` for the IALU and FPAU.
    pub fn table2(&self) -> String {
        let max = self.ialu_occupancy.max_modules();
        let mut headers = vec!["unit".to_string()];
        headers.extend((1..=max).map(|k| format!("Num(I)={k}")));
        let mut t = TextTable::new(headers);
        let row = |name: &str, occ: &OccupancyProfiler| {
            let mut cells = vec![name.to_string()];
            cells.extend(
                occ.distribution()
                    .iter()
                    .map(|p| format!("{:.1}%", 100.0 * p)),
            );
            cells
        };
        t.push_row(row("IALU", &self.ialu_occupancy));
        t.push_row(row("FPAU", &self.fpau_occupancy));
        format!("Table 2: modules used per busy cycle\n{t}")
    }

    /// Renders Table 3: multiplication bit patterns (cases aggregated
    /// over commutativity, as in the paper) and the swap opportunity.
    pub fn table3(&self) -> String {
        let mut t = TextTable::new([
            "Case",
            "INT freq%",
            "INT p(OP1)",
            "INT p(OP2)",
            "FP freq%",
            "FP p(OP1)",
            "FP p(OP2)",
        ]);
        let int_profile = self.imul.case_profile();
        let fp_profile = self.fpmul.case_profile();
        for case in fua_isa::Case::ALL {
            let i = case.index();
            t.push_row([
                case.to_string(),
                format!("{:.2}", 100.0 * int_profile.case_freq[i]),
                format!("{:.3}", int_profile.op1_ones_prob[i]),
                format!("{:.3}", int_profile.op2_ones_prob[i]),
                format!("{:.2}", 100.0 * fp_profile.case_freq[i]),
                format!("{:.3}", fp_profile.op1_ones_prob[i]),
                format!("{:.3}", fp_profile.op2_ones_prob[i]),
            ]);
        }
        format!(
            "Table 3: bit patterns in multiplication data\n{t}\n\
             Swap opportunity: {:.1}% of FP multiplies are case 01 \
             (swappable to 10); {:.1}% of integer multiplies.\n",
            100.0 * fp_profile.case_freq[fua_isa::Case::C01.index()],
            100.0 * int_profile.case_freq[fua_isa::Case::C01.index()],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_profile() -> SuiteProfile {
        profile_suite(&ExperimentConfig::quick())
    }

    #[test]
    fn profiling_pass_fills_every_channel() {
        let p = quick_profile();
        assert!(p.ialu.total() > 10_000);
        assert!(p.fpau.total() > 1_000);
        assert!(p.imul.total() > 100);
        assert!(p.fpmul.total() > 1_000);
        assert!(p.ialu_occupancy.busy_cycles() > 1_000);
        assert!(p.fpau_occupancy.busy_cycles() > 1_000);
    }

    #[test]
    fn measured_statistics_match_the_papers_shape() {
        let p = quick_profile();
        // IALU: case 00 dominates (paper: 69.5%).
        let ialu = p.ialu.case_profile();
        assert_eq!(ialu.most_frequent_case(), fua_isa::Case::C00);
        assert!(
            ialu.case_freq[0] > 0.4,
            "case 00 freq {}",
            ialu.case_freq[0]
        );
        // IALU sign-bit claim: info-bit-0 operands are mostly zeros.
        let info = p.ialu.operand_info_stats();
        assert!(info.ones_frac_info0 < 0.25);
        assert!(info.ones_frac_info1 > 0.5);
        // FPAU occupancy is much lighter than IALU occupancy (Table 2).
        assert!(p.fpau_occupancy.freq(1) > p.ialu_occupancy.freq(1));
    }

    #[test]
    fn tables_render_without_panicking() {
        let p = quick_profile();
        let t1 = p.table1();
        let t2 = p.table2();
        let t3 = p.table3();
        assert!(t1.contains("Table 1"));
        assert!(t2.contains("IALU"));
        assert!(t3.contains("Swap opportunity"));
    }
}
