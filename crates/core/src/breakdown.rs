//! Per-workload breakdown of the recommended design point.
//!
//! The paper reports suite aggregates; this breakdown shows which
//! programs drive them — the per-benchmark view any reviewer of the
//! original would have asked for.

use fua_sim::{Simulator, SteeringConfig};
use fua_stats::TextTable;
use fua_steer::SteeringKind;
use fua_workloads::{floating_point, integer};

use crate::{ExperimentConfig, Unit};

/// One workload's results under Original vs the 4-bit LUT + hardware
/// swapping.
#[derive(Debug, Clone)]
pub struct BreakdownRow {
    /// Workload name.
    pub workload: String,
    /// Baseline switched bits on the measured unit.
    pub baseline_bits: u64,
    /// Steered switched bits.
    pub steered_bits: u64,
    /// Reduction (percent).
    pub reduction_pct: f64,
    /// Baseline instructions per cycle.
    pub ipc: f64,
    /// Branch misprediction rate (percent).
    pub mispredict_pct: f64,
    /// D-cache hit rate (percent).
    pub cache_hit_pct: f64,
}

/// Per-workload results for one unit.
#[derive(Debug, Clone)]
pub struct WorkloadBreakdown {
    /// The unit measured.
    pub unit: Unit,
    /// One row per workload, plus microarchitectural context.
    pub rows: Vec<BreakdownRow>,
}

impl WorkloadBreakdown {
    /// Renders the breakdown.
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            "workload",
            "baseline",
            "steered",
            "reduction",
            "IPC",
            "mispredict",
            "D$ hit",
        ]);
        for r in &self.rows {
            t.push_row([
                r.workload.clone(),
                r.baseline_bits.to_string(),
                r.steered_bits.to_string(),
                format!("{:.1}%", r.reduction_pct),
                format!("{:.2}", r.ipc),
                format!("{:.1}%", r.mispredict_pct),
                format!("{:.1}%", r.cache_hit_pct),
            ]);
        }
        format!(
            "Per-workload breakdown, {} (4-bit LUT + hardware swapping)\n{t}",
            self.unit
        )
    }
}

/// Runs every workload of the unit's suite under Original and under the
/// recommended design point.
pub fn workload_breakdown(unit: Unit, config: &ExperimentConfig) -> WorkloadBreakdown {
    let class = unit.fu_class();
    let workloads = match unit {
        Unit::Ialu => integer(config.scale),
        Unit::Fpau => floating_point(config.scale),
    };
    let rows = workloads
        .iter()
        .map(|w| {
            let mut base_sim = Simulator::new(config.machine.clone(), SteeringConfig::original());
            let base = base_sim
                .run_program(&w.program, config.inst_limit)
                .unwrap_or_else(|e| panic!("workload {} faulted: {e}", w.name));
            let mut opt_sim = Simulator::new(
                config.machine.clone(),
                SteeringConfig::paper_scheme(SteeringKind::Lut { slots: 2 }, true),
            );
            let opt = opt_sim
                .run_program(&w.program, config.inst_limit)
                .unwrap_or_else(|e| panic!("workload {} faulted: {e}", w.name));
            let baseline_bits = base.ledger.switched_bits(class);
            let steered_bits = opt.ledger.switched_bits(class);
            BreakdownRow {
                workload: w.name.to_string(),
                baseline_bits,
                steered_bits,
                reduction_pct: if baseline_bits == 0 {
                    0.0
                } else {
                    100.0 * (1.0 - steered_bits as f64 / baseline_bits as f64)
                },
                ipc: base.ipc(),
                mispredict_pct: 100.0 * base.branches.mispredict_rate(),
                cache_hit_pct: 100.0 * base.cache.hit_rate(),
            }
        })
        .collect();
    WorkloadBreakdown { unit, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_covers_the_whole_suite() {
        let b = workload_breakdown(Unit::Ialu, &ExperimentConfig::quick());
        assert_eq!(b.rows.len(), 7);
        assert!(b.rows.iter().all(|r| r.baseline_bits > 0));
        // Most integer workloads must benefit at this design point.
        let winners = b.rows.iter().filter(|r| r.reduction_pct > 0.0).count();
        assert!(winners >= 4, "only {winners}/7 workloads improved");
        assert!(b.render().contains("Per-workload"));
    }
}
