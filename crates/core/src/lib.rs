//! Experiment layer: regenerates every table and figure of the paper's
//! evaluation from the workspace's substrates.
//!
//! | Paper artefact | Entry point |
//! |---|---|
//! | Table 1 (bit patterns, IALU/FPAU) | [`SuiteProfile::table1`] |
//! | Table 2 (module occupancy) | [`SuiteProfile::table2`] |
//! | Table 3 (multiplication bit patterns) | [`SuiteProfile::table3`] |
//! | Figure 1 (routing example) | [`routing_example`] |
//! | Figure 4(a)/(b) (energy reduction per scheme) | [`figure4`] |
//! | §5 hardware cost (58 gates / 6 levels, …) | [`synthesis_report`] |
//! | §1 chip-level extrapolation ("roughly 4%") | [`chip_estimate`] |
//! | Headline numbers (17% / 18% / 26%) | [`headline`] |
//!
//! # Examples
//!
//! ```no_run
//! use fua_core::{figure4, ExperimentConfig, Unit};
//!
//! let config = ExperimentConfig::default();
//! let fig = figure4(Unit::Ialu, &config);
//! println!("{}", fig.render());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod breakdown;
mod chip;
mod config;
mod fig1;
mod figure4;
#[cfg(feature = "json")]
mod json;
mod observe;
mod sensitivity;
mod static_swap;
mod suite;
mod synthesis;

pub use breakdown::{workload_breakdown, BreakdownRow, WorkloadBreakdown};
pub use chip::{chip_estimate, ChipEstimate, EXECUTION_UNIT_POWER_SHARE};
pub use config::{ExperimentConfig, Unit};
pub use fig1::{routing_example, RoutingExample};
pub use figure4::{
    figure4, figure4_jobs, figure4_with_profile, figure4_with_profile_jobs, headline,
    headline_from, headline_jobs, Figure4, Figure4Row, Headline, SwapVariant,
};
#[cfg(feature = "json")]
pub use json::{Json, ToJson};
pub use observe::{observed_scheme, suite_metrics};
pub use sensitivity::{swap_sensitivity, SensitivityRow, SwapSensitivity};
pub use static_swap::{static_swap_comparison, StaticSwapComparison, StaticSwapRow};
pub use suite::{profile_suite, profile_suite_jobs, SuiteProfile};
pub use synthesis::{synthesis_report, SynthesisReport, SynthesisRow};
