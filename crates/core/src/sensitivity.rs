//! Cross-input sensitivity of the compiler swap pass.
//!
//! The paper lists this as the pass's second disadvantage: "since the
//! program must be profiled, performance will vary somewhat for different
//! input patterns" — but never measures it. This experiment does: profile
//! and rewrite each integer workload on its *train* input, then evaluate
//! the rewritten binary on an unseen *ref* input, against both the
//! baseline and a self-profiled (oracle) rewrite.
//!
//! The static pass (`fua-swap::StaticSwapPass`) rides along as a
//! control: its decisions are a pure function of the program text, so
//! its swap set must be *identical* on both builds — input invariance
//! by construction, checked here rather than assumed.

use fua_isa::FuClass;
use fua_sim::{Simulator, SteeringConfig};
use fua_stats::TextTable;
use fua_steer::SteeringKind;
use fua_swap::{CompilerSwapPass, StaticSwapPass};
use fua_workloads::integer_with_input;

use crate::ExperimentConfig;

/// One workload's cross-input result.
#[derive(Debug, Clone)]
pub struct SensitivityRow {
    /// Workload name.
    pub workload: String,
    /// Reduction on the training input, train-profiled swaps (percent).
    pub train_pct: f64,
    /// Reduction on the unseen input, train-profiled swaps (percent).
    pub cross_pct: f64,
    /// Reduction on the unseen input, self-profiled swaps (oracle).
    pub oracle_pct: f64,
    /// Reduction on the unseen input, profile-free static swaps.
    pub static_pct: f64,
    /// Static instructions swapped from the training profile.
    pub swapped: usize,
    /// Whether the static pass chose the same swap set on both builds
    /// (it must — its decisions cannot see the input data).
    pub static_invariant: bool,
}

/// The full cross-input study.
#[derive(Debug, Clone)]
pub struct SwapSensitivity {
    /// Per-workload rows.
    pub rows: Vec<SensitivityRow>,
}

impl SwapSensitivity {
    /// Renders the study.
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            "workload",
            "train input",
            "unseen input",
            "oracle (self-profiled)",
            "static (profile-free)",
            "swaps",
        ]);
        for r in &self.rows {
            t.push_row([
                r.workload.clone(),
                format!("{:.2}%", r.train_pct),
                format!("{:.2}%", r.cross_pct),
                format!("{:.2}%", r.oracle_pct),
                format!("{:.2}%", r.static_pct),
                r.swapped.to_string(),
            ]);
        }
        let invariant = self.rows.iter().all(|r| r.static_invariant);
        format!(
            "Compiler-swap cross-input sensitivity (IALU, 4-bit LUT + hw swap; \
             paper §4.4 lists this sensitivity but does not measure it)\n{t}\
             static swap sets identical across inputs: {}\n",
            if invariant {
                "yes (input-invariant by construction)"
            } else {
                "NO — analysis bug"
            }
        )
    }
}

/// IALU switched bits of `program` under the recommended design point.
fn ialu_bits(config: &ExperimentConfig, program: &fua_isa::Program, steered: bool) -> u64 {
    let steering = if steered {
        SteeringConfig::paper_scheme(SteeringKind::Lut { slots: 2 }, true)
    } else {
        SteeringConfig::original()
    };
    let mut sim = Simulator::new(config.machine.clone(), steering);
    sim.run_program(program, config.inst_limit)
        .expect("workload runs")
        .ledger
        .switched_bits(FuClass::IntAlu)
}

/// Applies the swap decisions recorded on one build of a program to
/// another build with the same static structure (different input data).
fn apply_swaps(target: &fua_isa::Program, swapped: &[usize]) -> fua_isa::Program {
    let mut out = target.clone();
    for &idx in swapped {
        let inst = *out.inst(idx);
        if let Some(flipped) = inst.swapped() {
            out.replace_inst(idx, flipped);
        }
    }
    out
}

/// Runs the study: train on input 0, evaluate on input 1.
pub fn swap_sensitivity(config: &ExperimentConfig) -> SwapSensitivity {
    let train = integer_with_input(config.scale, 0);
    let unseen = integer_with_input(config.scale, 1);
    let rows = train
        .iter()
        .zip(&unseen)
        .map(|(wt, wu)| {
            let outcome = CompilerSwapPass::with_limit(config.inst_limit)
                .run(&wt.program)
                .unwrap_or_else(|e| panic!("{}: swap pass faulted: {e}", wt.name));
            let oracle_outcome = CompilerSwapPass::with_limit(config.inst_limit)
                .run(&wu.program)
                .unwrap_or_else(|e| panic!("{}: oracle pass faulted: {e}", wu.name));
            let static_train = StaticSwapPass::new().run(&wt.program);
            let static_unseen = StaticSwapPass::new().run(&wu.program);

            let pct = |base: u64, opt: u64| {
                if base == 0 {
                    0.0
                } else {
                    100.0 * (1.0 - opt as f64 / base as f64)
                }
            };

            // Training input: baseline vs train-profiled rewrite.
            let train_base = ialu_bits(config, &wt.program, true);
            let train_opt = ialu_bits(config, &outcome.program, true);
            // Unseen input: the same static swaps, new data.
            let cross_program = apply_swaps(&wu.program, &outcome.swapped);
            let unseen_base = ialu_bits(config, &wu.program, true);
            let cross_opt = ialu_bits(config, &cross_program, true);
            // Oracle: profiled on the unseen input itself.
            let oracle_opt = ialu_bits(config, &oracle_outcome.program, true);
            // Static: no training run to transfer — the pass sees only
            // the text, so "train" vs "unseen" is the same rewrite.
            let static_opt = ialu_bits(config, &static_unseen.program, true);

            SensitivityRow {
                workload: wt.name.to_string(),
                train_pct: pct(train_base, train_opt),
                cross_pct: pct(unseen_base, cross_opt),
                oracle_pct: pct(unseen_base, oracle_opt),
                static_pct: pct(unseen_base, static_opt),
                swapped: outcome.swapped.len(),
                static_invariant: static_train.swapped == static_unseen.swapped,
            }
        })
        .collect();
    SwapSensitivity { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_input_study_is_well_formed() {
        let s = swap_sensitivity(&ExperimentConfig::quick());
        assert_eq!(s.rows.len(), 7);
        for r in &s.rows {
            // Swap effects are second-order: a few percent either way.
            // (Note the oracle is *not* guaranteed to beat the transferred
            // profile: the pass optimises average bit counts, a heuristic
            // that does not map monotonically to switched energy.)
            for v in [r.train_pct, r.cross_pct, r.oracle_pct, r.static_pct] {
                assert!(v.is_finite() && v.abs() < 25.0, "{}: {v}", r.workload);
            }
            // The static pass consults nothing but the text, so its
            // swap set cannot differ between the two builds.
            assert!(r.static_invariant, "{}: static swaps drifted", r.workload);
        }
        // At least one workload must have transferable swaps at all.
        assert!(s.rows.iter().any(|r| r.swapped > 0));
        let rendered = s.render();
        assert!(rendered.contains("cross-input"));
        assert!(rendered.contains("input-invariant by construction"));
    }
}
