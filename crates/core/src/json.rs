//! JSON emission for the CLI's `--json` flag.
//!
//! The value type and trait live in `fua-trace` (the bottom of the
//! dependency stack) so the trace sinks and metrics registry can emit
//! JSON too; this module re-exports them and keeps the hand-written
//! conversions for every report the experiment layer produces.

pub use fua_trace::{Json, ToJson};

use crate::{
    BreakdownRow, ChipEstimate, Figure4, Figure4Row, Headline, RoutingExample, SensitivityRow,
    StaticSwapComparison, StaticSwapRow, SwapSensitivity, SynthesisReport, SynthesisRow, Unit,
    WorkloadBreakdown,
};

impl ToJson for Unit {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for RoutingExample {
    fn to_json(&self) -> Json {
        Json::obj([
            ("default_bits", Json::UInt(self.default_bits.into())),
            ("optimal_bits", Json::UInt(self.optimal_bits.into())),
            ("worst_bits", Json::UInt(self.worst_bits.into())),
            ("saving_vs_worst_pct", Json::Float(self.saving_vs_worst_pct)),
            ("assignment", Json::arr(&self.assignment)),
        ])
    }
}

impl ToJson for Figure4Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("scheme", self.scheme.to_json()),
            ("base_pct", Json::Float(self.base_pct)),
            ("hardware_pct", Json::Float(self.hardware_pct)),
            (
                "hardware_compiler_pct",
                Json::Float(self.hardware_compiler_pct),
            ),
            ("compiler_only_pct", Json::Float(self.compiler_only_pct)),
        ])
    }
}

impl ToJson for Figure4 {
    fn to_json(&self) -> Json {
        Json::obj([
            ("unit", self.unit.to_json()),
            ("rows", Json::arr(&self.rows)),
            (
                "baseline_switched_bits",
                Json::UInt(self.baseline_switched_bits),
            ),
        ])
    }
}

impl ToJson for Headline {
    fn to_json(&self) -> Json {
        Json::obj([
            ("ialu_pct", Json::Float(self.ialu_pct)),
            ("fpau_pct", Json::Float(self.fpau_pct)),
            ("ialu_compiler_pct", Json::Float(self.ialu_compiler_pct)),
        ])
    }
}

impl ToJson for SynthesisRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("unit", self.unit.to_json()),
            ("vector_bits", self.vector_bits.to_json()),
            ("rs_entries", Json::UInt(self.rs_entries.into())),
            ("gates", Json::UInt(self.gates.into())),
            ("levels", Json::UInt(self.levels.into())),
            ("violations", self.violations.to_json()),
        ])
    }
}

impl ToJson for SynthesisReport {
    fn to_json(&self) -> Json {
        Json::obj([("rows", Json::arr(&self.rows))])
    }
}

impl ToJson for ChipEstimate {
    fn to_json(&self) -> Json {
        Json::obj([
            ("unit_reduction", Json::arr(&self.unit_reduction)),
            ("unit_share", Json::arr(&self.unit_share)),
            ("core_reduction", Json::Float(self.core_reduction)),
            ("chip_reduction", Json::Float(self.chip_reduction)),
        ])
    }
}

impl ToJson for BreakdownRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("workload", self.workload.to_json()),
            ("baseline_bits", Json::UInt(self.baseline_bits)),
            ("steered_bits", Json::UInt(self.steered_bits)),
            ("reduction_pct", Json::Float(self.reduction_pct)),
            ("ipc", Json::Float(self.ipc)),
            ("mispredict_pct", Json::Float(self.mispredict_pct)),
            ("cache_hit_pct", Json::Float(self.cache_hit_pct)),
        ])
    }
}

impl ToJson for WorkloadBreakdown {
    fn to_json(&self) -> Json {
        Json::obj([
            ("unit", self.unit.to_json()),
            ("rows", Json::arr(&self.rows)),
        ])
    }
}

impl ToJson for SensitivityRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("workload", self.workload.to_json()),
            ("train_pct", Json::Float(self.train_pct)),
            ("cross_pct", Json::Float(self.cross_pct)),
            ("oracle_pct", Json::Float(self.oracle_pct)),
            ("static_pct", Json::Float(self.static_pct)),
            ("swapped", self.swapped.to_json()),
            ("static_invariant", Json::Bool(self.static_invariant)),
        ])
    }
}

impl ToJson for SwapSensitivity {
    fn to_json(&self) -> Json {
        Json::obj([("rows", Json::arr(&self.rows))])
    }
}

impl ToJson for StaticSwapRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("workload", self.workload.to_json()),
            ("hardware_bits", Json::UInt(self.hardware_bits)),
            ("profile_bits", Json::UInt(self.profile_bits)),
            ("static_bits", Json::UInt(self.static_bits)),
            ("profile_swaps", self.profile_swaps.to_json()),
            ("static_swaps", self.static_swaps.to_json()),
            ("definite_rate", Json::Float(self.definite_rate)),
        ])
    }
}

impl ToJson for StaticSwapComparison {
    fn to_json(&self) -> Json {
        Json::obj([
            ("unit", self.unit.to_string().to_json()),
            ("rows", Json::arr(&self.rows)),
            (
                "recovery",
                match self.recovery() {
                    Some(f) => Json::Float(f),
                    None => Json::Null,
                },
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_serialise() {
        let h = Headline {
            ialu_pct: 17.0,
            fpau_pct: 18.25,
            ialu_compiler_pct: 26.0,
        };
        let text = h.to_json().pretty();
        assert!(text.contains("\"ialu_pct\": 17.0"));
        assert!(text.contains("\"fpau_pct\": 18.25"));
    }
}
