//! Dependency-free JSON emission for the CLI's `--json` flag.
//!
//! The build environment has no network access, so the workspace cannot
//! depend on `serde`/`serde_json`. The reports this crate produces are
//! small trees of numbers and strings; this module gives them a tiny
//! value type ([`Json`]) with a pretty printer, and a [`ToJson`] trait
//! each report implements by hand. Output matches `serde_json`'s
//! pretty format (two-space indent) for the shapes used here.

use std::fmt;

use crate::{
    BreakdownRow, ChipEstimate, Figure4, Figure4Row, Headline, RoutingExample, SensitivityRow,
    StaticSwapComparison, StaticSwapRow, SwapSensitivity, SynthesisReport, SynthesisRow, Unit,
    WorkloadBreakdown,
};

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (kept exact; floats cannot hold all u64s).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float. Non-finite values render as `null`, as `serde_json`
    /// does for its lossy modes — JSON has no NaN/Inf.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<const N: usize>(fields: [(&str, Json); N]) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Builds an array by converting each element.
    pub fn arr<T: ToJson>(items: &[T]) -> Json {
        Json::Arr(items.iter().map(ToJson::to_json).collect())
    }

    /// Pretty-prints with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    // Rust's shortest round-trip formatting is valid JSON
                    // except that it omits a fraction for whole numbers —
                    // that is still a legal JSON number.
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                newline(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.pretty())
    }
}

/// Conversion into a [`Json`] tree. Implemented by every report the
/// CLI can emit with `--json`.
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::UInt(*self)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::UInt(*self as u64)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for Unit {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for RoutingExample {
    fn to_json(&self) -> Json {
        Json::obj([
            ("default_bits", Json::UInt(self.default_bits.into())),
            ("optimal_bits", Json::UInt(self.optimal_bits.into())),
            ("worst_bits", Json::UInt(self.worst_bits.into())),
            ("saving_vs_worst_pct", Json::Float(self.saving_vs_worst_pct)),
            ("assignment", Json::arr(&self.assignment)),
        ])
    }
}

impl ToJson for Figure4Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("scheme", self.scheme.to_json()),
            ("base_pct", Json::Float(self.base_pct)),
            ("hardware_pct", Json::Float(self.hardware_pct)),
            (
                "hardware_compiler_pct",
                Json::Float(self.hardware_compiler_pct),
            ),
            ("compiler_only_pct", Json::Float(self.compiler_only_pct)),
        ])
    }
}

impl ToJson for Figure4 {
    fn to_json(&self) -> Json {
        Json::obj([
            ("unit", self.unit.to_json()),
            ("rows", Json::arr(&self.rows)),
            (
                "baseline_switched_bits",
                Json::UInt(self.baseline_switched_bits),
            ),
        ])
    }
}

impl ToJson for Headline {
    fn to_json(&self) -> Json {
        Json::obj([
            ("ialu_pct", Json::Float(self.ialu_pct)),
            ("fpau_pct", Json::Float(self.fpau_pct)),
            ("ialu_compiler_pct", Json::Float(self.ialu_compiler_pct)),
        ])
    }
}

impl ToJson for SynthesisRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("unit", self.unit.to_json()),
            ("vector_bits", self.vector_bits.to_json()),
            ("rs_entries", Json::UInt(self.rs_entries.into())),
            ("gates", Json::UInt(self.gates.into())),
            ("levels", Json::UInt(self.levels.into())),
            ("violations", self.violations.to_json()),
        ])
    }
}

impl ToJson for SynthesisReport {
    fn to_json(&self) -> Json {
        Json::obj([("rows", Json::arr(&self.rows))])
    }
}

impl ToJson for ChipEstimate {
    fn to_json(&self) -> Json {
        Json::obj([
            ("unit_reduction", Json::arr(&self.unit_reduction)),
            ("unit_share", Json::arr(&self.unit_share)),
            ("core_reduction", Json::Float(self.core_reduction)),
            ("chip_reduction", Json::Float(self.chip_reduction)),
        ])
    }
}

impl ToJson for BreakdownRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("workload", self.workload.to_json()),
            ("baseline_bits", Json::UInt(self.baseline_bits)),
            ("steered_bits", Json::UInt(self.steered_bits)),
            ("reduction_pct", Json::Float(self.reduction_pct)),
            ("ipc", Json::Float(self.ipc)),
            ("mispredict_pct", Json::Float(self.mispredict_pct)),
            ("cache_hit_pct", Json::Float(self.cache_hit_pct)),
        ])
    }
}

impl ToJson for WorkloadBreakdown {
    fn to_json(&self) -> Json {
        Json::obj([
            ("unit", self.unit.to_json()),
            ("rows", Json::arr(&self.rows)),
        ])
    }
}

impl ToJson for SensitivityRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("workload", self.workload.to_json()),
            ("train_pct", Json::Float(self.train_pct)),
            ("cross_pct", Json::Float(self.cross_pct)),
            ("oracle_pct", Json::Float(self.oracle_pct)),
            ("static_pct", Json::Float(self.static_pct)),
            ("swapped", self.swapped.to_json()),
            ("static_invariant", Json::Bool(self.static_invariant)),
        ])
    }
}

impl ToJson for SwapSensitivity {
    fn to_json(&self) -> Json {
        Json::obj([("rows", Json::arr(&self.rows))])
    }
}

impl ToJson for StaticSwapRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("workload", self.workload.to_json()),
            ("hardware_bits", Json::UInt(self.hardware_bits)),
            ("profile_bits", Json::UInt(self.profile_bits)),
            ("static_bits", Json::UInt(self.static_bits)),
            ("profile_swaps", self.profile_swaps.to_json()),
            ("static_swaps", self.static_swaps.to_json()),
            ("definite_rate", Json::Float(self.definite_rate)),
        ])
    }
}

impl ToJson for StaticSwapComparison {
    fn to_json(&self) -> Json {
        Json::obj([
            ("unit", self.unit.to_string().to_json()),
            ("rows", Json::arr(&self.rows)),
            (
                "recovery",
                match self.recovery() {
                    Some(f) => Json::Float(f),
                    None => Json::Null,
                },
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_as_json() {
        assert_eq!(Json::Null.pretty(), "null");
        assert_eq!(Json::Bool(true).pretty(), "true");
        assert_eq!(Json::UInt(u64::MAX).pretty(), u64::MAX.to_string());
        assert_eq!(Json::Int(-5).pretty(), "-5");
        assert_eq!(Json::Float(17.5).pretty(), "17.5");
        assert_eq!(Json::Float(f64::NAN).pretty(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        let s = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(s.pretty(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn objects_pretty_print_with_two_space_indent() {
        let v = Json::obj([
            ("name", Json::Str("x".into())),
            ("vals", Json::Arr(vec![Json::UInt(1), Json::UInt(2)])),
            ("empty", Json::Arr(vec![])),
        ]);
        assert_eq!(
            v.pretty(),
            "{\n  \"name\": \"x\",\n  \"vals\": [\n    1,\n    2\n  ],\n  \"empty\": []\n}"
        );
    }

    #[test]
    fn reports_serialise() {
        let h = Headline {
            ialu_pct: 17.0,
            fpau_pct: 18.25,
            ialu_compiler_pct: 26.0,
        };
        let text = h.to_json().pretty();
        assert!(text.contains("\"ialu_pct\": 17"));
        assert!(text.contains("\"fpau_pct\": 18.25"));
    }
}
