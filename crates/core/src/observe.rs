//! Observability: metrics-instrumented suite runs.
//!
//! The simulator is generic over a [`fua_trace::TraceSink`]; this module
//! threads one [`MetricsRecorder`] through every workload of a unit's
//! suite (the sink moves into each run and back out via
//! [`Simulator::into_sink`]) so counters and histograms accumulate
//! across the whole suite.

use fua_sim::{Simulator, SteeringConfig};
use fua_steer::SteeringKind;
use fua_trace::{MetricsRecorder, MetricsRegistry};
use fua_workloads::{floating_point, integer};

use crate::{ExperimentConfig, Unit};

/// The steering scheme the observability commands instrument: the
/// paper's recommended 4-bit LUT with hardware swapping.
pub fn observed_scheme() -> SteeringConfig {
    SteeringConfig::paper_scheme(SteeringKind::Lut { slots: 2 }, true)
}

/// Runs `unit`'s workload suite under [`observed_scheme`] with a
/// [`MetricsRecorder`] attached and returns the accumulated registry
/// (stage counters, per-module switched-bit totals, Hamming-distance
/// and occupancy histograms, ...).
pub fn suite_metrics(unit: Unit, config: &ExperimentConfig) -> MetricsRegistry {
    let workloads = match unit {
        Unit::Ialu => integer(config.scale),
        Unit::Fpau => floating_point(config.scale),
    };
    let mut recorder = MetricsRecorder::new();
    for w in &workloads {
        let mut sim = Simulator::with_sink(config.machine.clone(), observed_scheme(), recorder);
        sim.run_program(&w.program, config.inst_limit)
            .unwrap_or_else(|e| panic!("workload {} faulted: {e}", w.name));
        recorder = sim.into_sink();
    }
    recorder.into_registry()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_isa::FuClass;

    #[test]
    fn suite_metrics_accumulate_across_workloads() {
        let config = ExperimentConfig {
            inst_limit: 2_000,
            ..ExperimentConfig::quick()
        };
        let registry = suite_metrics(Unit::Ialu, &config);
        let retired = registry
            .counter_value("stage.retire")
            .expect("retire counter registered");
        assert!(retired > 0, "suite must retire instructions");
        // Every steered IALU op charges the ledger exactly once, so the
        // per-module energy counters must be non-trivial too.
        let bits = registry.sum_counters(&format!("switched_bits.{}.", FuClass::IntAlu));
        assert!(bits > 0, "IALU switched-bit counters must accumulate");
    }
}
