//! Static vs profile-guided operand swapping, head to head.
//!
//! The paper's compiler pass needs a profiling run, and §4.4 concedes
//! the consequences: extra tooling, and results that drift with the
//! input data. The static pass (`fua-swap::StaticSwapPass`) predicts
//! information bits by abstract interpretation instead. This experiment
//! answers the question that comparison hinges on: *how much of the
//! profile-guided switching reduction does the profile-free pass
//! recover?* — measured on the Figure-4 harness (4-bit LUT + hardware
//! swapping on top of each rewritten binary).

use fua_isa::FuClass;
use fua_sim::{Simulator, SteeringConfig};
use fua_stats::TextTable;
use fua_steer::SteeringKind;
use fua_swap::{CompilerSwapPass, StaticSwapPass};
use fua_workloads::{floating_point, integer, Workload};

use crate::{ExperimentConfig, Unit};

/// One workload's switched bits under each swap pass.
#[derive(Debug, Clone)]
pub struct StaticSwapRow {
    /// Workload name.
    pub workload: String,
    /// Switched bits with hardware swapping only (no compiler pass).
    pub hardware_bits: u64,
    /// Switched bits with the profile-guided pass applied first.
    pub profile_bits: u64,
    /// Switched bits with the static pass applied first.
    pub static_bits: u64,
    /// Static instructions the profile-guided pass swapped.
    pub profile_swaps: usize,
    /// Static instructions the static pass swapped.
    pub static_swaps: usize,
    /// Fraction of swappable instructions the analysis proved a case for.
    pub definite_rate: f64,
}

/// The full comparison for one unit.
#[derive(Debug, Clone)]
pub struct StaticSwapComparison {
    /// The unit measured.
    pub unit: Unit,
    /// Per-workload rows.
    pub rows: Vec<StaticSwapRow>,
}

impl StaticSwapComparison {
    /// Total switched bits with hardware swapping only.
    pub fn hardware_total(&self) -> u64 {
        self.rows.iter().map(|r| r.hardware_bits).sum()
    }

    /// Total switched bits after the profile-guided pass.
    pub fn profile_total(&self) -> u64 {
        self.rows.iter().map(|r| r.profile_bits).sum()
    }

    /// Total switched bits after the static pass.
    pub fn static_total(&self) -> u64 {
        self.rows.iter().map(|r| r.static_bits).sum()
    }

    /// The headline ratio: static-pass bit savings as a fraction of the
    /// profile-guided savings (1.0 = full recovery; >1 = static wins).
    /// `None` when the profile-guided pass saved nothing.
    pub fn recovery(&self) -> Option<f64> {
        let hw = self.hardware_total() as i128;
        let profile_gain = hw - self.profile_total() as i128;
        let static_gain = hw - self.static_total() as i128;
        if profile_gain <= 0 {
            None
        } else {
            Some(static_gain as f64 / profile_gain as f64)
        }
    }

    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            "workload",
            "hw only",
            "profile",
            "static",
            "profile swaps",
            "static swaps",
            "proven",
        ]);
        for r in &self.rows {
            t.push_row([
                r.workload.clone(),
                r.hardware_bits.to_string(),
                r.profile_bits.to_string(),
                r.static_bits.to_string(),
                r.profile_swaps.to_string(),
                r.static_swaps.to_string(),
                format!("{:.0}%", 100.0 * r.definite_rate),
            ]);
        }
        let recovery = match self.recovery() {
            Some(f) => format!("{:.0}%", 100.0 * f),
            None => "n/a (profile pass saved nothing)".to_string(),
        };
        format!(
            "Static vs profile-guided swapping, {} (4-bit LUT + hw swap on top)\n{t}\
             switched bits: hw-only {}, profile {}, static {}\n\
             static recovery of the profile-guided savings: {recovery}\n",
            self.unit,
            self.hardware_total(),
            self.profile_total(),
            self.static_total(),
        )
    }
}

fn switched_bits(config: &ExperimentConfig, program: &fua_isa::Program, class: FuClass) -> u64 {
    let mut sim = Simulator::new(
        config.machine.clone(),
        SteeringConfig::paper_scheme(SteeringKind::Lut { slots: 2 }, true),
    );
    sim.run_program(program, config.inst_limit)
        .expect("workload runs")
        .ledger
        .switched_bits(class)
}

/// Runs the comparison over the unit's suite: for each workload, rewrite
/// once with the profile-guided pass (trained on the same input it is
/// evaluated on — its best case) and once with the static pass, then
/// measure switched bits under the recommended design point.
pub fn static_swap_comparison(unit: Unit, config: &ExperimentConfig) -> StaticSwapComparison {
    let class = unit.fu_class();
    let workloads: Vec<Workload> = match unit {
        Unit::Ialu => integer(config.scale),
        Unit::Fpau => floating_point(config.scale),
    };
    let rows = workloads
        .iter()
        .map(|w| {
            let profiled = CompilerSwapPass::with_limit(config.inst_limit)
                .run(&w.program)
                .unwrap_or_else(|e| panic!("{}: swap pass faulted: {e}", w.name));
            let statically = StaticSwapPass::new().run(&w.program);
            StaticSwapRow {
                workload: w.name.to_string(),
                hardware_bits: switched_bits(config, &w.program, class),
                profile_bits: switched_bits(config, &profiled.program, class),
                static_bits: switched_bits(config, &statically.program, class),
                profile_swaps: profiled.swapped.len(),
                static_swaps: statically.swapped.len(),
                definite_rate: statically.definite_rate(),
            }
        })
        .collect();
    StaticSwapComparison { unit, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_pass_recovers_half_the_profile_guided_savings() {
        let c = static_swap_comparison(Unit::Ialu, &ExperimentConfig::quick());
        assert_eq!(c.rows.len(), 7);
        assert!(c.rows.iter().all(|r| r.hardware_bits > 0));
        // The static pass must prove cases for a usable share of sites.
        assert!(
            c.rows.iter().any(|r| r.static_swaps > 0),
            "static pass swapped nothing anywhere"
        );
        let recovery = c
            .recovery()
            .expect("profile-guided pass saves bits on the integer suite");
        assert!(
            recovery >= 0.5,
            "static pass recovers only {:.0}% of the profile-guided savings",
            100.0 * recovery
        );
        assert!(c.render().contains("recovery"));
    }
}
