//! Experiment configuration.

use fua_isa::FuClass;
use fua_sim::MachineConfig;

/// Which duplicated unit an experiment targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// The integer ALU pool (Figure 4(a), integer workloads).
    Ialu,
    /// The FP adder/subtractor pool (Figure 4(b), FP workloads).
    Fpau,
}

impl Unit {
    /// The corresponding FU class.
    pub fn fu_class(self) -> FuClass {
        match self {
            Unit::Ialu => FuClass::IntAlu,
            Unit::Fpau => FuClass::FpAlu,
        }
    }
}

impl std::fmt::Display for Unit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Unit::Ialu => f.write_str("IALU"),
            Unit::Fpau => f.write_str("FPAU"),
        }
    }
}

/// Shared knobs for every experiment.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Workload scale factor (1 ≈ 10⁵ dynamic instructions each).
    pub scale: u32,
    /// Per-run retired-instruction cap (bounds experiment time).
    pub inst_limit: u64,
    /// The simulated machine.
    pub machine: MachineConfig,
}

impl ExperimentConfig {
    /// The full-size configuration used by the benches and examples.
    pub fn full() -> Self {
        ExperimentConfig {
            scale: 1,
            inst_limit: 150_000,
            machine: MachineConfig::paper_default(),
        }
    }

    /// A reduced configuration for fast unit/integration tests.
    pub fn quick() -> Self {
        ExperimentConfig {
            scale: 1,
            inst_limit: 25_000,
            machine: MachineConfig::paper_default(),
        }
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_map_to_classes() {
        assert_eq!(Unit::Ialu.fu_class(), FuClass::IntAlu);
        assert_eq!(Unit::Fpau.fu_class(), FuClass::FpAlu);
        assert_eq!(Unit::Ialu.to_string(), "IALU");
    }

    #[test]
    fn quick_is_smaller_than_full() {
        assert!(ExperimentConfig::quick().inst_limit < ExperimentConfig::full().inst_limit);
    }
}
