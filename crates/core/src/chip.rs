//! The paper's chip-level extrapolation.
//!
//! Section 1: "In [Wattch] it was found that around 22% of the
//! processor's power is consumed in the execution units. Thus, the
//! decrease in total chip power is roughly 4%." This module reproduces
//! that arithmetic from the measured per-unit reductions, weighting each
//! FU class by its share of measured execution-core switching.

use fua_isa::FuClass;
use fua_power::EnergyLedger;
use fua_sim::{Simulator, SteeringConfig};
use fua_stats::TextTable;
use fua_steer::SteeringKind;
use fua_workloads::all;

use crate::ExperimentConfig;

/// Fraction of total processor power consumed by the execution units,
/// per the Wattch measurement the paper cites.
pub const EXECUTION_UNIT_POWER_SHARE: f64 = 0.22;

/// The chip-level power estimate.
#[derive(Debug, Clone)]
pub struct ChipEstimate {
    /// Measured switching reduction per FU class (fraction, 0..1).
    pub unit_reduction: [f64; 4],
    /// Each class's share of baseline execution-core switching.
    pub unit_share: [f64; 4],
    /// Reduction of the whole execution core (share-weighted).
    pub core_reduction: f64,
    /// Estimated reduction of total chip power
    /// (`core_reduction × EXECUTION_UNIT_POWER_SHARE`).
    pub chip_reduction: f64,
}

impl ChipEstimate {
    /// Renders the estimate with the paper's comparison point.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["unit", "share of core", "reduction"]);
        for class in FuClass::ALL {
            let i = class.index();
            t.push_row([
                class.to_string(),
                format!("{:.1}%", 100.0 * self.unit_share[i]),
                format!("{:.1}%", 100.0 * self.unit_reduction[i]),
            ]);
        }
        format!(
            "Chip-level extrapolation (execution units = {:.0}% of chip power, per Wattch)\n\
             {t}\
             execution-core reduction: {:.1}%\n\
             estimated total-chip reduction: {:.1}%  (paper: \"roughly 4%\")\n",
            100.0 * EXECUTION_UNIT_POWER_SHARE,
            100.0 * self.core_reduction,
            100.0 * self.chip_reduction,
        )
    }
}

/// Runs the whole suite under the recommended design point (4-bit LUT +
/// hardware swapping + multiplier swap) and extrapolates to chip level.
pub fn chip_estimate(config: &ExperimentConfig) -> ChipEstimate {
    // The multiplier swap rule is deliberately NOT enabled here: it
    // optimises Booth partial products, which a Hamming-only ledger
    // cannot credit (the reason the paper reports no multiplier numbers
    // either) — enabling it would charge its latch cost and credit
    // nothing.
    let run = |steered: bool| -> EnergyLedger {
        let mut total = EnergyLedger::new();
        for w in all(config.scale) {
            let steering = if steered {
                SteeringConfig::paper_scheme(SteeringKind::Lut { slots: 2 }, true)
            } else {
                SteeringConfig::original()
            };
            let mut sim = Simulator::new(config.machine.clone(), steering);
            total.merge(
                &sim.run_program(&w.program, config.inst_limit)
                    .unwrap_or_else(|e| panic!("workload {} faulted: {e}", w.name))
                    .ledger,
            );
        }
        total
    };
    let baseline = run(false);
    let steered = run(true);

    let total_base = baseline.total_switched_bits().max(1);
    let mut unit_reduction = [0.0; 4];
    let mut unit_share = [0.0; 4];
    for class in FuClass::ALL {
        let i = class.index();
        unit_share[i] = baseline.switched_bits(class) as f64 / total_base as f64;
        unit_reduction[i] = steered.reduction_vs(&baseline, class);
    }
    let core_reduction = 1.0 - steered.total_switched_bits() as f64 / total_base as f64;
    ChipEstimate {
        unit_reduction,
        unit_share,
        core_reduction,
        chip_reduction: core_reduction * EXECUTION_UNIT_POWER_SHARE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_estimate_is_positive_and_consistent() {
        let est = chip_estimate(&ExperimentConfig::quick());
        let share_sum: f64 = est.unit_share.iter().sum();
        assert!((share_sum - 1.0).abs() < 1e-9, "shares partition the core");
        assert!(est.core_reduction > 0.0, "the core must save energy");
        assert!(
            (est.chip_reduction - est.core_reduction * EXECUTION_UNIT_POWER_SHARE).abs() < 1e-12
        );
        // Same order of magnitude as the paper's "roughly 4%" claim
        // (ours is smaller, tracking our smaller per-unit reductions).
        assert!(est.chip_reduction > 0.003 && est.chip_reduction < 0.10);
        assert!(est.render().contains("roughly 4%"));
    }
}
