//! Section 5: routing-logic hardware cost.
//!
//! Every table is passed through the static LUT verifier
//! ([`fua_analysis::verify_lut`]) before it is costed — a cost estimate
//! for a malformed table would be meaningless, and the verifier's
//! cover-equivalence check is precisely the claim the gate count rests
//! on (the synthesised network computes what the table says).

use fua_analysis::verify_lut;
use fua_isa::{FP_MANTISSA_BITS, INT_BITS};
use fua_stats::{CaseProfile, TextTable};
use fua_steer::{LutBuilder, PAPER_FPAU_OCCUPANCY, PAPER_IALU_OCCUPANCY};
use fua_synth::routing_cost;

/// One row of the hardware-cost report.
#[derive(Debug, Clone)]
pub struct SynthesisRow {
    /// The unit ("IALU" / "FPAU").
    pub unit: String,
    /// LUT vector width in bits.
    pub vector_bits: usize,
    /// Reservation-station entries.
    pub rs_entries: u32,
    /// Estimated simple gates.
    pub gates: u32,
    /// Estimated logic levels.
    pub levels: u32,
    /// Static verifier findings for the synthesised table (0 = clean).
    pub violations: usize,
}

/// The regenerated §5 cost study.
#[derive(Debug, Clone)]
pub struct SynthesisReport {
    /// All (unit, vector width, RS entries) combinations.
    pub rows: Vec<SynthesisRow>,
}

impl SynthesisReport {
    /// Renders the report, flagging the paper's two quoted design points.
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            "unit",
            "LUT",
            "RS entries",
            "gates",
            "levels",
            "verified",
            "paper",
        ]);
        for r in &self.rows {
            let paper = match (r.unit.as_str(), r.vector_bits, r.rs_entries) {
                ("IALU", 4, 8) => "58 gates / 6 levels",
                ("IALU", 4, 32) => "130 gates / 8 levels",
                _ => "-",
            };
            t.push_row([
                r.unit.clone(),
                format!("{}-bit", r.vector_bits),
                r.rs_entries.to_string(),
                r.gates.to_string(),
                r.levels.to_string(),
                if r.violations == 0 {
                    "ok".to_string()
                } else {
                    format!("{} violations", r.violations)
                },
                paper.to_string(),
            ]);
        }
        format!("Section 5: routing-logic cost estimate (fan-in-4 gates)\n{t}")
    }

    /// The row for a given design point, if present.
    pub fn row(&self, unit: &str, vector_bits: usize, rs_entries: u32) -> Option<&SynthesisRow> {
        self.rows
            .iter()
            .find(|r| r.unit == unit && r.vector_bits == vector_bits && r.rs_entries == rs_entries)
    }
}

/// Synthesises the steering LUTs of both units at every vector width and
/// the paper's two reservation-station sizes.
pub fn synthesis_report() -> SynthesisReport {
    let mut rows = Vec::new();
    let units: [(&str, CaseProfile, u32, &[f64]); 2] = [
        (
            "IALU",
            CaseProfile::paper_ialu(),
            INT_BITS,
            &PAPER_IALU_OCCUPANCY,
        ),
        (
            "FPAU",
            CaseProfile::paper_fpau(),
            FP_MANTISSA_BITS,
            &PAPER_FPAU_OCCUPANCY,
        ),
    ];
    for (unit, profile, width, occupancy) in units {
        for slots in [1usize, 2, 4] {
            let lut = LutBuilder::new(profile, width)
                .occupancy(occupancy)
                .modules(4)
                .build(slots);
            let violations = verify_lut(&lut).len();
            for rs_entries in [8u32, 32] {
                let est = routing_cost(&lut, rs_entries, 4);
                rows.push(SynthesisRow {
                    unit: unit.to_string(),
                    vector_bits: lut.vector_bits(),
                    rs_entries,
                    gates: est.gates,
                    levels: est.levels,
                    violations,
                });
            }
        }
    }
    SynthesisReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_both_units_and_all_widths() {
        let r = synthesis_report();
        assert_eq!(r.rows.len(), 2 * 3 * 2);
        assert!(r.row("IALU", 4, 8).is_some());
        assert!(r.row("FPAU", 8, 32).is_some());
    }

    #[test]
    fn costs_scale_with_rs_entries() {
        let r = synthesis_report();
        let small = r.row("IALU", 4, 8).expect("present");
        let large = r.row("IALU", 4, 32).expect("present");
        assert!(large.gates > small.gates);
        assert!(large.levels > small.levels);
        // Same regime as the paper's 58-gate / 6-level claim.
        assert!((20..=120).contains(&small.gates), "{small:?}");
    }

    #[test]
    fn render_flags_the_paper_design_points() {
        let s = synthesis_report().render();
        assert!(s.contains("58 gates / 6 levels"));
        assert!(s.contains("130 gates / 8 levels"));
    }

    #[test]
    fn every_synthesised_table_passes_the_verifier() {
        let r = synthesis_report();
        for row in &r.rows {
            assert_eq!(
                row.violations, 0,
                "{} {}-bit LUT fails static verification",
                row.unit, row.vector_bits
            );
        }
        assert!(r.render().contains("ok"));
    }
}
