//! Figure 1: the worked three-FU routing example.

use fua_isa::{FuClass, Word};
use fua_power::{pair_cost, ModulePorts};
use fua_stats::TextTable;
use fua_steer::{FullHamPolicy, SteeringPolicy};
use fua_vm::FuOp;

/// The regenerated Figure-1 example: per-routing switching energy for the
/// paper's operand values.
#[derive(Debug, Clone)]
pub struct RoutingExample {
    /// Energy of the in-order ("default") routing, in switched bits.
    pub default_bits: u32,
    /// Energy of the optimal routing found by Full Ham.
    pub optimal_bits: u32,
    /// Energy of the worst routing.
    pub worst_bits: u32,
    /// Percentage saved by the optimal routing relative to the worst.
    pub saving_vs_worst_pct: f64,
    /// The chosen module for each cycle-2 operation.
    pub assignment: Vec<usize>,
}

impl RoutingExample {
    /// Renders the example.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["routing", "switched bits"]);
        t.push_row(["in-order".to_string(), self.default_bits.to_string()]);
        t.push_row(["optimal".to_string(), self.optimal_bits.to_string()]);
        t.push_row(["worst".to_string(), self.worst_bits.to_string()]);
        format!(
            "Figure 1: alternative data routes for a 3-way processor\n{t}\
             optimal assignment: {:?} ({:.0}% less energy than the worst \
             routing; paper reports 57% for its default)\n",
            self.assignment, self.saving_vs_worst_pct
        )
    }
}

/// Recomputes the Figure-1 example with the paper's operand values
/// (16-bit hex constants from the figure).
pub fn routing_example() -> RoutingExample {
    let cycle1 = [
        (Word::int(0x0A01), Word::int(0x0001)),
        (Word::int(0x7FFF), Word::int(0x0001)),
        (Word::int(0xFFF7u32 as i32), Word::int(0x7F00)),
    ];
    let cycle2 = [
        (Word::int(0x0A71), Word::int(0x0111)),
        (Word::int(0x0A01), Word::int(0x0001)),
        (Word::int(0x7F00), Word::int(0x0001)),
    ];

    let modules: Vec<ModulePorts> = cycle1
        .iter()
        .map(|&(a, b)| {
            let mut m = ModulePorts::new();
            m.latch(a, b);
            m
        })
        .collect();
    let ops: Vec<FuOp> = cycle2
        .iter()
        .map(|&(a, b)| FuOp {
            class: FuClass::IntAlu,
            op1: a,
            op2: b,
            commutative: false,
        })
        .collect();

    let routing_cost = |perm: &[usize]| -> u32 {
        perm.iter()
            .zip(&ops)
            .map(|(&m, o)| pair_cost(modules[m].prev(), o.op1, o.op2))
            .sum()
    };

    let perms: [[usize; 3]; 6] = [
        [0, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ];
    let default_bits = routing_cost(&perms[0]);
    let worst_bits = perms
        .iter()
        .map(|p| routing_cost(p))
        .max()
        .expect("non-empty");

    let choices = FullHamPolicy::new(false).assign(&ops, &modules);
    let assignment: Vec<usize> = choices.iter().map(|c| c.module).collect();
    let optimal_bits = routing_cost(&assignment);

    RoutingExample {
        default_bits,
        optimal_bits,
        worst_bits,
        saving_vs_worst_pct: 100.0 * (1.0 - optimal_bits as f64 / worst_bits as f64),
        assignment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_beats_default_and_worst() {
        let ex = routing_example();
        assert!(ex.optimal_bits < ex.default_bits);
        assert!(ex.optimal_bits < ex.worst_bits);
        assert!(ex.saving_vs_worst_pct > 25.0);
        assert!(ex.render().contains("Figure 1"));
    }

    #[test]
    fn assignment_is_a_permutation() {
        let mut a = routing_example().assignment;
        a.sort_unstable();
        assert_eq!(a, vec![0, 1, 2]);
    }
}
