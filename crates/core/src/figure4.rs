//! Figure 4: energy reduction per steering scheme and swap variant.

use fua_exec::{map_indexed_timed, ExecReport, Jobs};
use fua_isa::FuClass;
use fua_power::EnergyLedger;
use fua_sim::{Simulator, SteeringConfig};
use fua_stats::TextTable;
use fua_steer::SteeringKind;
use fua_swap::CompilerSwapPass;
use fua_workloads::{Workload, WorkloadArena};

use crate::{profile_suite, ExperimentConfig, SuiteProfile, Unit};

/// The three stacked bars of each Figure-4 column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapVariant {
    /// Base: steering only, no operand swapping anywhere.
    Base,
    /// Base + the hardware swap rule (cost-based swap for the Ham
    /// schemes).
    Hardware,
    /// Base + hardware + the profile-guided compiler swap pass.
    HardwareCompiler,
}

impl SwapVariant {
    /// All variants, in the paper's stacking order.
    pub const ALL: [SwapVariant; 3] = [
        SwapVariant::Base,
        SwapVariant::Hardware,
        SwapVariant::HardwareCompiler,
    ];
}

/// One Figure-4 column: a steering scheme with its swap variants, as
/// percentage energy reduction relative to Original/Base. The paper's
/// figure stacks three bars; `compiler_only_pct` adds the variant the
/// paper describes but does not plot ("'Base + Compiler Swapping' (not
/// shown) is nearly as effective as 'Base + Hardware + Compiler'").
#[derive(Debug, Clone, PartialEq)]
pub struct Figure4Row {
    /// The scheme label ("Full Ham", "4-bit LUT", ...).
    pub scheme: String,
    /// Reduction with no swapping (percent).
    pub base_pct: f64,
    /// Reduction with hardware swapping (percent).
    pub hardware_pct: f64,
    /// Reduction with hardware + compiler swapping (percent).
    pub hardware_compiler_pct: f64,
    /// Reduction with compiler swapping only (percent) — the paper's
    /// unplotted variant.
    pub compiler_only_pct: f64,
}

/// A regenerated Figure 4(a) or 4(b).
#[derive(Debug, Clone)]
pub struct Figure4 {
    /// Which unit the figure measures.
    pub unit: Unit,
    /// One row per scheme, in the paper's bar order.
    pub rows: Vec<Figure4Row>,
    /// Total baseline switched bits (denominator of every percentage).
    pub baseline_switched_bits: u64,
}

impl Figure4 {
    /// Renders the figure as a text table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            "scheme",
            "base %",
            "+hw swap %",
            "+hw+compiler %",
            "+compiler only %",
        ]);
        for r in &self.rows {
            t.push_row([
                r.scheme.clone(),
                format!("{:.1}", r.base_pct),
                format!("{:.1}", r.hardware_pct),
                format!("{:.1}", r.hardware_compiler_pct),
                format!("{:.1}", r.compiler_only_pct),
            ]);
        }
        format!(
            "Figure 4({}): {} energy reduction vs Original (baseline {} switched bits)\n{t}",
            match self.unit {
                Unit::Ialu => "a",
                Unit::Fpau => "b",
            },
            self.unit,
            self.baseline_switched_bits
        )
    }

    /// The row for a scheme, if present.
    pub fn row(&self, scheme: &str) -> Option<&Figure4Row> {
        self.rows.iter().find(|r| r.scheme == scheme)
    }
}

fn workloads_for(unit: Unit, arena: &WorkloadArena) -> &[Workload] {
    match unit {
        Unit::Ialu => arena.integer(),
        Unit::Fpau => arena.floating_point(),
    }
}

/// One suite-wide measurement of the sweep: a steering scheme, a swap
/// variant, and which program set (original or compiler-swapped) it runs
/// over. A suite expands into one *cell* per workload.
#[derive(Debug, Clone, Copy)]
struct SuiteSpec {
    kind: SteeringKind,
    hw_swap: bool,
    compiler_swapped: bool,
}

/// Regenerates Figure 4(a) (`Unit::Ialu`) or 4(b) (`Unit::Fpau`):
/// profiles the suite, builds every scheme from the *measured* statistics
/// (as the paper's authors did from their profiling runs), and measures
/// switched bits per scheme × swap variant.
pub fn figure4(unit: Unit, config: &ExperimentConfig) -> Figure4 {
    figure4_with_profile(unit, config, &profile_suite(config))
}

/// As [`figure4`], fanning the sweep's cells out across `jobs` workers.
pub fn figure4_jobs(unit: Unit, config: &ExperimentConfig, jobs: Jobs) -> Figure4 {
    let arena = WorkloadArena::build(config.scale);
    let (profile, _) = crate::profile_suite_jobs(config, &arena, jobs);
    figure4_with_profile_jobs(unit, config, &arena, &profile, jobs).0
}

/// As [`figure4`], reusing an already-measured [`SuiteProfile`] — the
/// profiling pass runs the whole suite, so callers producing both
/// figures (e.g. the `fua-report` bench ledger) should profile once and
/// share it.
pub fn figure4_with_profile(
    unit: Unit,
    config: &ExperimentConfig,
    profile: &SuiteProfile,
) -> Figure4 {
    let arena = WorkloadArena::build(config.scale);
    figure4_with_profile_jobs(unit, config, &arena, profile, Jobs::serial()).0
}

/// The parallel core of the figure: fans every (scheme × swap-variant ×
/// workload) cell of the sweep out across `jobs` workers over a shared
/// read-only [`WorkloadArena`], then folds per-cell energy ledgers **in
/// cell-index order** — so the figure is identical to the serial one
/// regardless of worker count or scheduling.
///
/// # Panics
///
/// Panics if a workload faults or the arena's scale differs from the
/// configuration's.
pub fn figure4_with_profile_jobs(
    unit: Unit,
    config: &ExperimentConfig,
    arena: &WorkloadArena,
    profile: &SuiteProfile,
    jobs: Jobs,
) -> (Figure4, ExecReport) {
    assert_eq!(
        arena.scale(),
        config.scale,
        "arena scale must match the experiment configuration"
    );
    let class = unit.fu_class();
    let ialu_profile = profile.case_profile(FuClass::IntAlu);
    let fpau_profile = profile.case_profile(FuClass::FpAlu);
    let ialu_occ = profile.ialu_occupancy.distribution();
    let fpau_occ = profile.fpau_occupancy.distribution();

    let workloads = workloads_for(unit, arena);
    // Compiler-swapped twins, shared by every scheme — one independent
    // cell per workload.
    let (swapped, mut report) = map_indexed_timed(jobs, workloads, |_, w| {
        let outcome = CompilerSwapPass::with_limit(config.inst_limit)
            .run(&w.program)
            .unwrap_or_else(|e| panic!("swap pass on {} faulted: {e}", w.name));
        Workload {
            program: outcome.program,
            ..w.clone()
        }
    });

    let machine = &config.machine;
    let make_scheme = |kind: SteeringKind, hw_swap: bool| {
        SteeringConfig::from_profiles_with_occupancy(
            kind,
            hw_swap,
            &ialu_profile,
            &fpau_profile,
            &ialu_occ,
            &fpau_occ,
            machine.modules(FuClass::IntAlu),
            machine.modules(FuClass::FpAlu),
        )
    };

    // Suite 0 is the Original/no-swap baseline (the denominator); the
    // rest cover every scheme × swap variant. Original's no-swap suite
    // is not re-run — its row reuses the baseline, like the serial code
    // always did.
    let mut suites = vec![SuiteSpec {
        kind: SteeringKind::Original,
        hw_swap: false,
        compiler_swapped: false,
    }];
    for kind in SteeringKind::FIGURE4 {
        if kind != SteeringKind::Original {
            suites.push(SuiteSpec {
                kind,
                hw_swap: false,
                compiler_swapped: false,
            });
        }
        suites.push(SuiteSpec {
            kind,
            hw_swap: true,
            compiler_swapped: false,
        });
        suites.push(SuiteSpec {
            kind,
            hw_swap: true,
            compiler_swapped: true,
        });
        suites.push(SuiteSpec {
            kind,
            hw_swap: false,
            compiler_swapped: true,
        });
    }

    // Flatten to cells — one (suite, workload) simulation each — and fan
    // out. Workers return one ledger per cell; nothing is merged off the
    // calling thread.
    let cells: Vec<(usize, usize)> = suites
        .iter()
        .enumerate()
        .flat_map(|(s, _)| (0..workloads.len()).map(move |w| (s, w)))
        .collect();
    let (ledgers, sweep_report) = map_indexed_timed(jobs, &cells, |_, &(s, w)| {
        let spec = suites[s];
        let workload = if spec.compiler_swapped {
            &swapped[w]
        } else {
            &workloads[w]
        };
        let mut sim = Simulator::new(config.machine.clone(), make_scheme(spec.kind, spec.hw_swap));
        let result = sim
            .run_program(&workload.program, config.inst_limit)
            .unwrap_or_else(|e| panic!("workload {} faulted: {e}", workload.name));
        result.ledger
    });
    report.merge(&sweep_report);

    // Deterministic reduction: per suite, merge cell ledgers in workload
    // order — the exact fold the serial loop performed.
    let suite_ledger = |s: usize| {
        let mut total = EnergyLedger::new();
        for w in 0..workloads.len() {
            total.merge(&ledgers[s * workloads.len() + w]);
        }
        total
    };

    let baseline = suite_ledger(0);
    let base_bits = baseline.switched_bits(class);
    let pct = |ledger: &EnergyLedger| {
        if base_bits == 0 {
            0.0
        } else {
            100.0 * (1.0 - ledger.switched_bits(class) as f64 / base_bits as f64)
        }
    };

    let mut rows = Vec::new();
    let mut next = 1; // suite 0 is the baseline
    for kind in SteeringKind::FIGURE4 {
        let base = if kind == SteeringKind::Original {
            pct(&baseline)
        } else {
            let l = suite_ledger(next);
            next += 1;
            pct(&l)
        };
        let hardware = pct(&suite_ledger(next));
        let compiler = pct(&suite_ledger(next + 1));
        let compiler_only = pct(&suite_ledger(next + 2));
        next += 3;
        rows.push(Figure4Row {
            scheme: kind.to_string(),
            base_pct: base,
            hardware_pct: hardware,
            hardware_compiler_pct: compiler,
            compiler_only_pct: compiler_only,
        });
    }

    (
        Figure4 {
            unit,
            rows,
            baseline_switched_bits: base_bits,
        },
        report,
    )
}

/// The paper's headline numbers: IALU/FPAU reduction with the
/// recommended 4-bit LUT + hardware swapping, and the IALU gain with
/// compiler swapping added (paper: ≈17%, ≈18%, ≈26%).
#[derive(Debug, Clone, Copy)]
pub struct Headline {
    /// IALU reduction, 4-bit LUT + hardware swap (percent).
    pub ialu_pct: f64,
    /// FPAU reduction, 4-bit LUT + hardware swap (percent).
    pub fpau_pct: f64,
    /// IALU reduction, 4-bit LUT + hardware + compiler swap (percent).
    pub ialu_compiler_pct: f64,
}

/// Computes the headline numbers from both Figure-4 runs (one shared
/// profiling pass).
pub fn headline(config: &ExperimentConfig) -> Headline {
    let profile = profile_suite(config);
    headline_from(
        &figure4_with_profile(Unit::Ialu, config, &profile),
        &figure4_with_profile(Unit::Fpau, config, &profile),
    )
}

/// As [`headline`], fanning the profiling pass and both figures' sweep
/// cells out across `jobs` workers. The result is identical to the
/// serial [`headline`] for any worker count.
pub fn headline_jobs(config: &ExperimentConfig, jobs: Jobs) -> Headline {
    let arena = WorkloadArena::build(config.scale);
    let (profile, _) = crate::profile_suite_jobs(config, &arena, jobs);
    headline_from(
        &figure4_with_profile_jobs(Unit::Ialu, config, &arena, &profile, jobs).0,
        &figure4_with_profile_jobs(Unit::Fpau, config, &arena, &profile, jobs).0,
    )
}

/// Derives the headline numbers from already-computed figures (`a` must
/// be the IALU figure, `b` the FPAU one).
///
/// # Panics
///
/// Panics if either figure lacks the "4-bit LUT" scheme row.
pub fn headline_from(a: &Figure4, b: &Figure4) -> Headline {
    let lut_a = a.row("4-bit LUT").expect("scheme present");
    let lut_b = b.row("4-bit LUT").expect("scheme present");
    Headline {
        ialu_pct: lut_a.hardware_pct,
        fpau_pct: lut_b.hardware_pct,
        ialu_compiler_pct: lut_a.hardware_compiler_pct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_shape_holds_at_small_scale() {
        let fig = figure4(Unit::Ialu, &ExperimentConfig::quick());
        assert_eq!(fig.rows.len(), 6);
        let get = |name: &str| fig.row(name).expect("row exists").hardware_pct;
        let full = get("Full Ham");
        let one_bit = get("1-bit Ham");
        let lut4 = get("4-bit LUT");
        let original = fig.row("Original").expect("row").base_pct;
        assert!(full > 0.0, "Full Ham must save energy, got {full:.1}%");
        assert!(
            full + 1e-9 >= one_bit,
            "Full Ham ({full:.1}%) should bound 1-bit Ham ({one_bit:.1}%)"
        );
        assert!(lut4 > 0.0, "4-bit LUT must save energy, got {lut4:.1}%");
        assert!(original.abs() < 1e-9, "Original/Base is the zero point");
        let render = fig.render();
        assert!(render.contains("Figure 4(a)"));
    }

    #[test]
    fn parallel_figure_is_bit_identical_to_serial() {
        let config = ExperimentConfig {
            inst_limit: 1_500,
            ..ExperimentConfig::quick()
        };
        let serial = figure4(Unit::Fpau, &config);
        let parallel = figure4_jobs(Unit::Fpau, &config, Jobs::new(3).unwrap());
        assert_eq!(
            serial.baseline_switched_bits,
            parallel.baseline_switched_bits
        );
        // Exact float equality on purpose: the parallel fold must follow
        // the serial merge order, so every percentage is bit-identical.
        assert_eq!(serial.rows, parallel.rows);
    }
}
