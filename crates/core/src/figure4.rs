//! Figure 4: energy reduction per steering scheme and swap variant.

use fua_isa::FuClass;
use fua_power::EnergyLedger;
use fua_sim::{Simulator, SteeringConfig};
use fua_stats::TextTable;
use fua_steer::SteeringKind;
use fua_swap::CompilerSwapPass;
use fua_workloads::{floating_point, integer, Workload};

use crate::{profile_suite, ExperimentConfig, SuiteProfile, Unit};

/// The three stacked bars of each Figure-4 column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapVariant {
    /// Base: steering only, no operand swapping anywhere.
    Base,
    /// Base + the hardware swap rule (cost-based swap for the Ham
    /// schemes).
    Hardware,
    /// Base + hardware + the profile-guided compiler swap pass.
    HardwareCompiler,
}

impl SwapVariant {
    /// All variants, in the paper's stacking order.
    pub const ALL: [SwapVariant; 3] = [
        SwapVariant::Base,
        SwapVariant::Hardware,
        SwapVariant::HardwareCompiler,
    ];
}

/// One Figure-4 column: a steering scheme with its swap variants, as
/// percentage energy reduction relative to Original/Base. The paper's
/// figure stacks three bars; `compiler_only_pct` adds the variant the
/// paper describes but does not plot ("'Base + Compiler Swapping' (not
/// shown) is nearly as effective as 'Base + Hardware + Compiler'").
#[derive(Debug, Clone, PartialEq)]
pub struct Figure4Row {
    /// The scheme label ("Full Ham", "4-bit LUT", ...).
    pub scheme: String,
    /// Reduction with no swapping (percent).
    pub base_pct: f64,
    /// Reduction with hardware swapping (percent).
    pub hardware_pct: f64,
    /// Reduction with hardware + compiler swapping (percent).
    pub hardware_compiler_pct: f64,
    /// Reduction with compiler swapping only (percent) — the paper's
    /// unplotted variant.
    pub compiler_only_pct: f64,
}

/// A regenerated Figure 4(a) or 4(b).
#[derive(Debug, Clone)]
pub struct Figure4 {
    /// Which unit the figure measures.
    pub unit: Unit,
    /// One row per scheme, in the paper's bar order.
    pub rows: Vec<Figure4Row>,
    /// Total baseline switched bits (denominator of every percentage).
    pub baseline_switched_bits: u64,
}

impl Figure4 {
    /// Renders the figure as a text table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            "scheme",
            "base %",
            "+hw swap %",
            "+hw+compiler %",
            "+compiler only %",
        ]);
        for r in &self.rows {
            t.push_row([
                r.scheme.clone(),
                format!("{:.1}", r.base_pct),
                format!("{:.1}", r.hardware_pct),
                format!("{:.1}", r.hardware_compiler_pct),
                format!("{:.1}", r.compiler_only_pct),
            ]);
        }
        format!(
            "Figure 4({}): {} energy reduction vs Original (baseline {} switched bits)\n{t}",
            match self.unit {
                Unit::Ialu => "a",
                Unit::Fpau => "b",
            },
            self.unit,
            self.baseline_switched_bits
        )
    }

    /// The row for a scheme, if present.
    pub fn row(&self, scheme: &str) -> Option<&Figure4Row> {
        self.rows.iter().find(|r| r.scheme == scheme)
    }
}

fn workloads_for(unit: Unit, scale: u32) -> Vec<Workload> {
    match unit {
        Unit::Ialu => integer(scale),
        Unit::Fpau => floating_point(scale),
    }
}

fn run_suite(
    config: &ExperimentConfig,
    workloads: &[Workload],
    make: impl Fn() -> SteeringConfig,
) -> EnergyLedger {
    let mut total = EnergyLedger::new();
    for w in workloads {
        let mut sim = Simulator::new(config.machine.clone(), make());
        let result = sim
            .run_program(&w.program, config.inst_limit)
            .unwrap_or_else(|e| panic!("workload {} faulted: {e}", w.name));
        total.merge(&result.ledger);
    }
    total
}

/// Regenerates Figure 4(a) (`Unit::Ialu`) or 4(b) (`Unit::Fpau`):
/// profiles the suite, builds every scheme from the *measured* statistics
/// (as the paper's authors did from their profiling runs), and measures
/// switched bits per scheme × swap variant.
pub fn figure4(unit: Unit, config: &ExperimentConfig) -> Figure4 {
    figure4_with_profile(unit, config, &profile_suite(config))
}

/// As [`figure4`], reusing an already-measured [`SuiteProfile`] — the
/// profiling pass runs the whole suite, so callers producing both
/// figures (e.g. the `fua-report` bench ledger) should profile once and
/// share it.
pub fn figure4_with_profile(
    unit: Unit,
    config: &ExperimentConfig,
    profile: &SuiteProfile,
) -> Figure4 {
    let class = unit.fu_class();
    let ialu_profile = profile.case_profile(FuClass::IntAlu);
    let fpau_profile = profile.case_profile(FuClass::FpAlu);
    let ialu_occ = profile.ialu_occupancy.distribution();
    let fpau_occ = profile.fpau_occupancy.distribution();

    let workloads = workloads_for(unit, config.scale);
    // Compiler-swapped twins, shared by every scheme.
    let swapped: Vec<Workload> = workloads
        .iter()
        .map(|w| {
            let outcome = CompilerSwapPass::with_limit(config.inst_limit)
                .run(&w.program)
                .unwrap_or_else(|e| panic!("swap pass on {} faulted: {e}", w.name));
            Workload {
                program: outcome.program,
                ..w.clone()
            }
        })
        .collect();

    let machine = &config.machine;
    let make_scheme = |kind: SteeringKind, hw_swap: bool| {
        SteeringConfig::from_profiles_with_occupancy(
            kind,
            hw_swap,
            &ialu_profile,
            &fpau_profile,
            &ialu_occ,
            &fpau_occ,
            machine.modules(FuClass::IntAlu),
            machine.modules(FuClass::FpAlu),
        )
    };

    let baseline = run_suite(config, &workloads, || {
        make_scheme(SteeringKind::Original, false)
    });
    let base_bits = baseline.switched_bits(class);

    let pct = |ledger: &EnergyLedger| {
        if base_bits == 0 {
            0.0
        } else {
            100.0 * (1.0 - ledger.switched_bits(class) as f64 / base_bits as f64)
        }
    };

    let mut rows = Vec::new();
    for kind in SteeringKind::FIGURE4 {
        let base = if kind == SteeringKind::Original {
            pct(&baseline)
        } else {
            pct(&run_suite(config, &workloads, || make_scheme(kind, false)))
        };
        let hardware = pct(&run_suite(config, &workloads, || make_scheme(kind, true)));
        let compiler = pct(&run_suite(config, &swapped, || make_scheme(kind, true)));
        let compiler_only = pct(&run_suite(config, &swapped, || make_scheme(kind, false)));
        rows.push(Figure4Row {
            scheme: kind.to_string(),
            base_pct: base,
            hardware_pct: hardware,
            hardware_compiler_pct: compiler,
            compiler_only_pct: compiler_only,
        });
    }

    Figure4 {
        unit,
        rows,
        baseline_switched_bits: base_bits,
    }
}

/// The paper's headline numbers: IALU/FPAU reduction with the
/// recommended 4-bit LUT + hardware swapping, and the IALU gain with
/// compiler swapping added (paper: ≈17%, ≈18%, ≈26%).
#[derive(Debug, Clone, Copy)]
pub struct Headline {
    /// IALU reduction, 4-bit LUT + hardware swap (percent).
    pub ialu_pct: f64,
    /// FPAU reduction, 4-bit LUT + hardware swap (percent).
    pub fpau_pct: f64,
    /// IALU reduction, 4-bit LUT + hardware + compiler swap (percent).
    pub ialu_compiler_pct: f64,
}

/// Computes the headline numbers from both Figure-4 runs (one shared
/// profiling pass).
pub fn headline(config: &ExperimentConfig) -> Headline {
    let profile = profile_suite(config);
    headline_from(
        &figure4_with_profile(Unit::Ialu, config, &profile),
        &figure4_with_profile(Unit::Fpau, config, &profile),
    )
}

/// Derives the headline numbers from already-computed figures (`a` must
/// be the IALU figure, `b` the FPAU one).
///
/// # Panics
///
/// Panics if either figure lacks the "4-bit LUT" scheme row.
pub fn headline_from(a: &Figure4, b: &Figure4) -> Headline {
    let lut_a = a.row("4-bit LUT").expect("scheme present");
    let lut_b = b.row("4-bit LUT").expect("scheme present");
    Headline {
        ialu_pct: lut_a.hardware_pct,
        fpau_pct: lut_b.hardware_pct,
        ialu_compiler_pct: lut_a.hardware_compiler_pct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_shape_holds_at_small_scale() {
        let fig = figure4(Unit::Ialu, &ExperimentConfig::quick());
        assert_eq!(fig.rows.len(), 6);
        let get = |name: &str| fig.row(name).expect("row exists").hardware_pct;
        let full = get("Full Ham");
        let one_bit = get("1-bit Ham");
        let lut4 = get("4-bit LUT");
        let original = fig.row("Original").expect("row").base_pct;
        assert!(full > 0.0, "Full Ham must save energy, got {full:.1}%");
        assert!(
            full + 1e-9 >= one_bit,
            "Full Ham ({full:.1}%) should bound 1-bit Ham ({one_bit:.1}%)"
        );
        assert!(lut4 > 0.0, "4-bit LUT must save energy, got {lut4:.1}%");
        assert!(original.abs() < 1e-9, "Original/Base is the zero point");
        let render = fig.render();
        assert!(render.contains("Figure 4(a)"));
    }
}
