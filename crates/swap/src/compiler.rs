//! The profile-guided compiler swap pass.

use std::collections::HashMap;

use fua_isa::{Case, FuClass, Program};
use fua_stats::BitPatternProfiler;
use fua_vm::{Vm, VmError};

/// Result of running [`CompilerSwapPass`].
#[derive(Debug, Clone)]
pub struct SwapOutcome {
    /// The rewritten program.
    pub program: Program,
    /// Static indices whose operands were swapped (ascending).
    pub swapped: Vec<usize>,
    /// Static instructions that were legal to swap (executed at least
    /// once, commutable in software).
    pub considered: usize,
}

impl SwapOutcome {
    /// Fraction of considered instructions that were swapped.
    pub fn swap_rate(&self) -> f64 {
        if self.considered == 0 {
            0.0
        } else {
            self.swapped.len() as f64 / self.considered as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct OperandSums {
    count: u64,
    op1_ones: u64,
    op2_ones: u64,
    class: Option<FuClass>,
}

/// Minimum average bit-count difference (in bits per execution) before a
/// swap is worthwhile. The compiler sees full counts, but a near-tie
/// carries no signal — swapping on noise perturbs the operand streams the
/// steering hardware is trying to keep homogeneous.
const SWAP_MARGIN_BITS: u64 = 2;

/// The profile-guided operand-swapping pass of Section 4.4.
///
/// Unlike the hardware rule, the compiler sees full bit counts and decides
/// per *static* instruction from the average over the profiling run — the
/// paper's listed strengths (full counts, opcode commutation) and
/// weaknesses (one decision for all dynamic instances, immediates pinned)
/// both follow from that.
///
/// The canonical operand order is derived from the same profile data the
/// hardware swap rule uses (Section 4.4): the mixed case with the lower
/// non-commutative frequency is the one that gets swapped away, so the
/// compiler canonicalises *towards the surviving mixed case* — otherwise
/// the two mechanisms would undo each other. Multiplier operands instead
/// always put the ones-sparse value second (Booth power tracks OP2's 1s).
#[derive(Debug, Clone, Copy)]
pub struct CompilerSwapPass {
    limit: u64,
    forced_direction: Option<bool>,
}

impl CompilerSwapPass {
    /// Creates the pass with the default profiling budget (2M retired
    /// instructions).
    pub fn new() -> Self {
        CompilerSwapPass {
            limit: 2_000_000,
            forced_direction: None,
        }
    }

    /// Sets the profiling instruction budget.
    pub fn with_limit(limit: u64) -> Self {
        CompilerSwapPass {
            limit,
            forced_direction: None,
        }
    }

    /// Forces the ALU canonical direction instead of deriving it from the
    /// profile: `true` = denser operand first (the paper's IALU), `false`
    /// = sparser operand first. Used by tests and the direction ablation.
    pub fn with_alu_direction(mut self, op1_dense_first: bool) -> Self {
        self.forced_direction = Some(op1_dense_first);
        self
    }

    /// Profiles `program` and returns a rewritten copy with beneficial
    /// swaps applied.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] raised while profiling.
    pub fn run(&self, program: &Program) -> Result<SwapOutcome, VmError> {
        let mut sums: HashMap<u32, OperandSums> = HashMap::new();
        let mut class_patterns = vec![BitPatternProfiler::new(); 4];
        let mut vm = Vm::new(program);
        vm.run_with(self.limit, |op| {
            let Some(fu) = op.fu else { return };
            class_patterns[fu.class.index()].record(&fu);
            let inst = program.inst(op.static_idx as usize);
            if !inst.software_swappable() {
                return;
            }
            let entry = sums.entry(op.static_idx).or_default();
            entry.count += 1;
            entry.op1_ones += fu.op1.ones() as u64;
            entry.op2_ones += fu.op2.ones() as u64;
            entry.class = Some(fu.class);
        })?;

        // Per-class canonical direction, from the measured case profile:
        // if the hardware rule would swap case 01 away, the canonical
        // mixed case is 10 (denser operand first), and vice versa.
        let op1_dense_first: [bool; 4] = std::array::from_fn(|i| match self.forced_direction {
            Some(d) => d,
            None => class_patterns[i].case_profile().hardware_swap_case() == Case::C01,
        });

        let mut rewritten = program.clone();
        let mut swapped = Vec::new();
        for (&idx, s) in &sums {
            let Some(class) = s.class else { continue };
            let dense_first = op1_dense_first[class.index()];
            if should_swap(class, dense_first, s.count, s.op1_ones, s.op2_ones) {
                let inst = program.inst(idx as usize);
                if let Some(flipped) = inst.swapped() {
                    rewritten.replace_inst(idx as usize, flipped);
                    swapped.push(idx as usize);
                }
            }
        }
        swapped.sort_unstable();
        Ok(SwapOutcome {
            program: rewritten,
            swapped,
            considered: sums.len(),
        })
    }
}

impl Default for CompilerSwapPass {
    fn default() -> Self {
        Self::new()
    }
}

/// The canonical-order predicate (see [`CompilerSwapPass`]).
fn should_swap(
    class: FuClass,
    op1_dense_first: bool,
    count: u64,
    op1_ones: u64,
    op2_ones: u64,
) -> bool {
    let margin = SWAP_MARGIN_BITS * count;
    match class {
        // Multipliers: ones-sparse operand second, always (Booth).
        FuClass::IntMul | FuClass::FpMul => op1_ones + margin < op2_ones,
        // ALUs: follow the measured canonical direction.
        FuClass::IntAlu | FuClass::FpAlu => {
            if op1_dense_first {
                op1_ones + margin < op2_ones
            } else {
                op2_ones + margin < op1_ones
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_isa::{IntReg, Opcode, ProgramBuilder};

    fn r(i: u8) -> IntReg {
        IntReg::new(i)
    }

    #[test]
    fn integer_add_is_canonicalised_dense_first() {
        // Small integer programs measure case 01 as the rarer
        // non-commutative mixed case, so the canonical order is
        // dense-operand-first, as in the paper's IALU.
        let mut b = ProgramBuilder::new();
        b.li(r(1), 3); // 2 ones
        b.li(r(2), -1); // 32 ones
        b.add(r(3), r(1), r(2));
        b.add(r(4), r(2), r(1)); // already canonical
        b.halt();
        let p = b.build().expect("valid");
        let out = CompilerSwapPass::new()
            .with_alu_direction(true)
            .run(&p)
            .expect("profiles");
        assert_eq!(out.swapped, vec![2]);
        assert_eq!(out.considered, 2);
        // Swapped instruction now reads r2 first.
        let inst = out.program.inst(2);
        assert_eq!(inst.src1.reg(), Some(r(2).into()));
    }

    #[test]
    fn comparison_swap_flips_the_opcode_and_preserves_semantics() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 2); // sparse
        b.li(r(2), -5); // dense
        b.sgt(r(3), r(1), r(2)); // 2 > -5 => 1
        b.halt();
        let p = b.build().expect("valid");
        let out = CompilerSwapPass::new()
            .with_alu_direction(true)
            .run(&p)
            .expect("profiles");
        assert_eq!(out.swapped, vec![2]);
        assert_eq!(out.program.inst(2).op, Opcode::Slt);
        // Semantics preserved: r3 = 1 either way.
        let mut vm = Vm::new(&out.program);
        vm.run(100).expect("runs");
        assert_eq!(vm.int_reg(r(3)), 1);
    }

    #[test]
    fn multiplies_put_the_sparse_operand_second() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 16); // 1 one
        b.li(r(2), 0x55555555u32 as i32); // 16 ones
        b.mul(r(3), r(1), r(2)); // dense op2: swap
        b.halt();
        let p = b.build().expect("valid");
        let out = CompilerSwapPass::new().run(&p).expect("profiles");
        assert_eq!(out.swapped, vec![2]);
        let mut vm = Vm::new(&out.program);
        vm.run(100).expect("runs");
        assert_eq!(vm.int_reg(r(3)), 16i32.wrapping_mul(0x55555555u32 as i32));
    }

    #[test]
    fn immediates_and_noncommutable_ops_are_untouched() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 1);
        b.addi(r(2), r(1), 1000); // immediate: pinned
        b.sub(r(3), r(1), r(2)); // non-commutable
        b.halt();
        let p = b.build().expect("valid");
        let out = CompilerSwapPass::new().run(&p).expect("profiles");
        assert!(out.swapped.is_empty());
        assert_eq!(out.considered, 0);
        assert_eq!(out.swap_rate(), 0.0);
    }

    #[test]
    fn near_ties_are_left_alone() {
        // Operands whose average densities differ by less than the margin
        // are not worth perturbing.
        let mut b = ProgramBuilder::new();
        b.li(r(1), 0b0011); // 2 ones
        b.li(r(2), 0b0111); // 3 ones: only 1 bit denser
        b.add(r(3), r(1), r(2));
        b.halt();
        let p = b.build().expect("valid");
        let out = CompilerSwapPass::new().run(&p).expect("profiles");
        assert!(out.swapped.is_empty());
        assert_eq!(out.considered, 1);
    }

    #[test]
    fn decision_uses_the_dynamic_average() {
        // One static add sees (dense, sparse) twice and (sparse, dense)
        // once: the average keeps it unswapped.
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.li(r(5), 3); // loop counter
        b.li(r(1), -1);
        b.li(r(2), 1);
        b.bind(top);
        b.add(r(3), r(1), r(2));
        b.addi(r(5), r(5), -1);
        b.bgtz(r(5), top);
        b.halt();
        let p = b.build().expect("valid");
        let out = CompilerSwapPass::new()
            .with_alu_direction(true)
            .run(&p)
            .expect("profiles");
        // The add at index 3 stays put: op1 is denser on average.
        assert!(!out.swapped.contains(&3));
    }

    #[test]
    fn profiling_respects_the_budget() {
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.bind(top);
        b.li(r(1), 1);
        b.j(top);
        b.halt();
        let p = b.build().expect("valid");
        // An infinite loop must still terminate under the budget.
        let out = CompilerSwapPass::with_limit(1_000)
            .run(&p)
            .expect("bounded");
        assert_eq!(out.swapped.len(), 0);
    }
}
