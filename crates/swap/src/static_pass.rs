//! The profile-free static swap pass.
//!
//! Where [`crate::CompilerSwapPass`] profiles a training run and
//! averages full bit counts, this pass never executes the program: it
//! predicts each instruction's information bits by abstract
//! interpretation ([`fua_analysis::InfoBitAnalysis`]) and canonicalises
//! commutative operand order from those predictions alone. Its
//! decisions are a pure function of the static text, so they cannot
//! vary across input data sets — the input-sensitivity the paper lists
//! as the profile-guided pass's weakness is absent *by construction*.

use fua_analysis::{InfoBitAnalysis, PortPrediction};
use fua_isa::{Case, FuClass, Program};
use fua_stats::CaseProfile;

/// Minimum expected-ones difference before a density swap is worth the
/// perturbation — the same margin the profile-guided pass applies to
/// its measured averages ([`crate::CompilerSwapPass`]).
const SWAP_MARGIN_BITS: f64 = 2.0;

/// Result of running [`StaticSwapPass`].
#[derive(Debug, Clone)]
pub struct StaticSwapOutcome {
    /// The rewritten program.
    pub program: Program,
    /// Static indices whose operands were swapped (ascending).
    pub swapped: Vec<usize>,
    /// Reachable, software-swappable instructions the pass examined.
    pub considered: usize,
    /// Of those, how many had a definite (non-⊤) case prediction.
    pub definite: usize,
    /// Swaps decided by the mixed-case tier (predicted case equals the
    /// class's swap-away case).
    pub case_swaps: usize,
    /// Swaps decided by the ones-density tier (same-case sites ordered
    /// by expected ones).
    pub density_swaps: usize,
}

impl StaticSwapOutcome {
    /// Fraction of considered instructions with a definite prediction.
    pub fn definite_rate(&self) -> f64 {
        if self.considered == 0 {
            0.0
        } else {
            self.definite as f64 / self.considered as f64
        }
    }
}

/// The profile-free static operand-swapping pass.
///
/// Two canonicalisation tiers, both decided purely from the abstract
/// interpretation:
///
/// 1. **Mixed-case tier** — an instruction is swapped iff the analysis
///    proves both operand information bits (so the predicted [`Case`]
///    is definite) and that case is the one the hardware swap rule of
///    Section 4.4 would swap away for the instruction's FU class. The
///    per-class direction comes from the paper's published Table-1
///    statistics — fixed constants, not a profile of the program under
///    compilation — and can be overridden for ablations.
/// 2. **Density tier** — for sites whose operands the analysis proved
///    *width-bounded* (both non-negative, so the case cannot change),
///    operands are ordered by expected ones-density, mirroring the
///    full-bit-count ordering of the profile-guided pass: the ALUs put
///    the denser operand first (the same direction the mixed-case
///    canonicalisation leaves behind — base-plus-index addressing ends
///    up with the wide index leading and the sparse constant base
///    second), and the Booth multipliers put the ones-sparse operand
///    second. Estimates come from
///    [`fua_analysis::AbsInt::expected_ones`]; a site is only
///    reordered when the estimated difference clears the same 2-bit
///    margin the profile-guided pass uses.
///
/// # Examples
///
/// ```
/// use fua_isa::{IntReg, ProgramBuilder};
/// use fua_swap::StaticSwapPass;
///
/// let (r1, r2, r3) = (IntReg::new(1), IntReg::new(2), IntReg::new(3));
/// let mut b = ProgramBuilder::new();
/// b.li(r1, 5); // provably non-negative
/// b.li(r2, -3); // provably negative
/// b.add(r3, r1, r2); // predicted case 01: the IALU's swap-away case
/// b.halt();
/// let program = b.build().unwrap();
///
/// let outcome = StaticSwapPass::new().run(&program);
/// assert_eq!(outcome.swapped, vec![2]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct StaticSwapPass {
    /// Per FU class (by [`FuClass::index`]): the mixed case to swap away.
    swap_away: [Case; 4],
}

impl StaticSwapPass {
    /// Creates the pass with per-class directions derived from the
    /// paper's Table-1/Table-3 profiles.
    pub fn new() -> Self {
        let mut swap_away = [Case::C01; 4];
        swap_away[FuClass::IntAlu.index()] = CaseProfile::paper_ialu().hardware_swap_case();
        swap_away[FuClass::FpAlu.index()] = CaseProfile::paper_fpau().hardware_swap_case();
        swap_away[FuClass::IntMul.index()] = CaseProfile::paper_int_mul().hardware_swap_case();
        swap_away[FuClass::FpMul.index()] = CaseProfile::paper_fp_mul().hardware_swap_case();
        StaticSwapPass { swap_away }
    }

    /// Overrides the swap-away case for one FU class.
    ///
    /// # Panics
    ///
    /// Panics if `case` is not one of the two mixed cases.
    pub fn with_swap_away(mut self, class: FuClass, case: Case) -> Self {
        assert!(case.is_mixed(), "only mixed cases can be swapped away");
        self.swap_away[class.index()] = case;
        self
    }

    /// Whether the density tier wants this site's operands reordered.
    fn density_swap(prediction: &PortPrediction) -> bool {
        let Some((est1, est2)) = prediction.ones_estimates() else {
            return false;
        };
        match prediction.class {
            // Booth multipliers: ones-sparse operand second, always.
            FuClass::IntMul | FuClass::FpMul => est1 + SWAP_MARGIN_BITS < est2,
            // ALUs: denser operand first — the same direction the
            // mixed-case tier canonicalises towards (swapping case 01
            // away leaves 10: the information-dense operand leads).
            FuClass::IntAlu | FuClass::FpAlu => est1 + SWAP_MARGIN_BITS < est2,
        }
    }

    /// Analyses `program` and returns a rewritten copy with every
    /// provably non-canonical commutative operand order swapped.
    pub fn run(&self, program: &Program) -> StaticSwapOutcome {
        let analysis = InfoBitAnalysis::run(program);
        let mut rewritten = program.clone();
        let mut swapped = Vec::new();
        let mut considered = 0usize;
        let mut definite = 0usize;
        let mut case_swaps = 0usize;
        let mut density_swaps = 0usize;
        for (idx, inst) in program.insts().iter().enumerate() {
            if !inst.software_swappable() || !analysis.is_reachable(idx) {
                continue;
            }
            let Some(prediction) = analysis.prediction(idx) else {
                continue;
            };
            considered += 1;
            let Some(case) = prediction.case() else {
                continue;
            };
            definite += 1;
            let swap = if case == self.swap_away[prediction.class.index()] {
                case_swaps += 1;
                true
            } else if case.is_mixed() {
                // Provably the canonical mixed case: leave it alone.
                false
            } else if Self::density_swap(prediction) {
                density_swaps += 1;
                true
            } else {
                false
            };
            if swap {
                if let Some(flipped) = inst.swapped() {
                    rewritten.replace_inst(idx, flipped);
                    swapped.push(idx);
                }
            }
        }
        StaticSwapOutcome {
            program: rewritten,
            swapped,
            considered,
            definite,
            case_swaps,
            density_swaps,
        }
    }
}

impl Default for StaticSwapPass {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_isa::{IntReg, Opcode, ProgramBuilder};
    use fua_vm::Vm;

    fn r(i: u8) -> IntReg {
        IntReg::new(i)
    }

    #[test]
    fn paper_directions_swap_away_case_01_on_the_ialu() {
        let pass = StaticSwapPass::new();
        assert_eq!(pass.swap_away[FuClass::IntAlu.index()], Case::C01);
    }

    #[test]
    fn provable_mixed_case_is_swapped() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 7);
        b.li(r(2), -9);
        b.add(r(3), r(1), r(2)); // case 01 → swap
        b.add(r(4), r(2), r(1)); // case 10 → canonical, keep
        b.halt();
        let p = b.build().unwrap();
        let out = StaticSwapPass::new().run(&p);
        assert_eq!(out.swapped, vec![2]);
        assert_eq!(out.considered, 2);
        assert_eq!(out.definite, 2);
        assert_eq!(out.program.inst(2).src1.reg(), Some(r(2).into()));
        // Semantics preserved.
        let mut vm = Vm::new(&out.program);
        vm.run(100).expect("runs");
        assert_eq!(vm.int_reg(r(3)), -2);
        assert_eq!(vm.int_reg(r(4)), -2);
    }

    #[test]
    fn compare_swap_flips_the_opcode() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 2);
        b.li(r(2), -5);
        b.sgt(r(3), r(1), r(2)); // case 01 → swap, sgt becomes slt
        b.halt();
        let p = b.build().unwrap();
        let out = StaticSwapPass::new().run(&p);
        assert_eq!(out.swapped, vec![2]);
        assert_eq!(out.program.inst(2).op, Opcode::Slt);
        let mut vm = Vm::new(&out.program);
        vm.run(100).expect("runs");
        assert_eq!(vm.int_reg(r(3)), 1, "2 > -5 still holds after the flip");
    }

    #[test]
    fn unprovable_operands_are_left_alone() {
        let mut b = ProgramBuilder::new();
        let slot = b.data_words(&[-17, 4]);
        b.li(r(1), slot);
        b.lw(r(2), r(1), 0); // loads are ⊤
        b.li(r(3), 3);
        b.add(r(4), r(3), r(2)); // op2 unknown: no definite case
        b.halt();
        let p = b.build().unwrap();
        let out = StaticSwapPass::new().run(&p);
        assert!(out.swapped.is_empty());
        assert_eq!(out.considered, 1);
        assert_eq!(out.definite, 0);
        assert!(out.definite_rate() < 1e-9);
    }

    #[test]
    fn decisions_are_a_function_of_the_text_alone() {
        // Two identical programs (fresh builds) get identical swap sets —
        // the pass has no hidden state and consults no execution.
        let build = || {
            let mut b = ProgramBuilder::new();
            b.li(r(1), 1);
            b.li(r(2), -2);
            b.add(r(3), r(1), r(2));
            b.xor(r(4), r(2), r(3));
            b.halt();
            b.build().unwrap()
        };
        let a = StaticSwapPass::new().run(&build());
        let b = StaticSwapPass::new().run(&build());
        assert_eq!(a.swapped, b.swapped);
        assert_eq!(a.program, b.program);
    }

    #[test]
    fn direction_override_flips_the_decision() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 7);
        b.li(r(2), -9);
        b.add(r(3), r(1), r(2)); // case 01
        b.halt();
        let p = b.build().unwrap();
        let out = StaticSwapPass::new()
            .with_swap_away(FuClass::IntAlu, Case::C10)
            .run(&p);
        assert!(out.swapped.is_empty(), "case 01 is now the canonical one");
    }
}
