//! Runtime operand swapping for the non-duplicated multipliers.

use fua_power::booth::significand;
use fua_vm::FuOp;

/// How operand "density" is measured when deciding a multiplier swap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SwapMetric {
    /// Count of 1 bits in the recoded value — the paper's literal rule
    /// ("the second operand is the one with fewer ones in it").
    #[default]
    Ones,
    /// Count of non-zero radix-4 Booth digits — the quantity the partial
    /// product array actually scales with (our extension model).
    BoothDigits,
}

impl SwapMetric {
    fn measure(self, w: fua_isa::Word) -> u32 {
        let (value, width) = significand(w);
        match self {
            SwapMetric::Ones => value.count_ones(),
            SwapMetric::BoothDigits => fua_power::booth::nonzero_booth_digits(value, width),
        }
    }
}

/// Hardware operand swapping for multipliers (Section 4.4, "Swapping for
/// multiplier units"): steering is impossible with a single module, but a
/// Booth multiplier is cheaper when the ones-sparse operand feeds the
/// recoder, so the rule swaps whenever OP1 is sparser than OP2.
///
/// # Examples
///
/// ```
/// use fua_isa::{FuClass, Word};
/// use fua_swap::MultiplierSwapRule;
/// use fua_vm::FuOp;
///
/// let rule = MultiplierSwapRule::new();
/// let mut op = FuOp {
///     class: FuClass::IntMul,
///     op1: Word::int(16),                    // sparse
///     op2: Word::int(0x5555_5555u32 as i32), // dense
///     commutative: true,
/// };
/// assert!(rule.apply(&mut op));
/// assert_eq!(op.op2, Word::int(16));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct MultiplierSwapRule {
    metric: SwapMetric,
}

impl MultiplierSwapRule {
    /// Creates the rule with the paper's ones-count metric.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the rule with an explicit metric.
    pub fn with_metric(metric: SwapMetric) -> Self {
        MultiplierSwapRule { metric }
    }

    /// The metric in use.
    pub fn metric(&self) -> SwapMetric {
        self.metric
    }

    /// Whether the rule would swap this operation.
    pub fn should_swap(&self, op: &FuOp) -> bool {
        op.commutative && self.metric.measure(op.op1) < self.metric.measure(op.op2)
    }

    /// Applies the rule in place; returns whether a swap happened.
    pub fn apply(&self, op: &mut FuOp) -> bool {
        if self.should_swap(op) {
            *op = op.swapped();
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_isa::{FuClass, Word};

    fn mul(a: Word, b: Word, commutative: bool) -> FuOp {
        FuOp {
            class: FuClass::IntMul,
            op1: a,
            op2: b,
            commutative,
        }
    }

    #[test]
    fn dense_second_operand_triggers_a_swap() {
        let rule = MultiplierSwapRule::new();
        let mut op = mul(Word::int(2), Word::int(-1), true);
        assert!(rule.apply(&mut op));
        assert_eq!(op.op1, Word::int(-1));
    }

    #[test]
    fn already_canonical_order_is_kept() {
        let rule = MultiplierSwapRule::new();
        let mut op = mul(Word::int(-1), Word::int(2), true);
        assert!(!rule.apply(&mut op));
    }

    #[test]
    fn division_is_never_swapped() {
        let rule = MultiplierSwapRule::new();
        let mut op = mul(Word::int(2), Word::int(-1), false); // div: not commutative
        assert!(!rule.apply(&mut op));
    }

    #[test]
    fn booth_metric_differs_from_ones_on_runs() {
        // 0x00FF has 8 ones but only 2 booth digits; 0x0505 has 4 ones and
        // 4 booth digits. The metrics rank them oppositely.
        let run = Word::int(0x00FF);
        let sparse = Word::int(0x0505);
        let ones = MultiplierSwapRule::with_metric(SwapMetric::Ones);
        let booth = MultiplierSwapRule::with_metric(SwapMetric::BoothDigits);
        let op = mul(run, sparse, true);
        // Ones: op1 has 8 ones > op2's 4 => no swap.
        assert!(!ones.should_swap(&op));
        // Booth: op1 has 2 digits < op2's 4 => swap (keep the cheap run in
        // the recoder).
        assert!(booth.should_swap(&op));
    }

    #[test]
    fn fp_multiplies_use_the_significand() {
        let rule = MultiplierSwapRule::new();
        let round = Word::fp(2.0); // significand has a single one
        let dense = Word::fp(0.1);
        let mut op = FuOp {
            class: FuClass::FpMul,
            op1: round,
            op2: dense,
            commutative: true,
        };
        assert!(rule.apply(&mut op));
        assert_eq!(op.op2, round);
    }
}
