//! Operand swapping beyond the hardware rule: the profile-guided compiler
//! pass of Section 4.4 and the multiplier swap.
//!
//! The compiler pass ([`CompilerSwapPass`]) profiles a program once,
//! averages the *full* bit counts of each static instruction's operands
//! (not just information bits — the paper's "1 + 511 vs 511 + 1" example),
//! and rewrites the binary: operands of commutative instructions are
//! reordered into the canonical order the hardware steering expects, and
//! comparison opcodes are commuted (`sgt` → `slt`) where the machine
//! encoding alone could not express the swap. Immediate second operands
//! are never swapped — the encoding pins them, exactly the limitation the
//! paper lists.
//!
//! The multiplier swap ([`MultiplierSwapRule`]) targets the non-duplicated
//! multipliers: a Booth multiplier's power grows with the number of 1s in
//! its second operand, so the rule puts the ones-sparse operand second.
//!
//! The static pass ([`StaticSwapPass`]) reaches the same canonical order
//! without any profiling run: it predicts operand information bits by
//! abstract interpretation (`fua-analysis`) and swaps only orders it can
//! *prove* non-canonical. Its decisions depend on the program text
//! alone, so — unlike the profile-guided pass — they cannot drift when
//! the input data changes.
//!
//! # Examples
//!
//! ```
//! use fua_isa::{IntReg, Opcode, ProgramBuilder};
//! use fua_swap::CompilerSwapPass;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (r1, r2, r3) = (IntReg::new(1), IntReg::new(2), IntReg::new(3));
//! let mut b = ProgramBuilder::new();
//! b.li(r1, 1);          // sparse
//! b.li(r2, -1);         // dense (all ones)
//! b.add(r3, r1, r2);    // canonical IALU order wants the dense op first
//! b.halt();
//! let program = b.build()?;
//!
//! // Real programs derive the direction from their own profile; this toy
//! // program pins it to the paper's IALU direction.
//! let outcome = CompilerSwapPass::new().with_alu_direction(true).run(&program)?;
//! assert_eq!(outcome.swapped, vec![2]);
//! assert_eq!(outcome.program.inst(2).op, Opcode::Add);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod compiler;
mod multiplier;
mod static_pass;

pub use compiler::{CompilerSwapPass, SwapOutcome};
pub use multiplier::{MultiplierSwapRule, SwapMetric};
pub use static_pass::{StaticSwapOutcome, StaticSwapPass};
