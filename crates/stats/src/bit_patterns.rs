//! Table-1/Table-3 bit-pattern profiling.

use fua_isa::Case;
use fua_vm::FuOp;

use crate::CaseProfile;

/// One row of the paper's Table 1 (or Table 3 when rows are aggregated
/// over commutativity): an operand-bit/commutativity bucket with its
/// frequency and per-operand bit densities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BitPatternRow {
    /// The information-bit case of the bucket.
    pub case: Case,
    /// Whether the bucket holds commutative instructions.
    pub commutative: bool,
    /// Bucket frequency as a percentage of all profiled operations.
    pub freq_pct: f64,
    /// Mean probability that a single OP1 bit is 1.
    pub op1_prob: f64,
    /// Mean probability that a single OP2 bit is 1.
    pub op2_prob: f64,
}

/// Per-information-bit operand statistics: the data behind the paper's
/// derived claims such as "when the top bit is 0, so are 91.2% of the
/// bits".
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OperandInfoStats {
    /// Number of operands whose information bit was 0.
    pub count_info0: u64,
    /// Number of operands whose information bit was 1.
    pub count_info1: u64,
    /// Mean fraction of 1 bits among info-bit-0 operands.
    pub ones_frac_info0: f64,
    /// Mean fraction of 1 bits among info-bit-1 operands.
    pub ones_frac_info1: f64,
}

impl OperandInfoStats {
    /// Fraction of operands whose information bit is 0.
    pub fn info0_fraction(&self) -> f64 {
        let total = self.count_info0 + self.count_info1;
        if total == 0 {
            0.0
        } else {
            self.count_info0 as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Bucket {
    count: u64,
    op1_ones: f64,
    op2_ones: f64,
}

/// Streams [`FuOp`]s and accumulates the paper's bit-pattern statistics.
///
/// One profiler covers one FU channel (e.g. all IALU operations, or all
/// integer multiplies); keep separate profilers per channel as the paper's
/// tables do.
#[derive(Debug, Clone, Default)]
pub struct BitPatternProfiler {
    // [case][commutative as usize]
    buckets: [[Bucket; 2]; 4],
    // Per-operand info-bit buckets: [info_bit as usize]
    info_counts: [u64; 2],
    info_ones: [f64; 2],
    total: u64,
}

impl BitPatternProfiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one FU operation.
    pub fn record(&mut self, op: &FuOp) {
        let case = op.case();
        let b = &mut self.buckets[case.index()][op.commutative as usize];
        b.count += 1;
        b.op1_ones += op.op1.ones_fraction();
        b.op2_ones += op.op2.ones_fraction();
        for w in [op.op1, op.op2] {
            let i = w.info_bit() as usize;
            self.info_counts[i] += 1;
            self.info_ones[i] += w.ones_fraction();
        }
        self.total += 1;
    }

    /// Total operations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The eight Table-1 rows, in the paper's order (case 00/01/10/11,
    /// commutative before non-commutative). Rows with zero count still
    /// appear, with zero frequency and densities.
    pub fn rows(&self) -> Vec<BitPatternRow> {
        let mut out = Vec::with_capacity(8);
        for case in Case::ALL {
            for commutative in [true, false] {
                let b = &self.buckets[case.index()][commutative as usize];
                let n = b.count.max(1) as f64;
                out.push(BitPatternRow {
                    case,
                    commutative,
                    freq_pct: if self.total == 0 {
                        0.0
                    } else {
                        100.0 * b.count as f64 / self.total as f64
                    },
                    op1_prob: if b.count == 0 { 0.0 } else { b.op1_ones / n },
                    op2_prob: if b.count == 0 { 0.0 } else { b.op2_ones / n },
                });
            }
        }
        out
    }

    /// Frequency of a case, commutative and non-commutative rows combined
    /// (0..=1).
    pub fn case_freq(&self, case: Case) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let c = self.buckets[case.index()];
        (c[0].count + c[1].count) as f64 / self.total as f64
    }

    /// Frequency of *non-commutative* operations of a case (0..=1) — the
    /// quantity the hardware swap rule minimises over.
    pub fn noncommutative_case_freq(&self, case: Case) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.buckets[case.index()][0].count as f64 / self.total as f64
    }

    /// Per-information-bit operand statistics (paper: "when the top bit is
    /// 0, so are 91.2% of the bits, and when this bit is 1, so are 63.7%").
    pub fn operand_info_stats(&self) -> OperandInfoStats {
        let mean = |i: usize| {
            if self.info_counts[i] == 0 {
                0.0
            } else {
                self.info_ones[i] / self.info_counts[i] as f64
            }
        };
        OperandInfoStats {
            count_info0: self.info_counts[0],
            count_info1: self.info_counts[1],
            ones_frac_info0: mean(0),
            ones_frac_info1: mean(1),
        }
    }

    /// Distils the profile into the form the LUT builder consumes.
    pub fn case_profile(&self) -> CaseProfile {
        let mut freq = [0.0; 4];
        let mut noncomm = [0.0; 4];
        let mut op1_prob = [0.5; 4];
        let mut op2_prob = [0.5; 4];
        for case in Case::ALL {
            let i = case.index();
            freq[i] = self.case_freq(case);
            noncomm[i] = self.noncommutative_case_freq(case);
            let c = self.buckets[i];
            let count = c[0].count + c[1].count;
            if count > 0 {
                op1_prob[i] = (c[0].op1_ones + c[1].op1_ones) / count as f64;
                op2_prob[i] = (c[0].op2_ones + c[1].op2_ones) / count as f64;
            }
        }
        CaseProfile {
            case_freq: freq,
            noncommutative_freq: noncomm,
            op1_ones_prob: op1_prob,
            op2_ones_prob: op2_prob,
        }
    }

    /// Merges another profiler of the same channel into this one.
    pub fn merge(&mut self, other: &BitPatternProfiler) {
        for c in 0..4 {
            for k in 0..2 {
                self.buckets[c][k].count += other.buckets[c][k].count;
                self.buckets[c][k].op1_ones += other.buckets[c][k].op1_ones;
                self.buckets[c][k].op2_ones += other.buckets[c][k].op2_ones;
            }
        }
        for i in 0..2 {
            self.info_counts[i] += other.info_counts[i];
            self.info_ones[i] += other.info_ones[i];
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_isa::{FuClass, Word};

    fn op(a: Word, b: Word, commutative: bool) -> FuOp {
        FuOp {
            class: FuClass::IntAlu,
            op1: a,
            op2: b,
            commutative,
        }
    }

    #[test]
    fn rows_partition_the_stream() {
        let mut p = BitPatternProfiler::new();
        p.record(&op(Word::int(1), Word::int(2), true));
        p.record(&op(Word::int(-1), Word::int(2), false));
        p.record(&op(Word::int(-1), Word::int(-2), true));
        p.record(&op(Word::int(1), Word::int(2), true));
        let rows = p.rows();
        let total_pct: f64 = rows.iter().map(|r| r.freq_pct).sum();
        assert!((total_pct - 100.0).abs() < 1e-9);
        let c00_comm = rows
            .iter()
            .find(|r| r.case == Case::C00 && r.commutative)
            .expect("row exists");
        assert!((c00_comm.freq_pct - 50.0).abs() < 1e-9);
    }

    #[test]
    fn bit_densities_follow_sign_extension() {
        let mut p = BitPatternProfiler::new();
        // Small positive numbers: mostly zero bits; small negatives: mostly
        // one bits.
        for v in 1..100 {
            p.record(&op(Word::int(v), Word::int(-v), true));
        }
        let stats = p.operand_info_stats();
        assert!(stats.ones_frac_info0 < 0.3, "{stats:?}");
        assert!(stats.ones_frac_info1 > 0.7, "{stats:?}");
        assert!((stats.info0_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn noncommutative_frequency_is_separated() {
        let mut p = BitPatternProfiler::new();
        p.record(&op(Word::int(1), Word::int(-1), true));
        p.record(&op(Word::int(1), Word::int(-1), false));
        p.record(&op(Word::int(1), Word::int(-1), false));
        assert!((p.case_freq(Case::C01) - 1.0).abs() < 1e-12);
        assert!((p.noncommutative_case_freq(Case::C01) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_sequential_recording() {
        let ops = [
            op(Word::int(3), Word::int(-4), true),
            op(Word::int(-3), Word::int(4), false),
            op(Word::int(7), Word::int(7), true),
        ];
        let mut whole = BitPatternProfiler::new();
        for o in &ops {
            whole.record(o);
        }
        let mut a = BitPatternProfiler::new();
        a.record(&ops[0]);
        let mut b = BitPatternProfiler::new();
        b.record(&ops[1]);
        b.record(&ops[2]);
        a.merge(&b);
        assert_eq!(a.total(), whole.total());
        for case in Case::ALL {
            assert!((a.case_freq(case) - whole.case_freq(case)).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_profiler_yields_zeroes_not_nans() {
        let p = BitPatternProfiler::new();
        for r in p.rows() {
            assert_eq!(r.freq_pct, 0.0);
            assert!(!r.op1_prob.is_nan());
        }
        assert_eq!(p.case_freq(Case::C00), 0.0);
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use fua_isa::{FuClass, Word};

    /// SplitMix64 step: a tiny deterministic generator so these checks
    /// sweep many operand mixes without an external test-case library.
    fn next(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn random_ops(state: &mut u64, max_len: usize) -> Vec<(i32, i32, bool)> {
        let len = (next(state) as usize) % max_len;
        (0..len)
            .map(|_| {
                let a = next(state) as i32;
                let b = next(state) as i32;
                (a, b, next(state) & 1 == 1)
            })
            .collect()
    }

    #[test]
    fn frequencies_always_partition() {
        let mut state = 0x5EED_0001u64;
        for _ in 0..64 {
            let mut ops = random_ops(&mut state, 200);
            ops.push((next(&mut state) as i32, next(&mut state) as i32, true));
            let mut p = BitPatternProfiler::new();
            for (a, b, c) in &ops {
                p.record(&FuOp {
                    class: FuClass::IntAlu,
                    op1: Word::int(*a),
                    op2: Word::int(*b),
                    commutative: *c,
                });
            }
            let total_pct: f64 = p.rows().iter().map(|r| r.freq_pct).sum();
            assert!((total_pct - 100.0).abs() < 1e-6);
            let case_total: f64 = Case::ALL.iter().map(|&c| p.case_freq(c)).sum();
            assert!((case_total - 1.0).abs() < 1e-9);
            // Non-commutative frequency never exceeds the case frequency.
            for c in Case::ALL {
                assert!(p.noncommutative_case_freq(c) <= p.case_freq(c) + 1e-12);
            }
            // The distilled profile is a valid probability model.
            let profile = p.case_profile();
            let freq_sum: f64 = profile.case_freq.iter().sum();
            assert!((freq_sum - 1.0).abs() < 1e-9);
            for i in 0..4 {
                assert!((0.0..=1.0).contains(&profile.op1_ones_prob[i]));
                assert!((0.0..=1.0).contains(&profile.op2_ones_prob[i]));
            }
        }
    }

    #[test]
    fn merge_commutes_with_recording() {
        let rec = |ops: &[(i32, i32, bool)], p: &mut BitPatternProfiler| {
            for (a, b, _) in ops {
                p.record(&FuOp {
                    class: FuClass::IntAlu,
                    op1: Word::int(*a),
                    op2: Word::int(*b),
                    commutative: true,
                });
            }
        };
        let mut state = 0x5EED_0002u64;
        for _ in 0..64 {
            let left = random_ops(&mut state, 50);
            let right = random_ops(&mut state, 50);
            let mut whole = BitPatternProfiler::new();
            rec(&left, &mut whole);
            rec(&right, &mut whole);
            let mut a = BitPatternProfiler::new();
            rec(&left, &mut a);
            let mut b = BitPatternProfiler::new();
            rec(&right, &mut b);
            a.merge(&b);
            assert_eq!(a.total(), whole.total());
            for c in Case::ALL {
                assert!((a.case_freq(c) - whole.case_freq(c)).abs() < 1e-12);
            }
            let sa = a.operand_info_stats();
            let sw = whole.operand_info_stats();
            assert_eq!(sa.count_info0, sw.count_info0);
            assert!((sa.ones_frac_info1 - sw.ones_frac_info1).abs() < 1e-9);
        }
    }
}
