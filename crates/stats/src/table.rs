//! Plain-text table rendering for experiment reports.

use std::fmt;

/// A fixed-width text table used by every experiment renderer.
///
/// # Examples
///
/// ```
/// use fua_stats::TextTable;
///
/// let mut t = TextTable::new(["case", "freq"]);
/// t.push_row(["00", "69.5%"]);
/// let s = t.to_string();
/// assert!(s.contains("case"));
/// assert!(s.contains("69.5%"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the header count.
    pub fn push_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width does not match header width"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["a", "long-header"]);
        t.push_row(["wide-cell-value", "1"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].contains("wide-cell-value"));
    }

    #[test]
    #[should_panic]
    fn mismatched_row_width_panics() {
        let mut t = TextTable::new(["a", "b"]);
        t.push_row(["only-one"]);
    }

    #[test]
    fn empty_table_reports_empty() {
        let t = TextTable::new(["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
