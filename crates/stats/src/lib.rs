//! Operand-statistics profilers: the machinery behind the paper's
//! Tables 1, 2 and 3.
//!
//! * [`BitPatternProfiler`] — classifies every FU operation by the
//!   information bits of its operands and its commutativity, and records
//!   per-operand bit densities (Table 1 for the IALU/FPAU, Table 3 for the
//!   multipliers).
//! * [`OccupancyProfiler`] — histogram of how many modules of an FU type
//!   issue together each cycle (Table 2).
//! * [`CaseProfile`] — the distilled case statistics the LUT builder
//!   consumes, constructible either from a profiler or from the paper's
//!   published numbers ([`CaseProfile::paper_ialu`],
//!   [`CaseProfile::paper_fpau`]).
//!
//! # Examples
//!
//! ```
//! use fua_isa::{Case, FuClass, Word};
//! use fua_stats::BitPatternProfiler;
//! use fua_vm::FuOp;
//!
//! let mut prof = BitPatternProfiler::new();
//! prof.record(&FuOp {
//!     class: FuClass::IntAlu,
//!     op1: Word::int(5),
//!     op2: Word::int(-9),
//!     commutative: true,
//! });
//! assert_eq!(prof.total(), 1);
//! assert!(prof.case_freq(Case::C01) > 0.99);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod bit_patterns;
mod occupancy;
mod profile;
mod table;

pub use bit_patterns::{BitPatternProfiler, BitPatternRow, OperandInfoStats};
pub use occupancy::OccupancyProfiler;
pub use profile::CaseProfile;
pub use table::TextTable;
