//! Distilled case statistics consumed by the steering-LUT builder.

use fua_isa::Case;

/// Case statistics for one FU channel: everything the LUT construction
/// algorithm of Section 4.3 needs.
///
/// A profile can come from a measurement run
/// ([`crate::BitPatternProfiler::case_profile`]) or from the paper's
/// published Table 1 ([`CaseProfile::paper_ialu`] /
/// [`CaseProfile::paper_fpau`]), which lets unit tests check that the
/// builder reproduces the paper's design decisions exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaseProfile {
    /// `P(case)`, commutative and non-commutative combined. Sums to 1 for
    /// non-empty channels.
    pub case_freq: [f64; 4],
    /// `P(case ∧ non-commutative)` — the hardware swap rule picks the
    /// mixed case minimising this.
    pub noncommutative_freq: [f64; 4],
    /// Mean `P(bit = 1)` of OP1 within each case.
    pub op1_ones_prob: [f64; 4],
    /// Mean `P(bit = 1)` of OP2 within each case.
    pub op2_ones_prob: [f64; 4],
}

impl CaseProfile {
    /// Builds a profile from raw table rows
    /// `(case, commutative, freq_pct, op1_prob, op2_prob)`.
    pub fn from_rows(rows: &[(Case, bool, f64, f64, f64)]) -> Self {
        let mut freq = [0.0; 4];
        let mut noncomm = [0.0; 4];
        let mut p1 = [0.0; 4];
        let mut p2 = [0.0; 4];
        for &(case, commutative, f, a, b) in rows {
            let i = case.index();
            freq[i] += f;
            if !commutative {
                noncomm[i] += f;
            }
            p1[i] += f * a;
            p2[i] += f * b;
        }
        for i in 0..4 {
            if freq[i] > 0.0 {
                p1[i] /= freq[i];
                p2[i] /= freq[i];
            } else {
                p1[i] = 0.5;
                p2[i] = 0.5;
            }
        }
        let total: f64 = freq.iter().sum();
        if total > 0.0 {
            for i in 0..4 {
                freq[i] /= total;
                noncomm[i] /= total;
            }
        }
        CaseProfile {
            case_freq: freq,
            noncommutative_freq: noncomm,
            op1_ones_prob: p1,
            op2_ones_prob: p2,
        }
    }

    /// The paper's Table 1, IALU columns.
    pub fn paper_ialu() -> Self {
        use Case::*;
        Self::from_rows(&[
            (C00, true, 40.11, 0.123, 0.068),
            (C00, false, 29.38, 0.078, 0.040),
            (C01, true, 9.56, 0.175, 0.594),
            (C01, false, 0.58, 0.109, 0.820),
            (C10, true, 17.07, 0.608, 0.089),
            (C10, false, 1.51, 0.643, 0.048),
            (C11, true, 1.52, 0.703, 0.822),
            (C11, false, 0.27, 0.663, 0.719),
        ])
    }

    /// The paper's Table 1, FPAU columns.
    pub fn paper_fpau() -> Self {
        use Case::*;
        Self::from_rows(&[
            (C00, true, 16.79, 0.099, 0.094),
            (C00, false, 10.28, 0.107, 0.158),
            (C01, true, 15.64, 0.188, 0.522),
            (C01, false, 4.90, 0.132, 0.514),
            (C10, true, 5.92, 0.513, 0.190),
            (C10, false, 4.22, 0.500, 0.188),
            (C11, true, 31.00, 0.508, 0.502),
            (C11, false, 11.25, 0.507, 0.506),
        ])
    }

    /// The paper's Table 3, integer-multiplication columns (multiplies are
    /// commutative, so the non-commutative frequencies are zero).
    pub fn paper_int_mul() -> Self {
        use Case::*;
        Self::from_rows(&[
            (C00, true, 93.79, 0.116, 0.056),
            (C01, true, 1.07, 0.055, 0.956),
            (C10, true, 2.76, 0.838, 0.076),
            (C11, true, 2.38, 0.71, 0.909),
        ])
    }

    /// The paper's Table 3, floating-point-multiplication columns.
    pub fn paper_fp_mul() -> Self {
        use Case::*;
        Self::from_rows(&[
            (C00, true, 20.12, 0.139, 0.095),
            (C01, true, 15.52, 0.160, 0.511),
            (C10, true, 21.29, 0.527, 0.090),
            (C11, true, 43.07, 0.274, 0.271),
        ])
    }

    /// The least-frequent case — used to pad short LUT vectors (the
    /// paper's `least`).
    pub fn least_case(&self) -> Case {
        let mut best = Case::C00;
        for c in Case::ALL {
            if self.case_freq[c.index()] < self.case_freq[best.index()] {
                best = c;
            }
        }
        best
    }

    /// The most frequent case.
    pub fn most_frequent_case(&self) -> Case {
        let mut best = Case::C00;
        for c in Case::ALL {
            if self.case_freq[c.index()] > self.case_freq[best.index()] {
                best = c;
            }
        }
        best
    }

    /// Expected switched bits when an operation of case `next` issues to a
    /// module whose latches last held an operation of case `prev`, for
    /// operands `width` bits wide.
    ///
    /// Bits are modelled as independent with the per-case densities of the
    /// profile: a bit flips with probability `p(1-q) + q(1-p)`.
    pub fn expected_pair_cost(&self, prev: Case, next: Case, width: u32) -> f64 {
        let flip = |p: f64, q: f64| p * (1.0 - q) + q * (1.0 - p);
        let i = prev.index();
        let j = next.index();
        width as f64
            * (flip(self.op1_ones_prob[i], self.op1_ones_prob[j])
                + flip(self.op2_ones_prob[i], self.op2_ones_prob[j]))
    }

    /// The hardware swap rule of Section 4.4: among the two mixed cases,
    /// swap the one with the lower frequency of *non-commutative*
    /// instructions (those are the ones that cannot be flipped and would
    /// keep causing mismatches).
    pub fn hardware_swap_case(&self) -> Case {
        if self.noncommutative_freq[Case::C01.index()]
            <= self.noncommutative_freq[Case::C10.index()]
        {
            Case::C01
        } else {
            Case::C10
        }
    }
}

impl Default for CaseProfile {
    /// A flat profile: uniform cases, half-dense operands.
    fn default() -> Self {
        CaseProfile {
            case_freq: [0.25; 4],
            noncommutative_freq: [0.05; 4],
            op1_ones_prob: [0.5; 4],
            op2_ones_prob: [0.5; 4],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ialu_frequencies_normalise() {
        let p = CaseProfile::paper_ialu();
        let sum: f64 = p.case_freq.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // Case 00 dominates: 69.49%.
        assert!((p.case_freq[0] - 0.6949).abs() < 1e-3);
        assert_eq!(p.most_frequent_case(), Case::C00);
        // Case 11 is rarest for the IALU.
        assert_eq!(p.least_case(), Case::C11);
    }

    #[test]
    fn paper_fpau_most_frequent_is_11() {
        let p = CaseProfile::paper_fpau();
        assert_eq!(p.most_frequent_case(), Case::C11);
        assert!((p.case_freq[3] - 0.4225).abs() < 1e-3);
    }

    #[test]
    fn hardware_swap_cases_match_the_paper() {
        // Section 4.4: swap case 01 for the IALU (row 4 < row 6), case 10
        // for the FPAU (row 6 < row 4).
        assert_eq!(CaseProfile::paper_ialu().hardware_swap_case(), Case::C01);
        assert_eq!(CaseProfile::paper_fpau().hardware_swap_case(), Case::C10);
    }

    #[test]
    fn expected_cost_is_zero_for_identical_dense_profiles() {
        let p = CaseProfile {
            op1_ones_prob: [0.0; 4],
            op2_ones_prob: [0.0; 4],
            ..Default::default()
        };
        assert_eq!(p.expected_pair_cost(Case::C00, Case::C00, 32), 0.0);
    }

    #[test]
    fn expected_cost_penalises_opposite_cases() {
        let p = CaseProfile::paper_ialu();
        let same = p.expected_pair_cost(Case::C00, Case::C00, 32);
        let opposite = p.expected_pair_cost(Case::C00, Case::C11, 32);
        assert!(opposite > same);
        // Mixed-after-opposite-mixed is the worst-case pattern the swap
        // rule targets.
        let mixed = p.expected_pair_cost(Case::C10, Case::C01, 32);
        let aligned = p.expected_pair_cost(Case::C01, Case::C01, 32);
        assert!(mixed > aligned);
    }

    #[test]
    fn from_rows_handles_missing_cases() {
        let p = CaseProfile::from_rows(&[(Case::C00, true, 100.0, 0.1, 0.1)]);
        assert_eq!(p.case_freq[0], 1.0);
        assert_eq!(p.op1_ones_prob[1], 0.5, "unseen case defaults to 0.5");
    }
}
