//! Table-2 module-occupancy profiling.

/// Histogram of how many modules of one FU type issue together in a cycle
/// (the paper's Table 2).
///
/// Cycles in which the FU type issues nothing are not recorded, matching
/// the paper: "we only consider cycles which use at least one module".
///
/// # Examples
///
/// ```
/// use fua_stats::OccupancyProfiler;
///
/// let mut occ = OccupancyProfiler::new(4);
/// occ.record(1);
/// occ.record(1);
/// occ.record(3);
/// assert_eq!(occ.busy_cycles(), 3);
/// assert!((occ.freq(1) - 2.0 / 3.0).abs() < 1e-12);
/// assert_eq!(occ.freq(4), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccupancyProfiler {
    counts: Vec<u64>,
}

impl OccupancyProfiler {
    /// Creates a profiler for an FU type with `max_modules` modules.
    ///
    /// # Panics
    ///
    /// Panics if `max_modules` is 0.
    pub fn new(max_modules: usize) -> Self {
        assert!(max_modules >= 1, "an FU type has at least one module");
        OccupancyProfiler {
            counts: vec![0; max_modules + 1],
        }
    }

    /// Records a cycle in which `num_issued` instructions of this FU type
    /// issued. Zero is ignored (idle cycles are excluded from Table 2).
    ///
    /// # Panics
    ///
    /// Panics if `num_issued` exceeds the module count.
    pub fn record(&mut self, num_issued: usize) {
        if num_issued == 0 {
            return;
        }
        assert!(
            num_issued < self.counts.len(),
            "issued {} > {} modules",
            num_issued,
            self.counts.len() - 1
        );
        self.counts[num_issued] += 1;
    }

    /// Number of cycles in which at least one module issued.
    pub fn busy_cycles(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `P(Num(I) = k | Num(I) >= 1)` — a Table-2 cell.
    pub fn freq(&self, k: usize) -> f64 {
        let busy = self.busy_cycles();
        if busy == 0 || k == 0 || k >= self.counts.len() {
            return 0.0;
        }
        self.counts[k] as f64 / busy as f64
    }

    /// The full Table-2 row: `[P(1), P(2), ..., P(max)]`.
    pub fn distribution(&self) -> Vec<f64> {
        (1..self.counts.len()).map(|k| self.freq(k)).collect()
    }

    /// Maximum number of modules this profiler tracks.
    pub fn max_modules(&self) -> usize {
        self.counts.len() - 1
    }

    /// Merges another profiler with the same module count.
    ///
    /// # Panics
    ///
    /// Panics if the module counts differ.
    pub fn merge(&mut self, other: &OccupancyProfiler) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "occupancy profilers track different module counts"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_sums_to_one_when_busy() {
        let mut occ = OccupancyProfiler::new(4);
        for k in [1, 2, 2, 3, 4, 1, 1] {
            occ.record(k);
        }
        let sum: f64 = occ.distribution().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn idle_cycles_are_ignored() {
        let mut occ = OccupancyProfiler::new(2);
        occ.record(0);
        occ.record(0);
        assert_eq!(occ.busy_cycles(), 0);
        assert_eq!(occ.freq(1), 0.0);
    }

    #[test]
    #[should_panic]
    fn overflow_is_a_bug() {
        let mut occ = OccupancyProfiler::new(2);
        occ.record(3);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = OccupancyProfiler::new(4);
        a.record(1);
        let mut b = OccupancyProfiler::new(4);
        b.record(1);
        b.record(2);
        a.merge(&b);
        assert_eq!(a.busy_cycles(), 3);
        assert!((a.freq(1) - 2.0 / 3.0).abs() < 1e-12);
    }
}
