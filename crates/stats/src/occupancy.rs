//! Table-2 module-occupancy profiling.

/// Histogram of how many modules of one FU type issue together in a cycle
/// (the paper's Table 2).
///
/// By default ([`new`](OccupancyProfiler::new)) cycles in which the FU
/// type issues nothing are not recorded, matching the paper: "we only
/// consider cycles which use at least one module". The
/// [`with_idle`](OccupancyProfiler::with_idle) constructor opts into
/// counting idle cycles too, so the stall taxonomy can cross-check how
/// often a class sat fully dark.
///
/// # Examples
///
/// ```
/// use fua_stats::OccupancyProfiler;
///
/// let mut occ = OccupancyProfiler::new(4);
/// occ.record(1);
/// occ.record(1);
/// occ.record(3);
/// assert_eq!(occ.busy_cycles(), 3);
/// assert!((occ.freq(1) - 2.0 / 3.0).abs() < 1e-12);
/// assert_eq!(occ.freq(4), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccupancyProfiler {
    counts: Vec<u64>,
    include_idle: bool,
}

impl OccupancyProfiler {
    /// Creates a profiler for an FU type with `max_modules` modules.
    /// Idle (zero-issue) cycles are ignored, as in the paper's Table 2.
    ///
    /// # Panics
    ///
    /// Panics if `max_modules` is 0.
    pub fn new(max_modules: usize) -> Self {
        assert!(max_modules >= 1, "an FU type has at least one module");
        OccupancyProfiler {
            counts: vec![0; max_modules + 1],
            include_idle: false,
        }
    }

    /// Creates a profiler that also counts idle (zero-issue) cycles, for
    /// analyses that need absolute cycle coverage rather than the paper's
    /// conditional Table-2 distribution.
    ///
    /// # Panics
    ///
    /// Panics if `max_modules` is 0.
    pub fn with_idle(max_modules: usize) -> Self {
        let mut occ = OccupancyProfiler::new(max_modules);
        occ.include_idle = true;
        occ
    }

    /// Whether this profiler counts idle (zero-issue) cycles.
    pub fn includes_idle(&self) -> bool {
        self.include_idle
    }

    /// Records a cycle in which `num_issued` instructions of this FU type
    /// issued. Zero is ignored in the default mode (idle cycles are
    /// excluded from Table 2) and counted under
    /// [`idle_cycles`](OccupancyProfiler::idle_cycles) when the profiler
    /// was built with [`with_idle`](OccupancyProfiler::with_idle).
    ///
    /// # Panics
    ///
    /// Panics if `num_issued` exceeds the module count.
    pub fn record(&mut self, num_issued: usize) {
        if num_issued == 0 {
            if self.include_idle {
                self.counts[0] += 1;
            }
            return;
        }
        assert!(
            num_issued < self.counts.len(),
            "issued {} > {} modules",
            num_issued,
            self.counts.len() - 1
        );
        self.counts[num_issued] += 1;
    }

    /// Number of cycles in which at least one module issued.
    pub fn busy_cycles(&self) -> u64 {
        self.counts[1..].iter().sum()
    }

    /// Number of recorded zero-issue cycles. Always 0 for the paper-mode
    /// profiler built with [`new`](OccupancyProfiler::new).
    pub fn idle_cycles(&self) -> u64 {
        self.counts[0]
    }

    /// Total recorded cycles: busy plus (in idle-tracking mode) idle.
    pub fn total_cycles(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `P(Num(I) = k | Num(I) >= 1)` — a Table-2 cell.
    pub fn freq(&self, k: usize) -> f64 {
        let busy = self.busy_cycles();
        if busy == 0 || k == 0 || k >= self.counts.len() {
            return 0.0;
        }
        self.counts[k] as f64 / busy as f64
    }

    /// The full Table-2 row: `[P(1), P(2), ..., P(max)]`.
    pub fn distribution(&self) -> Vec<f64> {
        (1..self.counts.len()).map(|k| self.freq(k)).collect()
    }

    /// Maximum number of modules this profiler tracks.
    pub fn max_modules(&self) -> usize {
        self.counts.len() - 1
    }

    /// Merges another profiler with the same module count and idle mode.
    ///
    /// # Panics
    ///
    /// Panics if the module counts or idle-tracking modes differ.
    pub fn merge(&mut self, other: &OccupancyProfiler) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "occupancy profilers track different module counts"
        );
        assert_eq!(
            self.include_idle, other.include_idle,
            "occupancy profilers disagree on idle-cycle tracking"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_sums_to_one_when_busy() {
        let mut occ = OccupancyProfiler::new(4);
        for k in [1, 2, 2, 3, 4, 1, 1] {
            occ.record(k);
        }
        let sum: f64 = occ.distribution().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn idle_cycles_are_ignored() {
        let mut occ = OccupancyProfiler::new(2);
        occ.record(0);
        occ.record(0);
        assert_eq!(occ.busy_cycles(), 0);
        assert_eq!(occ.freq(1), 0.0);
    }

    #[test]
    #[should_panic]
    fn overflow_is_a_bug() {
        let mut occ = OccupancyProfiler::new(2);
        occ.record(3);
    }

    #[test]
    fn idle_mode_counts_zero_issue_cycles_without_skewing_table_2() {
        let mut occ = OccupancyProfiler::with_idle(2);
        assert!(occ.includes_idle());
        occ.record(0);
        occ.record(0);
        occ.record(1);
        occ.record(2);
        assert_eq!(occ.idle_cycles(), 2);
        assert_eq!(occ.busy_cycles(), 2);
        assert_eq!(occ.total_cycles(), 4);
        // The conditional distribution still ignores idle cycles.
        assert!((occ.freq(1) - 0.5).abs() < 1e-12);
        let sum: f64 = occ.distribution().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn merging_across_idle_modes_is_a_bug() {
        let mut a = OccupancyProfiler::new(2);
        let b = OccupancyProfiler::with_idle(2);
        a.merge(&b);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = OccupancyProfiler::new(4);
        a.record(1);
        let mut b = OccupancyProfiler::new(4);
        b.record(1);
        b.record(2);
        a.merge(&b);
        assert_eq!(a.busy_cycles(), 3);
        assert!((a.freq(1) - 2.0 / 3.0).abs() < 1e-12);
    }
}
