//! Section 4.4's static hardware swap rule.

use fua_isa::Case;
use fua_stats::CaseProfile;
use fua_vm::FuOp;

/// The hardware operand-swapping rule: *always* swap commutative
/// instructions of one fixed mixed case (01 or 10), chosen at design time
/// as the mixed case with the lower frequency of non-commutative
/// instructions. The paper derives case 01 for the IALU and case 10 for
/// the FPAU from Table 1.
///
/// The rule looks only at the current instruction — no comparison with
/// previous values — which is what makes it cheap enough for hardware.
///
/// # Examples
///
/// ```
/// use fua_isa::{Case, FuClass, Word};
/// use fua_steer::HardwareSwapRule;
/// use fua_vm::FuOp;
///
/// let rule = HardwareSwapRule::new(Case::C01);
/// let mut op = FuOp {
///     class: FuClass::IntAlu,
///     op1: Word::int(1),
///     op2: Word::int(-1),
///     commutative: true,
/// };
/// assert!(rule.apply(&mut op));
/// assert_eq!(op.case(), Case::C10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardwareSwapRule {
    case: Case,
}

impl HardwareSwapRule {
    /// Creates a rule that swaps the given mixed case.
    ///
    /// # Panics
    ///
    /// Panics if `case` is not one of the mixed cases (01 or 10) —
    /// swapping 00 or 11 cannot change the case and would be pointless.
    pub fn new(case: Case) -> Self {
        assert!(case.is_mixed(), "only mixed cases are worth swapping");
        HardwareSwapRule { case }
    }

    /// Derives the rule from a profiled channel, per Section 4.4.
    pub fn from_profile(profile: &CaseProfile) -> Self {
        Self::new(profile.hardware_swap_case())
    }

    /// The case this rule swaps.
    pub fn case(&self) -> Case {
        self.case
    }

    /// Applies the rule in place; returns whether the operands were
    /// swapped. Non-commutative instructions and other cases pass through
    /// untouched.
    pub fn apply(&self, op: &mut FuOp) -> bool {
        if op.commutative && op.case() == self.case {
            *op = op.swapped();
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_isa::{FuClass, Word};

    fn op(a: i32, b: i32, commutative: bool) -> FuOp {
        FuOp {
            class: FuClass::IntAlu,
            op1: Word::int(a),
            op2: Word::int(b),
            commutative,
        }
    }

    #[test]
    fn swaps_only_the_configured_case() {
        let rule = HardwareSwapRule::new(Case::C01);
        let mut c01 = op(1, -1, true);
        assert!(rule.apply(&mut c01));
        assert_eq!(c01.case(), Case::C10);
        let mut c10 = op(-1, 1, true);
        assert!(!rule.apply(&mut c10));
        assert_eq!(c10.case(), Case::C10);
    }

    #[test]
    fn respects_commutativity() {
        let rule = HardwareSwapRule::new(Case::C01);
        let mut fixed = op(1, -1, false);
        assert!(!rule.apply(&mut fixed));
        assert_eq!(fixed.op1, Word::int(1));
    }

    #[test]
    fn paper_rules_from_profiles() {
        use fua_stats::CaseProfile;
        assert_eq!(
            HardwareSwapRule::from_profile(&CaseProfile::paper_ialu()).case(),
            Case::C01
        );
        assert_eq!(
            HardwareSwapRule::from_profile(&CaseProfile::paper_fpau()).case(),
            Case::C10
        );
    }

    #[test]
    #[should_panic]
    fn non_mixed_case_is_rejected() {
        let _ = HardwareSwapRule::new(Case::C00);
    }
}
