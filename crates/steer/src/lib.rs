//! Power-aware functional-unit steering — the paper's core contribution.
//!
//! Every cycle the out-of-order engine hands the steering policy the set
//! of ready instructions of one FU type (at most one per module) together
//! with the modules' input-latch state; the policy returns which module
//! each instruction issues to and whether its operands are swapped:
//!
//! * [`FcfsPolicy`] — the paper's *Original* baseline: first-come,
//!   first-served, no power awareness;
//! * [`FullHamPolicy`] — the cost-prohibitive upper bound: exact Hamming
//!   distances, optimal assignment (Figure 2 + exhaustive matching);
//! * [`OneBitHamPolicy`] — optimal assignment over *information bits*
//!   only (the upper bound for any info-bit scheme);
//! * [`LutPolicy`] — the practical scheme of Section 4.3: a static lookup
//!   table indexed by the concatenated cases of the first 1, 2 or 4 ready
//!   instructions (2-, 4- and 8-bit vectors), built by [`LutBuilder`] from
//!   profiled case statistics;
//! * [`HardwareSwapRule`] — Section 4.4's static swap rule (always swap
//!   the chosen mixed case when legal), applied before any policy runs.
//!
//! # Examples
//!
//! ```
//! use fua_isa::{FuClass, Word};
//! use fua_power::ModulePorts;
//! use fua_steer::{FcfsPolicy, SteeringPolicy};
//! use fua_vm::FuOp;
//!
//! let op = FuOp {
//!     class: FuClass::IntAlu,
//!     op1: Word::int(1),
//!     op2: Word::int(2),
//!     commutative: true,
//! };
//! let mut policy = FcfsPolicy::new();
//! let modules = vec![ModulePorts::new(); 4];
//! let choices = policy.assign(&[op], &modules);
//! assert_eq!(choices[0].module, 0);
//! assert!(!choices[0].swap);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod assign;
mod full_ham;
mod kind;
mod lut;
mod one_bit;
mod policy;
mod swap_rule;

pub use assign::{min_cost_assignment, min_cost_assignment_into, AssignScratch};
pub use full_ham::{assignment_costs, FullHamPolicy};
pub use kind::{make_policy, SteeringKind};
pub use lut::{
    HomeStrategy, LutBuilder, LutPolicy, LutTable, PAPER_FPAU_OCCUPANCY, PAPER_IALU_OCCUPANCY,
};
pub use one_bit::OneBitHamPolicy;
pub use policy::{validate_choices, FcfsPolicy, ModuleChoice, SteeringPolicy};
pub use swap_rule::HardwareSwapRule;
