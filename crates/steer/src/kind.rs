//! Scheme enumeration and the policy factory.

use std::fmt;

use fua_stats::CaseProfile;

use crate::{FcfsPolicy, FullHamPolicy, LutBuilder, LutPolicy, OneBitHamPolicy, SteeringPolicy};

/// The steering schemes evaluated in the paper's Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SteeringKind {
    /// First-come-first-serve baseline ("Original").
    Original,
    /// Optimal assignment over full Hamming distances ("Full Ham").
    FullHam,
    /// Optimal assignment over information bits ("1-bit Ham").
    OneBitHam,
    /// Static LUT over the cases of the first `slots` instructions
    /// (1 → 2-bit, 2 → 4-bit, 4 → 8-bit vector).
    Lut {
        /// Number of instructions encoded in the LUT's input vector.
        slots: usize,
    },
}

impl SteeringKind {
    /// Every scheme of Figure 4, in the paper's bar order.
    pub const FIGURE4: [SteeringKind; 6] = [
        SteeringKind::FullHam,
        SteeringKind::OneBitHam,
        SteeringKind::Lut { slots: 4 },
        SteeringKind::Lut { slots: 2 },
        SteeringKind::Lut { slots: 1 },
        SteeringKind::Original,
    ];
}

impl fmt::Display for SteeringKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SteeringKind::Original => f.write_str("Original"),
            SteeringKind::FullHam => f.write_str("Full Ham"),
            SteeringKind::OneBitHam => f.write_str("1-bit Ham"),
            SteeringKind::Lut { slots } => write!(f, "{}-bit LUT", 2 * slots),
        }
    }
}

/// Instantiates a steering policy.
///
/// * `profile`/`occupancy` parameterise LUT construction (ignored by the
///   other schemes);
/// * `modules` is the FU pool size, `width` the operand bit width;
/// * `allow_swap` enables cost-based swapping inside Full Ham / 1-bit Ham
///   (the LUT and Original schemes swap via
///   [`crate::HardwareSwapRule`] *before* steering instead).
///
/// # Examples
///
/// ```
/// use fua_stats::CaseProfile;
/// use fua_steer::{make_policy, SteeringKind, PAPER_IALU_OCCUPANCY};
///
/// let policy = make_policy(
///     SteeringKind::Lut { slots: 2 },
///     &CaseProfile::paper_ialu(),
///     &PAPER_IALU_OCCUPANCY,
///     4,
///     32,
///     false,
/// );
/// assert_eq!(policy.name(), "4-bit LUT");
/// ```
pub fn make_policy(
    kind: SteeringKind,
    profile: &CaseProfile,
    occupancy: &[f64],
    modules: usize,
    width: u32,
    allow_swap: bool,
) -> Box<dyn SteeringPolicy + Send> {
    match kind {
        SteeringKind::Original => Box::new(FcfsPolicy::new()),
        SteeringKind::FullHam => Box::new(FullHamPolicy::new(allow_swap)),
        SteeringKind::OneBitHam => Box::new(OneBitHamPolicy::new(allow_swap)),
        SteeringKind::Lut { slots } => {
            let table = LutBuilder::new(*profile, width)
                .occupancy(occupancy)
                .modules(modules)
                .build(slots);
            Box::new(LutPolicy::new(table))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAPER_IALU_OCCUPANCY;

    #[test]
    fn display_matches_figure4_labels() {
        let labels: Vec<String> = SteeringKind::FIGURE4
            .iter()
            .map(|k| k.to_string())
            .collect();
        assert_eq!(
            labels,
            vec![
                "Full Ham",
                "1-bit Ham",
                "8-bit LUT",
                "4-bit LUT",
                "2-bit LUT",
                "Original"
            ]
        );
    }

    #[test]
    fn factory_builds_every_kind() {
        let profile = CaseProfile::paper_ialu();
        for kind in SteeringKind::FIGURE4 {
            let p = make_policy(kind, &profile, &PAPER_IALU_OCCUPANCY, 4, 32, true);
            assert!(!p.name().is_empty());
        }
    }
}
