//! The 1-bit-Hamming upper bound: optimal assignment over information bits.

use fua_isa::Case;
use fua_power::ModulePorts;
use fua_vm::FuOp;

use crate::{min_cost_assignment, ModuleChoice, SteeringPolicy};

/// Optimal per-cycle assignment where each operand is summarised by its
/// information bit — the *1-bit Ham* bar of Figure 4. This bounds what any
/// scheme based solely on information bits (such as the LUTs) can achieve.
#[derive(Debug, Clone, Copy)]
pub struct OneBitHamPolicy {
    allow_swap: bool,
}

impl OneBitHamPolicy {
    /// Creates the policy; `allow_swap` lets it consider the swapped
    /// operand order for commutative instructions.
    pub fn new(allow_swap: bool) -> Self {
        OneBitHamPolicy { allow_swap }
    }

    /// Information-bit distance between an instruction case and a module's
    /// last case (0, 1 or 2 mismatching information bits).
    fn case_cost(prev: Option<Case>, next: Case) -> u32 {
        match prev {
            None => 0,
            Some(p) => {
                (p.op1_bit() != next.op1_bit()) as u32 + (p.op2_bit() != next.op2_bit()) as u32
            }
        }
    }
}

impl SteeringPolicy for OneBitHamPolicy {
    fn name(&self) -> &str {
        "1-bit Ham"
    }

    fn assign(&mut self, ops: &[FuOp], modules: &[ModulePorts]) -> Vec<ModuleChoice> {
        let prev_cases: Vec<Option<Case>> = modules
            .iter()
            .map(|m| m.prev().map(|(a, b)| Case::of_operands(a, b)))
            .collect();
        let mut swap_table = vec![vec![false; modules.len()]; ops.len()];
        let cost: Vec<Vec<u32>> = ops
            .iter()
            .enumerate()
            .map(|(i, op)| {
                let case = op.case();
                prev_cases
                    .iter()
                    .enumerate()
                    .map(|(j, &prev)| {
                        let direct = Self::case_cost(prev, case);
                        if self.allow_swap && op.commutative {
                            let swapped = Self::case_cost(prev, case.swapped());
                            if swapped < direct {
                                swap_table[i][j] = true;
                                return swapped;
                            }
                        }
                        direct
                    })
                    .collect()
            })
            .collect();
        let assignment = min_cost_assignment(&cost);
        assignment
            .iter()
            .enumerate()
            .map(|(i, &module)| ModuleChoice {
                module,
                swap: swap_table[i][module],
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::validate_choices;
    use fua_isa::{FuClass, Word};

    fn op(a: i32, b: i32, commutative: bool) -> FuOp {
        FuOp {
            class: FuClass::IntAlu,
            op1: Word::int(a),
            op2: Word::int(b),
            commutative,
        }
    }

    fn latched(pairs: &[(i32, i32)]) -> Vec<ModulePorts> {
        pairs
            .iter()
            .map(|&(a, b)| {
                let mut m = ModulePorts::new();
                m.latch(Word::int(a), Word::int(b));
                m
            })
            .collect()
    }

    #[test]
    fn matches_cases_not_values() {
        // Module 0 last saw case 00 (with very different *values*); module
        // 1 last saw case 11. A new case-00 op prefers module 0 even though
        // its values differ wildly.
        let modules = latched(&[(0x7FFF_0000, 0x0FFF_FFF0), (-1, -2)]);
        let ops = [op(1, 2, false)];
        let choices = OneBitHamPolicy::new(false).assign(&ops, &modules);
        validate_choices(&ops, modules.len(), &choices);
        assert_eq!(choices[0].module, 0);
    }

    #[test]
    fn swap_fixes_mirrored_cases() {
        // Module saw case 10; a commutative case-01 op swaps into 10.
        let modules = latched(&[(-1, 1)]);
        let ops = [op(1, -1, true)];
        let choices = OneBitHamPolicy::new(true).assign(&ops, &modules);
        assert!(choices[0].swap);
        // Without swap permission the op still issues, unswapped.
        let plain = OneBitHamPolicy::new(false).assign(&ops, &modules);
        assert!(!plain[0].swap);
    }

    #[test]
    fn non_commutative_ops_never_swap() {
        let modules = latched(&[(-1, 1)]);
        let ops = [op(1, -1, false)];
        let choices = OneBitHamPolicy::new(true).assign(&ops, &modules);
        assert!(!choices[0].swap);
    }

    #[test]
    fn cold_modules_cost_nothing() {
        let modules = vec![ModulePorts::new(); 2];
        let ops = [op(-1, -1, false), op(1, 1, false)];
        let choices = OneBitHamPolicy::new(false).assign(&ops, &modules);
        validate_choices(&ops, modules.len(), &choices);
    }
}
