//! The 1-bit-Hamming upper bound: optimal assignment over information bits.

use fua_isa::Case;
use fua_power::ModulePorts;
use fua_vm::FuOp;

use crate::{min_cost_assignment_into, AssignScratch, ModuleChoice, SteeringPolicy};

/// Optimal per-cycle assignment where each operand is summarised by its
/// information bit — the *1-bit Ham* bar of Figure 4. This bounds what any
/// scheme based solely on information bits (such as the LUTs) can achieve.
///
/// The cost/swap matrices and solver scratch live on the policy and are
/// reused every cycle: steady-state assignment allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct OneBitHamPolicy {
    allow_swap: bool,
    /// Each module's last-latched case, refilled per call.
    prev_cases: Vec<Option<Case>>,
    /// Row-major `ops × modules` information-bit distances.
    cost: Vec<u32>,
    /// Row-major `ops × modules` swap decisions.
    swap: Vec<bool>,
    scratch: AssignScratch,
    assignment: Vec<usize>,
}

impl OneBitHamPolicy {
    /// Creates the policy; `allow_swap` lets it consider the swapped
    /// operand order for commutative instructions.
    pub fn new(allow_swap: bool) -> Self {
        OneBitHamPolicy {
            allow_swap,
            ..OneBitHamPolicy::default()
        }
    }

    /// Information-bit distance between an instruction case and a module's
    /// last case (0, 1 or 2 mismatching information bits).
    fn case_cost(prev: Option<Case>, next: Case) -> u32 {
        match prev {
            None => 0,
            Some(p) => {
                (p.op1_bit() != next.op1_bit()) as u32 + (p.op2_bit() != next.op2_bit()) as u32
            }
        }
    }
}

impl SteeringPolicy for OneBitHamPolicy {
    fn name(&self) -> &str {
        "1-bit Ham"
    }

    fn assign_into(&mut self, ops: &[FuOp], modules: &[ModulePorts], out: &mut Vec<ModuleChoice>) {
        let m = modules.len();
        self.prev_cases.clear();
        self.prev_cases.extend(
            modules
                .iter()
                .map(|p| p.prev().map(|(a, b)| Case::of_operands(a, b))),
        );
        self.cost.clear();
        self.swap.clear();
        self.swap.resize(ops.len() * m, false);
        for (i, op) in ops.iter().enumerate() {
            let case = op.case();
            for (j, &prev) in self.prev_cases.iter().enumerate() {
                let direct = Self::case_cost(prev, case);
                let mut chosen = direct;
                if self.allow_swap && op.commutative {
                    let swapped = Self::case_cost(prev, case.swapped());
                    if swapped < direct {
                        self.swap[i * m + j] = true;
                        chosen = swapped;
                    }
                }
                self.cost.push(chosen);
            }
        }
        let cost = &self.cost;
        min_cost_assignment_into(
            ops.len(),
            m,
            |r, c| cost[r * m + c],
            &mut self.scratch,
            &mut self.assignment,
        );
        out.clear();
        out.extend(
            self.assignment
                .iter()
                .enumerate()
                .map(|(i, &module)| ModuleChoice {
                    module,
                    swap: self.swap[i * m + module],
                }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::validate_choices;
    use fua_isa::{FuClass, Word};

    fn op(a: i32, b: i32, commutative: bool) -> FuOp {
        FuOp {
            class: FuClass::IntAlu,
            op1: Word::int(a),
            op2: Word::int(b),
            commutative,
        }
    }

    fn latched(pairs: &[(i32, i32)]) -> Vec<ModulePorts> {
        pairs
            .iter()
            .map(|&(a, b)| {
                let mut m = ModulePorts::new();
                m.latch(Word::int(a), Word::int(b));
                m
            })
            .collect()
    }

    #[test]
    fn matches_cases_not_values() {
        // Module 0 last saw case 00 (with very different *values*); module
        // 1 last saw case 11. A new case-00 op prefers module 0 even though
        // its values differ wildly.
        let modules = latched(&[(0x7FFF_0000, 0x0FFF_FFF0), (-1, -2)]);
        let ops = [op(1, 2, false)];
        let choices = OneBitHamPolicy::new(false).assign(&ops, &modules);
        validate_choices(&ops, modules.len(), &choices);
        assert_eq!(choices[0].module, 0);
    }

    #[test]
    fn swap_fixes_mirrored_cases() {
        // Module saw case 10; a commutative case-01 op swaps into 10.
        let modules = latched(&[(-1, 1)]);
        let ops = [op(1, -1, true)];
        let choices = OneBitHamPolicy::new(true).assign(&ops, &modules);
        assert!(choices[0].swap);
        // Without swap permission the op still issues, unswapped.
        let plain = OneBitHamPolicy::new(false).assign(&ops, &modules);
        assert!(!plain[0].swap);
    }

    #[test]
    fn non_commutative_ops_never_swap() {
        let modules = latched(&[(-1, 1)]);
        let ops = [op(1, -1, false)];
        let choices = OneBitHamPolicy::new(true).assign(&ops, &modules);
        assert!(!choices[0].swap);
    }

    #[test]
    fn cold_modules_cost_nothing() {
        let modules = vec![ModulePorts::new(); 2];
        let ops = [op(-1, -1, false), op(1, 1, false)];
        let choices = OneBitHamPolicy::new(false).assign(&ops, &modules);
        validate_choices(&ops, modules.len(), &choices);
    }
}
