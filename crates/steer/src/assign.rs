//! Minimum-cost injective assignment of instructions to modules.

/// Reusable working memory for [`min_cost_assignment_into`].
///
/// A policy keeps one of these across cycles so the per-cycle solve
/// performs **zero heap allocations** once the buffers have grown to
/// the machine's (fixed) issue width × module count — the steady-state
/// contract the allocation gate enforces on the untraced hot loop.
#[derive(Debug, Clone, Default)]
pub struct AssignScratch {
    /// Row-major `rows × cols` column indices, each row sorted
    /// cheapest-first.
    order: Vec<usize>,
    /// The partial assignment of the branch being explored.
    current: Vec<usize>,
    /// Column-taken flags.
    used: Vec<bool>,
}

/// As [`min_cost_assignment`], but reading the cost matrix through a
/// closure (`cost(row, col)`) and writing the winning assignment into
/// `out` — no allocation beyond the (amortised) growth of `scratch`
/// and `out`.
///
/// # Panics
///
/// Panics if `rows > cols`.
pub fn min_cost_assignment_into(
    rows: usize,
    cols: usize,
    cost: impl Fn(usize, usize) -> u32,
    scratch: &mut AssignScratch,
    out: &mut Vec<usize>,
) {
    out.clear();
    if rows == 0 {
        return;
    }
    assert!(rows <= cols, "more instructions than modules");

    // Explore each row's columns cheapest-first. Besides speeding up the
    // pruning, this makes the tie-break deterministic and *row-priority*:
    // among equal-total assignments the first row (oldest instruction)
    // keeps its cheapest module — which matters when later rows are
    // indistinguishable padding (see the LUT builder).
    scratch.order.clear();
    for row in 0..rows {
        let lo = scratch.order.len();
        scratch.order.extend(0..cols);
        // `sort_unstable` is in-place (no hidden allocation); keying on
        // `(cost, column)` reproduces the stable sort's tie-break —
        // equal-cost columns stay in ascending index order — exactly,
        // so the refactor cannot change a single steering decision.
        scratch.order[lo..].sort_unstable_by_key(|&c| (cost(row, c), c));
    }
    scratch.current.clear();
    scratch.current.resize(rows, 0);
    scratch.used.clear();
    scratch.used.resize(cols, false);
    out.resize(rows, 0);

    let mut best = u64::MAX;
    search(
        rows,
        cols,
        &cost,
        &scratch.order,
        0,
        0,
        &mut scratch.used,
        &mut scratch.current,
        &mut best,
        out,
    );
    debug_assert!(best != u64::MAX, "rows <= cols guarantees a solution");
}

/// Finds the assignment of `n = cost.len()` instructions to distinct
/// modules (columns) minimising the total cost, by exhaustive search with
/// pruning. Returns the chosen module for each instruction.
///
/// The paper's machines have at most 4 instructions and a handful of
/// modules per cycle, so exhaustive search is both exact and cheap; the
/// hardware itself never runs this (it is the reference "optimal"
/// assignment the LUT approximates). Allocating convenience wrapper
/// around [`min_cost_assignment_into`] for one-shot callers (the LUT
/// builder, tests); the per-cycle policies use the `_into` form with
/// reused scratch.
///
/// # Panics
///
/// Panics if the cost matrix is ragged or has more rows than columns.
///
/// # Examples
///
/// ```
/// use fua_steer::min_cost_assignment;
///
/// // Two instructions, three modules.
/// let cost = vec![
///     vec![10, 1, 10],
///     vec![1, 10, 10],
/// ];
/// assert_eq!(min_cost_assignment(&cost), vec![1, 0]);
/// ```
pub fn min_cost_assignment(cost: &[Vec<u32>]) -> Vec<usize> {
    let n = cost.len();
    if n == 0 {
        return Vec::new();
    }
    let m = cost[0].len();
    assert!(cost.iter().all(|row| row.len() == m), "ragged cost matrix");
    let mut out = Vec::with_capacity(n);
    min_cost_assignment_into(
        n,
        m,
        |r, c| cost[r][c],
        &mut AssignScratch::default(),
        &mut out,
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn search(
    rows: usize,
    cols: usize,
    cost: &impl Fn(usize, usize) -> u32,
    order: &[usize],
    row: usize,
    acc: u64,
    used: &mut [bool],
    current: &mut [usize],
    best: &mut u64,
    best_assign: &mut [usize],
) {
    if acc >= *best {
        return; // prune
    }
    if row == rows {
        *best = acc;
        best_assign.copy_from_slice(current);
        return;
    }
    for &col in &order[row * cols..(row + 1) * cols] {
        if used[col] {
            continue;
        }
        used[col] = true;
        current[row] = col;
        search(
            rows,
            cols,
            cost,
            order,
            row + 1,
            acc + cost(row, col) as u64,
            used,
            current,
            best,
            best_assign,
        );
        used[col] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force reference: try every permutation of column subsets.
    fn reference_min(cost: &[Vec<u32>]) -> u64 {
        fn go(cost: &[Vec<u32>], row: usize, used: &mut Vec<bool>) -> u64 {
            if row == cost.len() {
                return 0;
            }
            let mut best = u64::MAX;
            for col in 0..cost[0].len() {
                if used[col] {
                    continue;
                }
                used[col] = true;
                let sub = go(cost, row + 1, used);
                if sub != u64::MAX {
                    best = best.min(cost[row][col] as u64 + sub);
                }
                used[col] = false;
            }
            best
        }
        go(cost, 0, &mut vec![false; cost[0].len()])
    }

    fn total(cost: &[Vec<u32>], assign: &[usize]) -> u64 {
        assign
            .iter()
            .enumerate()
            .map(|(i, &j)| cost[i][j] as u64)
            .sum()
    }

    #[test]
    fn empty_input_yields_empty_assignment() {
        assert!(min_cost_assignment(&[]).is_empty());
    }

    #[test]
    fn square_case_matches_reference() {
        let cost = vec![vec![4, 2, 8], vec![4, 3, 7], vec![3, 1, 6]];
        let assign = min_cost_assignment(&cost);
        assert_eq!(total(&cost, &assign), reference_min(&cost));
        // All distinct.
        let mut sorted = assign.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), assign.len());
    }

    #[test]
    fn rectangular_case_uses_spare_columns() {
        let cost = vec![vec![9, 9, 0, 9]];
        assert_eq!(min_cost_assignment(&cost), vec![2]);
    }

    #[test]
    fn pseudo_random_matrices_match_reference() {
        // Small deterministic LCG so the test needs no external crates.
        let mut state = 0x2545F491u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 100) as u32
        };
        for n in 1..=4 {
            for m in n..=6 {
                for _ in 0..20 {
                    let cost: Vec<Vec<u32>> =
                        (0..n).map(|_| (0..m).map(|_| next()).collect()).collect();
                    let assign = min_cost_assignment(&cost);
                    assert_eq!(
                        total(&cost, &assign),
                        reference_min(&cost),
                        "n={n} m={m} cost={cost:?}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn more_rows_than_columns_panics() {
        let cost = vec![vec![1], vec![2]];
        let _ = min_cost_assignment(&cost);
    }
}
