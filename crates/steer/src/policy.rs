//! The steering-policy trait and the FCFS baseline.

use fua_power::ModulePorts;
use fua_vm::FuOp;

/// One steering decision: which module an instruction issues to and
/// whether its operand ports are exchanged on the way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModuleChoice {
    /// Target module index.
    pub module: usize,
    /// Whether the crossbar swaps the two operands.
    pub swap: bool,
}

/// A per-cycle instruction→module assignment strategy.
///
/// The engine guarantees `ops.len() <= modules.len()`; implementations
/// must return exactly one [`ModuleChoice`] per instruction, with distinct
/// module indices, and may only set `swap` for commutative operations.
pub trait SteeringPolicy {
    /// A short name for reports ("Original", "4-bit LUT", ...).
    fn name(&self) -> &str;

    /// Assigns this cycle's ready instructions to modules, writing
    /// exactly one choice per instruction into `out` (cleared first).
    ///
    /// This is the hot-loop entry point: the engine passes a buffer it
    /// reuses every cycle, and implementations keep their own working
    /// memory across calls, so steady-state issue performs **zero**
    /// heap allocations (the allocation gate enforces this for every
    /// workload × scheme).
    fn assign_into(&mut self, ops: &[FuOp], modules: &[ModulePorts], out: &mut Vec<ModuleChoice>);

    /// Allocating convenience wrapper around
    /// [`assign_into`](Self::assign_into) for one-shot callers (tests,
    /// the Figure-1 example).
    fn assign(&mut self, ops: &[FuOp], modules: &[ModulePorts]) -> Vec<ModuleChoice> {
        let mut out = Vec::with_capacity(ops.len());
        self.assign_into(ops, modules, &mut out);
        out
    }
}

/// The paper's *Original* strategy: instructions are placed on modules in
/// arrival order, exactly as a first-come-first-serve Tomasulo router
/// would, with no power awareness and no swapping.
///
/// See the crate-level example.
#[derive(Debug, Clone, Copy, Default)]
pub struct FcfsPolicy;

impl FcfsPolicy {
    /// Creates the baseline policy.
    pub fn new() -> Self {
        FcfsPolicy
    }
}

impl SteeringPolicy for FcfsPolicy {
    fn name(&self) -> &str {
        "Original"
    }

    fn assign_into(&mut self, ops: &[FuOp], modules: &[ModulePorts], out: &mut Vec<ModuleChoice>) {
        debug_assert!(ops.len() <= modules.len());
        out.clear();
        out.extend((0..ops.len()).map(|i| ModuleChoice {
            module: i,
            swap: false,
        }));
    }
}

/// Checks a policy's output invariants — one choice per instruction,
/// distinct in-range modules, swaps only on commutative operations.
/// The engine calls this in debug builds; tests use it directly.
/// Allocation-free (a bitmask tracks used modules), so the engine's
/// debug-build call sites stay invisible to the allocation gate.
///
/// # Panics
///
/// Panics when any invariant is violated, or when `modules > 64` (real
/// configurations duplicate a module a handful of times).
pub fn validate_choices(ops: &[FuOp], modules: usize, choices: &[ModuleChoice]) {
    assert_eq!(choices.len(), ops.len(), "one choice per instruction");
    assert!(modules <= 64, "module bitmask covers the configuration");
    let mut seen = 0u64;
    for (op, c) in ops.iter().zip(choices) {
        assert!(c.module < modules, "module index in range");
        assert!(
            seen & (1 << c.module) == 0,
            "modules are assigned at most once"
        );
        seen |= 1 << c.module;
        assert!(!c.swap || op.commutative, "swap only commutative ops");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_isa::{FuClass, Word};

    fn op(a: i32, b: i32) -> FuOp {
        FuOp {
            class: FuClass::IntAlu,
            op1: Word::int(a),
            op2: Word::int(b),
            commutative: true,
        }
    }

    #[test]
    fn fcfs_assigns_in_order() {
        let ops = [op(1, 2), op(3, 4), op(5, 6)];
        let modules = vec![ModulePorts::new(); 4];
        let mut p = FcfsPolicy::new();
        let choices = p.assign(&ops, &modules);
        validate_choices(&ops, modules.len(), &choices);
        assert_eq!(
            choices.iter().map(|c| c.module).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn fcfs_never_swaps() {
        let ops = [op(1, 2)];
        let modules = vec![ModulePorts::new(); 1];
        let choices = FcfsPolicy::new().assign(&ops, &modules);
        assert!(!choices[0].swap);
    }
}
