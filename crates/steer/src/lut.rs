//! The practical scheme of Section 4.3: a static lookup table indexed by
//! the concatenated cases of the first few ready instructions.

use fua_isa::Case;
use fua_power::ModulePorts;
use fua_stats::CaseProfile;
use fua_vm::FuOp;

use crate::{min_cost_assignment, ModuleChoice, SteeringPolicy};

/// The paper's Table-2 occupancy distribution for the IALU
/// (`P(Num(I)=k | Num(I)>=1)`, k = 1..4).
pub const PAPER_IALU_OCCUPANCY: [f64; 4] = [0.403, 0.362, 0.194, 0.042];

/// The paper's Table-2 occupancy distribution for the FPAU.
pub const PAPER_FPAU_OCCUPANCY: [f64; 4] = [0.902, 0.092, 0.005, 0.001];

/// How the builder picks each module's *home case*.
///
/// The paper uses two different strategies and justifies the choice by the
/// occupancy distribution (Table 2): for the heavily multi-issued IALU it
/// replicates the dominant case ("we assign three of the modules as being
/// likely to contain case 00"); for the rarely multi-issued FPAU it gives
/// every case its own module ("the best strategy is to first attempt to
/// assign a unique case to each module").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HomeStrategy {
    /// The paper's recipe: proportional when `P(Num(I) >= 2)` is high,
    /// unique-case-per-module when it is low.
    #[default]
    Auto,
    /// One module per case, in descending frequency order (extra modules
    /// beyond four are filled proportionally).
    Unique,
    /// D'Hondt proportional allocation over the expected per-cycle case
    /// counts `freq(case) · E[Num(I)]`.
    Proportional,
    /// Exhaustive search minimising expected cost under an
    /// independent-bits steady-state model (kept as an ablation; see
    /// DESIGN.md §5).
    Search,
}

/// A built steering LUT: for every possible *vector* (the concatenated
/// cases of the first `slots` instructions) the module each of those
/// instructions should issue to.
///
/// Vector encoding: slot `i`'s case occupies bits `[2i, 2i+1]` of the
/// index, i.e. `index = Σ case_i · 4^i`. Slots beyond the number of ready
/// instructions are padded with the profile's least-frequent case, exactly
/// as the paper specifies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LutTable {
    slots: usize,
    modules: usize,
    homes: Vec<Case>,
    least: Case,
    entries: Vec<Vec<u8>>,
}

impl LutTable {
    /// Assembles a table directly from its parts, without rerunning the
    /// builder. Intended for verifiers and tests that need to construct
    /// (possibly deliberately malformed) tables; the module indices in
    /// `entries` are **not** validated here — that is the verifier's
    /// job.
    ///
    /// # Panics
    ///
    /// Panics if the shape is inconsistent: `homes` must have one entry
    /// per module and `entries` must hold `4^slots` rows of `slots`
    /// assignments each.
    pub fn from_parts(
        slots: usize,
        modules: usize,
        homes: Vec<Case>,
        least: Case,
        entries: Vec<Vec<u8>>,
    ) -> Self {
        assert_eq!(homes.len(), modules, "one home case per module");
        assert_eq!(entries.len(), 1 << (2 * slots), "4^slots vectors");
        assert!(
            entries.iter().all(|e| e.len() == slots),
            "one module per slot in every entry"
        );
        LutTable {
            slots,
            modules,
            homes,
            least,
            entries,
        }
    }

    /// Number of instructions encoded in the vector.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Width of the vector in bits (2 bits per slot).
    pub fn vector_bits(&self) -> usize {
        2 * self.slots
    }

    /// Number of modules the table routes to.
    pub fn modules(&self) -> usize {
        self.modules
    }

    /// The *home case* chosen for each module during construction.
    pub fn homes(&self) -> &[Case] {
        &self.homes
    }

    /// The least-frequent case, used for padding short cycles.
    pub fn least_case(&self) -> Case {
        self.least
    }

    /// The module assignment stored for a vector index.
    ///
    /// # Panics
    ///
    /// Panics if `vector >= 4^slots`.
    pub fn entry(&self, vector: usize) -> &[u8] {
        &self.entries[vector]
    }

    /// Encodes the cases of this cycle's ready instructions into a vector
    /// index, padding missing slots with the least case.
    pub fn encode(&self, cases: &[Case]) -> usize {
        let mut index = 0usize;
        for slot in 0..self.slots {
            let case = cases.get(slot).copied().unwrap_or(self.least);
            index += case.index() << (2 * slot);
        }
        index
    }
}

/// Builds a [`LutTable`] from profiled case statistics, per Section 4.3:
/// choose a *home case* for each module from the case and occupancy
/// distributions, then fill every LUT entry with the best matching of
/// vector cases to module homes (information-bit distance first, expected
/// switched bits as tie-break).
///
/// # Examples
///
/// ```
/// use fua_stats::CaseProfile;
/// use fua_steer::{LutBuilder, PAPER_IALU_OCCUPANCY};
///
/// let lut = LutBuilder::new(CaseProfile::paper_ialu(), 32)
///     .occupancy(&PAPER_IALU_OCCUPANCY)
///     .modules(4)
///     .build(2); // 4-bit vector
/// assert_eq!(lut.vector_bits(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct LutBuilder {
    profile: CaseProfile,
    width: u32,
    modules: usize,
    occupancy: Vec<f64>,
    strategy: HomeStrategy,
}

impl LutBuilder {
    /// Creates a builder for operands `width` bits wide (32 for the IALU,
    /// 52 for the FPAU's mantissa view), defaulting to 4 modules, the
    /// paper's IALU occupancy, and the [`HomeStrategy::Auto`] recipe.
    pub fn new(profile: CaseProfile, width: u32) -> Self {
        LutBuilder {
            profile,
            width,
            modules: 4,
            occupancy: PAPER_IALU_OCCUPANCY.to_vec(),
            strategy: HomeStrategy::Auto,
        }
    }

    /// Sets the number of modules.
    ///
    /// # Panics
    ///
    /// Panics if `modules` is 0.
    pub fn modules(mut self, modules: usize) -> Self {
        assert!(modules >= 1);
        self.modules = modules;
        self
    }

    /// Sets the occupancy distribution `P(Num(I)=k | Num(I)>=1)` for
    /// k = 1..=len.
    pub fn occupancy(mut self, occupancy: &[f64]) -> Self {
        self.occupancy = occupancy.to_vec();
        self
    }

    /// Sets the home-selection strategy.
    pub fn strategy(mut self, strategy: HomeStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Builds the table with `slots` instructions encoded in the vector
    /// (1 → 2-bit, 2 → 4-bit, 4 → 8-bit). Slots are capped at the module
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is 0.
    pub fn build(&self, slots: usize) -> LutTable {
        assert!(slots >= 1, "at least one slot");
        let slots = slots.min(self.modules);
        let homes = self.choose_homes();
        let least = self.profile.least_case();
        // Slot i's matching cost is weighted by P(Num(I) > i): a slot that
        // is almost always padding (FPAU slots 2-3, say) must not distort
        // the assignment of the slots that almost always hold real
        // instructions.
        let weights: Vec<f64> = (0..slots).map(|s| self.slot_real_prob(s)).collect();
        let entries = (0..(1usize << (2 * slots)))
            .map(|vector| {
                let cases: Vec<Case> = (0..slots)
                    .map(|s| Case::from_index(((vector >> (2 * s)) & 3) as u8))
                    .collect();
                self.match_cases_weighted(&cases, &homes, &weights)
                    .into_iter()
                    .map(|m| m as u8)
                    .collect()
            })
            .collect();
        LutTable {
            slots,
            modules: self.modules,
            homes,
            least,
            entries,
        }
    }

    /// Expected mean of `Num(I)` over busy cycles.
    fn mean_occupancy(&self) -> f64 {
        self.occupancy
            .iter()
            .take(self.modules)
            .enumerate()
            .map(|(i, p)| (i + 1) as f64 * p)
            .sum()
    }

    /// `P(Num(I) >= 2 | Num(I) >= 1)`.
    fn multi_issue_prob(&self) -> f64 {
        self.occupancy
            .iter()
            .take(self.modules)
            .skip(1)
            .sum::<f64>()
    }

    /// Matching cost of issuing a `case` instruction to a module homed at
    /// `home`: information-bit distance dominates (homogeneous streams are
    /// the whole point), expected switched bits break ties between home
    /// *cases*, and a small index-dependent term breaks ties between
    /// *replicated* homes so different cases spread over different copies.
    fn match_cost(&self, home: Case, case: Case, module: usize) -> u32 {
        let info_dist =
            (home.op1_bit() != case.op1_bit()) as u32 + (home.op2_bit() != case.op2_bit()) as u32;
        let expected =
            (self.profile.expected_pair_cost(home, case, self.width) * 10.0).round() as u32;
        let tie = if home == case {
            module as u32
        } else {
            (2 * self.modules - module) as u32
        };
        info_dist * 1_000_000 + expected * 100 + tie
    }

    /// `P(Num(I) > slot | Num(I) >= 1)`: the probability that a vector
    /// slot holds a real instruction rather than padding.
    fn slot_real_prob(&self, slot: usize) -> f64 {
        if slot == 0 {
            return 1.0;
        }
        self.occupancy
            .iter()
            .take(self.modules)
            .skip(slot)
            .sum::<f64>()
            .clamp(0.0, 1.0)
    }

    /// Minimum-cost injective matching of instruction cases to module
    /// homes. [`min_cost_assignment`] breaks ties in favour of earlier
    /// slots, so the least-case padding of short cycles cannot steal a
    /// real instruction's best module.
    fn match_cases(&self, cases: &[Case], homes: &[Case]) -> Vec<usize> {
        let weights = vec![1.0; cases.len()];
        self.match_cases_weighted(cases, homes, &weights)
    }

    /// As [`LutBuilder::match_cases`], but scaling each slot's cost by the
    /// probability that the slot is real.
    fn match_cases_weighted(&self, cases: &[Case], homes: &[Case], weights: &[f64]) -> Vec<usize> {
        let cost: Vec<Vec<u32>> = cases
            .iter()
            .zip(weights)
            .map(|(&c, &w)| {
                homes
                    .iter()
                    .enumerate()
                    .map(|(m, &h)| (w * 1024.0 * self.match_cost(h, c, m) as f64).round() as u32)
                    .collect()
            })
            .collect();
        min_cost_assignment(&cost)
    }

    fn choose_homes(&self) -> Vec<Case> {
        match self.strategy {
            HomeStrategy::Auto => {
                if self.multi_issue_prob() < 0.2 {
                    self.unique_homes()
                } else {
                    self.proportional_homes()
                }
            }
            HomeStrategy::Unique => self.unique_homes(),
            HomeStrategy::Proportional => self.proportional_homes(),
            HomeStrategy::Search => self.search_homes(),
        }
    }

    /// Cases in descending frequency order.
    fn cases_by_frequency(&self) -> Vec<Case> {
        let mut cases = Case::ALL.to_vec();
        cases.sort_by(|a, b| {
            self.profile.case_freq[b.index()].total_cmp(&self.profile.case_freq[a.index()])
        });
        cases
    }

    /// One module per case in frequency order; extra modules (beyond four)
    /// are filled proportionally.
    fn unique_homes(&self) -> Vec<Case> {
        let ranked = self.cases_by_frequency();
        let mut homes: Vec<Case> = ranked.iter().copied().take(self.modules).collect();
        while homes.len() < self.modules {
            // More modules than cases: replicate proportionally.
            let extra = self.proportional_homes();
            homes.push(extra[homes.len() % extra.len()]);
        }
        homes
    }

    /// D'Hondt proportional allocation over expected per-cycle case counts.
    fn proportional_homes(&self) -> Vec<Case> {
        let mean = self.mean_occupancy().max(1.0);
        let lambda: Vec<f64> = Case::ALL
            .iter()
            .map(|c| self.profile.case_freq[c.index()] * mean)
            .collect();
        let mut seats = [0usize; 4];
        let mut homes = Vec::with_capacity(self.modules);
        for _ in 0..self.modules {
            let (idx, _) = lambda
                .iter()
                .enumerate()
                .map(|(i, &l)| (i, l / (seats[i] + 1) as f64))
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("four cases");
            seats[idx] += 1;
            homes.push(Case::from_index(idx as u8));
        }
        homes
    }

    /// Exhaustive search under an independent-bits steady-state model
    /// (each module's latches assumed to hold its home case). Kept as an
    /// ablation: the independence assumption undervalues same-case value
    /// correlation and can concentrate homes on the lowest-density case.
    fn search_homes(&self) -> Vec<Case> {
        if self.modules > 6 {
            return self.proportional_homes();
        }
        let mut best: Option<(f64, Vec<Case>)> = None;
        for encoded in 0..4usize.pow(self.modules as u32) {
            let homes: Vec<Case> = (0..self.modules)
                .map(|m| Case::from_index(((encoded >> (2 * m)) & 3) as u8))
                .collect();
            let cost = self.expected_cycle_cost(&homes);
            match &best {
                Some((c, _)) if *c <= cost => {}
                _ => best = Some((cost, homes)),
            }
        }
        best.expect("at least one combination").1
    }

    /// Expected switched bits of one busy cycle for [`HomeStrategy::Search`].
    fn expected_cycle_cost(&self, homes: &[Case]) -> f64 {
        let max_k = self.modules.min(self.occupancy.len()).min(4);
        let mut total = 0.0;
        for k in 1..=max_k {
            let p_k = self.occupancy[k - 1];
            if p_k <= 0.0 {
                continue;
            }
            for encoded in 0..4usize.pow(k as u32) {
                let cases: Vec<Case> = (0..k)
                    .map(|i| Case::from_index(((encoded >> (2 * i)) & 3) as u8))
                    .collect();
                let p_vec: f64 = cases
                    .iter()
                    .map(|c| self.profile.case_freq[c.index()])
                    .product();
                if p_vec <= 0.0 {
                    continue;
                }
                let assignment = self.match_cases(&cases, homes);
                let cost: f64 = assignment
                    .iter()
                    .zip(&cases)
                    .map(|(&m, &c)| self.profile.expected_pair_cost(homes[m], c, self.width))
                    .sum();
                total += p_k * p_vec * cost;
            }
        }
        total
    }
}

/// The runtime steering policy wrapping a built [`LutTable`]: encode this
/// cycle's cases, index the table, place any instructions beyond the
/// vector's slots on the remaining modules first-come-first-served.
///
/// The per-cycle working buffers are owned and reused: steady-state
/// assignment allocates nothing.
#[derive(Debug, Clone)]
pub struct LutPolicy {
    table: LutTable,
    name: String,
    /// This cycle's instruction cases, refilled per call.
    cases: Vec<Case>,
    /// Module-taken flags, refilled per call.
    used: Vec<bool>,
}

impl LutPolicy {
    /// Wraps a built table.
    pub fn new(table: LutTable) -> Self {
        let name = format!("{}-bit LUT", table.vector_bits());
        LutPolicy {
            table,
            name,
            cases: Vec::new(),
            used: Vec::new(),
        }
    }

    /// The underlying table (e.g. for gate-level synthesis).
    pub fn table(&self) -> &LutTable {
        &self.table
    }
}

impl SteeringPolicy for LutPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn assign_into(&mut self, ops: &[FuOp], modules: &[ModulePorts], out: &mut Vec<ModuleChoice>) {
        debug_assert!(ops.len() <= modules.len());
        self.cases.clear();
        self.cases.extend(ops.iter().map(FuOp::case));
        let vector = self.table.encode(&self.cases);
        let entry = self.table.entry(vector);
        self.used.clear();
        self.used.resize(modules.len(), false);
        out.clear();
        let seen = ops.len().min(self.table.slots());
        for &m in entry.iter().take(seen) {
            self.used[m as usize] = true;
            out.push(ModuleChoice {
                module: m as usize,
                swap: false,
            });
        }
        // Instructions the short vector could not see are routed blind:
        // the routing logic's only input is the vector, so no case
        // information exists for them — first free module, as a plain
        // Tomasulo router would.
        for _ in seen..ops.len() {
            let m = self
                .used
                .iter()
                .position(|&u| !u)
                .expect("ops never outnumber modules");
            self.used[m] = true;
            out.push(ModuleChoice {
                module: m,
                swap: false,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::validate_choices;
    use fua_isa::{FuClass, Word, FP_MANTISSA_BITS, INT_BITS};

    fn ialu_lut(slots: usize) -> LutTable {
        LutBuilder::new(CaseProfile::paper_ialu(), INT_BITS)
            .occupancy(&PAPER_IALU_OCCUPANCY)
            .modules(4)
            .build(slots)
    }

    fn fpau_lut(slots: usize) -> LutTable {
        LutBuilder::new(CaseProfile::paper_fpau(), FP_MANTISSA_BITS)
            .occupancy(&PAPER_FPAU_OCCUPANCY)
            .modules(4)
            .build(slots)
    }

    #[test]
    fn ialu_homes_reproduce_the_paper() {
        // Paper: "case 00 is by far the most common, so we assign three of
        // the modules as being likely to contain case 00, and we use the
        // fourth module for all three other cases" — the fourth home lands
        // on the most frequent remaining case (10).
        let lut = ialu_lut(2);
        let mut homes = lut.homes().to_vec();
        homes.sort_unstable();
        assert_eq!(homes, vec![Case::C00, Case::C00, Case::C00, Case::C10]);
    }

    #[test]
    fn fpau_homes_cover_distinct_cases() {
        // Paper: "because it is unlikely that two modules will be needed at
        // once, the best strategy is to first attempt to assign a unique
        // case to each module".
        let lut = fpau_lut(2);
        let mut homes: Vec<Case> = lut.homes().to_vec();
        homes.sort_unstable();
        homes.dedup();
        assert_eq!(
            homes.len(),
            4,
            "expected one home per case, got {:?}",
            lut.homes()
        );
    }

    #[test]
    fn home_strategies_differ_where_expected() {
        let unique = LutBuilder::new(CaseProfile::paper_ialu(), INT_BITS)
            .strategy(HomeStrategy::Unique)
            .build(2);
        let mut homes = unique.homes().to_vec();
        homes.sort_unstable();
        homes.dedup();
        assert_eq!(homes.len(), 4, "unique strategy gives distinct homes");

        let search = LutBuilder::new(CaseProfile::paper_fpau(), FP_MANTISSA_BITS)
            .occupancy(&PAPER_FPAU_OCCUPANCY)
            .strategy(HomeStrategy::Search)
            .build(2);
        assert_eq!(search.homes().len(), 4);
    }

    #[test]
    fn ialu_least_case_is_11() {
        assert_eq!(ialu_lut(1).least_case(), Case::C11);
    }

    #[test]
    fn single_case_routes_to_its_home_when_unique() {
        let lut = fpau_lut(1);
        for case in Case::ALL {
            let vector = lut.encode(&[case]);
            let module = lut.entry(vector)[0] as usize;
            assert_eq!(
                lut.homes()[module],
                case,
                "case {case} should reach its home module"
            );
        }
    }

    #[test]
    fn replicated_homes_spread_distinct_cases() {
        // IALU homes are three 00s + one 10. A lone 00 op and a lone 01 op
        // must land on *different* modules so their streams stay separate.
        let lut = ialu_lut(1);
        let m00 = lut.entry(lut.encode(&[Case::C00]))[0];
        let m01 = lut.entry(lut.encode(&[Case::C01]))[0];
        let m10 = lut.entry(lut.encode(&[Case::C10]))[0];
        assert_ne!(m00, m01);
        assert_eq!(lut.homes()[m10 as usize], Case::C10);
    }

    #[test]
    fn encode_pads_with_least_case() {
        let lut = ialu_lut(2);
        let padded = lut.encode(&[Case::C10]);
        let explicit = lut.encode(&[Case::C10, lut.least_case()]);
        assert_eq!(padded, explicit);
    }

    #[test]
    fn entries_are_valid_assignments() {
        for lut in [ialu_lut(1), ialu_lut(2), ialu_lut(4), fpau_lut(4)] {
            for v in 0..(1usize << lut.vector_bits()) {
                let entry = lut.entry(v);
                assert_eq!(entry.len(), lut.slots());
                let mut sorted: Vec<u8> = entry.to_vec();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), entry.len(), "distinct modules per entry");
                assert!(entry.iter().all(|&m| (m as usize) < lut.modules()));
            }
        }
    }

    #[test]
    fn policy_handles_more_ops_than_slots() {
        let mut policy = LutPolicy::new(ialu_lut(2));
        let modules = vec![ModulePorts::new(); 4];
        let op = |a: i32, b: i32| FuOp {
            class: FuClass::IntAlu,
            op1: Word::int(a),
            op2: Word::int(b),
            commutative: false,
        };
        let ops = [op(1, 1), op(-1, -1), op(2, 2), op(-2, -2)];
        let choices = policy.assign(&ops, &modules);
        validate_choices(&ops, modules.len(), &choices);
    }

    #[test]
    fn policy_name_reflects_vector_width() {
        assert_eq!(LutPolicy::new(ialu_lut(2)).name(), "4-bit LUT");
        assert_eq!(LutPolicy::new(ialu_lut(4)).name(), "8-bit LUT");
        assert_eq!(LutPolicy::new(ialu_lut(1)).name(), "2-bit LUT");
    }

    #[test]
    fn single_module_machine_degenerates_gracefully() {
        let lut = LutBuilder::new(CaseProfile::paper_ialu(), INT_BITS)
            .modules(1)
            .occupancy(&[1.0])
            .build(4);
        assert_eq!(lut.slots(), 1);
        for v in 0..4 {
            assert_eq!(lut.entry(v), &[0]);
        }
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;

    /// SplitMix64 step — deterministic generator for sweeping random
    /// profiles/occupancies without an external test-case library.
    fn next(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    fn unit(state: &mut u64) -> f64 {
        (next(state) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// An arbitrary, normalised case profile.
    fn random_profile(state: &mut u64) -> CaseProfile {
        let freq: [u32; 4] = std::array::from_fn(|_| 1 + (next(state) % 999) as u32);
        let total: u32 = freq.iter().sum();
        let case_freq: [f64; 4] = std::array::from_fn(|i| freq[i] as f64 / total as f64);
        let noncommutative_freq: [f64; 4] = std::array::from_fn(|i| case_freq[i] * unit(state));
        CaseProfile {
            case_freq,
            noncommutative_freq,
            op1_ones_prob: std::array::from_fn(|_| unit(state)),
            op2_ones_prob: std::array::from_fn(|_| unit(state)),
        }
    }

    fn random_occupancy(state: &mut u64, n: usize) -> Vec<f64> {
        let v: Vec<f64> = (0..n).map(|_| 0.01 + 0.99 * unit(state)).collect();
        let total: f64 = v.iter().sum();
        v.into_iter().map(|x| x / total).collect()
    }

    // The Search strategy enumerates 4^modules home assignments per
    // case; 48 random configurations give ample coverage without
    // dominating the suite's runtime.
    #[test]
    fn entries_are_valid_for_any_profile() {
        let mut state = 0x5EED_1001u64;
        for round in 0..48 {
            let profile = random_profile(&mut state);
            let occupancy = random_occupancy(&mut state, 4);
            let slots = 1 + (next(&mut state) as usize) % 4;
            let modules = 1 + (next(&mut state) as usize) % 6;
            let strategy = [
                HomeStrategy::Auto,
                HomeStrategy::Unique,
                HomeStrategy::Proportional,
                HomeStrategy::Search,
            ][(next(&mut state) as usize) % 4];
            let lut = LutBuilder::new(profile, 32)
                .occupancy(&occupancy)
                .modules(modules)
                .strategy(strategy)
                .build(slots);
            assert_eq!(lut.slots(), slots.min(modules));
            assert_eq!(lut.homes().len(), modules);
            for v in 0..(1usize << lut.vector_bits()) {
                let entry = lut.entry(v);
                assert_eq!(entry.len(), lut.slots());
                let mut sorted: Vec<u8> = entry.to_vec();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(
                    sorted.len(),
                    entry.len(),
                    "round {round}: entry {v} not injective"
                );
                assert!(entry.iter().all(|&m| (m as usize) < modules));
            }
        }
    }

    #[test]
    fn encode_is_total_and_in_range() {
        let mut state = 0x5EED_1002u64;
        for _ in 0..64 {
            let profile = random_profile(&mut state);
            let lut = LutBuilder::new(profile, 32).build(2);
            let len = (next(&mut state) as usize) % 6;
            let cases: Vec<Case> = (0..len)
                .map(|_| Case::from_index((next(&mut state) % 4) as u8))
                .collect();
            let v = lut.encode(&cases);
            assert!(v < (1 << lut.vector_bits()));
        }
    }

    #[test]
    fn policy_output_is_always_valid() {
        let mut state = 0x5EED_1003u64;
        for _ in 0..64 {
            let profile = random_profile(&mut state);
            let occupancy = random_occupancy(&mut state, 4);
            let lut = LutBuilder::new(profile, 32)
                .occupancy(&occupancy)
                .modules(4)
                .build(2);
            let mut policy = LutPolicy::new(lut);
            let nops = 1 + (next(&mut state) as usize) % 3;
            let ops: Vec<FuOp> = (0..nops)
                .map(|_| FuOp {
                    class: fua_isa::FuClass::IntAlu,
                    op1: fua_isa::Word::int(next(&mut state) as i32),
                    op2: fua_isa::Word::int(next(&mut state) as i32),
                    commutative: next(&mut state) & 1 == 1,
                })
                .collect();
            let modules = vec![ModulePorts::new(); 4];
            let choices = policy.assign(&ops, &modules);
            crate::policy::validate_choices(&ops, modules.len(), &choices);
        }
    }
}
