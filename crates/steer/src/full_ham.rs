//! The cost-prohibitive optimal scheme: full Hamming distances.

use fua_power::{steering_cost, ModulePorts};
use fua_vm::FuOp;

use crate::{min_cost_assignment_into, AssignScratch, ModuleChoice, SteeringPolicy};

/// The paper's Figure-2 algorithm: the cost of every (instruction,
/// module) pairing, taking the cheaper of the direct and swapped operand
/// orders for commutative instructions when `allow_swap` is set.
///
/// Returns `costs[i][j] = (cost, swapped)` for instruction `i` on module
/// `j`.
///
/// # Examples
///
/// ```
/// use fua_isa::{FuClass, Word};
/// use fua_power::ModulePorts;
/// use fua_steer::assignment_costs;
/// use fua_vm::FuOp;
///
/// let op = FuOp {
///     class: FuClass::IntAlu,
///     op1: Word::int(0),
///     op2: Word::int(0),
///     commutative: true,
/// };
/// let modules = vec![ModulePorts::new(); 2];
/// let costs = assignment_costs(&[op], &modules, true);
/// assert_eq!(costs[0][0], (0, false)); // empty latches are free
/// ```
pub fn assignment_costs(
    ops: &[FuOp],
    modules: &[ModulePorts],
    allow_swap: bool,
) -> Vec<Vec<(u32, bool)>> {
    ops.iter()
        .map(|op| {
            modules
                .iter()
                .map(|m| steering_cost(m.prev(), op, allow_swap))
                .collect()
        })
        .collect()
}

/// Optimal per-cycle assignment using exact Hamming distances — the
/// *Full Ham* upper bound of Figure 4. Too expensive for real routing
/// logic (the cost computation alone would dominate the savings); modelled
/// here as the yardstick every practical scheme is measured against.
///
/// The cost matrix and solver scratch live on the policy and are reused
/// every cycle: steady-state assignment allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct FullHamPolicy {
    allow_swap: bool,
    /// Row-major `ops × modules` (cost, swapped) pairs, refilled per call.
    costs: Vec<(u32, bool)>,
    scratch: AssignScratch,
    assignment: Vec<usize>,
}

impl FullHamPolicy {
    /// Creates the policy; `allow_swap` enables the per-assignment operand
    /// swap of Figure 2 (the "+ Hardware swapping" variant).
    pub fn new(allow_swap: bool) -> Self {
        FullHamPolicy {
            allow_swap,
            ..FullHamPolicy::default()
        }
    }
}

impl SteeringPolicy for FullHamPolicy {
    fn name(&self) -> &str {
        "Full Ham"
    }

    fn assign_into(&mut self, ops: &[FuOp], modules: &[ModulePorts], out: &mut Vec<ModuleChoice>) {
        let m = modules.len();
        self.costs.clear();
        for op in ops {
            for module in modules {
                self.costs
                    .push(steering_cost(module.prev(), op, self.allow_swap));
            }
        }
        let costs = &self.costs;
        min_cost_assignment_into(
            ops.len(),
            m,
            |r, c| costs[r * m + c].0,
            &mut self.scratch,
            &mut self.assignment,
        );
        out.clear();
        out.extend(
            self.assignment
                .iter()
                .enumerate()
                .map(|(i, &module)| ModuleChoice {
                    module,
                    swap: costs[i * m + module].1,
                }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::validate_choices;
    use fua_isa::{FuClass, Word};

    fn op(a: i32, b: i32, commutative: bool) -> FuOp {
        FuOp {
            class: FuClass::IntAlu,
            op1: Word::int(a),
            op2: Word::int(b),
            commutative,
        }
    }

    fn latched(pairs: &[(i32, i32)]) -> Vec<ModulePorts> {
        pairs
            .iter()
            .map(|&(a, b)| {
                let mut m = ModulePorts::new();
                m.latch(Word::int(a), Word::int(b));
                m
            })
            .collect()
    }

    #[test]
    fn routes_to_the_matching_module() {
        // Module 0 holds small positives, module 1 holds -1s. A new all-ones
        // op must go to module 1.
        let modules = latched(&[(1, 2), (-1, -1)]);
        let ops = [op(-1, -1, false)];
        let choices = FullHamPolicy::new(false).assign(&ops, &modules);
        validate_choices(&ops, modules.len(), &choices);
        assert_eq!(choices[0].module, 1);
    }

    #[test]
    fn swap_is_chosen_when_it_wins() {
        let modules = latched(&[(-1, 0)]);
        let ops = [op(0, -1, true)];
        let choices = FullHamPolicy::new(true).assign(&ops, &modules);
        assert!(choices[0].swap);
        let no_swap = FullHamPolicy::new(false).assign(&ops, &modules);
        assert!(!no_swap[0].swap);
    }

    /// Total cost of a set of choices against the modules' latched state.
    fn routing_cost(modules: &[ModulePorts], ops: &[FuOp], assignment: &[usize]) -> u32 {
        assignment
            .iter()
            .zip(ops)
            .map(|(&m, o)| fua_power::pair_cost(modules[m].prev(), o.op1, o.op2))
            .sum()
    }

    #[test]
    fn total_cost_matches_exhaustive_minimum() {
        let modules = latched(&[(0, 0), (1, 0), (255, 7)]);
        let ops = [op(0, 0, false), op(0, 1, false), op(254, 7, false)];
        let choices = FullHamPolicy::new(false).assign(&ops, &modules);
        let got = routing_cost(
            &modules,
            &ops,
            &choices.iter().map(|c| c.module).collect::<Vec<_>>(),
        );
        // Exhaustive over all 3! permutations.
        let perms = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        let best = perms
            .iter()
            .map(|p| routing_cost(&modules, &ops, p))
            .min()
            .expect("non-empty");
        assert_eq!(got, best);
    }

    #[test]
    fn paper_figure_1_example_saves_energy() {
        // Figure 1: three FUs, two cycles, 16-bit hex values; the paper
        // reports the alternative routing uses 57% less energy than the
        // default. The figure does not label which cycle-2 operand pair
        // the default router sends to which FU, so we compare the optimal
        // routing against the worst and the in-order ones.
        let modules = latched(&[
            (0x0A01, 0x0001),
            (0x7FFF, 0x0001),
            (0xFFF7u32 as i32, 0x7F00),
        ]);
        let cycle2 = [
            op(0x0A71, 0x0111, false),
            op(0x0A01, 0x0001, false),
            op(0x7F00, 0x0001, false),
        ];
        let choices = FullHamPolicy::new(false).assign(&cycle2, &modules);
        let optimal = routing_cost(
            &modules,
            &cycle2,
            &choices.iter().map(|c| c.module).collect::<Vec<_>>(),
        );
        let in_order = routing_cost(&modules, &cycle2, &[0, 1, 2]);
        let worst = [
            [0usize, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ]
        .iter()
        .map(|p| routing_cost(&modules, &cycle2, p))
        .max()
        .expect("non-empty");
        assert!(optimal < in_order);
        let saving_vs_worst = 1.0 - optimal as f64 / worst as f64;
        assert!(
            saving_vs_worst > 0.3,
            "optimal routing should save substantially vs a bad default, got {saving_vs_worst:.2}"
        );
    }
}
