//! Experiment ledger: run manifests, BENCH artifacts, and
//! regression-gated baseline comparison.
//!
//! The model crates compute numbers; this crate makes them *durable and
//! comparable*. Three layers:
//!
//! 1. [`RunManifest`] — the exact configuration a measurement was taken
//!    under: experiment knobs, the full machine description, and each
//!    workload's deterministic data seed. Two artifacts are only diffed
//!    when their manifests agree (tag aside).
//! 2. [`BenchReport`] / [`bench_suite`] — one suite run captured as a
//!    schema-stable JSON artifact (`BENCH_<tag>.json`): the Figure-4
//!    scheme sweeps, headline reductions, Table-1/2 aggregates,
//!    per-phase wall-clock of the simulator hot loop, and a windowed
//!    telemetry summary whose exactness against the energy ledger is
//!    verified at capture time.
//! 3. [`compare`] / [`Comparison`] — a tolerance-banded diff of two
//!    artifacts that flags metric drift, scheme-ordering inversions,
//!    and phase-timer slowdowns. `fua report --baseline` turns the
//!    verdict into an exit code for CI gating.
//!
//! Everything is dependency-free: JSON parsing and emission come from
//! the in-tree [`fua_trace`] value type.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod bench;
mod compare;
mod manifest;
mod trends;

pub use bench::{
    bench_suite, bench_suite_jobs, AttributionSummary, BenchReport, EstimatorEntry,
    EstimatorSummary, HarnessSummary, HotspotEntry, OperandAggregates, ParallelSummary, PhaseNanos,
    StallSummary, TelemetrySummary, ThroughputSummary, UnitFigure, WorkerNanos,
    ATTRIBUTION_HOTSPOTS, BENCH_SCHEMA, BENCH_SCHEMAS_READ, DEFAULT_WINDOW_CYCLES,
};
pub use compare::{compare, Comparison, Finding, Severity, Tolerance};
pub use manifest::{RunManifest, WorkloadEntry};
pub use trends::{
    sparkline, trends, TrendError, TrendKind, TrendReport, TrendSeries, TRENDS_SCHEMA, TREND_WINDOW,
};

use fua_trace::{Json, JsonParseError};
use std::fmt;

/// An error loading or decoding a BENCH artifact.
#[derive(Debug, Clone, PartialEq)]
pub enum ReportError {
    /// The raw text was not valid JSON.
    Parse(JsonParseError),
    /// A required field was absent.
    MissingField(String),
    /// A field was present with the wrong type or shape.
    MistypedField(String),
    /// The artifact declared an unknown schema version.
    Schema {
        /// What the artifact declared.
        found: String,
        /// Every schema this build accepts (oldest to newest).
        expected: &'static [&'static str],
    },
}

impl ReportError {
    pub(crate) fn missing(field: &str) -> Self {
        ReportError::MissingField(field.to_string())
    }

    pub(crate) fn mistyped(field: &str) -> Self {
        ReportError::MistypedField(field.to_string())
    }
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportError::Parse(e) => write!(f, "malformed JSON: {e}"),
            ReportError::MissingField(field) => write!(f, "missing field `{field}`"),
            ReportError::MistypedField(field) => write!(f, "field `{field}` has the wrong type"),
            ReportError::Schema { found, expected } => {
                write!(
                    f,
                    "unknown schema: {found}\naccepted schemas: {}",
                    expected.join(", ")
                )
            }
        }
    }
}

impl std::error::Error for ReportError {}

/// Fetches a required string field.
pub(crate) fn expect_str<'a>(json: &'a Json, field: &str) -> Result<&'a str, ReportError> {
    json.get(field)
        .ok_or_else(|| ReportError::missing(field))?
        .as_str()
        .ok_or_else(|| ReportError::mistyped(field))
}

/// Fetches a required unsigned-integer field.
pub(crate) fn expect_u64(json: &Json, field: &str) -> Result<u64, ReportError> {
    json.get(field)
        .ok_or_else(|| ReportError::missing(field))?
        .as_u64()
        .ok_or_else(|| ReportError::mistyped(field))
}

/// Fetches a required numeric field as a float.
pub(crate) fn expect_f64(json: &Json, field: &str) -> Result<f64, ReportError> {
    json.get(field)
        .ok_or_else(|| ReportError::missing(field))?
        .as_f64()
        .ok_or_else(|| ReportError::mistyped(field))
}
