//! Longitudinal trend analysis over a history of BENCH artifacts.
//!
//! [`compare`](crate::compare) answers "did this run drift from that
//! run?"; this module answers "is the trajectory healthy?". Given an
//! ordered history of artifacts captured under one comparable manifest
//! (oldest first, as the run store hands them out), [`trends`] extracts
//! one time series per tracked metric and applies a rolling-median
//! change-point rule: each point is banded against the median of its
//! [`TREND_WINDOW`] most recent predecessors, using the same
//! [`Tolerance`] knobs the pairwise gate uses.
//!
//! The classification is positional. An out-of-band *newest* point is a
//! [`Severity::Regression`] (`trend-regression`) — the latest run broke
//! the trajectory and the gate fails. An out-of-band *interior* point
//! is only [`Severity::Info`] (`trend-shift`): it marks where the
//! history stepped (an intentional model change, a retagged baseline),
//! which is exactly the provenance question the store exists to answer,
//! not something to fail retroactively.
//!
//! Three band shapes cover the metric families:
//!
//! - [`TrendKind::Points`] — absolute drift in percentage points
//!   (`metric_pct`), for reduction percentages and share-of-total
//!   metrics that already live on a 0–100 scale.
//! - [`TrendKind::RelativePct`] — relative drift in percent
//!   (`metric_pct`), for dimensionless ratios (suite IPC, estimator
//!   precision) where a fixed point band would be meaningless.
//! - [`TrendKind::WallClock`] — slowdown-only by `timer_factor`, for
//!   measured rates (simulated MHz) where faster is never a finding
//!   and machine-to-machine noise must not gate.
//! - [`TrendKind::Inflation`] — growth-only by `timer_factor`, for
//!   measured costs (harness allocations per simulated kilocycle)
//!   where *lower* is better and only an explosion should gate.
//!
//! Series are aligned to the input points with `Vec<Option<f64>>`:
//! artifacts predating a section's schema (for example pre-1.5 runs
//! without `throughput`) contribute holes, which the median skips and
//! [`sparkline`] renders as gaps.

use crate::bench::BenchReport;
use crate::compare::{Finding, Severity, Tolerance};
use fua_trace::Json;
use std::fmt;

/// Schema identifier stamped into `trends --json` output.
pub const TRENDS_SCHEMA: &str = "fua-trends/1";

/// Rolling-median window: each point is banded against the median of
/// up to this many most recent non-hole predecessors.
pub const TREND_WINDOW: usize = 8;

/// Characters of the ASCII sparkline, lowest value first.
const SPARK_LEVELS: &[u8] = b"_.:-=+*#";

/// How a series is banded against its rolling median.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrendKind {
    /// Absolute drift banded in percentage points (`metric_pct`).
    Points,
    /// Relative drift banded in percent of the median (`metric_pct`).
    RelativePct,
    /// Only a slowdown beyond `timer_factor` is flagged; the metric is
    /// a measured rate where higher is better and noise is expected.
    WallClock,
    /// Only growth beyond `timer_factor` is flagged; the metric is a
    /// measured cost where lower is better and noise is expected.
    Inflation,
}

impl TrendKind {
    /// Machine-greppable name used in the JSON rendering.
    pub fn name(self) -> &'static str {
        match self {
            TrendKind::Points => "points",
            TrendKind::RelativePct => "relative-pct",
            TrendKind::WallClock => "wall-clock",
            TrendKind::Inflation => "inflation",
        }
    }
}

/// One metric's history across the input points.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendSeries {
    /// Human-readable metric name (also the JSON key).
    pub metric: String,
    /// The band shape applied to this series.
    pub kind: TrendKind,
    /// One slot per input point, oldest first; `None` where the
    /// artifact predates the metric's schema section.
    pub values: Vec<Option<f64>>,
}

impl TrendSeries {
    /// The newest recorded value, if the latest artifact carries one.
    pub fn newest(&self) -> Option<f64> {
        self.values.last().copied().flatten()
    }
}

/// The assembled trend analysis: aligned series plus classified
/// change points.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendReport {
    /// One label per input point, oldest first (store tags or
    /// sequence numbers).
    pub labels: Vec<String>,
    /// One series per tracked metric.
    pub series: Vec<TrendSeries>,
    /// Change-point findings, regressions first.
    pub findings: Vec<Finding>,
}

impl TrendReport {
    /// Whether the newest point stayed in band on every series.
    pub fn passed(&self) -> bool {
        self.regressions() == 0
    }

    /// Number of regression-severity findings.
    pub fn regressions(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Regression)
            .count()
    }

    /// Renders the report as a stable JSON document.
    pub fn to_json(&self) -> Json {
        let series = self
            .series
            .iter()
            .map(|s| {
                let values = s
                    .values
                    .iter()
                    .map(|v| match v {
                        Some(x) => Json::Float(*x),
                        None => Json::Null,
                    })
                    .collect();
                Json::obj([
                    ("metric", Json::Str(s.metric.clone())),
                    ("kind", Json::Str(s.kind.name().to_string())),
                    ("values", Json::Arr(values)),
                    ("spark", Json::Str(sparkline(&s.values))),
                ])
            })
            .collect();
        let findings = self
            .findings
            .iter()
            .map(|f| {
                Json::obj([
                    (
                        "severity",
                        Json::Str(
                            match f.severity {
                                Severity::Info => "info",
                                Severity::Regression => "regression",
                            }
                            .to_string(),
                        ),
                    ),
                    ("category", Json::Str(f.category.to_string())),
                    ("message", Json::Str(f.message.clone())),
                ])
            })
            .collect();
        Json::obj([
            ("schema", Json::Str(TRENDS_SCHEMA.to_string())),
            ("points", Json::UInt(self.labels.len() as u64)),
            (
                "labels",
                Json::Arr(self.labels.iter().cloned().map(Json::Str).collect()),
            ),
            ("passed", Json::Bool(self.passed())),
            ("series", Json::Arr(series)),
            ("findings", Json::Arr(findings)),
        ])
    }
}

/// Why a trend analysis could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrendError {
    /// Fewer than two points — there is no trajectory to judge.
    TooFew {
        /// How many points were supplied.
        have: usize,
    },
    /// A point's manifest is not comparable with the first point's.
    Incomparable {
        /// Label of the offending point.
        label: String,
        /// Label of the point it was checked against.
        against: String,
    },
}

impl fmt::Display for TrendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrendError::TooFew { have } => {
                write!(
                    f,
                    "need at least 2 comparable runs for a trend, have {have}"
                )
            }
            TrendError::Incomparable { label, against } => {
                write!(
                    f,
                    "run {label} was captured under a different configuration than {against}; \
                     trends only run over one manifest key"
                )
            }
        }
    }
}

impl std::error::Error for TrendError {}

/// Renders a series as one ASCII sparkline character per point.
///
/// Values are scaled to the series' own min–max range over eight
/// levels (`_.:-=+*#`); holes render as spaces; a flat series renders
/// at the middle level.
pub fn sparkline(values: &[Option<f64>]) -> String {
    let present: Vec<f64> = values.iter().copied().flatten().collect();
    let (min, max) = present
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
            (lo.min(*v), hi.max(*v))
        });
    let span = max - min;
    values
        .iter()
        .map(|v| match v {
            None => ' ',
            Some(v) => {
                let level = if span <= 0.0 || !span.is_finite() {
                    SPARK_LEVELS.len() / 2
                } else {
                    let t = (v - min) / span;
                    ((t * (SPARK_LEVELS.len() - 1) as f64).round() as usize)
                        .min(SPARK_LEVELS.len() - 1)
                };
                SPARK_LEVELS[level] as char
            }
        })
        .collect()
}

/// Median of a non-empty slice (midpoint average for even lengths).
fn median(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Checks one value against its rolling median; `Some(description)`
/// when it is out of band for the series' kind.
fn band_violation(kind: TrendKind, value: f64, med: f64, tol: &Tolerance) -> Option<String> {
    match kind {
        TrendKind::Points => {
            let drift = (value - med).abs();
            (drift > tol.metric_pct).then(|| {
                format!(
                    "{value:.3} vs rolling median {med:.3}: drift {drift:.3} pct-points \
                     exceeds the {:.3} band",
                    tol.metric_pct
                )
            })
        }
        TrendKind::RelativePct => {
            let drift_pct = if med.abs() < 1e-12 {
                if (value - med).abs() < 1e-12 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                (value - med).abs() / med.abs() * 100.0
            };
            (drift_pct > tol.metric_pct).then(|| {
                format!(
                    "{value:.4} vs rolling median {med:.4}: relative drift {drift_pct:.2}% \
                     exceeds the {:.2}% band",
                    tol.metric_pct
                )
            })
        }
        TrendKind::WallClock => {
            if value <= 0.0 || med <= 0.0 {
                return None;
            }
            let factor = med / value;
            (factor > tol.timer_factor).then(|| {
                format!(
                    "{value:.1} vs rolling median {med:.1}: {factor:.1}x slower exceeds \
                     the {:.1}x slowdown factor",
                    tol.timer_factor
                )
            })
        }
        TrendKind::Inflation => {
            if value <= 0.0 || med <= 0.0 {
                return None;
            }
            let factor = value / med;
            (factor > tol.timer_factor).then(|| {
                format!(
                    "{value:.1} vs rolling median {med:.1}: {factor:.1}x growth exceeds \
                     the {:.1}x inflation factor",
                    tol.timer_factor
                )
            })
        }
    }
}

/// Pulls one metric's value out of an artifact, or `None` when the
/// artifact predates the metric (a hole in the series).
type Extract = Box<dyn Fn(&BenchReport) -> Option<f64>>;

/// One tracked metric: its name, band shape, and extractor.
struct Metric {
    name: String,
    kind: TrendKind,
    extract: Extract,
}

/// Builds the metric catalogue from the newest point (whose scheme
/// rows and estimator entries define which per-scheme series exist).
fn catalogue(newest: &BenchReport, tol: &Tolerance) -> Vec<Metric> {
    let mut metrics: Vec<Metric> = Vec::new();
    let mut push = |name: String, kind: TrendKind, f: Extract| {
        metrics.push(Metric {
            name,
            kind,
            extract: f,
        })
    };

    // Headline reductions.
    push(
        "headline IALU %".to_string(),
        TrendKind::Points,
        Box::new(|r| Some(r.headline_ialu_pct)),
    );
    push(
        "headline FPAU %".to_string(),
        TrendKind::Points,
        Box::new(|r| Some(r.headline_fpau_pct)),
    );
    push(
        "headline IALU+compiler %".to_string(),
        TrendKind::Points,
        Box::new(|r| Some(r.headline_ialu_compiler_pct)),
    );

    // Per-scheme hardware-swap reductions, both units. Which schemes
    // exist comes from the newest point; older points missing a scheme
    // contribute holes.
    for row in &newest.ialu.rows {
        let scheme = row.scheme.clone();
        push(
            format!("IALU {scheme} hw %"),
            TrendKind::Points,
            Box::new(move |r| r.ialu.row(&scheme).map(|row| row.hardware_pct)),
        );
    }
    for row in &newest.fpau.rows {
        let scheme = row.scheme.clone();
        push(
            format!("FPAU {scheme} hw %"),
            TrendKind::Points,
            Box::new(move |r| r.fpau.row(&scheme).map(|row| row.hardware_pct)),
        );
    }

    // Throughput: IPC is a deterministic model ratio; the simulated
    // rates divide by wall-clock and are only slowdown-gated, with
    // sub-floor hot loops treated as holes (noise, not signal).
    push(
        "suite IPC".to_string(),
        TrendKind::RelativePct,
        Box::new(|r| r.throughput.as_ref().map(|t| t.ipc())),
    );
    let floor = tol.timer_floor_nanos;
    push(
        "sim MHz".to_string(),
        TrendKind::WallClock,
        Box::new(move |r| {
            r.throughput
                .as_ref()
                .filter(|t| t.hot_nanos >= floor)
                .map(|t| t.sim_mhz())
        }),
    );
    push(
        "sim kinst/s".to_string(),
        TrendKind::WallClock,
        Box::new(move |r| {
            r.throughput
                .as_ref()
                .filter(|t| t.hot_nanos >= floor)
                .map(|t| t.kips())
        }),
    );

    // Stall-reason mix, as share of all issue slots.
    for (i, reason) in fua_trace::StallReason::ALL.iter().enumerate() {
        push(
            format!("stall {} share %", reason.name()),
            TrendKind::Points,
            Box::new(move |r| {
                r.stalls
                    .as_ref()
                    .filter(|s| s.slots > 0)
                    .map(|s| s.mix[i] as f64 / s.slots as f64 * 100.0)
            }),
        );
    }

    // Estimator precision ratios, one per scheme the newest point
    // checked.
    if let Some(est) = &newest.estimator {
        for entry in &est.entries {
            let scheme = entry.scheme.clone();
            push(
                format!("estimator {scheme} ratio"),
                TrendKind::RelativePct,
                Box::new(move |r| {
                    r.estimator.as_ref().and_then(|e| {
                        e.entries
                            .iter()
                            .find(|en| en.scheme == scheme)
                            .map(|en| en.mean_ratio)
                    })
                }),
            );
        }
    }

    // Harness allocation pressure: allocations per simulated kilocycle
    // of the telemetry pass. Holes for pre-1.6 artifacts and for runs
    // captured without the counting allocator installed; growth-only
    // gating, since measurement noise can always shrink the figure.
    push(
        "harness allocs/kcycle".to_string(),
        TrendKind::Inflation,
        Box::new(|r| r.harness.as_ref().and_then(|h| h.allocs_per_kcycle)),
    );

    // Attribution hotspot concentration: how top-heavy the energy
    // profile is (top PC, and the whole recorded top-N together).
    push(
        "hotspot top-1 share %".to_string(),
        TrendKind::Points,
        Box::new(|r| {
            r.attribution
                .as_ref()
                .and_then(|a| a.top_hotspots.first())
                .map(|h| h.share_pct)
        }),
    );
    push(
        "hotspot top-10 share %".to_string(),
        TrendKind::Points,
        Box::new(|r| {
            r.attribution
                .as_ref()
                .map(|a| a.top_hotspots.iter().map(|h| h.share_pct).sum())
        }),
    );

    metrics
}

/// Assembles per-metric time series over a comparable artifact history
/// (oldest first) and classifies change points against rolling
/// medians.
///
/// Returns [`TrendError::TooFew`] below two points and
/// [`TrendError::Incomparable`] when any point's manifest disagrees
/// with the first point's (tag aside). The result's
/// [`passed`](TrendReport::passed) is `false` exactly when the newest
/// point sits out of band on some series.
pub fn trends(
    points: &[(String, BenchReport)],
    tol: &Tolerance,
) -> Result<TrendReport, TrendError> {
    if points.len() < 2 {
        return Err(TrendError::TooFew { have: points.len() });
    }
    let (first_label, first) = &points[0];
    for (label, report) in &points[1..] {
        if !first.manifest.comparable_with(&report.manifest) {
            return Err(TrendError::Incomparable {
                label: label.clone(),
                against: first_label.clone(),
            });
        }
    }

    let newest = &points[points.len() - 1].1;
    let metrics = catalogue(newest, tol);
    let mut series = Vec::with_capacity(metrics.len());
    let mut findings = Vec::new();

    for metric in &metrics {
        let values: Vec<Option<f64>> = points.iter().map(|(_, r)| (metric.extract)(r)).collect();

        // Band each present point against the median of its most
        // recent present predecessors.
        for (i, value) in values.iter().enumerate() {
            let Some(value) = value else { continue };
            let prior: Vec<f64> = values[..i]
                .iter()
                .copied()
                .flatten()
                .rev()
                .take(TREND_WINDOW)
                .collect();
            if prior.is_empty() {
                continue;
            }
            let med = median(&prior);
            if let Some(description) = band_violation(metric.kind, *value, med, tol) {
                let newest_point = i == points.len() - 1;
                findings.push(Finding {
                    severity: if newest_point {
                        Severity::Regression
                    } else {
                        Severity::Info
                    },
                    category: if newest_point {
                        "trend-regression"
                    } else {
                        "trend-shift"
                    },
                    message: format!("{} at {}: {}", metric.name, points[i].0, description),
                });
            }
        }

        series.push(TrendSeries {
            metric: metric.name.clone(),
            kind: metric.kind,
            values,
        });
    }

    findings.sort_by_key(|f| match f.severity {
        Severity::Regression => 0,
        Severity::Info => 1,
    });

    Ok(TrendReport {
        labels: points.iter().map(|(l, _)| l.clone()).collect(),
        series,
        findings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::bench_suite;
    use fua_core::ExperimentConfig;

    fn tiny() -> BenchReport {
        let config = ExperimentConfig {
            inst_limit: 1_500,
            ..ExperimentConfig::quick()
        };
        bench_suite("tiny", &config, 512)
    }

    fn history(n: usize) -> Vec<(String, BenchReport)> {
        let base = tiny();
        (0..n).map(|i| (format!("run-{i}"), base.clone())).collect()
    }

    #[test]
    fn a_flat_history_passes_with_no_findings() {
        let report = trends(&history(4), &Tolerance::default()).unwrap();
        assert!(report.passed());
        assert!(report.findings.is_empty(), "{:#?}", report.findings);
        assert_eq!(report.labels.len(), 4);
        // Every series is fully populated on same-schema artifacts —
        // except the allocation series, which is all holes because the
        // test binary runs without the counting allocator installed.
        assert!(report
            .series
            .iter()
            .all(|s| s.metric == "harness allocs/kcycle" || s.values.iter().all(Option::is_some)));
        let allocs = report
            .series
            .iter()
            .find(|s| s.metric == "harness allocs/kcycle")
            .unwrap();
        assert!(allocs.values.iter().all(Option::is_none));
    }

    #[test]
    fn fewer_than_two_points_is_an_error() {
        assert_eq!(
            trends(&history(1), &Tolerance::default()),
            Err(TrendError::TooFew { have: 1 })
        );
    }

    #[test]
    fn a_foreign_manifest_is_rejected_by_label() {
        let mut points = history(3);
        points[2].1.manifest.inst_limit += 1;
        let err = trends(&points, &Tolerance::default()).unwrap_err();
        assert_eq!(
            err,
            TrendError::Incomparable {
                label: "run-2".to_string(),
                against: "run-0".to_string(),
            }
        );
    }

    #[test]
    fn a_drifted_newest_point_is_a_regression() {
        let mut points = history(4);
        points[3].1.headline_ialu_pct += 5.0;
        let report = trends(&points, &Tolerance::default()).unwrap();
        assert!(!report.passed());
        assert!(report.findings.iter().any(|f| {
            f.category == "trend-regression"
                && f.severity == Severity::Regression
                && f.message.contains("headline IALU %")
                && f.message.contains("run-3")
        }));
    }

    #[test]
    fn an_interior_step_is_informational_only() {
        let mut points = history(5);
        points[2].1.headline_ialu_pct += 5.0;
        let report = trends(&points, &Tolerance::default()).unwrap();
        assert!(report.passed(), "{:#?}", report.findings);
        assert!(report
            .findings
            .iter()
            .any(|f| f.category == "trend-shift" && f.severity == Severity::Info));
    }

    #[test]
    fn wall_clock_noise_never_regresses_but_a_collapse_does() {
        let mut points = history(4);
        for (_, r) in &mut points {
            r.throughput.as_mut().unwrap().hot_nanos = 20_000_000;
        }
        // 2x slower: inside the generous factor, no finding.
        points[3].1.throughput.as_mut().unwrap().hot_nanos = 40_000_000;
        let report = trends(&points, &Tolerance::default()).unwrap();
        assert!(report.passed(), "{:#?}", report.findings);

        // 30x slower: flagged on the rate series.
        points[3].1.throughput.as_mut().unwrap().hot_nanos = 20_000_000 * 30;
        let report = trends(&points, &Tolerance::default()).unwrap();
        assert!(!report.passed());
        assert!(report
            .findings
            .iter()
            .any(|f| f.category == "trend-regression" && f.message.contains("sim MHz")));
    }

    #[test]
    fn allocation_inflation_gates_only_on_an_explosion() {
        let mut points = history(4);
        for (_, r) in &mut points {
            r.harness.as_mut().unwrap().allocs_per_kcycle = Some(5.0);
        }
        // Doubling is noise under the generous factor: no finding.
        points[3].1.harness.as_mut().unwrap().allocs_per_kcycle = Some(10.0);
        let report = trends(&points, &Tolerance::default()).unwrap();
        assert!(report.passed(), "{:#?}", report.findings);

        // A 1000x explosion on the newest point fails the gate.
        points[3].1.harness.as_mut().unwrap().allocs_per_kcycle = Some(5_000.0);
        let report = trends(&points, &Tolerance::default()).unwrap();
        assert!(!report.passed());
        assert!(report.findings.iter().any(|f| {
            f.category == "trend-regression" && f.message.contains("harness allocs/kcycle")
        }));

        // Shrinking is never a finding for a cost series.
        points[3].1.harness.as_mut().unwrap().allocs_per_kcycle = Some(0.001);
        let report = trends(&points, &Tolerance::default()).unwrap();
        assert!(report.passed(), "{:#?}", report.findings);
    }

    #[test]
    fn pre_throughput_artifacts_contribute_holes_not_findings() {
        let mut points = history(4);
        points[0].1.throughput = None;
        points[1].1.throughput = None;
        let report = trends(&points, &Tolerance::default()).unwrap();
        assert!(report.passed(), "{:#?}", report.findings);
        let ipc = report
            .series
            .iter()
            .find(|s| s.metric == "suite IPC")
            .unwrap();
        assert_eq!(ipc.values[0], None);
        assert_eq!(ipc.values[1], None);
        assert!(ipc.values[2].is_some() && ipc.values[3].is_some());
        assert!(sparkline(&ipc.values).starts_with("  "));
    }

    #[test]
    fn sparklines_scale_to_the_series_range() {
        let values: Vec<Option<f64>> = vec![Some(0.0), Some(100.0), None, Some(50.0), Some(100.0)];
        let spark = sparkline(&values);
        assert_eq!(spark.len(), 5);
        assert_eq!(&spark[0..1], "_");
        assert_eq!(&spark[1..2], "#");
        assert_eq!(&spark[2..3], " ");
        assert_eq!(&spark[4..5], "#");
        // Flat series sit at the middle level.
        assert_eq!(sparkline(&[Some(7.0), Some(7.0)]), "==");
    }

    #[test]
    fn the_json_rendering_round_trips_holes_as_null() {
        let mut points = history(3);
        points[0].1.throughput = None;
        let report = trends(&points, &Tolerance::default()).unwrap();
        let json = report.to_json();
        assert_eq!(
            json.get("schema").and_then(Json::as_str),
            Some(TRENDS_SCHEMA)
        );
        assert_eq!(json.get("passed").and_then(Json::as_bool), Some(true));
        let text = json.pretty();
        let reparsed = Json::parse(&text).unwrap();
        let series = reparsed.get("series").and_then(Json::as_arr).unwrap();
        let ipc = series
            .iter()
            .find(|s| s.get("metric").and_then(Json::as_str) == Some("suite IPC"))
            .unwrap();
        let vals = ipc.get("values").and_then(Json::as_arr).unwrap();
        assert_eq!(vals[0], Json::Null);
        assert!(vals[1].as_f64().is_some());
    }
}
