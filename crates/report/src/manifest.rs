//! Run manifests: the exact configuration a BENCH artifact was measured
//! under.
//!
//! A number without its configuration is unusable for comparison — a
//! 17% reduction at scale 1 / 25 k instructions is a different
//! measurement from one at scale 4 / 150 k. The manifest pins everything
//! that determines the numbers: experiment knobs, the full machine
//! configuration, and the deterministic data seed of every workload.
//! Baseline comparison refuses to diff artifacts whose manifests
//! disagree (other than the tag).

use fua_sim::{CacheConfig, MachineConfig};
use fua_trace::{Json, ToJson};
use fua_workloads::{all, seed_of};

use fua_core::ExperimentConfig;

use crate::{expect_str, expect_u64, ReportError};

/// One workload row of the manifest: name, suite half, and the exact
/// data-generation seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadEntry {
    /// Benchmark name (the SPEC95 program it stands in for).
    pub name: String,
    /// "integer" or "floating-point".
    pub category: String,
    /// The SplitMix64 seed its data was generated from.
    pub seed: u64,
}

/// The full provenance of one `BENCH_<tag>.json` artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// The artifact tag (`fua bench-suite --tag T`).
    pub tag: String,
    /// Workload scale factor.
    pub scale: u32,
    /// Per-run retired-instruction cap.
    pub inst_limit: u64,
    /// The simulated machine.
    pub machine: MachineConfig,
    /// Every workload in the suite, with its seed.
    pub workloads: Vec<WorkloadEntry>,
}

impl RunManifest {
    /// Captures the manifest of `config` under `tag`.
    pub fn capture(tag: &str, config: &ExperimentConfig) -> Self {
        RunManifest {
            tag: tag.to_string(),
            scale: config.scale,
            inst_limit: config.inst_limit,
            machine: config.machine.clone(),
            workloads: all(config.scale)
                .iter()
                .map(|w| WorkloadEntry {
                    name: w.name.to_string(),
                    category: w.category.to_string(),
                    seed: seed_of(w.name, 0),
                })
                .collect(),
        }
    }

    /// Whether two manifests describe the same measurement (everything
    /// but the tag must match for a baseline diff to be meaningful).
    pub fn comparable_with(&self, other: &RunManifest) -> bool {
        self.scale == other.scale
            && self.inst_limit == other.inst_limit
            && self.machine == other.machine
            && self.workloads == other.workloads
    }

    /// Reconstructs a manifest from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns a [`ReportError`] naming the first missing or mistyped
    /// field.
    pub fn from_json(json: &Json) -> Result<Self, ReportError> {
        let machine = json
            .get("machine")
            .ok_or_else(|| ReportError::missing("machine"))?;
        let cache = machine
            .get("cache")
            .ok_or_else(|| ReportError::missing("machine.cache"))?;
        let fu_counts: Vec<usize> = machine
            .get("fu_counts")
            .and_then(Json::as_arr)
            .ok_or_else(|| ReportError::missing("machine.fu_counts"))?
            .iter()
            .map(|v| v.as_u64().map(|u| u as usize))
            .collect::<Option<Vec<usize>>>()
            .ok_or_else(|| ReportError::mistyped("machine.fu_counts"))?;
        if fu_counts.len() != 4 {
            return Err(ReportError::mistyped("machine.fu_counts"));
        }
        let workloads = json
            .get("workloads")
            .and_then(Json::as_arr)
            .ok_or_else(|| ReportError::missing("workloads"))?
            .iter()
            .map(|w| {
                Ok(WorkloadEntry {
                    name: expect_str(w, "name")?.to_string(),
                    category: expect_str(w, "category")?.to_string(),
                    seed: expect_u64(w, "seed")?,
                })
            })
            .collect::<Result<Vec<_>, ReportError>>()?;
        Ok(RunManifest {
            tag: expect_str(json, "tag")?.to_string(),
            scale: expect_u64(json, "scale")? as u32,
            inst_limit: expect_u64(json, "inst_limit")?,
            machine: MachineConfig {
                fetch_width: expect_u64(machine, "fetch_width")? as usize,
                commit_width: expect_u64(machine, "commit_width")? as usize,
                rob_size: expect_u64(machine, "rob_size")? as usize,
                rs_entries: expect_u64(machine, "rs_entries")? as usize,
                fu_counts: [fu_counts[0], fu_counts[1], fu_counts[2], fu_counts[3]],
                mem_ports: expect_u64(machine, "mem_ports")? as usize,
                cache: CacheConfig {
                    size_bytes: expect_u64(cache, "size_bytes")? as u32,
                    line_bytes: expect_u64(cache, "line_bytes")? as u32,
                    hit_latency: expect_u64(cache, "hit_latency")?,
                    miss_latency: expect_u64(cache, "miss_latency")?,
                },
                mispredict_penalty: expect_u64(machine, "mispredict_penalty")?,
                in_order_issue: machine
                    .get("in_order_issue")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| ReportError::missing("machine.in_order_issue"))?,
            },
            workloads,
        })
    }
}

impl ToJson for RunManifest {
    fn to_json(&self) -> Json {
        let m = &self.machine;
        Json::obj([
            ("tag", Json::Str(self.tag.clone())),
            ("scale", Json::UInt(self.scale.into())),
            ("inst_limit", Json::UInt(self.inst_limit)),
            (
                "machine",
                Json::obj([
                    ("fetch_width", Json::UInt(m.fetch_width as u64)),
                    ("commit_width", Json::UInt(m.commit_width as u64)),
                    ("rob_size", Json::UInt(m.rob_size as u64)),
                    ("rs_entries", Json::UInt(m.rs_entries as u64)),
                    (
                        "fu_counts",
                        Json::Arr(m.fu_counts.iter().map(|&c| Json::UInt(c as u64)).collect()),
                    ),
                    ("mem_ports", Json::UInt(m.mem_ports as u64)),
                    (
                        "cache",
                        Json::obj([
                            ("size_bytes", Json::UInt(m.cache.size_bytes.into())),
                            ("line_bytes", Json::UInt(m.cache.line_bytes.into())),
                            ("hit_latency", Json::UInt(m.cache.hit_latency)),
                            ("miss_latency", Json::UInt(m.cache.miss_latency)),
                        ]),
                    ),
                    ("mispredict_penalty", Json::UInt(m.mispredict_penalty)),
                    ("in_order_issue", Json::Bool(m.in_order_issue)),
                ]),
            ),
            (
                "workloads",
                Json::Arr(
                    self.workloads
                        .iter()
                        .map(|w| {
                            Json::obj([
                                ("name", Json::Str(w.name.clone())),
                                ("category", Json::Str(w.category.clone())),
                                ("seed", Json::UInt(w.seed)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_lists_all_fifteen_workloads_with_seeds() {
        let m = RunManifest::capture("t", &ExperimentConfig::quick());
        assert_eq!(m.workloads.len(), 15);
        assert!(m.workloads.iter().any(|w| w.name == "compress"));
        // Seeds are name-derived, deterministic and distinct.
        let mut seeds: Vec<u64> = m.workloads.iter().map(|w| w.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 15, "per-workload seeds must be distinct");
        assert_eq!(m.workloads[0].seed, seed_of(&m.workloads[0].name, 0));
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let m = RunManifest::capture("roundtrip", &ExperimentConfig::quick());
        let rendered = m.to_json().pretty();
        let parsed = RunManifest::from_json(&Json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(parsed, m);
        assert!(parsed.comparable_with(&m));
    }

    #[test]
    fn different_configs_are_not_comparable() {
        let quick = RunManifest::capture("a", &ExperimentConfig::quick());
        let full = RunManifest::capture("b", &ExperimentConfig::full());
        assert!(!quick.comparable_with(&full));
        // The tag alone does not break comparability.
        let retag = RunManifest {
            tag: "c".into(),
            ..quick.clone()
        };
        assert!(quick.comparable_with(&retag));
    }

    #[test]
    fn malformed_manifest_errors_name_the_field() {
        let m = RunManifest::capture("x", &ExperimentConfig::quick());
        let mut json = m.to_json();
        if let Json::Obj(fields) = &mut json {
            fields.retain(|(k, _)| k != "inst_limit");
        }
        let err = RunManifest::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("inst_limit"), "{err}");
    }
}
