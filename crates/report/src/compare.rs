//! Baseline comparison with tolerance bands.
//!
//! [`compare`] diffs a current [`BenchReport`] against a baseline and
//! classifies every difference as [`Severity::Info`] (within band) or
//! [`Severity::Regression`] (actionable). The checks:
//!
//! - **Manifest** — configurations must be comparable; diffing a quick
//!   run against a full run is meaningless and is itself a regression.
//! - **Metric drift** — every Figure-4 percentage, headline number and
//!   Table-1/2 aggregate must stay within `metric_pct` points of the
//!   baseline. The model is deterministic, so an identical re-run drifts
//!   by exactly zero.
//! - **Scheme ordering** — the paper's qualitative result is a *shape*:
//!   on the hardware-swap bars, e.g. 8-bit LUT saves more than 2-bit
//!   LUT. The expected order is derived from the baseline itself (not
//!   hardcoded), pairs closer than `ordering_margin_pct` are skipped as
//!   statistical ties, and any surviving inversion is a regression.
//! - **Phase timers** — wall-clock per simulator phase may vary between
//!   machines; only a slowdown beyond `timer_factor` of a phase that
//!   took at least `timer_floor_nanos` in the baseline is flagged.
//! - **Telemetry exactness** — the artifact records whether windowed
//!   sums reproduced the energy ledger; `exact: false` on either side
//!   is a regression regardless of tolerances.
//! - **Attribution exactness & hotspot drift** — likewise for the
//!   energy-attribution digest: an inexact partition is a regression,
//!   and when both artifacts carry the section, every baseline top
//!   hotspot must still rank in the current list with its share of the
//!   suite's switched bits inside the metric band. A missing section
//!   (pre-1.2 artifact) on either side is informational only.
//! - **Stall-partition exactness & mix drift** — the cycle-attribution
//!   digest: a stall partition that fails to account exactly
//!   `cycles × issue_width` slots on either side is a hard regression,
//!   and when both artifacts carry the section each stall reason's
//!   share of the suite's issue bandwidth may drift by at most
//!   `metric_pct` points. A missing section (pre-1.4 artifact) on
//!   either side is informational only.
//! - **Throughput** — the simulated-rate headline: suite IPC is a
//!   deterministic model metric and is banded relatively by
//!   `metric_pct`; the simulated-MHz figure divides model cycles by
//!   measured wall-clock, so only a slowdown beyond `timer_factor` of
//!   a run whose hot loop took at least `timer_floor_nanos` is
//!   flagged. A missing section (pre-1.5 artifact) on either side is
//!   informational only.
//! - **Harness health** — the harness self-observability digest:
//!   worker utilization and allocation pressure are wall-clock
//!   measurements, so they are gated only on a *collapse* — busy
//!   fraction falling below half the baseline (and by more than 0.2
//!   absolute), or allocations per simulated kilocycle exploding past
//!   10× the baseline (and by more than 100 absolute). Two runs with
//!   different worker counts legitimately utilize differently, so
//!   harness sections recording different `jobs` are skipped entirely
//!   (no findings — `fua report` across `--jobs` values must diff to
//!   zero). A missing section (pre-1.6 artifact) on either side is
//!   informational only.
//! - **Estimator soundness & precision** — the static switched-bit
//!   estimator's digest: a violated bound (`sound: false`) on either
//!   side is a hard regression regardless of tolerances, and when both
//!   artifacts carry the section each scheme's mean and worst
//!   bound/actual ratios may drift relatively by at most `metric_pct`
//!   percent. A missing section (pre-1.3 artifact) on either side is
//!   informational only.

use crate::bench::BenchReport;
use fua_sim::SimPhase;
use fua_trace::StallReason;

/// Finding severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Within tolerance; reported for visibility only.
    Info,
    /// Out of tolerance; fails the gate.
    Regression,
}

/// One comparison finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// [`Severity::Info`] or [`Severity::Regression`].
    pub severity: Severity,
    /// Short machine-greppable category, e.g. `"metric-drift"`.
    pub category: &'static str,
    /// Human-readable description with both values.
    pub message: String,
}

/// Tolerance bands for [`compare`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Maximum absolute drift, in percentage points, for any reduction
    /// percentage or Table-1/2 aggregate (aggregates are scaled to
    /// percent before banding).
    pub metric_pct: f64,
    /// Scheme pairs whose baseline reductions differ by less than this
    /// are treated as ties and exempt from ordering checks.
    pub ordering_margin_pct: f64,
    /// A phase may take up to this factor of its baseline wall-clock.
    pub timer_factor: f64,
    /// Phases faster than this in the baseline are never timer-checked
    /// (sub-millisecond noise would dominate).
    pub timer_floor_nanos: u64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            // The model is deterministic; the band exists so future
            // intentional small model changes can be waved through by
            // retagging rather than forcing a baseline refresh for
            // sub-point noise.
            metric_pct: 0.75,
            ordering_margin_pct: 0.5,
            // Generous: CI machines differ wildly; this catches
            // asymptotic blowups, not cache effects.
            timer_factor: 25.0,
            timer_floor_nanos: 5_000_000,
        }
    }
}

/// The outcome of a baseline diff.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Every finding, regressions first.
    pub findings: Vec<Finding>,
}

impl Comparison {
    /// Whether the current run passes the gate.
    pub fn passed(&self) -> bool {
        self.regressions() == 0
    }

    /// Number of regression-severity findings.
    pub fn regressions(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Regression)
            .count()
    }
}

struct Checker<'a> {
    tol: &'a Tolerance,
    findings: Vec<Finding>,
}

impl Checker<'_> {
    fn regression(&mut self, category: &'static str, message: String) {
        self.findings.push(Finding {
            severity: Severity::Regression,
            category,
            message,
        });
    }

    fn info(&mut self, category: &'static str, message: String) {
        self.findings.push(Finding {
            severity: Severity::Info,
            category,
            message,
        });
    }

    /// Bands an absolute drift in percentage points.
    fn metric(&mut self, name: &str, baseline: f64, current: f64) {
        let drift = (current - baseline).abs();
        if drift > self.tol.metric_pct {
            self.regression(
                "metric-drift",
                format!(
                    "{name}: {current:.3} vs baseline {baseline:.3} \
                     (drift {drift:.3} pts > {:.3})",
                    self.tol.metric_pct
                ),
            );
        } else if drift > 0.0 {
            self.info(
                "metric-drift",
                format!("{name}: {current:.3} vs baseline {baseline:.3} (within band)"),
            );
        }
    }
}

fn check_unit(
    chk: &mut Checker<'_>,
    unit: &str,
    baseline: &crate::UnitFigure,
    current: &crate::UnitFigure,
) {
    // Row-by-row drift. The row set itself is part of the schema shape:
    // a missing or renamed scheme is a structural regression.
    for brow in &baseline.rows {
        let Some(crow) = current.row(&brow.scheme) else {
            chk.regression(
                "schema-shape",
                format!(
                    "{unit}: scheme \"{}\" missing from current run",
                    brow.scheme
                ),
            );
            continue;
        };
        for (metric, b, c) in [
            ("base", brow.base_pct, crow.base_pct),
            ("hw", brow.hardware_pct, crow.hardware_pct),
            (
                "hw+comp",
                brow.hardware_compiler_pct,
                crow.hardware_compiler_pct,
            ),
            ("comp", brow.compiler_only_pct, crow.compiler_only_pct),
        ] {
            chk.metric(&format!("{unit} {} {metric}", brow.scheme), b, c);
        }
    }
    for crow in &current.rows {
        if baseline.row(&crow.scheme).is_none() {
            chk.regression(
                "schema-shape",
                format!("{unit}: scheme \"{}\" absent from baseline", crow.scheme),
            );
        }
    }

    // Ordering: derive the expected ranking from the baseline's
    // hardware-swap column and require the current run to preserve it
    // for every pair the baseline separates by more than the margin.
    for (i, a) in baseline.rows.iter().enumerate() {
        for b in baseline.rows.iter().skip(i + 1) {
            let gap = a.hardware_pct - b.hardware_pct;
            if gap.abs() <= chk.tol.ordering_margin_pct {
                continue; // tie in the baseline; no order to preserve
            }
            let (hi, lo) = if gap > 0.0 { (a, b) } else { (b, a) };
            let (Some(chi), Some(clo)) = (current.row(&hi.scheme), current.row(&lo.scheme)) else {
                continue; // already reported as schema-shape above
            };
            if chi.hardware_pct < clo.hardware_pct {
                chk.regression(
                    "scheme-ordering",
                    format!(
                        "{unit}: \"{}\" ({:.2}%) fell below \"{}\" ({:.2}%); \
                         baseline had {:.2}% vs {:.2}%",
                        hi.scheme,
                        chi.hardware_pct,
                        lo.scheme,
                        clo.hardware_pct,
                        hi.hardware_pct,
                        lo.hardware_pct
                    ),
                );
            }
        }
    }
}

fn check_distribution(chk: &mut Checker<'_>, name: &str, baseline: &[f64], current: &[f64]) {
    if baseline.len() != current.len() {
        chk.regression(
            "schema-shape",
            format!(
                "{name}: {} entries vs baseline {}",
                current.len(),
                baseline.len()
            ),
        );
        return;
    }
    for (k, (b, c)) in baseline.iter().zip(current).enumerate() {
        // Occupancy distributions are fractions; band them in percent
        // like every other metric.
        chk.metric(&format!("{name} P(k={})", k + 1), b * 100.0, c * 100.0);
    }
}

/// Diffs `current` against `baseline` under `tol`.
pub fn compare(baseline: &BenchReport, current: &BenchReport, tol: &Tolerance) -> Comparison {
    let mut chk = Checker {
        tol,
        findings: Vec::new(),
    };

    if !baseline.manifest.comparable_with(&current.manifest) {
        chk.regression(
            "manifest",
            format!(
                "configurations differ (baseline tag \"{}\", current tag \"{}\"); \
                 a diff across configurations is not meaningful",
                baseline.manifest.tag, current.manifest.tag
            ),
        );
        // Metric diffs against a different configuration would be pure
        // noise — stop here.
        chk.findings
            .sort_by_key(|f| f.severity != Severity::Regression);
        return Comparison {
            findings: chk.findings,
        };
    }

    check_unit(&mut chk, "IALU", &baseline.ialu, &current.ialu);
    check_unit(&mut chk, "FPAU", &baseline.fpau, &current.fpau);

    chk.metric(
        "headline IALU",
        baseline.headline_ialu_pct,
        current.headline_ialu_pct,
    );
    chk.metric(
        "headline FPAU",
        baseline.headline_fpau_pct,
        current.headline_fpau_pct,
    );
    chk.metric(
        "headline IALU+compiler",
        baseline.headline_ialu_compiler_pct,
        current.headline_ialu_compiler_pct,
    );

    for (name, b, c) in [
        (
            "table1 IALU ones|info0",
            baseline.operands.ialu_ones_frac_info0,
            current.operands.ialu_ones_frac_info0,
        ),
        (
            "table1 IALU ones|info1",
            baseline.operands.ialu_ones_frac_info1,
            current.operands.ialu_ones_frac_info1,
        ),
        (
            "table1 FPAU P(info=0)",
            baseline.operands.fpau_info0_fraction,
            current.operands.fpau_info0_fraction,
        ),
        (
            "table1 FPAU ones|info0",
            baseline.operands.fpau_ones_frac_info0,
            current.operands.fpau_ones_frac_info0,
        ),
    ] {
        // Fractions → percent before banding.
        chk.metric(name, b * 100.0, c * 100.0);
    }

    check_distribution(
        &mut chk,
        "table2 IALU",
        &baseline.ialu_occupancy,
        &current.ialu_occupancy,
    );
    check_distribution(
        &mut chk,
        "table2 FPAU",
        &baseline.fpau_occupancy,
        &current.fpau_occupancy,
    );

    for phase in SimPhase::ALL {
        let b = baseline.phase_nanos.of(phase);
        let c = current.phase_nanos.of(phase);
        if b < tol.timer_floor_nanos {
            continue;
        }
        let factor = c as f64 / b as f64;
        if factor > tol.timer_factor {
            chk.regression(
                "phase-timer",
                format!(
                    "{} phase took {:.1}x baseline ({} ns vs {} ns, limit {:.0}x)",
                    phase.name(),
                    factor,
                    c,
                    b,
                    tol.timer_factor
                ),
            );
        }
    }

    // Simulated-rate headline: IPC is pure model arithmetic (cycles and
    // retired instructions are deterministic), so it is banded like the
    // estimator ratios; the MHz figure divides by measured wall-clock,
    // so — exactly like the phase timers — only a gross slowdown of a
    // non-trivial run is gated.
    match (&baseline.throughput, &current.throughput) {
        (Some(b), Some(c)) => {
            let (bi, ci) = (b.ipc(), c.ipc());
            let drift_pct = if bi == 0.0 {
                0.0
            } else {
                100.0 * (ci / bi - 1.0).abs()
            };
            if drift_pct > tol.metric_pct {
                chk.regression(
                    "throughput-ipc",
                    format!(
                        "suite IPC {ci:.4} vs baseline {bi:.4} \
                         (drift {drift_pct:.3}% > {:.3}%)",
                        tol.metric_pct
                    ),
                );
            } else if drift_pct > 0.0 {
                chk.info(
                    "throughput-ipc",
                    format!("suite IPC {ci:.4} vs baseline {bi:.4} (within band)"),
                );
            }
            if b.hot_nanos >= tol.timer_floor_nanos && c.sim_khz() > 0.0 {
                let factor = b.sim_khz() / c.sim_khz();
                if factor > tol.timer_factor {
                    chk.regression(
                        "sim-rate",
                        format!(
                            "simulated rate fell to {:.3} MHz from {:.3} MHz \
                             ({factor:.1}x slower, limit {:.0}x)",
                            c.sim_mhz(),
                            b.sim_mhz(),
                            tol.timer_factor
                        ),
                    );
                }
            }
        }
        // One side predates schema 1.5: nothing to diff, note it only.
        (Some(_), None) => chk.info(
            "throughput-ipc",
            "current artifact has no throughput section (pre-1.5 schema)".to_string(),
        ),
        (None, Some(_)) => chk.info(
            "throughput-ipc",
            "baseline artifact has no throughput section (pre-1.5 schema)".to_string(),
        ),
        (None, None) => {}
    }

    for (side, report) in [("baseline", baseline), ("current", current)] {
        if !report.telemetry.exact {
            chk.regression(
                "telemetry-exactness",
                format!("{side} artifact records inexact windowed telemetry sums"),
            );
        }
        if let Some(a) = &report.attribution {
            if !a.exact {
                chk.regression(
                    "attribution-exactness",
                    format!("{side} artifact records an inexact energy-attribution partition"),
                );
            }
        }
        if let Some(s) = &report.stalls {
            if !s.exact {
                chk.regression(
                    "stall-exactness",
                    format!(
                        "{side} artifact records an inexact stall partition \
                         ({} slots accounted, {} cycles x {} issue slots expected)",
                        s.slots, s.cycles, s.issue_width
                    ),
                );
            }
        }
        if let Some(e) = &report.estimator {
            for entry in &e.entries {
                if !entry.sound {
                    chk.regression(
                        "estimator-soundness",
                        format!(
                            "{side} artifact records a violated static bound under \
                             scheme \"{}\" (worst block {})",
                            entry.scheme, entry.worst_block
                        ),
                    );
                }
            }
        }
    }

    // Hotspot drift: the energy-attribution digest names the suite's
    // hottest PCs; a hotspot vanishing from the top list, or its share
    // of the suite's switched bits drifting past the metric band, means
    // the *location* of the energy changed even if the totals did not.
    match (&baseline.attribution, &current.attribution) {
        (Some(b), Some(c)) => {
            for bh in &b.top_hotspots {
                let found = c
                    .top_hotspots
                    .iter()
                    .find(|ch| ch.workload == bh.workload && ch.pc == bh.pc);
                match found {
                    None => chk.regression(
                        "hotspot-drift",
                        format!(
                            "hotspot {} pc{} ({:.3}% of suite bits in baseline) \
                             left the current top-{} list",
                            bh.workload,
                            bh.pc,
                            bh.share_pct,
                            c.top_hotspots.len()
                        ),
                    ),
                    Some(ch) => {
                        let drift = (ch.share_pct - bh.share_pct).abs();
                        if drift > tol.metric_pct {
                            chk.regression(
                                "hotspot-drift",
                                format!(
                                    "hotspot {} pc{}: {:.3}% of suite bits vs baseline \
                                     {:.3}% (drift {drift:.3} pts > {:.3})",
                                    bh.workload, bh.pc, ch.share_pct, bh.share_pct, tol.metric_pct
                                ),
                            );
                        } else if drift > 0.0 {
                            chk.info(
                                "hotspot-drift",
                                format!(
                                    "hotspot {} pc{}: {:.3}% of suite bits vs baseline \
                                     {:.3}% (within band)",
                                    bh.workload, bh.pc, ch.share_pct, bh.share_pct
                                ),
                            );
                        }
                    }
                }
            }
        }
        // One side predates schema 1.2: nothing to diff, note it only.
        (Some(_), None) => chk.info(
            "hotspot-drift",
            "current artifact has no attribution section (pre-1.2 schema)".to_string(),
        ),
        (None, Some(_)) => chk.info(
            "hotspot-drift",
            "baseline artifact has no attribution section (pre-1.2 schema)".to_string(),
        ),
        (None, None) => {}
    }

    // Stall-mix drift: the cycle partition says where the machine's
    // issue bandwidth went; each reason's share of the total slots is a
    // deterministic model metric, banded like every other percentage.
    match (&baseline.stalls, &current.stalls) {
        (Some(b), Some(c)) => {
            let (b_total, c_total) = (b.slots, c.slots);
            for reason in StallReason::ALL {
                let share = |mix: &[u64; 8], total: u64| {
                    if total == 0 {
                        0.0
                    } else {
                        100.0 * mix[reason.index()] as f64 / total as f64
                    }
                };
                chk.metric(
                    &format!("stall-mix {}", reason.name()),
                    share(&b.mix, b_total),
                    share(&c.mix, c_total),
                );
            }
        }
        // One side predates schema 1.4: nothing to diff, note it only.
        (Some(_), None) => chk.info(
            "stall-mix",
            "current artifact has no stalls section (pre-1.4 schema)".to_string(),
        ),
        (None, Some(_)) => chk.info(
            "stall-mix",
            "baseline artifact has no stalls section (pre-1.4 schema)".to_string(),
        ),
        (None, None) => {}
    }

    // Estimator precision drift: the bounds are pure model arithmetic,
    // so an identical re-run drifts by exactly zero; a looser (or
    // suspiciously tighter) ratio means the abstract domain or the
    // power model changed underneath the estimator.
    match (&baseline.estimator, &current.estimator) {
        (Some(b), Some(c)) => {
            for be in &b.entries {
                let Some(ce) = c.entries.iter().find(|ce| ce.scheme == be.scheme) else {
                    chk.regression(
                        "estimator-precision",
                        format!(
                            "scheme \"{}\" missing from the current estimator digest",
                            be.scheme
                        ),
                    );
                    continue;
                };
                for (metric, bv, cv) in [
                    ("mean", be.mean_ratio, ce.mean_ratio),
                    ("worst-block", be.worst_ratio, ce.worst_ratio),
                ] {
                    let drift_pct = if bv == 0.0 {
                        0.0
                    } else {
                        100.0 * (cv / bv - 1.0).abs()
                    };
                    if drift_pct > tol.metric_pct {
                        chk.regression(
                            "estimator-precision",
                            format!(
                                "scheme \"{}\" {metric} bound/actual ratio {cv:.3} vs \
                                 baseline {bv:.3} (drift {drift_pct:.3}% > {:.3}%)",
                                be.scheme, tol.metric_pct
                            ),
                        );
                    } else if drift_pct > 0.0 {
                        chk.info(
                            "estimator-precision",
                            format!(
                                "scheme \"{}\" {metric} bound/actual ratio {cv:.3} vs \
                                 baseline {bv:.3} (within band)",
                                be.scheme
                            ),
                        );
                    }
                }
            }
        }
        // One side predates schema 1.3: nothing to diff, note it only.
        (Some(_), None) => chk.info(
            "estimator-precision",
            "current artifact has no estimator section (pre-1.3 schema)".to_string(),
        ),
        (None, Some(_)) => chk.info(
            "estimator-precision",
            "baseline artifact has no estimator section (pre-1.3 schema)".to_string(),
        ),
        (None, None) => {}
    }

    // Harness health: utilization and allocation pressure are measured,
    // not modelled, so only a collapse is actionable — and only between
    // runs with the same worker count. Different `jobs` values utilize
    // the pool differently by construction, so those pairs are skipped
    // without even an Info finding (artifact diffs across `--jobs` must
    // come out empty).
    match (&baseline.harness, &current.harness) {
        (Some(b), Some(c)) if b.jobs == c.jobs => {
            let dropped = b.busy_fraction - c.busy_fraction;
            if c.busy_fraction < b.busy_fraction * 0.5 && dropped > 0.2 {
                chk.regression(
                    "harness-utilization",
                    format!(
                        "worker busy fraction collapsed to {:.3} from baseline {:.3} \
                         on {} worker(s)",
                        c.busy_fraction, b.busy_fraction, c.jobs
                    ),
                );
            } else if (c.busy_fraction - b.busy_fraction).abs() > 0.05 {
                // Below the floor the difference is scheduler jitter two
                // honest runs always exhibit; reporting it would keep any
                // same-config pair from ever diffing to zero findings.
                chk.info(
                    "harness-utilization",
                    format!(
                        "worker busy fraction {:.3} vs baseline {:.3} (measurement noise)",
                        c.busy_fraction, b.busy_fraction
                    ),
                );
            }
            if (c.imbalance - b.imbalance).abs() > 0.05 {
                chk.info(
                    "harness-imbalance",
                    format!(
                        "load imbalance {:.2} vs baseline {:.2} (measurement noise)",
                        c.imbalance, b.imbalance
                    ),
                );
            }
            match (b.allocs_per_kcycle, c.allocs_per_kcycle) {
                (Some(bv), Some(cv)) => {
                    if cv > bv * 10.0 && cv - bv > 100.0 {
                        chk.regression(
                            "harness-allocs",
                            format!(
                                "allocations per simulated kilocycle exploded to {cv:.1} \
                                 from baseline {bv:.1}"
                            ),
                        );
                    } else if (cv - bv).abs() > 0.05 * bv.abs().max(1.0) {
                        chk.info(
                            "harness-allocs",
                            format!("allocs per kilocycle {cv:.1} vs baseline {bv:.1}"),
                        );
                    }
                }
                (Some(_), None) => chk.info(
                    "harness-allocs",
                    "current artifact has no allocation figure \
                     (counting allocator not installed)"
                        .to_string(),
                ),
                (None, Some(_)) => chk.info(
                    "harness-allocs",
                    "baseline artifact has no allocation figure \
                     (counting allocator not installed)"
                        .to_string(),
                ),
                (None, None) => {}
            }
        }
        // Different worker counts: nothing comparable, deliberately
        // silent (see the module doc).
        (Some(_), Some(_)) => {}
        // One side predates schema 1.6: nothing to diff, note it only.
        (Some(_), None) => chk.info(
            "harness-health",
            "current artifact has no harness section (pre-1.6 schema)".to_string(),
        ),
        (None, Some(_)) => chk.info(
            "harness-health",
            "baseline artifact has no harness section (pre-1.6 schema)".to_string(),
        ),
        (None, None) => {}
    }

    chk.findings
        .sort_by_key(|f| f.severity != Severity::Regression);
    Comparison {
        findings: chk.findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::bench_suite;
    use fua_core::ExperimentConfig;

    fn tiny() -> crate::BenchReport {
        let config = ExperimentConfig {
            inst_limit: 1_500,
            ..ExperimentConfig::quick()
        };
        bench_suite("tiny", &config, 512)
    }

    #[test]
    fn identical_rerun_passes_the_gate() {
        let baseline = tiny();
        let current = tiny();
        let cmp = compare(&baseline, &current, &Tolerance::default());
        assert!(cmp.passed(), "findings: {:#?}", cmp.findings);
        // Determinism means zero drift — not even Info findings on
        // the model metrics (timers are only checked for slowdown).
        assert!(cmp
            .findings
            .iter()
            .all(|f| f.category != "metric-drift" || f.severity == Severity::Info));
    }

    #[test]
    fn seeded_ordering_inversion_is_detected() {
        let baseline = tiny();
        let mut corrupt = baseline.clone();
        // Find the two IALU schemes the baseline separates most and
        // swap their hardware columns — a deliberate shape regression.
        let mut rows: Vec<(usize, f64)> = corrupt
            .ialu
            .rows
            .iter()
            .enumerate()
            .map(|(i, r)| (i, r.hardware_pct))
            .collect();
        rows.sort_by(|a, b| a.1.total_cmp(&b.1));
        let (lo, hi) = (rows[0].0, rows[rows.len() - 1].0);
        corrupt.ialu.rows[lo].hardware_pct = rows[rows.len() - 1].1;
        corrupt.ialu.rows[hi].hardware_pct = rows[0].1;
        let cmp = compare(&baseline, &corrupt, &Tolerance::default());
        assert!(!cmp.passed());
        assert!(
            cmp.findings
                .iter()
                .any(|f| f.category == "scheme-ordering" && f.severity == Severity::Regression),
            "findings: {:#?}",
            cmp.findings
        );
    }

    #[test]
    fn metric_drift_beyond_band_is_a_regression() {
        let baseline = tiny();
        let mut drifted = baseline.clone();
        drifted.headline_ialu_pct += 5.0;
        let cmp = compare(&baseline, &drifted, &Tolerance::default());
        assert!(!cmp.passed());
        assert!(cmp.findings.iter().any(|f| f.category == "metric-drift"
            && f.severity == Severity::Regression
            && f.message.contains("headline IALU")));

        // The same drift within a wider band is only informational.
        let wide = Tolerance {
            metric_pct: 10.0,
            ..Tolerance::default()
        };
        assert!(compare(&baseline, &drifted, &wide).passed());
    }

    #[test]
    fn incomparable_manifests_short_circuit() {
        let baseline = tiny();
        let mut other = baseline.clone();
        other.manifest.inst_limit += 1;
        let cmp = compare(&baseline, &other, &Tolerance::default());
        assert!(!cmp.passed());
        assert_eq!(cmp.findings.len(), 1);
        assert_eq!(cmp.findings[0].category, "manifest");
    }

    #[test]
    fn timer_slowdown_past_factor_is_flagged_and_noise_is_not() {
        let baseline = tiny();
        let mut slow = baseline.clone();
        // Every phase 30x slower than a baseline comfortably above the
        // floor: flagged.
        for slot in &mut slow.phase_nanos.0 {
            *slot = 300_000_000;
        }
        let mut base = baseline.clone();
        for slot in &mut base.phase_nanos.0 {
            *slot = 10_000_000;
        }
        let cmp = compare(&base, &slow, &Tolerance::default());
        assert!(cmp
            .findings
            .iter()
            .any(|f| f.category == "phase-timer" && f.severity == Severity::Regression));

        // Below the floor the same factor is ignored.
        for slot in &mut base.phase_nanos.0 {
            *slot = 100;
        }
        for slot in &mut slow.phase_nanos.0 {
            *slot = 3_000;
        }
        let cmp = compare(&base, &slow, &Tolerance::default());
        assert!(
            !cmp.findings.iter().any(|f| f.category == "phase-timer"),
            "sub-floor timers must not be checked"
        );
    }

    #[test]
    fn inexact_telemetry_fails_the_gate() {
        let baseline = tiny();
        let mut bad = baseline.clone();
        bad.telemetry.exact = false;
        let cmp = compare(&baseline, &bad, &Tolerance::default());
        assert!(!cmp.passed());
        assert!(cmp
            .findings
            .iter()
            .any(|f| f.category == "telemetry-exactness"));
    }

    #[test]
    fn inexact_attribution_fails_the_gate() {
        let baseline = tiny();
        let mut bad = baseline.clone();
        bad.attribution.as_mut().unwrap().exact = false;
        let cmp = compare(&baseline, &bad, &Tolerance::default());
        assert!(!cmp.passed());
        assert!(cmp
            .findings
            .iter()
            .any(|f| f.category == "attribution-exactness"));
    }

    #[test]
    fn a_seeded_stall_partition_violation_fails_the_gate() {
        let baseline = tiny();
        let mut bad = baseline.clone();
        {
            let s = bad.stalls.as_mut().unwrap();
            s.slots -= 1; // one slot unaccounted
            s.exact = false;
        }
        let cmp = compare(&baseline, &bad, &Tolerance::default());
        assert!(!cmp.passed());
        assert!(
            cmp.findings.iter().any(|f| {
                f.category == "stall-exactness"
                    && f.severity == Severity::Regression
                    && f.message.contains("issue slots expected")
            }),
            "findings: {:#?}",
            cmp.findings
        );
        // A violation recorded in the *baseline* fails the gate too.
        let cmp = compare(&bad, &baseline, &Tolerance::default());
        assert!(!cmp.passed());
    }

    #[test]
    fn stall_mix_drift_past_band_is_a_regression() {
        let baseline = tiny();
        let mut shifted = baseline.clone();
        {
            // Move 10% of the suite's slots from 'issued' to
            // 'operand-wait' — the totals still balance, so exactness
            // holds, but the mix shape moved far past the band.
            let s = shifted.stalls.as_mut().unwrap();
            let moved = s.slots / 10;
            s.mix[StallReason::Issued.index()] -= moved;
            s.mix[StallReason::OperandWait.index()] += moved;
        }
        let cmp = compare(&baseline, &shifted, &Tolerance::default());
        assert!(!cmp.passed());
        assert!(cmp.findings.iter().any(|f| {
            f.category == "metric-drift"
                && f.severity == Severity::Regression
                && f.message.contains("stall-mix")
        }));

        // The same shift within a wider band is only informational.
        let wide = Tolerance {
            metric_pct: 25.0,
            ..Tolerance::default()
        };
        assert!(compare(&baseline, &shifted, &wide).passed());
    }

    #[test]
    fn a_pre_1_4_artifact_without_stalls_is_informational_only() {
        let baseline = tiny();
        let mut old = baseline.clone();
        old.stalls = None;
        for (b, c) in [(&baseline, &old), (&old, &baseline)] {
            let cmp = compare(b, c, &Tolerance::default());
            assert!(cmp.passed(), "findings: {:#?}", cmp.findings);
            assert!(cmp
                .findings
                .iter()
                .any(|f| f.category == "stall-mix" && f.severity == Severity::Info));
        }
    }

    #[test]
    fn ipc_drift_past_band_is_a_regression_and_khz_noise_is_not() {
        let baseline = tiny();
        let mut drifted = baseline.clone();
        {
            let t = drifted.throughput.as_mut().unwrap();
            t.instructions = t.instructions + t.instructions / 10; // +10% IPC
        }
        let cmp = compare(&baseline, &drifted, &Tolerance::default());
        assert!(!cmp.passed());
        assert!(cmp
            .findings
            .iter()
            .any(|f| f.category == "throughput-ipc" && f.severity == Severity::Regression));

        // Wall-clock noise in the denominator alone never regresses:
        // double the hot nanos (half the kHz), same model totals.
        let mut noisy = baseline.clone();
        {
            let t = noisy.throughput.as_mut().unwrap();
            t.hot_nanos *= 2;
        }
        let cmp = compare(&baseline, &noisy, &Tolerance::default());
        assert!(cmp.passed(), "findings: {:#?}", cmp.findings);
    }

    #[test]
    fn a_gross_simulated_rate_collapse_is_flagged() {
        let baseline = tiny();
        let mut base = baseline.clone();
        {
            let t = base.throughput.as_mut().unwrap();
            t.hot_nanos = 10_000_000; // above the floor
        }
        let mut slow = base.clone();
        {
            let t = slow.throughput.as_mut().unwrap();
            t.hot_nanos = 10_000_000 * 30; // 30x slower than baseline
        }
        let cmp = compare(&base, &slow, &Tolerance::default());
        assert!(!cmp.passed());
        assert!(cmp
            .findings
            .iter()
            .any(|f| f.category == "sim-rate" && f.severity == Severity::Regression));
    }

    #[test]
    fn a_pre_1_5_artifact_without_throughput_is_informational_only() {
        let baseline = tiny();
        let mut old = baseline.clone();
        old.throughput = None;
        for (b, c) in [(&baseline, &old), (&old, &baseline)] {
            let cmp = compare(b, c, &Tolerance::default());
            assert!(cmp.passed(), "findings: {:#?}", cmp.findings);
            assert!(cmp
                .findings
                .iter()
                .any(|f| f.category == "throughput-ipc" && f.severity == Severity::Info));
        }
    }

    #[test]
    fn a_seeded_bound_violation_fails_the_gate() {
        let baseline = tiny();
        let mut bad = baseline.clone();
        let entry = &mut bad.estimator.as_mut().unwrap().entries[0];
        entry.sound = false;
        let scheme = entry.scheme.clone();
        let cmp = compare(&baseline, &bad, &Tolerance::default());
        assert!(!cmp.passed());
        assert!(
            cmp.findings.iter().any(|f| {
                f.category == "estimator-soundness"
                    && f.severity == Severity::Regression
                    && f.message.contains(&scheme)
            }),
            "findings: {:#?}",
            cmp.findings
        );
        // A violation recorded in the *baseline* fails the gate too.
        let cmp = compare(&bad, &baseline, &Tolerance::default());
        assert!(!cmp.passed());
    }

    #[test]
    fn estimator_precision_drift_past_band_is_a_regression() {
        let baseline = tiny();
        let mut loose = baseline.clone();
        let entry = &mut loose.estimator.as_mut().unwrap().entries[0];
        entry.mean_ratio *= 1.25; // 25% relative drift >> the band
        let cmp = compare(&baseline, &loose, &Tolerance::default());
        assert!(!cmp.passed());
        assert!(cmp.findings.iter().any(|f| {
            f.category == "estimator-precision"
                && f.severity == Severity::Regression
                && f.message.contains("mean")
        }));

        // The same drift within a wider band is only informational.
        let wide = Tolerance {
            metric_pct: 50.0,
            ..Tolerance::default()
        };
        let cmp = compare(&baseline, &loose, &wide);
        assert!(cmp.passed(), "findings: {:#?}", cmp.findings);
    }

    #[test]
    fn a_pre_1_3_artifact_without_an_estimator_is_informational_only() {
        let baseline = tiny();
        let mut old = baseline.clone();
        old.estimator = None;
        for (b, c) in [(&baseline, &old), (&old, &baseline)] {
            let cmp = compare(b, c, &Tolerance::default());
            assert!(cmp.passed(), "findings: {:#?}", cmp.findings);
            assert!(cmp
                .findings
                .iter()
                .any(|f| f.category == "estimator-precision" && f.severity == Severity::Info));
        }
    }

    #[test]
    fn vanished_or_drifted_hotspots_are_regressions() {
        let baseline = tiny();

        // A baseline hotspot absent from the current top list.
        let mut moved = baseline.clone();
        let gone = moved.attribution.as_mut().unwrap().top_hotspots.remove(0);
        let cmp = compare(&baseline, &moved, &Tolerance::default());
        assert!(!cmp.passed());
        assert!(cmp.findings.iter().any(|f| {
            f.category == "hotspot-drift"
                && f.severity == Severity::Regression
                && f.message.contains(&format!("pc{}", gone.pc))
        }));

        // A hotspot still present but with its share far out of band.
        let mut drifted = baseline.clone();
        drifted.attribution.as_mut().unwrap().top_hotspots[0].share_pct += 5.0;
        let cmp = compare(&baseline, &drifted, &Tolerance::default());
        assert!(!cmp.passed());
        assert!(cmp
            .findings
            .iter()
            .any(|f| f.category == "hotspot-drift" && f.severity == Severity::Regression));
    }

    #[test]
    fn a_pre_1_2_artifact_without_attribution_is_informational_only() {
        let baseline = tiny();
        let mut old = baseline.clone();
        old.attribution = None;
        for (b, c) in [(&baseline, &old), (&old, &baseline)] {
            let cmp = compare(b, c, &Tolerance::default());
            assert!(cmp.passed(), "findings: {:#?}", cmp.findings);
            assert!(cmp
                .findings
                .iter()
                .any(|f| f.category == "hotspot-drift" && f.severity == Severity::Info));
        }
        let mut both_old = baseline.clone();
        both_old.attribution = None;
        let cmp = compare(&both_old, &old, &Tolerance::default());
        assert!(!cmp.findings.iter().any(|f| f.category == "hotspot-drift"));
    }

    #[test]
    fn a_harness_utilization_collapse_fails_the_gate_and_noise_does_not() {
        let mut base = tiny();
        base.harness.as_mut().unwrap().busy_fraction = 0.9;

        // Collapse: below half the baseline and more than 0.2 absolute.
        let mut collapsed = base.clone();
        collapsed.harness.as_mut().unwrap().busy_fraction = 0.01;
        let cmp = compare(&base, &collapsed, &Tolerance::default());
        assert!(!cmp.passed());
        assert!(
            cmp.findings
                .iter()
                .any(|f| f.category == "harness-utilization" && f.severity == Severity::Regression),
            "findings: {:#?}",
            cmp.findings
        );

        // An ordinary dip is measurement noise: informational only.
        let mut noisy = base.clone();
        noisy.harness.as_mut().unwrap().busy_fraction = 0.7;
        let cmp = compare(&base, &noisy, &Tolerance::default());
        assert!(cmp.passed(), "findings: {:#?}", cmp.findings);
        assert!(cmp
            .findings
            .iter()
            .any(|f| f.category == "harness-utilization" && f.severity == Severity::Info));
    }

    #[test]
    fn inflated_allocation_pressure_fails_the_gate() {
        let mut base = tiny();
        base.harness.as_mut().unwrap().allocs_per_kcycle = Some(5.0);

        // 1000x the baseline's allocation pressure: the hot loop grew
        // a per-cycle allocation somewhere.
        let mut leaky = base.clone();
        leaky.harness.as_mut().unwrap().allocs_per_kcycle = Some(5_000.0);
        let cmp = compare(&base, &leaky, &Tolerance::default());
        assert!(!cmp.passed());
        assert!(
            cmp.findings
                .iter()
                .any(|f| f.category == "harness-allocs" && f.severity == Severity::Regression),
            "findings: {:#?}",
            cmp.findings
        );

        // Small drift stays informational.
        let mut drifted = base.clone();
        drifted.harness.as_mut().unwrap().allocs_per_kcycle = Some(6.0);
        assert!(compare(&base, &drifted, &Tolerance::default()).passed());

        // A side measured without the counting allocator installed is
        // noted, never gated.
        let mut unmeasured = base.clone();
        unmeasured.harness.as_mut().unwrap().allocs_per_kcycle = None;
        for (b, c) in [(&base, &unmeasured), (&unmeasured, &base)] {
            let cmp = compare(b, c, &Tolerance::default());
            assert!(cmp.passed(), "findings: {:#?}", cmp.findings);
            assert!(cmp
                .findings
                .iter()
                .any(|f| f.category == "harness-allocs" && f.severity == Severity::Info));
        }
    }

    #[test]
    fn harness_sections_with_different_jobs_are_skipped_silently() {
        let mut base = tiny();
        {
            let h = base.harness.as_mut().unwrap();
            h.jobs = 1;
            h.busy_fraction = 0.95;
        }
        // Even a would-be collapse produces no finding across worker
        // counts: `fua report` between --jobs 1 and --jobs 4 artifacts
        // must diff to zero.
        let mut other = base.clone();
        {
            let h = other.harness.as_mut().unwrap();
            h.jobs = 4;
            h.busy_fraction = 0.01;
        }
        for (b, c) in [(&base, &other), (&other, &base)] {
            let cmp = compare(b, c, &Tolerance::default());
            assert!(cmp.passed());
            assert!(
                !cmp.findings
                    .iter()
                    .any(|f| f.category.starts_with("harness")),
                "findings: {:#?}",
                cmp.findings
            );
        }
    }

    #[test]
    fn a_pre_1_6_artifact_without_a_harness_section_is_informational_only() {
        let baseline = tiny();
        let mut old = baseline.clone();
        old.harness = None;
        for (b, c) in [(&baseline, &old), (&old, &baseline)] {
            let cmp = compare(b, c, &Tolerance::default());
            assert!(cmp.passed(), "findings: {:#?}", cmp.findings);
            assert!(cmp
                .findings
                .iter()
                .any(|f| f.category == "harness-health" && f.severity == Severity::Info));
        }
        let mut both_old = baseline.clone();
        both_old.harness = None;
        let cmp = compare(&both_old, &old, &Tolerance::default());
        assert!(!cmp.findings.iter().any(|f| f.category == "harness-health"));
    }

    #[test]
    fn missing_scheme_is_a_schema_shape_regression() {
        let baseline = tiny();
        let mut pruned = baseline.clone();
        pruned.fpau.rows.pop();
        let cmp = compare(&baseline, &pruned, &Tolerance::default());
        assert!(!cmp.passed());
        assert!(cmp
            .findings
            .iter()
            .any(|f| f.category == "schema-shape" && f.message.contains("FPAU")));
    }
}
