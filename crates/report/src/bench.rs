//! BENCH artifacts: one durable, diffable JSON ledger per suite run.
//!
//! [`bench_suite`] runs the paper's quick experiment suite end to end —
//! the Figure-4 scheme sweep for both duplicated units, the Table-1/2
//! aggregate statistics, a phase-timed + windowed telemetry pass over
//! every workload — and packages everything, with its [`RunManifest`],
//! into a [`BenchReport`] serialised as `BENCH_<tag>.json`. The windowed
//! pass also *proves* the interval-telemetry exactness invariant on the
//! spot: the time-series column sums are reassembled into an
//! [`EnergyLedger`](fua_power::EnergyLedger) and compared bit-for-bit
//! with the simulator's own ledger; the verdict is recorded in the
//! artifact (`telemetry.exact`).

use fua_attr::{check_suite, AttributionSink, EnergyAttribution, EstimateCheck, Scheme};
use fua_exec::{map_indexed_timed, ExecReport, Jobs};
use fua_power::EnergyLedger;
use fua_sim::{PhaseTimers, SimPhase, Simulator};
use fua_trace::{Json, StallReason, StallSink, ToJson, WindowedSink};
use fua_workloads::WorkloadArena;

use fua_core::{
    figure4_with_profile_jobs, headline_from, observed_scheme, profile_suite_jobs,
    ExperimentConfig, Figure4, Figure4Row, Unit,
};

use crate::{expect_f64, expect_str, expect_u64, ReportError, RunManifest};

/// The artifact schema identifier; bump on any breaking shape change.
/// Minor bumps (`/1` → `/1.1` → … → `/1.6`) add optional sections
/// only; this build still reads every schema in [`BENCH_SCHEMAS_READ`].
pub const BENCH_SCHEMA: &str = "fua-bench/1.6";

/// Every schema version this build can read. `fua-bench/1` artifacts
/// (pre-`parallel` section) parse with `parallel: None`; pre-1.2
/// artifacts parse with `attribution: None`; pre-1.3 artifacts parse
/// with `estimator: None`; pre-1.4 artifacts parse with `stalls: None`;
/// pre-1.5 artifacts parse with `throughput: None`; pre-1.6 artifacts
/// parse with `harness: None`.
pub const BENCH_SCHEMAS_READ: [&str; 7] = [
    "fua-bench/1",
    "fua-bench/1.1",
    "fua-bench/1.2",
    "fua-bench/1.3",
    "fua-bench/1.4",
    "fua-bench/1.5",
    "fua-bench/1.6",
];

/// Hotspots recorded in the artifact's `attribution` section (the
/// suite-wide top-N by switched bits).
pub const ATTRIBUTION_HOTSPOTS: usize = 10;

/// Default telemetry window for the bench suite, in cycles.
pub const DEFAULT_WINDOW_CYCLES: u64 = 1024;

/// One unit's Figure-4 measurement: baseline denominator plus the
/// per-scheme reduction rows in the paper's bar order.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitFigure {
    /// Total baseline switched bits (denominator of every percentage).
    pub baseline_switched_bits: u64,
    /// One row per scheme.
    pub rows: Vec<Figure4Row>,
}

impl UnitFigure {
    fn from_figure(fig: &Figure4) -> Self {
        UnitFigure {
            baseline_switched_bits: fig.baseline_switched_bits,
            rows: fig.rows.clone(),
        }
    }

    /// The row for a scheme, if present.
    pub fn row(&self, scheme: &str) -> Option<&Figure4Row> {
        self.rows.iter().find(|r| r.scheme == scheme)
    }
}

/// Table-1 aggregate operand statistics (the paper's derived one-liners).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperandAggregates {
    /// IALU: mean fraction of 1 bits among info-bit-0 operands.
    pub ialu_ones_frac_info0: f64,
    /// IALU: mean fraction of 1 bits among info-bit-1 operands.
    pub ialu_ones_frac_info1: f64,
    /// FPAU: fraction of operands with a 0 information bit.
    pub fpau_info0_fraction: f64,
    /// FPAU: mean fraction of 1 bits among info-bit-0 operands.
    pub fpau_ones_frac_info0: f64,
}

/// The windowed-telemetry summary recorded in the artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySummary {
    /// Window size used, in cycles.
    pub window_cycles: u64,
    /// Windows accumulated across the telemetry pass.
    pub windows: u64,
    /// Per-class switched-bit totals reassembled from the time-series.
    pub switched_bits: [u64; 4],
    /// Whether the reassembled totals equalled the simulator's own
    /// [`EnergyLedger`](fua_power::EnergyLedger) bit-for-bit.
    pub exact: bool,
}

/// One suite-wide energy hotspot in the artifact's `attribution`
/// section.
#[derive(Debug, Clone, PartialEq)]
pub struct HotspotEntry {
    /// The workload the PC belongs to.
    pub workload: String,
    /// Static program counter within the workload.
    pub pc: u64,
    /// Basic-block label of the PC.
    pub block: String,
    /// Switched bits attributed to the PC.
    pub bits: u64,
    /// Share of the whole suite's switched bits, in percent.
    pub share_pct: f64,
}

/// The `attribution` section of the artifact: the energy-attribution
/// digest of the telemetry pass. The per-PC partition itself stays out
/// of the artifact (it is large and workload-addressed); what is
/// recorded is the exactness verdict and the suite-wide hotspot ranking
/// [`compare`](crate::compare) gates on.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionSummary {
    /// Label of the steering scheme the pass ran under.
    pub scheme: String,
    /// Distinct (pc, class, module, case) charge sites across the suite.
    pub sites: u64,
    /// Per-class switched-bit totals reassembled from the partition.
    pub switched_bits: [u64; 4],
    /// Whether every workload's partition — and their sum — reproduced
    /// the simulator ledgers bit-for-bit.
    pub exact: bool,
    /// The suite-wide top-[`ATTRIBUTION_HOTSPOTS`] PCs by switched bits.
    pub top_hotspots: Vec<HotspotEntry>,
}

/// The `stalls` section of the artifact: the cycle-attribution digest
/// of the telemetry pass. Like the energy `attribution` section, the
/// per-site partition stays out of the artifact; what is recorded is
/// the exact-partition verdict (every issue slot of every cycle counted
/// exactly once) and the suite-wide stall mix
/// [`compare`](crate::compare) gates on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallSummary {
    /// Label of the steering scheme the pass ran under.
    pub scheme: String,
    /// Issue slots per cycle on the benched machine.
    pub issue_width: u64,
    /// Cycles summed over every workload of the telemetry pass.
    pub cycles: u64,
    /// Issue slots accounted across every stall site.
    pub slots: u64,
    /// Whether `slots == cycles × issue_width` bit-for-bit — the
    /// exact-partition invariant over the whole suite.
    pub exact: bool,
    /// Slot totals per [`StallReason`], in [`StallReason::ALL`] order.
    pub mix: [u64; 8],
}

/// The `throughput` section of the artifact: how fast the simulator
/// itself runs — the ROADMAP item-1 headline. `cycles` and
/// `instructions` are deterministic model totals from the telemetry
/// pass; `hot_nanos` is the summed wall-clock of the *rate pass* — each
/// workload re-run untraced and unprofiled (the configuration the
/// Figure-4 sweeps actually use) with a single timer read per workload,
/// so the denominator measures the optimised hot loop itself, not the
/// instrumented telemetry build. The rate pass must reproduce the
/// telemetry pass's cycle/instruction totals exactly (the engine is
/// deterministic; `bench_suite_jobs` asserts it), so only the
/// denominator is measurement. The derived MHz varies run to run and
/// machine to machine; [`compare`](crate::compare) treats it like the
/// phase timers: only a gross slowdown is gated, never banded drift.
/// `docs/PERFORMANCE.md` documents the methodology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThroughputSummary {
    /// Simulated cycles summed over every workload of the telemetry
    /// pass (bit-identical to the rate pass's total).
    pub cycles: u64,
    /// Retired instructions summed over the same runs.
    pub instructions: u64,
    /// Summed wall-clock of the untraced, unprofiled rate pass, in
    /// nanoseconds (the denominator of the simulated-rate headline).
    pub hot_nanos: u64,
}

impl ThroughputSummary {
    /// Simulated kilohertz: cycles per wall-second of hot loop, /1000.
    pub fn sim_khz(&self) -> f64 {
        if self.hot_nanos == 0 {
            0.0
        } else {
            self.cycles as f64 * 1e6 / self.hot_nanos as f64
        }
    }

    /// Simulated megahertz — the headline `fua bench-suite` prints and
    /// EXPERIMENTS.md reproduces.
    pub fn sim_mhz(&self) -> f64 {
        self.sim_khz() / 1e3
    }

    /// Simulated kilo-instructions per wall-second of hot loop.
    pub fn kips(&self) -> f64 {
        if self.hot_nanos == 0 {
            0.0
        } else {
            self.instructions as f64 * 1e6 / self.hot_nanos as f64
        }
    }

    /// Instructions per simulated cycle — a deterministic model metric.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// One scheme's static-vs-dynamic digest in the artifact's `estimator`
/// section, aggregated over the whole suite.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatorEntry {
    /// Command-line spelling of the scheme checked.
    pub scheme: String,
    /// Whether every per-PC static bound dominated its measurement, for
    /// every workload in the suite.
    pub sound: bool,
    /// Charged PCs compared, summed over the workloads.
    pub pcs: u64,
    /// `Σ bits_per_op × ops` over every charged PC in the suite.
    pub bound_bits: u64,
    /// `Σ measured bits` over the same PCs.
    pub actual_bits: u64,
    /// The aggregate `bound / actual` precision ratio (1.0 = exact;
    /// soundness keeps it ≥ 1.0).
    pub mean_ratio: f64,
    /// The least precise basic block's `bound / actual` ratio.
    pub worst_ratio: f64,
    /// `"workload block"` address of that least precise block.
    pub worst_block: String,
}

/// The `estimator` section of the artifact: for every named scheme, the
/// static switched-bit bounds joined against the measured attribution —
/// the soundness verdict [`compare`](crate::compare) hard-gates on and
/// the precision headline it tolerance-bands.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatorSummary {
    /// One entry per scheme, in [`Scheme::ALL`] order.
    pub entries: Vec<EstimatorEntry>,
}

/// Aggregates one scheme's per-workload checks into its artifact entry.
fn estimator_entry(scheme: Scheme, checks: &[EstimateCheck]) -> EstimatorEntry {
    let bound_bits: u64 = checks.iter().map(|c| c.bound_bits).sum();
    let actual_bits: u64 = checks.iter().map(|c| c.actual_bits).sum();
    let mean_ratio = if actual_bits == 0 {
        1.0
    } else {
        bound_bits as f64 / actual_bits as f64
    };
    let worst = checks
        .iter()
        .filter_map(|c| {
            c.worst_block
                .as_ref()
                .map(|(label, ratio)| (format!("{} {label}", c.workload), *ratio))
        })
        .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0.cmp(&a.0)));
    let (worst_block, worst_ratio) = worst.unwrap_or_else(|| ("-".to_string(), 1.0));
    EstimatorEntry {
        scheme: scheme.name().to_string(),
        sound: checks.iter().all(EstimateCheck::sound),
        pcs: checks.iter().map(|c| c.pcs as u64).sum(),
        bound_bits,
        actual_bits,
        mean_ratio,
        worst_ratio,
        worst_block,
    }
}

/// One executor worker's wall-clock accounting in the `parallel`
/// section of the artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerNanos {
    /// Sweep cells this worker executed across all stages.
    pub cells: u64,
    /// Nanoseconds this worker spent busy.
    pub nanos: u64,
}

/// The `parallel` section of the artifact: how the suite's cells were
/// fanned out and what it cost in wall-clock. Purely observational —
/// [`compare`](crate::compare) never diffs it, since the model metrics
/// are identical for every worker count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelSummary {
    /// Worker count the suite ran with (1 = the serial reference path).
    pub jobs: u64,
    /// End-to-end wall-clock of the whole suite, in nanoseconds.
    pub wall_nanos: u64,
    /// Per-worker busy time, summed across the suite's stages.
    pub workers: Vec<WorkerNanos>,
}

impl ParallelSummary {
    fn from_report(jobs: Jobs, wall_nanos: u64, report: &ExecReport) -> Self {
        ParallelSummary {
            jobs: jobs.get() as u64,
            wall_nanos,
            workers: report
                .workers
                .iter()
                .map(|w| WorkerNanos {
                    cells: w.cells,
                    nanos: w.nanos,
                })
                .collect(),
        }
    }
}

/// The `harness` section of the artifact: how well the measurement
/// harness itself behaved — worker utilization, load imbalance, arena
/// reuse, and (when the counting allocator is installed) allocation
/// pressure normalised per simulated kilocycle. `busy_fraction` and
/// `imbalance` are wall-clock measurements; `jobs` and the arena
/// counters are configuration/model facts. [`compare`](crate::compare)
/// gates only a *collapse* (utilization halving, allocation pressure
/// exploding) and only between runs with the same `jobs` — two worker
/// counts legitimately utilize differently, so cross-jobs diffs are
/// skipped entirely.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessSummary {
    /// Worker count the suite ran with.
    pub jobs: u64,
    /// Busy wall-clock over pool capacity, `busy / (jobs × wall)`.
    pub busy_fraction: f64,
    /// Busiest worker's nanoseconds over the mean worker's (1.0 =
    /// perfectly balanced).
    pub imbalance: f64,
    /// Heap allocations per simulated kilocycle over the whole suite;
    /// `None` when the counting allocator was not installed (the
    /// default build).
    pub allocs_per_kcycle: Option<f64>,
    /// Inflight-arena leases the suite performed.
    pub arena_leases: u64,
    /// Leases that had to allocate a fresh arena (pool misses).
    pub arena_fresh: u64,
}

/// Per-phase wall-clock of the telemetry pass, in nanoseconds, in
/// [`SimPhase::ALL`] order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseNanos(pub [u64; 5]);

impl PhaseNanos {
    /// Nanoseconds for one phase.
    pub fn of(&self, phase: SimPhase) -> u64 {
        self.0[phase as usize]
    }
}

/// A complete `BENCH_<tag>.json` artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Provenance: tag, configuration, workload seeds.
    pub manifest: RunManifest,
    /// Figure 4(a): the IALU scheme sweep.
    pub ialu: UnitFigure,
    /// Figure 4(b): the FPAU scheme sweep.
    pub fpau: UnitFigure,
    /// Headline reductions (4-bit LUT + hw swap; + compiler on IALU).
    pub headline_ialu_pct: f64,
    /// FPAU headline reduction.
    pub headline_fpau_pct: f64,
    /// IALU headline with compiler swapping added.
    pub headline_ialu_compiler_pct: f64,
    /// Table-1 aggregates.
    pub operands: OperandAggregates,
    /// Table-2 row 1: `P(Num(I)=k)` for the IALU, k = 1….
    pub ialu_occupancy: Vec<f64>,
    /// Table-2 row 2: the FPAU occupancy distribution.
    pub fpau_occupancy: Vec<f64>,
    /// Wall-clock per simulator hot-loop phase (telemetry pass).
    pub phase_nanos: PhaseNanos,
    /// Windowed-telemetry summary and exactness verdict.
    pub telemetry: TelemetrySummary,
    /// Simulated-throughput headline (`None` for pre-1.5 artifacts).
    pub throughput: Option<ThroughputSummary>,
    /// Energy-attribution digest (`None` for pre-1.2 artifacts).
    pub attribution: Option<AttributionSummary>,
    /// Cycle-attribution (stall) digest (`None` for pre-1.4 artifacts).
    pub stalls: Option<StallSummary>,
    /// Static-estimator soundness/precision digest (`None` for pre-1.3
    /// artifacts).
    pub estimator: Option<EstimatorSummary>,
    /// Executor accounting (`None` for pre-1.1 artifacts).
    pub parallel: Option<ParallelSummary>,
    /// Harness self-observability digest (`None` for pre-1.6
    /// artifacts).
    pub harness: Option<HarnessSummary>,
}

/// Runs the full bench suite under `config` and assembles the artifact,
/// on the serial reference path (`--jobs 1`).
///
/// The model metrics (figures, tables) are deterministic — two runs
/// under the same manifest produce identical values; only `phase_nanos`
/// and the `parallel` section are wall-clock and vary run to run.
pub fn bench_suite(tag: &str, config: &ExperimentConfig, window_cycles: u64) -> BenchReport {
    bench_suite_jobs(tag, config, window_cycles, Jobs::serial())
}

/// As [`bench_suite`], fanning every stage's cells out across `jobs`
/// workers over a shared, decode-once [`WorkloadArena`].
///
/// Each cell runs with its own [`WindowedSink`], [`PhaseTimers`] and
/// [`EnergyLedger`]; the calling thread merges them **in cell-index
/// order**, so every model metric in the artifact — and therefore every
/// rendered table and export derived from it — is byte-identical to the
/// serial run for any worker count. Only the `parallel` section (and
/// `phase_nanos`, already wall-clock) reflects the fan-out.
pub fn bench_suite_jobs(
    tag: &str,
    config: &ExperimentConfig,
    window_cycles: u64,
    jobs: Jobs,
) -> BenchReport {
    let started = std::time::Instant::now();
    let alloc_start = fua_obs::alloc_snapshot();
    let arena_start = fua_obs::arena_counters();
    let manifest = RunManifest::capture(tag, config);
    let arena = WorkloadArena::build(config.scale);

    // One shared profiling pass feeds both figures (and the tables).
    let (profile, mut exec) = profile_suite_jobs(config, &arena, jobs);
    let (fig_a, exec_a) = figure4_with_profile_jobs(Unit::Ialu, config, &arena, &profile, jobs);
    let (fig_b, exec_b) = figure4_with_profile_jobs(Unit::Fpau, config, &arena, &profile, jobs);
    exec.merge(&exec_a);
    exec.merge(&exec_b);
    let headline = headline_from(&fig_a, &fig_b);

    let ialu_info = profile.ialu.operand_info_stats();
    let fpau_info = profile.fpau.operand_info_stats();

    // Telemetry pass: every workload under the recommended scheme with
    // a windowed sink, an attribution sink and phase timers attached;
    // prove both exactness invariants against the simulator's own
    // ledger. Each cell gets its own sinks/timers/ledger; the in-order
    // merge below reproduces the serial pass that threaded one sink
    // through every run (every run restarts at cycle 0, so window i
    // covers the same interval in every cell).
    let issue_width = config.machine.issue_width() as u64;
    let (cells, exec_t) = map_indexed_timed(jobs, arena.all(), |_, w| {
        let mut sim = Simulator::with_parts(
            config.machine.clone(),
            observed_scheme(),
            (
                WindowedSink::new(window_cycles),
                (AttributionSink::new(), StallSink::new()),
            ),
            PhaseTimers::new(),
        );
        let result = sim
            .run_program(&w.program, config.inst_limit)
            .unwrap_or_else(|e| panic!("workload {} faulted: {e}", w.name));
        let ledger = result.ledger;
        let cycles = result.cycles;
        let retired = result.retired;
        let ((sink, (attr, stall)), timers) = sim.into_parts();
        let attribution = EnergyAttribution::build(w.name, Scheme::Lut4.label(), &w.program, &attr);
        (sink, attribution, stall, timers, ledger, cycles, retired)
    });
    exec.merge(&exec_t);
    let mut sink = WindowedSink::new(window_cycles);
    let mut timers = PhaseTimers::new();
    let mut ledger = EnergyLedger::new();
    let mut attr_ledger = EnergyLedger::new();
    let mut attr_exact = true;
    let mut attr_sites = 0u64;
    let mut stall_sink = StallSink::new();
    let mut stall_cycles = 0u64;
    let mut stall_exact = true;
    let mut retired_total = 0u64;
    let mut spots: Vec<HotspotEntry> = Vec::new();
    for (s, attribution, stall, t, l, cycles, retired) in &cells {
        sink.merge(s);
        timers.merge(t);
        ledger.merge(l);
        retired_total += retired;
        // The partition must be exact per workload *and* in aggregate.
        stall_exact &= stall.total_slots() == cycles * issue_width;
        stall_sink.merge(stall);
        stall_cycles += cycles;
        let reassembled = attribution.ledger();
        attr_exact &= reassembled == *l;
        attr_ledger.merge(&reassembled);
        attr_sites += attribution.rows().len() as u64;
        for h in attribution.hotspots(ATTRIBUTION_HOTSPOTS) {
            spots.push(HotspotEntry {
                workload: attribution.workload.clone(),
                pc: h.pc as u64,
                block: h.block,
                bits: h.bits,
                share_pct: 0.0, // filled in once the suite total is known
            });
        }
    }
    let series = sink.into_series();
    let mut reassembled = EnergyLedger::new();
    reassembled.accumulate(series.total_switched_bits(), series.total_ops());
    let telemetry = TelemetrySummary {
        window_cycles,
        windows: series.len() as u64,
        switched_bits: series.total_switched_bits(),
        exact: reassembled == ledger,
    };
    // The attribution partition must reassemble per workload *and* in
    // aggregate; hotspot shares are fractions of the suite total.
    attr_exact &= attr_ledger == ledger;
    let suite_bits = ledger.total_switched_bits();
    for spot in &mut spots {
        if suite_bits > 0 {
            spot.share_pct = 100.0 * spot.bits as f64 / suite_bits as f64;
        }
    }
    spots.sort_by(|a, b| {
        b.bits
            .cmp(&a.bits)
            .then_with(|| a.workload.cmp(&b.workload))
            .then(a.pc.cmp(&b.pc))
    });
    spots.truncate(ATTRIBUTION_HOTSPOTS);
    let attribution = AttributionSummary {
        scheme: Scheme::Lut4.label().to_string(),
        sites: attr_sites,
        switched_bits: attr_ledger.switched_array(),
        exact: attr_exact,
        top_hotspots: spots,
    };
    // Rate pass: the simulated-rate headline times the *untraced,
    // unprofiled* engine — the configuration the sweeps actually run —
    // with one clock read per workload, so the denominator measures the
    // optimised hot loop rather than the instrumented telemetry build.
    // The engine is deterministic, so the pass must reproduce the
    // telemetry pass's model totals bit-for-bit.
    let (rate_cells, exec_r) = map_indexed_timed(jobs, arena.all(), |_, w| {
        let start = std::time::Instant::now();
        let mut sim = Simulator::new(config.machine.clone(), observed_scheme());
        let result = sim
            .run_program(&w.program, config.inst_limit)
            .unwrap_or_else(|e| panic!("workload {} faulted: {e}", w.name));
        (
            start.elapsed().as_nanos() as u64,
            result.cycles,
            result.retired,
        )
    });
    exec.merge(&exec_r);
    let mut hot_nanos = 0u64;
    let mut rate_cycles = 0u64;
    let mut rate_retired = 0u64;
    for (nanos, cycles, retired) in &rate_cells {
        hot_nanos += nanos;
        rate_cycles += cycles;
        rate_retired += retired;
    }
    assert_eq!(
        (rate_cycles, rate_retired),
        (stall_cycles, retired_total),
        "rate pass must reproduce the telemetry pass's model totals"
    );
    let throughput = ThroughputSummary {
        cycles: stall_cycles,
        instructions: retired_total,
        hot_nanos,
    };
    stall_exact &= stall_sink.total_slots() == stall_cycles * issue_width;
    let stalls = StallSummary {
        scheme: Scheme::Lut4.label().to_string(),
        issue_width,
        cycles: stall_cycles,
        slots: stall_sink.total_slots(),
        exact: stall_exact,
        mix: stall_sink.reason_totals(),
    };

    // Static-estimator pass: join every scheme's static switched-bit
    // bounds against a measured attribution of the whole suite. Pure
    // model arithmetic — deterministic for any worker count.
    let estimator = EstimatorSummary {
        entries: Scheme::ALL
            .iter()
            .map(|&scheme| {
                let checks = check_suite(arena.all(), scheme, config.inst_limit, jobs);
                estimator_entry(scheme, &checks)
            })
            .collect(),
    };

    // Harness digest: how the measurement machinery itself behaved.
    // The allocation figure is normalised per telemetry-pass kilocycle
    // (a deterministic denominator); it is `Some` only when the
    // counting allocator is actually installed in this binary.
    let alloc_delta = fua_obs::alloc_snapshot().delta(&alloc_start);
    let arena_delta = fua_obs::arena_counters().delta(&arena_start);
    let allocs_per_kcycle = (fua_obs::counting_allocator_active() && stall_cycles > 0)
        .then(|| alloc_delta.allocs as f64 * 1000.0 / stall_cycles as f64);
    let harness = HarnessSummary {
        jobs: jobs.get() as u64,
        busy_fraction: exec.busy_fraction(),
        imbalance: exec.imbalance(),
        allocs_per_kcycle,
        arena_leases: arena_delta.leases,
        arena_fresh: arena_delta.fresh,
    };

    BenchReport {
        manifest,
        ialu: UnitFigure::from_figure(&fig_a),
        fpau: UnitFigure::from_figure(&fig_b),
        headline_ialu_pct: headline.ialu_pct,
        headline_fpau_pct: headline.fpau_pct,
        headline_ialu_compiler_pct: headline.ialu_compiler_pct,
        operands: OperandAggregates {
            ialu_ones_frac_info0: ialu_info.ones_frac_info0,
            ialu_ones_frac_info1: ialu_info.ones_frac_info1,
            fpau_info0_fraction: fpau_info.info0_fraction(),
            fpau_ones_frac_info0: fpau_info.ones_frac_info0,
        },
        ialu_occupancy: profile.ialu_occupancy.distribution(),
        fpau_occupancy: profile.fpau_occupancy.distribution(),
        phase_nanos: PhaseNanos(timers.nanos()),
        telemetry,
        throughput: Some(throughput),
        attribution: Some(attribution),
        stalls: Some(stalls),
        estimator: Some(estimator),
        parallel: Some(ParallelSummary::from_report(
            jobs,
            started.elapsed().as_nanos() as u64,
            &exec,
        )),
        harness: Some(harness),
    }
}

fn unit_to_json(unit: &UnitFigure) -> Json {
    Json::obj([
        (
            "baseline_switched_bits",
            Json::UInt(unit.baseline_switched_bits),
        ),
        (
            "rows",
            Json::Arr(
                unit.rows
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("scheme", Json::Str(r.scheme.clone())),
                            ("base_pct", Json::Float(r.base_pct)),
                            ("hardware_pct", Json::Float(r.hardware_pct)),
                            (
                                "hardware_compiler_pct",
                                Json::Float(r.hardware_compiler_pct),
                            ),
                            ("compiler_only_pct", Json::Float(r.compiler_only_pct)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn unit_from_json(json: &Json, field: &str) -> Result<UnitFigure, ReportError> {
    let unit = json.get(field).ok_or_else(|| ReportError::missing(field))?;
    let rows = unit
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| ReportError::missing("rows"))?
        .iter()
        .map(|r| {
            Ok(Figure4Row {
                scheme: expect_str(r, "scheme")?.to_string(),
                base_pct: expect_f64(r, "base_pct")?,
                hardware_pct: expect_f64(r, "hardware_pct")?,
                hardware_compiler_pct: expect_f64(r, "hardware_compiler_pct")?,
                compiler_only_pct: expect_f64(r, "compiler_only_pct")?,
            })
        })
        .collect::<Result<Vec<_>, ReportError>>()?;
    Ok(UnitFigure {
        baseline_switched_bits: expect_u64(unit, "baseline_switched_bits")?,
        rows,
    })
}

fn f64_array(json: &Json, field: &str) -> Result<Vec<f64>, ReportError> {
    json.get(field)
        .and_then(Json::as_arr)
        .ok_or_else(|| ReportError::missing(field))?
        .iter()
        .map(|v| v.as_f64().ok_or_else(|| ReportError::mistyped(field)))
        .collect()
}

fn throughput_to_json(t: &ThroughputSummary) -> Json {
    // The derived rates are written for human readers; parsing ignores
    // them and recomputes from the integer fields, so the round trip
    // stays bit-exact.
    Json::obj([
        ("cycles", Json::UInt(t.cycles)),
        ("instructions", Json::UInt(t.instructions)),
        ("hot_nanos", Json::UInt(t.hot_nanos)),
        ("sim_mhz", Json::Float(t.sim_mhz())),
        ("sim_khz", Json::Float(t.sim_khz())),
        ("kips", Json::Float(t.kips())),
        ("ipc", Json::Float(t.ipc())),
    ])
}

fn throughput_from_json(json: &Json) -> Result<Option<ThroughputSummary>, ReportError> {
    let Some(t) = json.get("throughput") else {
        return Ok(None);
    };
    Ok(Some(ThroughputSummary {
        cycles: expect_u64(t, "cycles")?,
        instructions: expect_u64(t, "instructions")?,
        hot_nanos: expect_u64(t, "hot_nanos")?,
    }))
}

fn attribution_to_json(a: &AttributionSummary) -> Json {
    Json::obj([
        ("scheme", Json::Str(a.scheme.clone())),
        ("sites", Json::UInt(a.sites)),
        (
            "switched_bits",
            Json::Arr(a.switched_bits.iter().map(|&b| Json::UInt(b)).collect()),
        ),
        ("exact", Json::Bool(a.exact)),
        (
            "top_hotspots",
            Json::Arr(
                a.top_hotspots
                    .iter()
                    .map(|h| {
                        Json::obj([
                            ("workload", Json::Str(h.workload.clone())),
                            ("pc", Json::UInt(h.pc)),
                            ("block", Json::Str(h.block.clone())),
                            ("bits", Json::UInt(h.bits)),
                            ("share_pct", Json::Float(h.share_pct)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn attribution_from_json(json: &Json) -> Result<Option<AttributionSummary>, ReportError> {
    let Some(a) = json.get("attribution") else {
        return Ok(None);
    };
    let bits = a
        .get("switched_bits")
        .and_then(Json::as_arr)
        .ok_or_else(|| ReportError::missing("attribution.switched_bits"))?
        .iter()
        .map(Json::as_u64)
        .collect::<Option<Vec<u64>>>()
        .ok_or_else(|| ReportError::mistyped("attribution.switched_bits"))?;
    if bits.len() != 4 {
        return Err(ReportError::mistyped("attribution.switched_bits"));
    }
    let top_hotspots = a
        .get("top_hotspots")
        .and_then(Json::as_arr)
        .ok_or_else(|| ReportError::missing("attribution.top_hotspots"))?
        .iter()
        .map(|h| {
            Ok(HotspotEntry {
                workload: expect_str(h, "workload")?.to_string(),
                pc: expect_u64(h, "pc")?,
                block: expect_str(h, "block")?.to_string(),
                bits: expect_u64(h, "bits")?,
                share_pct: expect_f64(h, "share_pct")?,
            })
        })
        .collect::<Result<Vec<_>, ReportError>>()?;
    Ok(Some(AttributionSummary {
        scheme: expect_str(a, "scheme")?.to_string(),
        sites: expect_u64(a, "sites")?,
        switched_bits: [bits[0], bits[1], bits[2], bits[3]],
        exact: a
            .get("exact")
            .and_then(Json::as_bool)
            .ok_or_else(|| ReportError::missing("attribution.exact"))?,
        top_hotspots,
    }))
}

fn stalls_to_json(s: &StallSummary) -> Json {
    Json::obj([
        ("scheme", Json::Str(s.scheme.clone())),
        ("issue_width", Json::UInt(s.issue_width)),
        ("cycles", Json::UInt(s.cycles)),
        ("slots", Json::UInt(s.slots)),
        ("exact", Json::Bool(s.exact)),
        (
            "mix",
            Json::Obj(
                StallReason::ALL
                    .into_iter()
                    .map(|r| (r.name().to_string(), Json::UInt(s.mix[r.index()])))
                    .collect(),
            ),
        ),
    ])
}

fn stalls_from_json(json: &Json) -> Result<Option<StallSummary>, ReportError> {
    let Some(s) = json.get("stalls") else {
        return Ok(None);
    };
    let mix_obj = s
        .get("mix")
        .ok_or_else(|| ReportError::missing("stalls.mix"))?;
    let mut mix = [0u64; 8];
    for reason in StallReason::ALL {
        mix[reason.index()] = expect_u64(mix_obj, reason.name())?;
    }
    Ok(Some(StallSummary {
        scheme: expect_str(s, "scheme")?.to_string(),
        issue_width: expect_u64(s, "issue_width")?,
        cycles: expect_u64(s, "cycles")?,
        slots: expect_u64(s, "slots")?,
        exact: s
            .get("exact")
            .and_then(Json::as_bool)
            .ok_or_else(|| ReportError::missing("stalls.exact"))?,
        mix,
    }))
}

fn estimator_to_json(e: &EstimatorSummary) -> Json {
    Json::obj([(
        "entries",
        Json::Arr(
            e.entries
                .iter()
                .map(|entry| {
                    Json::obj([
                        ("scheme", Json::Str(entry.scheme.clone())),
                        ("sound", Json::Bool(entry.sound)),
                        ("pcs", Json::UInt(entry.pcs)),
                        ("bound_bits", Json::UInt(entry.bound_bits)),
                        ("actual_bits", Json::UInt(entry.actual_bits)),
                        ("mean_ratio", Json::Float(entry.mean_ratio)),
                        ("worst_ratio", Json::Float(entry.worst_ratio)),
                        ("worst_block", Json::Str(entry.worst_block.clone())),
                    ])
                })
                .collect(),
        ),
    )])
}

fn estimator_from_json(json: &Json) -> Result<Option<EstimatorSummary>, ReportError> {
    let Some(e) = json.get("estimator") else {
        return Ok(None);
    };
    let entries = e
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or_else(|| ReportError::missing("estimator.entries"))?
        .iter()
        .map(|entry| {
            Ok(EstimatorEntry {
                scheme: expect_str(entry, "scheme")?.to_string(),
                sound: entry
                    .get("sound")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| ReportError::missing("estimator.sound"))?,
                pcs: expect_u64(entry, "pcs")?,
                bound_bits: expect_u64(entry, "bound_bits")?,
                actual_bits: expect_u64(entry, "actual_bits")?,
                mean_ratio: expect_f64(entry, "mean_ratio")?,
                worst_ratio: expect_f64(entry, "worst_ratio")?,
                worst_block: expect_str(entry, "worst_block")?.to_string(),
            })
        })
        .collect::<Result<Vec<_>, ReportError>>()?;
    Ok(Some(EstimatorSummary { entries }))
}

fn parallel_to_json(p: &ParallelSummary) -> Json {
    Json::obj([
        ("jobs", Json::UInt(p.jobs)),
        ("wall_nanos", Json::UInt(p.wall_nanos)),
        (
            "workers",
            Json::Arr(
                p.workers
                    .iter()
                    .map(|w| {
                        Json::obj([
                            ("cells", Json::UInt(w.cells)),
                            ("nanos", Json::UInt(w.nanos)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn parallel_from_json(json: &Json) -> Result<Option<ParallelSummary>, ReportError> {
    let Some(p) = json.get("parallel") else {
        return Ok(None);
    };
    let workers = p
        .get("workers")
        .and_then(Json::as_arr)
        .ok_or_else(|| ReportError::missing("parallel.workers"))?
        .iter()
        .map(|w| {
            Ok(WorkerNanos {
                cells: expect_u64(w, "cells")?,
                nanos: expect_u64(w, "nanos")?,
            })
        })
        .collect::<Result<Vec<_>, ReportError>>()?;
    Ok(Some(ParallelSummary {
        jobs: expect_u64(p, "jobs")?,
        wall_nanos: expect_u64(p, "wall_nanos")?,
        workers,
    }))
}

fn harness_to_json(h: &HarnessSummary) -> Json {
    let mut fields = vec![
        ("jobs".to_string(), Json::UInt(h.jobs)),
        ("busy_fraction".to_string(), Json::Float(h.busy_fraction)),
        ("imbalance".to_string(), Json::Float(h.imbalance)),
        ("arena_leases".to_string(), Json::UInt(h.arena_leases)),
        ("arena_fresh".to_string(), Json::UInt(h.arena_fresh)),
    ];
    if let Some(a) = h.allocs_per_kcycle {
        fields.push(("allocs_per_kcycle".to_string(), Json::Float(a)));
    }
    Json::Obj(fields)
}

fn harness_from_json(json: &Json) -> Result<Option<HarnessSummary>, ReportError> {
    let Some(h) = json.get("harness") else {
        return Ok(None);
    };
    // `allocs_per_kcycle` is optional within the section: most builds
    // run without the counting allocator installed.
    let allocs_per_kcycle = match h.get("allocs_per_kcycle") {
        None => None,
        Some(v) => Some(
            v.as_f64()
                .ok_or_else(|| ReportError::mistyped("harness.allocs_per_kcycle"))?,
        ),
    };
    Ok(Some(HarnessSummary {
        jobs: expect_u64(h, "jobs")?,
        busy_fraction: expect_f64(h, "busy_fraction")?,
        imbalance: expect_f64(h, "imbalance")?,
        allocs_per_kcycle,
        arena_leases: expect_u64(h, "arena_leases")?,
        arena_fresh: expect_u64(h, "arena_fresh")?,
    }))
}

impl BenchReport {
    /// Serialises the artifact (stable schema [`BENCH_SCHEMA`]).
    pub fn to_json(&self) -> Json {
        let mut json = Json::obj([
            ("schema", Json::Str(BENCH_SCHEMA.into())),
            ("manifest", self.manifest.to_json()),
            ("figure4_ialu", unit_to_json(&self.ialu)),
            ("figure4_fpau", unit_to_json(&self.fpau)),
            (
                "headline",
                Json::obj([
                    ("ialu_pct", Json::Float(self.headline_ialu_pct)),
                    ("fpau_pct", Json::Float(self.headline_fpau_pct)),
                    (
                        "ialu_compiler_pct",
                        Json::Float(self.headline_ialu_compiler_pct),
                    ),
                ]),
            ),
            (
                "table1",
                Json::obj([
                    (
                        "ialu_ones_frac_info0",
                        Json::Float(self.operands.ialu_ones_frac_info0),
                    ),
                    (
                        "ialu_ones_frac_info1",
                        Json::Float(self.operands.ialu_ones_frac_info1),
                    ),
                    (
                        "fpau_info0_fraction",
                        Json::Float(self.operands.fpau_info0_fraction),
                    ),
                    (
                        "fpau_ones_frac_info0",
                        Json::Float(self.operands.fpau_ones_frac_info0),
                    ),
                ]),
            ),
            (
                "table2",
                Json::obj([
                    (
                        "ialu_occupancy",
                        Json::Arr(
                            self.ialu_occupancy
                                .iter()
                                .map(|&p| Json::Float(p))
                                .collect(),
                        ),
                    ),
                    (
                        "fpau_occupancy",
                        Json::Arr(
                            self.fpau_occupancy
                                .iter()
                                .map(|&p| Json::Float(p))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "phase_nanos",
                Json::Obj(
                    SimPhase::ALL
                        .iter()
                        .map(|&p| (p.name().to_string(), Json::UInt(self.phase_nanos.of(p))))
                        .collect(),
                ),
            ),
            (
                "telemetry",
                Json::obj([
                    ("window_cycles", Json::UInt(self.telemetry.window_cycles)),
                    ("windows", Json::UInt(self.telemetry.windows)),
                    (
                        "switched_bits",
                        Json::Arr(
                            self.telemetry
                                .switched_bits
                                .iter()
                                .map(|&b| Json::UInt(b))
                                .collect(),
                        ),
                    ),
                    ("exact", Json::Bool(self.telemetry.exact)),
                ]),
            ),
        ]);
        if let Json::Obj(fields) = &mut json {
            if let Some(t) = &self.throughput {
                fields.push(("throughput".to_string(), throughput_to_json(t)));
            }
            if let Some(a) = &self.attribution {
                fields.push(("attribution".to_string(), attribution_to_json(a)));
            }
            if let Some(s) = &self.stalls {
                fields.push(("stalls".to_string(), stalls_to_json(s)));
            }
            if let Some(e) = &self.estimator {
                fields.push(("estimator".to_string(), estimator_to_json(e)));
            }
            if let Some(p) = &self.parallel {
                fields.push(("parallel".to_string(), parallel_to_json(p)));
            }
            if let Some(h) = &self.harness {
                fields.push(("harness".to_string(), harness_to_json(h)));
            }
        }
        json
    }

    /// Reconstructs an artifact from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns a [`ReportError`] on schema mismatch or the first missing
    /// or mistyped field.
    pub fn from_json(json: &Json) -> Result<Self, ReportError> {
        let schema = expect_str(json, "schema")?;
        if !BENCH_SCHEMAS_READ.contains(&schema) {
            return Err(ReportError::Schema {
                found: schema.to_string(),
                expected: &BENCH_SCHEMAS_READ,
            });
        }
        let manifest = RunManifest::from_json(
            json.get("manifest")
                .ok_or_else(|| ReportError::missing("manifest"))?,
        )?;
        let headline = json
            .get("headline")
            .ok_or_else(|| ReportError::missing("headline"))?;
        let table1 = json
            .get("table1")
            .ok_or_else(|| ReportError::missing("table1"))?;
        let table2 = json
            .get("table2")
            .ok_or_else(|| ReportError::missing("table2"))?;
        let phases = json
            .get("phase_nanos")
            .ok_or_else(|| ReportError::missing("phase_nanos"))?;
        let mut phase_nanos = [0u64; 5];
        for (slot, phase) in phase_nanos.iter_mut().zip(SimPhase::ALL) {
            *slot = expect_u64(phases, phase.name())?;
        }
        let telemetry = json
            .get("telemetry")
            .ok_or_else(|| ReportError::missing("telemetry"))?;
        let bits = telemetry
            .get("switched_bits")
            .and_then(Json::as_arr)
            .ok_or_else(|| ReportError::missing("telemetry.switched_bits"))?
            .iter()
            .map(Json::as_u64)
            .collect::<Option<Vec<u64>>>()
            .ok_or_else(|| ReportError::mistyped("telemetry.switched_bits"))?;
        if bits.len() != 4 {
            return Err(ReportError::mistyped("telemetry.switched_bits"));
        }
        Ok(BenchReport {
            manifest,
            ialu: unit_from_json(json, "figure4_ialu")?,
            fpau: unit_from_json(json, "figure4_fpau")?,
            headline_ialu_pct: expect_f64(headline, "ialu_pct")?,
            headline_fpau_pct: expect_f64(headline, "fpau_pct")?,
            headline_ialu_compiler_pct: expect_f64(headline, "ialu_compiler_pct")?,
            operands: OperandAggregates {
                ialu_ones_frac_info0: expect_f64(table1, "ialu_ones_frac_info0")?,
                ialu_ones_frac_info1: expect_f64(table1, "ialu_ones_frac_info1")?,
                fpau_info0_fraction: expect_f64(table1, "fpau_info0_fraction")?,
                fpau_ones_frac_info0: expect_f64(table1, "fpau_ones_frac_info0")?,
            },
            ialu_occupancy: f64_array(table2, "ialu_occupancy")?,
            fpau_occupancy: f64_array(table2, "fpau_occupancy")?,
            phase_nanos: PhaseNanos(phase_nanos),
            telemetry: TelemetrySummary {
                window_cycles: expect_u64(telemetry, "window_cycles")?,
                windows: expect_u64(telemetry, "windows")?,
                switched_bits: [bits[0], bits[1], bits[2], bits[3]],
                exact: telemetry
                    .get("exact")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| ReportError::missing("telemetry.exact"))?,
            },
            throughput: throughput_from_json(json)?,
            attribution: attribution_from_json(json)?,
            stalls: stalls_from_json(json)?,
            estimator: estimator_from_json(json)?,
            parallel: parallel_from_json(json)?,
            harness: harness_from_json(json)?,
        })
    }
}

impl std::str::FromStr for BenchReport {
    type Err = ReportError;

    /// Parses an artifact from raw file contents.
    fn from_str(contents: &str) -> Result<Self, ReportError> {
        Self::from_json(&Json::parse(contents).map_err(ReportError::Parse)?)
    }
}

impl ToJson for BenchReport {
    fn to_json(&self) -> Json {
        BenchReport::to_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        // Small enough for unit tests; bench-suite proper uses quick().
        ExperimentConfig {
            inst_limit: 1_500,
            ..ExperimentConfig::quick()
        }
    }

    #[test]
    fn bench_suite_produces_a_round_trippable_artifact() {
        let report = bench_suite("test", &tiny_config(), 512);
        assert_eq!(report.manifest.tag, "test");
        assert_eq!(report.ialu.rows.len(), 6);
        assert_eq!(report.fpau.rows.len(), 6);
        assert!(report.telemetry.exact, "windowed sums must equal ledger");
        assert!(report.telemetry.windows > 0);
        assert!(report.phase_nanos.of(SimPhase::Issue) > 0);
        let a = report
            .attribution
            .as_ref()
            .expect("attribution section present");
        assert!(a.exact, "attributed sums must equal the ledgers");
        assert!(a.sites > 0);
        assert!(!a.top_hotspots.is_empty());
        assert_eq!(
            a.switched_bits, report.telemetry.switched_bits,
            "two exact partitions of the same ledger agree"
        );
        let s = report.stalls.as_ref().expect("stalls section present");
        assert!(s.exact, "stall partition must cover every issue slot");
        assert_eq!(s.slots, s.cycles * s.issue_width);
        assert_eq!(s.issue_width, 10, "paper machine: 4+1+4+1 issue slots");
        assert_eq!(
            s.mix.iter().sum::<u64>(),
            s.slots,
            "the stall mix is itself a partition of the slots"
        );
        assert!(s.mix[0] > 0, "some slots issued");
        let e = report
            .estimator
            .as_ref()
            .expect("estimator section present");
        assert_eq!(e.entries.len(), Scheme::ALL.len());
        for entry in &e.entries {
            assert!(entry.sound, "{}: static bound violated", entry.scheme);
            assert!(entry.pcs > 0);
            assert!(
                entry.mean_ratio >= 1.0 && entry.worst_ratio >= 1.0,
                "{}: sound bounds imply ratios >= 1",
                entry.scheme
            );
            assert_ne!(entry.worst_block, "-");
        }
        let p = report.parallel.as_ref().expect("parallel section present");
        assert_eq!(p.jobs, 1, "bench_suite is the serial reference path");
        assert!(p.wall_nanos > 0);
        assert!(p.workers.iter().map(|w| w.cells).sum::<u64>() > 0);
        let t = report
            .throughput
            .as_ref()
            .expect("throughput section present");
        assert_eq!(
            t.cycles, s.cycles,
            "throughput and stall sections count the same telemetry pass"
        );
        assert!(t.instructions > 0);
        assert!(t.hot_nanos > 0);
        assert!(t.sim_khz() > 0.0 && t.kips() > 0.0 && t.ipc() > 0.0);
        let h = report.harness.as_ref().expect("harness section present");
        assert_eq!(h.jobs, 1, "bench_suite is the serial reference path");
        assert!(h.busy_fraction > 0.0, "a serial suite still does work");
        assert!(h.imbalance >= 1.0);
        assert!(h.arena_leases > 0, "every simulator run leases an arena");
        assert!(h.arena_fresh <= h.arena_leases);
        assert_eq!(
            h.allocs_per_kcycle, None,
            "no counting allocator installed in this test binary"
        );
        let rendered = report.to_json().pretty();
        assert!(rendered.contains("\"schema\": \"fua-bench/1.6\""));
        assert!(rendered.contains("\"sim_khz\""));
        let parsed: BenchReport = rendered.parse().unwrap();
        // Everything round-trips exactly (floats use shortest-exact
        // rendering, so equality is bit-for-bit).
        assert_eq!(parsed, report);
    }

    #[test]
    fn model_metrics_are_deterministic_across_runs_and_job_counts() {
        let a = bench_suite("a", &tiny_config(), 512);
        let b = bench_suite_jobs("b", &tiny_config(), 512, Jobs::new(3).unwrap());
        assert_eq!(a.ialu, b.ialu);
        assert_eq!(a.fpau, b.fpau);
        assert_eq!(a.operands, b.operands);
        assert_eq!(a.ialu_occupancy, b.ialu_occupancy);
        assert_eq!(a.telemetry, b.telemetry);
        assert_eq!(
            a.attribution, b.attribution,
            "the attribution digest is byte-identical across job counts"
        );
        assert_eq!(
            a.stalls, b.stalls,
            "the stall digest is byte-identical across job counts"
        );
        assert_eq!(
            a.estimator, b.estimator,
            "the estimator digest is byte-identical across job counts"
        );
        assert_eq!(a.headline_ialu_pct.to_bits(), b.headline_ialu_pct.to_bits());
        // Throughput's model totals are deterministic; only its
        // hot_nanos denominator is wall-clock.
        let (ta, tb) = (a.throughput.unwrap(), b.throughput.unwrap());
        assert_eq!(ta.cycles, tb.cycles);
        assert_eq!(ta.instructions, tb.instructions);
        assert_eq!(ta.ipc().to_bits(), tb.ipc().to_bits());
        // Only the wall-clock sections differ (and the tag).
        assert_eq!(b.parallel.as_ref().unwrap().jobs, 3);
    }

    #[test]
    fn schema_1_artifacts_without_a_parallel_section_still_parse() {
        let report = bench_suite("old", &tiny_config(), 512);
        let mut json = report.to_json();
        if let Json::Obj(fields) = &mut json {
            fields[0].1 = Json::Str("fua-bench/1".into());
            fields.retain(|(name, _)| {
                name != "parallel"
                    && name != "attribution"
                    && name != "estimator"
                    && name != "stalls"
                    && name != "throughput"
                    && name != "harness"
            });
        }
        let parsed = BenchReport::from_json(&json).unwrap();
        assert_eq!(parsed.parallel, None);
        assert_eq!(parsed.harness, None);
        assert_eq!(parsed.attribution, None);
        assert_eq!(parsed.estimator, None);
        assert_eq!(parsed.stalls, None);
        assert_eq!(parsed.ialu, report.ialu);
    }

    #[test]
    fn schema_1_1_artifacts_without_an_attribution_section_still_parse() {
        let report = bench_suite("mid", &tiny_config(), 512);
        let mut json = report.to_json();
        if let Json::Obj(fields) = &mut json {
            fields[0].1 = Json::Str("fua-bench/1.1".into());
            fields.retain(|(name, _)| {
                name != "attribution"
                    && name != "estimator"
                    && name != "stalls"
                    && name != "throughput"
                    && name != "harness"
            });
        }
        let parsed = BenchReport::from_json(&json).unwrap();
        assert_eq!(parsed.attribution, None);
        assert_eq!(parsed.estimator, None);
        assert_eq!(parsed.stalls, None);
        assert!(parsed.parallel.is_some(), "1.1 already had parallel");
        assert_eq!(parsed.telemetry, report.telemetry);
    }

    #[test]
    fn schema_1_2_artifacts_without_an_estimator_section_still_parse() {
        let report = bench_suite("prev", &tiny_config(), 512);
        let mut json = report.to_json();
        if let Json::Obj(fields) = &mut json {
            fields[0].1 = Json::Str("fua-bench/1.2".into());
            fields.retain(|(name, _)| {
                name != "estimator" && name != "stalls" && name != "throughput" && name != "harness"
            });
        }
        let parsed = BenchReport::from_json(&json).unwrap();
        assert_eq!(parsed.estimator, None);
        assert_eq!(parsed.stalls, None);
        assert!(parsed.attribution.is_some(), "1.2 already had attribution");
        assert_eq!(parsed.telemetry, report.telemetry);
    }

    #[test]
    fn schema_1_3_artifacts_without_a_stalls_section_still_parse() {
        let report = bench_suite("prev13", &tiny_config(), 512);
        let mut json = report.to_json();
        if let Json::Obj(fields) = &mut json {
            fields[0].1 = Json::Str("fua-bench/1.3".into());
            fields
                .retain(|(name, _)| name != "stalls" && name != "throughput" && name != "harness");
        }
        let parsed = BenchReport::from_json(&json).unwrap();
        assert_eq!(parsed.stalls, None);
        assert_eq!(parsed.throughput, None);
        assert!(parsed.estimator.is_some(), "1.3 already had estimator");
        assert!(parsed.attribution.is_some());
        assert_eq!(parsed.telemetry, report.telemetry);
    }

    #[test]
    fn schema_1_4_artifacts_without_a_throughput_section_still_parse() {
        let report = bench_suite("prev14", &tiny_config(), 512);
        let mut json = report.to_json();
        if let Json::Obj(fields) = &mut json {
            fields[0].1 = Json::Str("fua-bench/1.4".into());
            fields.retain(|(name, _)| name != "throughput" && name != "harness");
        }
        let parsed = BenchReport::from_json(&json).unwrap();
        assert_eq!(parsed.throughput, None);
        assert!(parsed.stalls.is_some(), "1.4 already had stalls");
        assert!(parsed.estimator.is_some());
        assert_eq!(parsed.telemetry, report.telemetry);
    }

    #[test]
    fn schema_1_5_artifacts_without_a_harness_section_still_parse() {
        let report = bench_suite("prev15", &tiny_config(), 512);
        let mut json = report.to_json();
        if let Json::Obj(fields) = &mut json {
            fields[0].1 = Json::Str("fua-bench/1.5".into());
            fields.retain(|(name, _)| name != "harness");
        }
        let parsed = BenchReport::from_json(&json).unwrap();
        assert_eq!(parsed.harness, None);
        assert!(parsed.throughput.is_some(), "1.5 already had throughput");
        assert!(parsed.stalls.is_some());
        assert_eq!(parsed.telemetry, report.telemetry);
    }

    #[test]
    fn an_allocs_figure_survives_the_round_trip_when_present() {
        let mut report = bench_suite("withallocs", &tiny_config(), 512);
        report.harness.as_mut().unwrap().allocs_per_kcycle = Some(12.5);
        let rendered = report.to_json().pretty();
        assert!(rendered.contains("\"allocs_per_kcycle\": 12.5"));
        let parsed: BenchReport = rendered.parse().unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let report = bench_suite("x", &tiny_config(), 512);
        let mut json = report.to_json();
        if let Json::Obj(fields) = &mut json {
            fields[0].1 = Json::Str("fua-bench/999".into());
        }
        let err = BenchReport::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("fua-bench/999"), "{err}");
    }
}
