//! BENCH artifacts: one durable, diffable JSON ledger per suite run.
//!
//! [`bench_suite`] runs the paper's quick experiment suite end to end —
//! the Figure-4 scheme sweep for both duplicated units, the Table-1/2
//! aggregate statistics, a phase-timed + windowed telemetry pass over
//! every workload — and packages everything, with its [`RunManifest`],
//! into a [`BenchReport`] serialised as `BENCH_<tag>.json`. The windowed
//! pass also *proves* the interval-telemetry exactness invariant on the
//! spot: the time-series column sums are reassembled into an
//! [`EnergyLedger`](fua_power::EnergyLedger) and compared bit-for-bit
//! with the simulator's own ledger; the verdict is recorded in the
//! artifact (`telemetry.exact`).

use fua_power::EnergyLedger;
use fua_sim::{PhaseTimers, SimPhase, Simulator};
use fua_trace::{Json, ToJson, WindowedSink};
use fua_workloads::all;

use fua_core::{
    figure4_with_profile, headline_from, observed_scheme, profile_suite, ExperimentConfig, Figure4,
    Figure4Row, Unit,
};

use crate::{expect_f64, expect_str, expect_u64, ReportError, RunManifest};

/// The artifact schema identifier; bump on any breaking shape change.
pub const BENCH_SCHEMA: &str = "fua-bench/1";

/// Default telemetry window for the bench suite, in cycles.
pub const DEFAULT_WINDOW_CYCLES: u64 = 1024;

/// One unit's Figure-4 measurement: baseline denominator plus the
/// per-scheme reduction rows in the paper's bar order.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitFigure {
    /// Total baseline switched bits (denominator of every percentage).
    pub baseline_switched_bits: u64,
    /// One row per scheme.
    pub rows: Vec<Figure4Row>,
}

impl UnitFigure {
    fn from_figure(fig: &Figure4) -> Self {
        UnitFigure {
            baseline_switched_bits: fig.baseline_switched_bits,
            rows: fig.rows.clone(),
        }
    }

    /// The row for a scheme, if present.
    pub fn row(&self, scheme: &str) -> Option<&Figure4Row> {
        self.rows.iter().find(|r| r.scheme == scheme)
    }
}

/// Table-1 aggregate operand statistics (the paper's derived one-liners).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperandAggregates {
    /// IALU: mean fraction of 1 bits among info-bit-0 operands.
    pub ialu_ones_frac_info0: f64,
    /// IALU: mean fraction of 1 bits among info-bit-1 operands.
    pub ialu_ones_frac_info1: f64,
    /// FPAU: fraction of operands with a 0 information bit.
    pub fpau_info0_fraction: f64,
    /// FPAU: mean fraction of 1 bits among info-bit-0 operands.
    pub fpau_ones_frac_info0: f64,
}

/// The windowed-telemetry summary recorded in the artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySummary {
    /// Window size used, in cycles.
    pub window_cycles: u64,
    /// Windows accumulated across the telemetry pass.
    pub windows: u64,
    /// Per-class switched-bit totals reassembled from the time-series.
    pub switched_bits: [u64; 4],
    /// Whether the reassembled totals equalled the simulator's own
    /// [`EnergyLedger`](fua_power::EnergyLedger) bit-for-bit.
    pub exact: bool,
}

/// Per-phase wall-clock of the telemetry pass, in nanoseconds, in
/// [`SimPhase::ALL`] order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseNanos(pub [u64; 5]);

impl PhaseNanos {
    /// Nanoseconds for one phase.
    pub fn of(&self, phase: SimPhase) -> u64 {
        self.0[phase as usize]
    }
}

/// A complete `BENCH_<tag>.json` artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Provenance: tag, configuration, workload seeds.
    pub manifest: RunManifest,
    /// Figure 4(a): the IALU scheme sweep.
    pub ialu: UnitFigure,
    /// Figure 4(b): the FPAU scheme sweep.
    pub fpau: UnitFigure,
    /// Headline reductions (4-bit LUT + hw swap; + compiler on IALU).
    pub headline_ialu_pct: f64,
    /// FPAU headline reduction.
    pub headline_fpau_pct: f64,
    /// IALU headline with compiler swapping added.
    pub headline_ialu_compiler_pct: f64,
    /// Table-1 aggregates.
    pub operands: OperandAggregates,
    /// Table-2 row 1: `P(Num(I)=k)` for the IALU, k = 1….
    pub ialu_occupancy: Vec<f64>,
    /// Table-2 row 2: the FPAU occupancy distribution.
    pub fpau_occupancy: Vec<f64>,
    /// Wall-clock per simulator hot-loop phase (telemetry pass).
    pub phase_nanos: PhaseNanos,
    /// Windowed-telemetry summary and exactness verdict.
    pub telemetry: TelemetrySummary,
}

/// Runs the full bench suite under `config` and assembles the artifact.
///
/// The model metrics (figures, tables) are deterministic — two runs
/// under the same manifest produce identical values; only `phase_nanos`
/// is wall-clock and varies run to run.
pub fn bench_suite(tag: &str, config: &ExperimentConfig, window_cycles: u64) -> BenchReport {
    let manifest = RunManifest::capture(tag, config);

    // One shared profiling pass feeds both figures (and the tables).
    let profile = profile_suite(config);
    let fig_a = figure4_with_profile(Unit::Ialu, config, &profile);
    let fig_b = figure4_with_profile(Unit::Fpau, config, &profile);
    let headline = headline_from(&fig_a, &fig_b);

    let ialu_info = profile.ialu.operand_info_stats();
    let fpau_info = profile.fpau.operand_info_stats();

    // Telemetry pass: every workload under the recommended scheme with
    // a windowed sink and phase timers attached; prove the exactness
    // invariant against the simulator's own ledger.
    let mut sink = WindowedSink::new(window_cycles);
    let mut timers = PhaseTimers::new();
    let mut ledger = EnergyLedger::new();
    for w in all(config.scale) {
        let mut sim = Simulator::with_parts(
            config.machine.clone(),
            observed_scheme(),
            sink,
            PhaseTimers::new(),
        );
        let result = sim
            .run_program(&w.program, config.inst_limit)
            .unwrap_or_else(|e| panic!("workload {} faulted: {e}", w.name));
        ledger.merge(&result.ledger);
        let (s, t) = sim.into_parts();
        sink = s;
        timers.merge(&t);
    }
    let series = sink.into_series();
    let mut reassembled = EnergyLedger::new();
    reassembled.accumulate(series.total_switched_bits(), series.total_ops());
    let telemetry = TelemetrySummary {
        window_cycles,
        windows: series.len() as u64,
        switched_bits: series.total_switched_bits(),
        exact: reassembled == ledger,
    };

    BenchReport {
        manifest,
        ialu: UnitFigure::from_figure(&fig_a),
        fpau: UnitFigure::from_figure(&fig_b),
        headline_ialu_pct: headline.ialu_pct,
        headline_fpau_pct: headline.fpau_pct,
        headline_ialu_compiler_pct: headline.ialu_compiler_pct,
        operands: OperandAggregates {
            ialu_ones_frac_info0: ialu_info.ones_frac_info0,
            ialu_ones_frac_info1: ialu_info.ones_frac_info1,
            fpau_info0_fraction: fpau_info.info0_fraction(),
            fpau_ones_frac_info0: fpau_info.ones_frac_info0,
        },
        ialu_occupancy: profile.ialu_occupancy.distribution(),
        fpau_occupancy: profile.fpau_occupancy.distribution(),
        phase_nanos: PhaseNanos(timers.nanos()),
        telemetry,
    }
}

fn unit_to_json(unit: &UnitFigure) -> Json {
    Json::obj([
        (
            "baseline_switched_bits",
            Json::UInt(unit.baseline_switched_bits),
        ),
        (
            "rows",
            Json::Arr(
                unit.rows
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("scheme", Json::Str(r.scheme.clone())),
                            ("base_pct", Json::Float(r.base_pct)),
                            ("hardware_pct", Json::Float(r.hardware_pct)),
                            (
                                "hardware_compiler_pct",
                                Json::Float(r.hardware_compiler_pct),
                            ),
                            ("compiler_only_pct", Json::Float(r.compiler_only_pct)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn unit_from_json(json: &Json, field: &str) -> Result<UnitFigure, ReportError> {
    let unit = json.get(field).ok_or_else(|| ReportError::missing(field))?;
    let rows = unit
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| ReportError::missing("rows"))?
        .iter()
        .map(|r| {
            Ok(Figure4Row {
                scheme: expect_str(r, "scheme")?.to_string(),
                base_pct: expect_f64(r, "base_pct")?,
                hardware_pct: expect_f64(r, "hardware_pct")?,
                hardware_compiler_pct: expect_f64(r, "hardware_compiler_pct")?,
                compiler_only_pct: expect_f64(r, "compiler_only_pct")?,
            })
        })
        .collect::<Result<Vec<_>, ReportError>>()?;
    Ok(UnitFigure {
        baseline_switched_bits: expect_u64(unit, "baseline_switched_bits")?,
        rows,
    })
}

fn f64_array(json: &Json, field: &str) -> Result<Vec<f64>, ReportError> {
    json.get(field)
        .and_then(Json::as_arr)
        .ok_or_else(|| ReportError::missing(field))?
        .iter()
        .map(|v| v.as_f64().ok_or_else(|| ReportError::mistyped(field)))
        .collect()
}

impl BenchReport {
    /// Serialises the artifact (stable schema [`BENCH_SCHEMA`]).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Str(BENCH_SCHEMA.into())),
            ("manifest", self.manifest.to_json()),
            ("figure4_ialu", unit_to_json(&self.ialu)),
            ("figure4_fpau", unit_to_json(&self.fpau)),
            (
                "headline",
                Json::obj([
                    ("ialu_pct", Json::Float(self.headline_ialu_pct)),
                    ("fpau_pct", Json::Float(self.headline_fpau_pct)),
                    (
                        "ialu_compiler_pct",
                        Json::Float(self.headline_ialu_compiler_pct),
                    ),
                ]),
            ),
            (
                "table1",
                Json::obj([
                    (
                        "ialu_ones_frac_info0",
                        Json::Float(self.operands.ialu_ones_frac_info0),
                    ),
                    (
                        "ialu_ones_frac_info1",
                        Json::Float(self.operands.ialu_ones_frac_info1),
                    ),
                    (
                        "fpau_info0_fraction",
                        Json::Float(self.operands.fpau_info0_fraction),
                    ),
                    (
                        "fpau_ones_frac_info0",
                        Json::Float(self.operands.fpau_ones_frac_info0),
                    ),
                ]),
            ),
            (
                "table2",
                Json::obj([
                    (
                        "ialu_occupancy",
                        Json::Arr(
                            self.ialu_occupancy
                                .iter()
                                .map(|&p| Json::Float(p))
                                .collect(),
                        ),
                    ),
                    (
                        "fpau_occupancy",
                        Json::Arr(
                            self.fpau_occupancy
                                .iter()
                                .map(|&p| Json::Float(p))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "phase_nanos",
                Json::Obj(
                    SimPhase::ALL
                        .iter()
                        .map(|&p| (p.name().to_string(), Json::UInt(self.phase_nanos.of(p))))
                        .collect(),
                ),
            ),
            (
                "telemetry",
                Json::obj([
                    ("window_cycles", Json::UInt(self.telemetry.window_cycles)),
                    ("windows", Json::UInt(self.telemetry.windows)),
                    (
                        "switched_bits",
                        Json::Arr(
                            self.telemetry
                                .switched_bits
                                .iter()
                                .map(|&b| Json::UInt(b))
                                .collect(),
                        ),
                    ),
                    ("exact", Json::Bool(self.telemetry.exact)),
                ]),
            ),
        ])
    }

    /// Reconstructs an artifact from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns a [`ReportError`] on schema mismatch or the first missing
    /// or mistyped field.
    pub fn from_json(json: &Json) -> Result<Self, ReportError> {
        let schema = expect_str(json, "schema")?;
        if schema != BENCH_SCHEMA {
            return Err(ReportError::Schema {
                found: schema.to_string(),
                expected: BENCH_SCHEMA,
            });
        }
        let manifest = RunManifest::from_json(
            json.get("manifest")
                .ok_or_else(|| ReportError::missing("manifest"))?,
        )?;
        let headline = json
            .get("headline")
            .ok_or_else(|| ReportError::missing("headline"))?;
        let table1 = json
            .get("table1")
            .ok_or_else(|| ReportError::missing("table1"))?;
        let table2 = json
            .get("table2")
            .ok_or_else(|| ReportError::missing("table2"))?;
        let phases = json
            .get("phase_nanos")
            .ok_or_else(|| ReportError::missing("phase_nanos"))?;
        let mut phase_nanos = [0u64; 5];
        for (slot, phase) in phase_nanos.iter_mut().zip(SimPhase::ALL) {
            *slot = expect_u64(phases, phase.name())?;
        }
        let telemetry = json
            .get("telemetry")
            .ok_or_else(|| ReportError::missing("telemetry"))?;
        let bits = telemetry
            .get("switched_bits")
            .and_then(Json::as_arr)
            .ok_or_else(|| ReportError::missing("telemetry.switched_bits"))?
            .iter()
            .map(Json::as_u64)
            .collect::<Option<Vec<u64>>>()
            .ok_or_else(|| ReportError::mistyped("telemetry.switched_bits"))?;
        if bits.len() != 4 {
            return Err(ReportError::mistyped("telemetry.switched_bits"));
        }
        Ok(BenchReport {
            manifest,
            ialu: unit_from_json(json, "figure4_ialu")?,
            fpau: unit_from_json(json, "figure4_fpau")?,
            headline_ialu_pct: expect_f64(headline, "ialu_pct")?,
            headline_fpau_pct: expect_f64(headline, "fpau_pct")?,
            headline_ialu_compiler_pct: expect_f64(headline, "ialu_compiler_pct")?,
            operands: OperandAggregates {
                ialu_ones_frac_info0: expect_f64(table1, "ialu_ones_frac_info0")?,
                ialu_ones_frac_info1: expect_f64(table1, "ialu_ones_frac_info1")?,
                fpau_info0_fraction: expect_f64(table1, "fpau_info0_fraction")?,
                fpau_ones_frac_info0: expect_f64(table1, "fpau_ones_frac_info0")?,
            },
            ialu_occupancy: f64_array(table2, "ialu_occupancy")?,
            fpau_occupancy: f64_array(table2, "fpau_occupancy")?,
            phase_nanos: PhaseNanos(phase_nanos),
            telemetry: TelemetrySummary {
                window_cycles: expect_u64(telemetry, "window_cycles")?,
                windows: expect_u64(telemetry, "windows")?,
                switched_bits: [bits[0], bits[1], bits[2], bits[3]],
                exact: telemetry
                    .get("exact")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| ReportError::missing("telemetry.exact"))?,
            },
        })
    }
}

impl std::str::FromStr for BenchReport {
    type Err = ReportError;

    /// Parses an artifact from raw file contents.
    fn from_str(contents: &str) -> Result<Self, ReportError> {
        Self::from_json(&Json::parse(contents).map_err(ReportError::Parse)?)
    }
}

impl ToJson for BenchReport {
    fn to_json(&self) -> Json {
        BenchReport::to_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        // Small enough for unit tests; bench-suite proper uses quick().
        ExperimentConfig {
            inst_limit: 1_500,
            ..ExperimentConfig::quick()
        }
    }

    #[test]
    fn bench_suite_produces_a_round_trippable_artifact() {
        let report = bench_suite("test", &tiny_config(), 512);
        assert_eq!(report.manifest.tag, "test");
        assert_eq!(report.ialu.rows.len(), 6);
        assert_eq!(report.fpau.rows.len(), 6);
        assert!(report.telemetry.exact, "windowed sums must equal ledger");
        assert!(report.telemetry.windows > 0);
        assert!(report.phase_nanos.of(SimPhase::Issue) > 0);
        let rendered = report.to_json().pretty();
        assert!(rendered.contains("\"schema\": \"fua-bench/1\""));
        let parsed: BenchReport = rendered.parse().unwrap();
        // Everything round-trips exactly (floats use shortest-exact
        // rendering, so equality is bit-for-bit).
        assert_eq!(parsed, report);
    }

    #[test]
    fn model_metrics_are_deterministic_across_runs() {
        let a = bench_suite("a", &tiny_config(), 512);
        let b = bench_suite("b", &tiny_config(), 512);
        assert_eq!(a.ialu, b.ialu);
        assert_eq!(a.fpau, b.fpau);
        assert_eq!(a.operands, b.operands);
        assert_eq!(a.ialu_occupancy, b.ialu_occupancy);
        assert_eq!(a.telemetry.switched_bits, b.telemetry.switched_bits);
        // Only the wall-clock differs (and the tag).
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let report = bench_suite("x", &tiny_config(), 512);
        let mut json = report.to_json();
        if let Json::Obj(fields) = &mut json {
            fields[0].1 = Json::Str("fua-bench/999".into());
        }
        let err = BenchReport::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("fua-bench/999"), "{err}");
    }
}
