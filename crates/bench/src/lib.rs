//! Shared plumbing for the benchmark harness.
//!
//! Each bench target under `benches/` regenerates one of the paper's
//! tables or figures (printing the rows/series the paper reports) and
//! then lets Criterion time a representative kernel of that experiment.
//! See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
//! recorded paper-vs-measured results.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use fua_core::ExperimentConfig;
use fua_sim::{MachineConfig, Simulator, SteeringConfig};
use fua_vm::DynOp;

/// The configuration used for the *printed* artefacts: full workload
/// scale, capped at 150k retired instructions per run.
pub fn report_config() -> ExperimentConfig {
    ExperimentConfig::full()
}

/// A smaller configuration for the *timed* kernels, so Criterion's
/// sampling stays fast.
pub fn timing_config() -> ExperimentConfig {
    ExperimentConfig {
        inst_limit: 20_000,
        ..ExperimentConfig::full()
    }
}

/// Runs one named workload on the baseline machine with the timing
/// budget; the standard timed kernel for the profiling benches.
pub fn run_baseline(workload: &str, limit: u64) -> fua_sim::SimResult {
    let w = fua_workloads::by_name(workload, 1).expect("bundled workload");
    let mut sim = Simulator::new(MachineConfig::paper_default(), SteeringConfig::original());
    sim.run_program(&w.program, limit).expect("workload runs")
}

/// Materialises a trace of FU operations from a workload for policy
/// micro-benchmarks.
pub fn trace_of(workload: &str, limit: u64) -> Vec<DynOp> {
    let w = fua_workloads::by_name(workload, 1).expect("bundled workload");
    let mut vm = fua_vm::Vm::new(&w.program);
    vm.run(limit).expect("workload runs").ops
}
