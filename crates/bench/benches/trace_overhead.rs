//! Overhead of the tracing hooks. The simulator is generic over its
//! `TraceSink` and the default `NullSink` sets `ENABLED = false`, so the
//! `null_sink` case must be indistinguishable from an uninstrumented
//! build (<1% — the hooks and their event construction compile away);
//! `ring_and_metrics` shows the real cost of leaving post-mortem
//! observability on.

use criterion::{criterion_group, criterion_main, Criterion};
use fua_sim::{MachineConfig, Simulator, SteeringConfig};
use fua_steer::SteeringKind;
use fua_trace::{MetricsRecorder, NullSink, RingBufferSink};
use fua_workloads::by_name;

const LIMIT: u64 = 50_000;

fn scheme() -> SteeringConfig {
    SteeringConfig::paper_scheme(SteeringKind::Lut { slots: 2 }, true)
}

fn bench(c: &mut Criterion) {
    let w = by_name("compress", 1).expect("bundled");
    let mut g = c.benchmark_group("trace_overhead");
    g.bench_function("null_sink", |b| {
        b.iter(|| {
            let mut sim = Simulator::with_sink(MachineConfig::paper_default(), scheme(), NullSink);
            sim.run_program(&w.program, LIMIT).expect("runs")
        });
    });
    g.bench_function("ring_and_metrics", |b| {
        b.iter(|| {
            let mut sim = Simulator::with_sink(
                MachineConfig::paper_default(),
                scheme(),
                (RingBufferSink::default(), MetricsRecorder::new()),
            );
            sim.run_program(&w.program, LIMIT).expect("runs")
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
