//! Overhead of the tracing hooks. The simulator is generic over its
//! `TraceSink` and the default `NullSink` sets `ENABLED = false`, so the
//! `null_sink` case must be indistinguishable from an uninstrumented
//! build (<1% — the hooks and their event construction compile away);
//! `ring_and_metrics` shows the real cost of leaving post-mortem
//! observability on, and `windowed_sink` the cost of interval telemetry.
//!
//! Besides recording the three cases for Criterion's reports, the group
//! asserts that the windowed run stays within a small factor of the
//! null-sink run: the sink only does a handful of array adds per event,
//! so a blowup here means an accidental allocation or hash on the hot
//! path.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use fua_sim::{MachineConfig, Simulator, SteeringConfig};
use fua_steer::SteeringKind;
use fua_trace::{MetricsRecorder, NullSink, RingBufferSink, WindowedSink};
use fua_workloads::by_name;

const LIMIT: u64 = 50_000;

/// A windowed run may cost at most this factor of the null-sink run.
/// Generous — the point is catching asymptotic mistakes, not cache
/// noise.
const WINDOWED_MAX_FACTOR: f64 = 8.0;

fn scheme() -> SteeringConfig {
    SteeringConfig::paper_scheme(SteeringKind::Lut { slots: 2 }, true)
}

fn run_null(w: &fua_workloads::Workload) {
    let mut sim = Simulator::with_sink(MachineConfig::paper_default(), scheme(), NullSink);
    sim.run_program(&w.program, LIMIT).expect("runs");
}

fn run_windowed(w: &fua_workloads::Workload) {
    let mut sim = Simulator::with_sink(
        MachineConfig::paper_default(),
        scheme(),
        WindowedSink::new(1024),
    );
    sim.run_program(&w.program, LIMIT).expect("runs");
}

fn bench(c: &mut Criterion) {
    let w = by_name("compress", 1).expect("bundled");
    let mut g = c.benchmark_group("trace_overhead");
    g.bench_function("null_sink", |b| {
        b.iter(|| {
            let mut sim = Simulator::with_sink(MachineConfig::paper_default(), scheme(), NullSink);
            sim.run_program(&w.program, LIMIT).expect("runs")
        });
    });
    g.bench_function("ring_and_metrics", |b| {
        b.iter(|| {
            let mut sim = Simulator::with_sink(
                MachineConfig::paper_default(),
                scheme(),
                (RingBufferSink::default(), MetricsRecorder::new()),
            );
            sim.run_program(&w.program, LIMIT).expect("runs")
        });
    });
    g.bench_function("windowed_sink", |b| {
        b.iter(|| {
            let mut sim = Simulator::with_sink(
                MachineConfig::paper_default(),
                scheme(),
                WindowedSink::new(1024),
            );
            sim.run_program(&w.program, LIMIT).expect("runs")
        });
    });
    g.finish();

    // Overhead assertion: best-of-N wall-clock, windowed vs null.
    const ROUNDS: usize = 5;
    let best = |f: &dyn Fn(&fua_workloads::Workload)| {
        (0..ROUNDS)
            .map(|_| {
                let start = Instant::now();
                f(&w);
                start.elapsed()
            })
            .min()
            .expect("rounds > 0")
    };
    let null = best(&run_null);
    let windowed = best(&run_windowed);
    let factor = windowed.as_secs_f64() / null.as_secs_f64();
    println!("windowed/null overhead factor: {factor:.2}x ({windowed:?} vs {null:?})");
    assert!(
        factor < WINDOWED_MAX_FACTOR,
        "WindowedSink overhead {factor:.2}x exceeds {WINDOWED_MAX_FACTOR}x of NullSink"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
