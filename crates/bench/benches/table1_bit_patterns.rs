//! Regenerates **Table 1** (operand bit patterns of the IALU and FPAU,
//! with the derived sign-extension and trailing-zero claims) and times
//! the bit-pattern profiling pass.

use criterion::{criterion_group, criterion_main, Criterion};
use fua_bench::{report_config, run_baseline};
use fua_core::profile_suite;

fn bench(c: &mut Criterion) {
    let profile = profile_suite(&report_config());
    println!("\n{}", profile.table1());

    c.bench_function("table1/profile_compress_20k", |b| {
        b.iter(|| run_baseline("compress", 20_000));
    });
    c.bench_function("table1/profile_swim_20k", |b| {
        b.iter(|| run_baseline("swim", 20_000));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
