//! Regenerates **Table 3** (bit patterns in multiplication data and the
//! case-01 swap opportunity) and times the multiplier swap rule plus the
//! Booth activity model that quantifies it (the model is our extension —
//! the paper reports only the opportunity).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fua_bench::{report_config, trace_of};
use fua_core::profile_suite;
use fua_isa::FuClass;
use fua_power::booth::BoothModel;
use fua_swap::MultiplierSwapRule;

fn bench(c: &mut Criterion) {
    let profile = profile_suite(&report_config());
    println!("\n{}", profile.table3());

    // Quantify the swap opportunity with the Booth model (extension).
    let trace = trace_of("turb3d", 100_000);
    let model = BoothModel::new();
    let rule = MultiplierSwapRule::new();
    let (mut before, mut after, mut swaps, mut total) = (0.0f64, 0.0f64, 0u64, 0u64);
    for op in &trace {
        let Some(fu) = op.fu else { continue };
        if fu.class != FuClass::FpMul || !fu.commutative {
            continue;
        }
        total += 1;
        before += model.multiply_energy(None, fu.op1, fu.op2);
        let mut swapped = fu;
        if rule.apply(&mut swapped) {
            swaps += 1;
        }
        after += model.multiply_energy(None, swapped.op1, swapped.op2);
    }
    println!(
        "Booth-model quantification (extension): {swaps}/{total} fp multiplies swapped, \
         energy {before:.0} -> {after:.0} ({:.1}% less)\n",
        100.0 * (1.0 - after / before.max(1.0))
    );

    c.bench_function("table3/booth_energy_100k_ops", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for op in &trace {
                if let Some(fu) = op.fu {
                    if fu.class == FuClass::FpMul {
                        acc += model.multiply_energy(None, black_box(fu.op1), black_box(fu.op2));
                    }
                }
            }
            acc
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
