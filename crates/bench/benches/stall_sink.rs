//! Overhead of the cycle-attribution sinks. `fua profile-cycles`
//! attaches a `StallSink` (every issue slot of every cycle) plus a
//! `DepSink` (one record per dispatched instruction), so their cost
//! bounds how cheap "where do the cycles go?" can be. The group
//! records the null, stall-only and stall+dep cases for Criterion,
//! then asserts two things outside the harness:
//!
//! * the stall-profiled run stays within the same generous factor the
//!   windowed-telemetry bench allows — the sink is a BTreeMap add per
//!   slot bucket, so a blowup means an accidental allocation or hash
//!   on the per-cycle path;
//! * the profiled run is *cycle-identical* to the unprofiled one, and
//!   its slot partition is exact (`total_slots == cycles × width`) —
//!   observation must never perturb or undercount the machine.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use fua_sim::{MachineConfig, Simulator, SteeringConfig};
use fua_steer::SteeringKind;
use fua_trace::{DepSink, NullSink, StallSink};
use fua_workloads::by_name;

const LIMIT: u64 = 50_000;

/// A stall-profiled run may cost at most this factor of the null-sink
/// run — the same budget `trace_overhead` grants the windowed sink.
const STALL_MAX_FACTOR: f64 = 8.0;

fn scheme() -> SteeringConfig {
    SteeringConfig::paper_scheme(SteeringKind::Lut { slots: 2 }, true)
}

fn run_null(w: &fua_workloads::Workload) {
    let mut sim = Simulator::with_sink(MachineConfig::paper_default(), scheme(), NullSink);
    sim.run_program(&w.program, LIMIT).expect("runs");
}

fn run_stall(w: &fua_workloads::Workload) {
    let mut sim = Simulator::with_sink(MachineConfig::paper_default(), scheme(), StallSink::new());
    sim.run_program(&w.program, LIMIT).expect("runs");
}

fn bench(c: &mut Criterion) {
    let w = by_name("compress", 1).expect("bundled");
    let mut g = c.benchmark_group("stall_sink");
    g.bench_function("null_sink", |b| {
        b.iter(|| {
            let mut sim = Simulator::with_sink(MachineConfig::paper_default(), scheme(), NullSink);
            sim.run_program(&w.program, LIMIT).expect("runs")
        });
    });
    g.bench_function("stall_sink", |b| {
        b.iter(|| {
            let mut sim =
                Simulator::with_sink(MachineConfig::paper_default(), scheme(), StallSink::new());
            sim.run_program(&w.program, LIMIT).expect("runs")
        });
    });
    g.bench_function("stall_and_deps", |b| {
        b.iter(|| {
            let mut sim = Simulator::with_sink(
                MachineConfig::paper_default(),
                scheme(),
                (StallSink::new(), DepSink::new()),
            );
            sim.run_program(&w.program, LIMIT).expect("runs")
        });
    });
    g.finish();

    // Cycle-identity + exact-partition assertion: attaching the sinks
    // must not change the simulation, and the partition must account
    // the whole issue bandwidth.
    let machine = MachineConfig::paper_default();
    let issue_width = machine.issue_width() as u64;
    let mut bare = Simulator::new(machine, scheme());
    let baseline = bare.run_program(&w.program, LIMIT).expect("runs");
    let mut profiled = Simulator::with_sink(
        MachineConfig::paper_default(),
        scheme(),
        (StallSink::new(), DepSink::new()),
    );
    let observed = profiled.run_program(&w.program, LIMIT).expect("runs");
    let (stall, _deps) = profiled.into_sink();
    assert_eq!(observed.cycles, baseline.cycles, "profiling perturbed the run");
    assert_eq!(observed.ledger, baseline.ledger, "profiling perturbed energy");
    assert_eq!(
        stall.total_slots(),
        observed.cycles * issue_width,
        "stall partition must account every issue slot"
    );

    // Overhead assertion: best-of-N wall-clock, stall-profiled vs null.
    const ROUNDS: usize = 5;
    let best = |f: &dyn Fn(&fua_workloads::Workload)| {
        (0..ROUNDS)
            .map(|_| {
                let start = Instant::now();
                f(&w);
                start.elapsed()
            })
            .min()
            .expect("rounds > 0")
    };
    let null = best(&run_null);
    let stalled = best(&run_stall);
    let factor = stalled.as_secs_f64() / null.as_secs_f64();
    println!("stall/null overhead factor: {factor:.2}x ({stalled:?} vs {null:?})");
    assert!(
        factor < STALL_MAX_FACTOR,
        "StallSink overhead {factor:.2}x exceeds {STALL_MAX_FACTOR}x of NullSink"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
