//! Regenerates the **Section 5** hardware-cost study (paper: 58 gates /
//! 6 levels for the 4-bit LUT with 8 RS entries; 130 / 8 with 32) and
//! times the Quine–McCluskey synthesis pipeline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fua_core::synthesis_report;
use fua_stats::CaseProfile;
use fua_steer::{LutBuilder, PAPER_IALU_OCCUPANCY};
use fua_synth::{minimize, routing_cost, TruthTable};

fn bench(c: &mut Criterion) {
    println!("\n{}", synthesis_report().render());

    let lut4 = LutBuilder::new(CaseProfile::paper_ialu(), 32)
        .occupancy(&PAPER_IALU_OCCUPANCY)
        .build(2);
    let lut8 = LutBuilder::new(CaseProfile::paper_ialu(), 32)
        .occupancy(&PAPER_IALU_OCCUPANCY)
        .build(4);

    c.bench_function("synth/routing_cost_4bit", |b| {
        b.iter(|| routing_cost(black_box(&lut4), 8, 4));
    });
    c.bench_function("synth/routing_cost_8bit", |b| {
        b.iter(|| routing_cost(black_box(&lut8), 8, 4));
    });
    c.bench_function("synth/qm_minimise_8in", |b| {
        let tt = TruthTable::from_lut(&lut8);
        b.iter(|| {
            (0..tt.outputs())
                .map(|o| minimize(black_box(&tt), o).terms.len())
                .sum::<usize>()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
