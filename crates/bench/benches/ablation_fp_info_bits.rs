//! Ablation: how many mantissa bits should the FP information bit OR
//! together? The paper fixes k = 4 ("using four bits misidentifies only
//! 1/16 of the full-precision numbers") and declines more "so as to
//! maintain a fast circuit". This bench sweeps k and reports the
//! trade-off: coverage (how many trailing-zero operands are caught)
//! versus predictive purity (zero density among flagged operands).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fua_bench::trace_of;
use fua_isa::{FuClass, Word};
use fua_stats::TextTable;

fn bench(c: &mut Criterion) {
    // Gather FPAU operands across the FP suite.
    let mut operands: Vec<Word> = Vec::new();
    for name in ["swim", "mgrid", "applu", "hydro2d", "wave5", "apsi", "turb3d", "fpppp"] {
        for op in trace_of(name, 40_000) {
            if let Some(fu) = op.fu {
                if fu.class == FuClass::FpAlu {
                    operands.push(fu.op1);
                    operands.push(fu.op2);
                }
            }
        }
    }

    let mut t = TextTable::new([
        "k",
        "flagged (info=0)",
        "zero-density among flagged",
        "expected false-flag rate",
    ]);
    for k in [1u32, 2, 4, 8, 12] {
        let flagged: Vec<&Word> = operands.iter().filter(|w| !w.info_bit_k(k)).collect();
        let density: f64 = if flagged.is_empty() {
            0.0
        } else {
            flagged.iter().map(|w| 1.0 - w.ones_fraction()).sum::<f64>() / flagged.len() as f64
        };
        t.push_row([
            k.to_string(),
            format!("{:.1}%", 100.0 * flagged.len() as f64 / operands.len() as f64),
            format!("{:.1}%", 100.0 * density),
            format!("1/{}", 1u64 << k),
        ]);
    }
    println!("\nFP information-bit width ablation ({} operands)\n{t}", operands.len());

    c.bench_function("ablation_fp_info_bits/classify_all_k4", |b| {
        b.iter(|| operands.iter().filter(|w| black_box(w).info_bit_k(4)).count());
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
