//! Ablation: the home-case selection strategy (DESIGN.md §5). The paper
//! uses different strategies for the IALU (replicate the dominant case)
//! and the FPAU (one case per module); this bench runs all four
//! [`fua_steer::HomeStrategy`] variants on the integer suite and compares
//! the resulting IALU savings.

use criterion::{criterion_group, criterion_main, Criterion};
use fua_isa::FuClass;
use fua_power::EnergyLedger;
use fua_sim::{MachineConfig, Simulator, SteeringConfig};
use fua_stats::TextTable;
use fua_steer::{FcfsPolicy, HardwareSwapRule, HomeStrategy, LutBuilder, LutPolicy};
use fua_workloads::integer;

const LIMIT: u64 = 60_000;

fn bench(c: &mut Criterion) {
    // Profile once on the default machine.
    let machine = MachineConfig::paper_default();
    let mut occupancy = fua_stats::OccupancyProfiler::new(4);
    let mut patterns = fua_stats::BitPatternProfiler::new();
    let mut baseline = EnergyLedger::new();
    for w in integer(1) {
        let mut sim = Simulator::new(machine.clone(), SteeringConfig::original());
        let r = sim.run_program(&w.program, LIMIT).expect("runs");
        occupancy.merge(r.occupancy_of(FuClass::IntAlu));
        patterns.merge(r.bit_patterns_of(FuClass::IntAlu));
        baseline.merge(&r.ledger);
    }
    let profile = patterns.case_profile();
    let occ = occupancy.distribution();
    let base_bits = baseline.switched_bits(FuClass::IntAlu);

    let strategies = [
        ("Auto (paper recipe)", HomeStrategy::Auto),
        ("Unique", HomeStrategy::Unique),
        ("Proportional", HomeStrategy::Proportional),
        ("Search", HomeStrategy::Search),
    ];
    let mut t = TextTable::new(["strategy", "homes", "reduction"]);
    for (name, strategy) in strategies {
        let lut = LutBuilder::new(profile, 32)
            .occupancy(&occ)
            .modules(4)
            .strategy(strategy)
            .build(2);
        let homes = format!("{:?}", lut.homes());
        let mut total = EnergyLedger::new();
        for w in integer(1) {
            let mut sim = Simulator::new(
                machine.clone(),
                SteeringConfig {
                    ialu: Box::new(LutPolicy::new(lut.clone())),
                    fpau: Box::new(FcfsPolicy::new()),
                    ialu_swap: Some(HardwareSwapRule::from_profile(&profile)),
                    fpau_swap: None,
                    multiplier_swap: None,
                },
            );
            total.merge(&sim.run_program(&w.program, LIMIT).expect("runs").ledger);
        }
        let bits = total.switched_bits(FuClass::IntAlu);
        t.push_row([
            name.to_string(),
            homes,
            format!("{:.1}%", 100.0 * (1.0 - bits as f64 / base_bits as f64)),
        ]);
    }
    println!("\nIALU home-case strategy ablation (4-bit LUT + hw swap)\n{t}");

    c.bench_function("ablation_homes/build_lut_search", |b| {
        b.iter(|| {
            LutBuilder::new(profile, 32)
                .occupancy(&occ)
                .strategy(HomeStrategy::Search)
                .build(2)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
