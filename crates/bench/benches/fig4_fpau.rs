//! Regenerates **Figure 4(b)**: FPAU energy reduction for every steering
//! scheme × swap variant over the eight FP workloads, then times one
//! steered simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use fua_bench::report_config;
use fua_core::{figure4, Unit};
use fua_sim::{MachineConfig, Simulator, SteeringConfig};
use fua_steer::SteeringKind;

fn bench(c: &mut Criterion) {
    let fig = figure4(Unit::Fpau, &report_config());
    println!("\n{}", fig.render());

    let w = fua_workloads::by_name("swim", 1).expect("bundled workload");
    c.bench_function("fig4b/lut4_hw_swim_20k", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(
                MachineConfig::paper_default(),
                SteeringConfig::paper_scheme(SteeringKind::Lut { slots: 2 }, true),
            );
            sim.run_program(&w.program, 20_000).expect("runs")
        });
    });
    c.bench_function("fig4b/one_bit_ham_swim_20k", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(
                MachineConfig::paper_default(),
                SteeringConfig::paper_scheme(SteeringKind::OneBitHam, true),
            );
            sim.run_program(&w.program, 20_000).expect("runs")
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
