//! Ablation: how do the savings scale with the degree of FU duplication?
//! The paper notes "power savings can be achieved with two or more
//! functional units"; this bench sweeps the IALU/FPAU module count and
//! reports the 4-bit-LUT + hardware-swap reduction at each point.

use criterion::{criterion_group, criterion_main, Criterion};
use fua_isa::FuClass;
use fua_power::EnergyLedger;
use fua_sim::{MachineConfig, Simulator, SteeringConfig};
use fua_stats::TextTable;
use fua_steer::SteeringKind;
use fua_workloads::integer;

const LIMIT: u64 = 60_000;

fn run_suite(machine: &MachineConfig, make: impl Fn() -> SteeringConfig) -> EnergyLedger {
    let mut total = EnergyLedger::new();
    for w in integer(1) {
        let mut sim = Simulator::new(machine.clone(), make());
        total.merge(&sim.run_program(&w.program, LIMIT).expect("runs").ledger);
    }
    total
}

fn bench(c: &mut Criterion) {
    let mut t = TextTable::new(["modules", "baseline bits", "steered bits", "reduction"]);
    for modules in [2usize, 3, 4, 6, 8] {
        let machine = MachineConfig::paper_default().with_duplicated_modules(modules);
        // Measure occupancy on this machine first (the LUT needs it).
        let mut occupancy = fua_stats::OccupancyProfiler::new(modules);
        let mut ialu_patterns = fua_stats::BitPatternProfiler::new();
        for w in integer(1) {
            let mut sim = Simulator::new(machine.clone(), SteeringConfig::original());
            let r = sim.run_program(&w.program, LIMIT).expect("runs");
            occupancy.merge(r.occupancy_of(FuClass::IntAlu));
            ialu_patterns.merge(r.bit_patterns_of(FuClass::IntAlu));
        }
        let profile = ialu_patterns.case_profile();
        let occ = occupancy.distribution();

        let baseline = run_suite(&machine, SteeringConfig::original);
        let steered = run_suite(&machine, || {
            SteeringConfig::from_profiles_with_occupancy(
                SteeringKind::Lut { slots: 2 },
                true,
                &profile,
                &fua_stats::CaseProfile::paper_fpau(),
                &occ,
                &fua_steer::PAPER_FPAU_OCCUPANCY,
                modules,
                machine.modules(FuClass::FpAlu),
            )
        });
        let base = baseline.switched_bits(FuClass::IntAlu);
        let opt = steered.switched_bits(FuClass::IntAlu);
        t.push_row([
            modules.to_string(),
            base.to_string(),
            opt.to_string(),
            format!("{:.1}%", 100.0 * (1.0 - opt as f64 / base as f64)),
        ]);
    }
    println!("\nIALU module-count ablation (4-bit LUT + hw swap vs Original)\n{t}");

    let w = fua_workloads::by_name("go", 1).expect("bundled workload");
    c.bench_function("ablation_modules/8_ialu_go_20k", |b| {
        let machine = MachineConfig::paper_default().with_duplicated_modules(8);
        b.iter(|| {
            let mut sim = Simulator::new(machine.clone(), SteeringConfig::original());
            sim.run_program(&w.program, 20_000).expect("runs")
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
