//! Regenerates **Figure 1** (the worked three-FU routing example) and
//! times the optimal-assignment computation of Figure 2.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fua_core::routing_example;
use fua_isa::{FuClass, Word};
use fua_power::ModulePorts;
use fua_steer::{assignment_costs, FullHamPolicy, SteeringPolicy};
use fua_vm::FuOp;

fn bench(c: &mut Criterion) {
    println!("\n{}", routing_example().render());

    // Figure-2 cost computation + optimal matching, 4 ops on 4 modules.
    let modules: Vec<ModulePorts> = (0..4)
        .map(|i| {
            let mut m = ModulePorts::new();
            m.latch(Word::int(i * 1000), Word::int(-i));
            m
        })
        .collect();
    let ops: Vec<FuOp> = (0..4)
        .map(|i| FuOp {
            class: FuClass::IntAlu,
            op1: Word::int(i * 999 + 1),
            op2: Word::int(-i - 1),
            commutative: i % 2 == 0,
        })
        .collect();

    c.bench_function("fig1/figure2_costs_4x4", |b| {
        b.iter(|| assignment_costs(black_box(&ops), black_box(&modules), true));
    });
    c.bench_function("fig1/full_ham_assign_4x4", |b| {
        let mut policy = FullHamPolicy::new(true);
        b.iter(|| policy.assign(black_box(&ops), black_box(&modules)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
