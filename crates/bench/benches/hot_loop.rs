//! Throughput of the simulation hot loop itself — the kernel behind the
//! `bench-suite` simulated-MHz headline (see docs/PERFORMANCE.md).
//!
//! Two engines run the same workloads untraced and unprofiled:
//!
//! * `rewrite/*` — [`fua_sim::Simulator`], the struct-of-arrays engine
//!   (ring-buffer slots, age-indexed ready bitmasks, completion wheel,
//!   consumer wakeup lists, arena-pooled in-flight state);
//! * `reference/*` — [`fua_sim::ReferenceSimulator`], the frozen
//!   pointer-chasing original it replaced (per-instruction `Entry`
//!   structs in a `VecDeque`, linear window scans).
//!
//! Criterion records both so regressions show up in its report; the
//! group then asserts the rewrite never falls behind the reference on
//! aggregate best-of-N wall clock. The measured margin is modest
//! (~1.1–1.3x per kernel, ~1.2x aggregate — the remaining per-op cost
//! is model work both engines share: steering policies, energy and
//! bit-pattern accounting, predictor, cache), so the gate is the
//! aggregate over three kernels rather than a single noisy pair, and
//! the threshold is "not slower", not the measured margin. A failure
//! means the SoA layout has regressed to pointer-chasing cost — look
//! for reintroduced allocation, bounds-checked indexing, or branchy
//! case handling on the hot path.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use fua_sim::{MachineConfig, ReferenceSimulator, Simulator, SteeringConfig};
use fua_steer::SteeringKind;
use fua_workloads::by_name;

const LIMIT: u64 = 50_000;

/// Aggregate best-of-N time over the three kernels: the rewrite must
/// not be slower than the reference engine.
const MIN_SPEEDUP: f64 = 1.0;

/// Workloads spanning the three hot-loop shapes: integer ALU pressure,
/// FP with long-latency producers, and pointer-ish control flow.
const KERNELS: [&str; 3] = ["compress", "fpppp", "perl"];

fn scheme() -> SteeringConfig {
    SteeringConfig::paper_scheme(SteeringKind::Lut { slots: 2 }, true)
}

fn run_rewrite(w: &fua_workloads::Workload) -> u64 {
    let mut sim = Simulator::new(MachineConfig::paper_default(), scheme());
    sim.run_program(&w.program, LIMIT).expect("runs").cycles
}

fn run_reference(w: &fua_workloads::Workload) -> u64 {
    let mut sim = ReferenceSimulator::new(MachineConfig::paper_default(), scheme());
    sim.run_program(&w.program, LIMIT).expect("runs").cycles
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("hot_loop");
    for name in KERNELS {
        let w = by_name(name, 1).expect("bundled");
        g.bench_function(format!("rewrite/{name}"), |b| b.iter(|| run_rewrite(&w)));
        g.bench_function(format!("reference/{name}"), |b| b.iter(|| run_reference(&w)));
    }
    g.finish();

    // Speedup assertion plus a simulated-MHz line in the headline's
    // units, so `cargo bench --bench hot_loop` prints the same figure
    // `fua bench-suite` gates on.
    const ROUNDS: usize = 5;
    let best = |f: &dyn Fn(&fua_workloads::Workload) -> u64, w: &fua_workloads::Workload| {
        (0..ROUNDS)
            .map(|_| {
                let start = Instant::now();
                let cycles = f(w);
                (start.elapsed(), cycles)
            })
            .min()
            .expect("rounds > 0")
    };
    let mut rewrite = Duration::ZERO;
    let mut reference = Duration::ZERO;
    let mut cycles = 0u64;
    for name in KERNELS {
        let w = by_name(name, 1).expect("bundled");
        let (rw, c_rw) = best(&run_rewrite, &w);
        let (rf, c_rf) = best(&run_reference, &w);
        // Both engines must simulate the identical machine state.
        assert_eq!(c_rw, c_rf, "{name}: engines diverged");
        rewrite += rw;
        reference += rf;
        cycles += c_rw;
    }
    let speedup = reference.as_secs_f64() / rewrite.as_secs_f64();
    let mhz = cycles as f64 / rewrite.as_secs_f64() / 1e6;
    println!(
        "hot loop: rewrite {rewrite:?} vs reference {reference:?} aggregate \
         ({speedup:.2}x, {mhz:.2} MHz simulated over {:?})",
        KERNELS
    );
    assert!(
        speedup > MIN_SPEEDUP,
        "data-layout rewrite fell behind the pointer-chasing reference \
         ({speedup:.2}x aggregate, expected > {MIN_SPEEDUP}x) — \
         the SoA hot loop has regressed"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
