//! Ablation: per-cycle decision cost of each steering policy. The paper's
//! whole point in Section 4.3 is that the Full-Ham computation "is sure to
//! increase the cycle time of the machine" while the LUT is a handful of
//! gates; this bench measures the software analogue — nanoseconds per
//! steering decision — for every policy.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fua_isa::{FuClass, Word};
use fua_power::ModulePorts;
use fua_stats::CaseProfile;
use fua_steer::{make_policy, SteeringKind, PAPER_IALU_OCCUPANCY};
use fua_vm::FuOp;

fn bench(c: &mut Criterion) {
    let modules: Vec<ModulePorts> = (0..4)
        .map(|i| {
            let mut m = ModulePorts::new();
            m.latch(Word::int(i * 12345), Word::int(-(i * 7)));
            m
        })
        .collect();
    let ops: Vec<FuOp> = (0..4)
        .map(|i| FuOp {
            class: FuClass::IntAlu,
            op1: Word::int(i * 4321 - 2),
            op2: Word::int(1 - i),
            commutative: i % 2 == 0,
        })
        .collect();

    let profile = CaseProfile::paper_ialu();
    for kind in SteeringKind::FIGURE4 {
        let mut policy = make_policy(kind, &profile, &PAPER_IALU_OCCUPANCY, 4, 32, true);
        c.bench_function(&format!("policy_overhead/{kind}"), |b| {
            b.iter(|| policy.assign(black_box(&ops), black_box(&modules)));
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench
}
criterion_main!(benches);
