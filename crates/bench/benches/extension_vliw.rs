//! Extension: the paper conjectures "some of our proposed techniques are
//! also applicable to VLIWs" (Section 2). This bench runs the Figure-4
//! design point on an in-order-issue (VLIW-style) variant of the machine
//! and compares the steering benefit against the out-of-order core.

use criterion::{criterion_group, criterion_main, Criterion};
use fua_isa::FuClass;
use fua_power::EnergyLedger;
use fua_sim::{MachineConfig, Simulator, SteeringConfig};
use fua_stats::TextTable;
use fua_steer::SteeringKind;
use fua_workloads::integer;

const LIMIT: u64 = 60_000;

fn run_suite(machine: &MachineConfig, make: impl Fn() -> SteeringConfig) -> EnergyLedger {
    let mut total = EnergyLedger::new();
    for w in integer(1) {
        let mut sim = Simulator::new(machine.clone(), make());
        total.merge(&sim.run_program(&w.program, LIMIT).expect("runs").ledger);
    }
    total
}

fn bench(c: &mut Criterion) {
    let mut t = TextTable::new(["machine", "baseline bits", "4-bit LUT + hw", "reduction"]);
    for (name, machine) in [
        ("out-of-order", MachineConfig::paper_default()),
        ("in-order (VLIW-style)", MachineConfig::in_order()),
    ] {
        let baseline = run_suite(&machine, SteeringConfig::original);
        let steered = run_suite(&machine, || {
            SteeringConfig::paper_scheme(SteeringKind::Lut { slots: 2 }, true)
        });
        let base = baseline.switched_bits(FuClass::IntAlu);
        let opt = steered.switched_bits(FuClass::IntAlu);
        t.push_row([
            name.to_string(),
            base.to_string(),
            opt.to_string(),
            format!("{:.1}%", 100.0 * (1.0 - opt as f64 / base as f64)),
        ]);
    }
    println!(
        "\nVLIW extension: steering benefit under in-order issue \
         (paper conjectures partial applicability)\n{t}"
    );

    let w = fua_workloads::by_name("go", 1).expect("bundled workload");
    c.bench_function("extension_vliw/in_order_go_20k", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(MachineConfig::in_order(), SteeringConfig::original());
            sim.run_program(&w.program, 20_000).expect("runs")
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
