//! Regenerates **Table 2** (frequency that each FU type issues 1..4
//! modules per busy cycle) and times the occupancy-profiling run.

use criterion::{criterion_group, criterion_main, Criterion};
use fua_bench::{report_config, run_baseline};
use fua_core::profile_suite;

fn bench(c: &mut Criterion) {
    let profile = profile_suite(&report_config());
    println!("\n{}", profile.table2());

    c.bench_function("table2/occupancy_go_20k", |b| {
        b.iter(|| run_baseline("go", 20_000));
    });
    c.bench_function("table2/occupancy_fpppp_20k", |b| {
        b.iter(|| run_baseline("fpppp", 20_000));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
