//! Built attributions: sites resolved against the program's CFG, hotspot
//! ranking and collapsed-stack (flamegraph) export.

use std::collections::BTreeMap;

use fua_analysis::Cfg;
use fua_isa::{FuClass, Program};
use fua_power::EnergyLedger;
use fua_trace::Json;

use crate::{AttributionSink, SiteKey, SiteStat};

/// Modules per FU class the per-module breakdowns cover (the simulator
/// never exceeds this; matches the windowed-telemetry bound).
pub const MAX_MODULES: usize = 8;

/// One attributed site with its CFG context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteRow {
    /// The charge site.
    pub key: SiteKey,
    /// Accumulated charges.
    pub stat: SiteStat,
    /// Basic block owning `key.pc` (`None` if the PC is outside the
    /// program text — impossible for a well-formed trace, but the
    /// mapping never panics on foreign data).
    pub block: Option<usize>,
    /// The instruction's opcode rendered (`"?"` for an out-of-text PC).
    pub opcode: String,
}

/// One entry of the per-PC hotspot ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct Hotspot {
    /// Static program counter.
    pub pc: u32,
    /// Basic-block label (`"bb?"` for an out-of-text PC).
    pub block: String,
    /// Opcode at the PC.
    pub opcode: String,
    /// Switched bits attributed to the PC (all classes/modules/cases).
    pub bits: u64,
    /// Operations issued from the PC.
    pub ops: u64,
    /// Share of the run's total switched bits, in percent.
    pub share_pct: f64,
}

/// A complete attribution of one run's energy ledger to static sites.
///
/// Built from an [`AttributionSink`] plus the program it observed; rows
/// are stored in (pc, class, module, case) order, so every derived
/// rendering is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyAttribution {
    /// The workload the run executed.
    pub workload: String,
    /// Label of the steering scheme the run used.
    pub scheme: String,
    rows: Vec<SiteRow>,
    block_labels: Vec<String>,
}

pub(crate) fn frame(s: &str) -> String {
    // Collapsed-stack frames are `;`-separated and the weight is split
    // off at the last space, so neither may appear inside a frame;
    // control characters would corrupt the line structure.
    s.chars()
        .map(|c| {
            if c == ';' || c.is_whitespace() || c.is_control() {
                '_'
            } else {
                c
            }
        })
        .collect()
}

impl EnergyAttribution {
    /// Resolves a sink's sites against `program`'s CFG.
    pub fn build(workload: &str, scheme: &str, program: &Program, sink: &AttributionSink) -> Self {
        let cfg = Cfg::build(program);
        let insts = program.insts();
        let rows = sink
            .sites()
            .map(|(key, stat)| SiteRow {
                key: *key,
                stat: *stat,
                block: cfg.try_block_of(key.pc as usize),
                opcode: insts
                    .get(key.pc as usize)
                    .map_or_else(|| "?".to_string(), |i| i.op.to_string()),
            })
            .collect();
        let block_labels = (0..cfg.blocks().len())
            .map(|b| cfg.block_label(b))
            .collect();
        EnergyAttribution {
            workload: workload.to_string(),
            scheme: scheme.to_string(),
            rows,
            block_labels,
        }
    }

    /// The attributed sites, in (pc, class, module, case) order.
    pub fn rows(&self) -> &[SiteRow] {
        &self.rows
    }

    /// The label of block `b`, or `"bb?"` out of range.
    pub fn block_label(&self, b: Option<usize>) -> &str {
        b.and_then(|b| self.block_labels.get(b))
            .map_or("bb?", String::as_str)
    }

    /// Reassembles the partition into an [`EnergyLedger`]; equals the
    /// simulator's own ledger bit-for-bit for a full-run sink.
    pub fn ledger(&self) -> EnergyLedger {
        let mut switched = [0u64; 4];
        let mut ops = [0u64; 4];
        for row in &self.rows {
            switched[row.key.class.index()] += row.stat.bits;
            ops[row.key.class.index()] += row.stat.ops;
        }
        let mut ledger = EnergyLedger::new();
        ledger.accumulate(switched, ops);
        ledger
    }

    /// Total switched bits across all sites.
    pub fn total_bits(&self) -> u64 {
        self.rows.iter().map(|r| r.stat.bits).sum()
    }

    /// Switched bits per PC, summed over classes, modules and cases.
    pub fn pc_bits(&self) -> BTreeMap<u32, u64> {
        let mut map = BTreeMap::new();
        for row in &self.rows {
            *map.entry(row.key.pc).or_insert(0u64) += row.stat.bits;
        }
        map
    }

    /// Switched bits per steering case for one FU class.
    pub fn case_bits(&self, class: FuClass) -> [u64; 4] {
        let mut bits = [0u64; 4];
        for row in self.rows.iter().filter(|r| r.key.class == class) {
            bits[row.key.case.index()] += row.stat.bits;
        }
        bits
    }

    /// Switched bits per module for one FU class.
    pub fn module_bits(&self, class: FuClass) -> [u64; MAX_MODULES] {
        let mut bits = [0u64; MAX_MODULES];
        for row in self.rows.iter().filter(|r| r.key.class == class) {
            bits[(row.key.module as usize).min(MAX_MODULES - 1)] += row.stat.bits;
        }
        bits
    }

    /// The `n` hottest PCs by switched bits (ties broken by ascending
    /// PC, so the ranking is deterministic).
    pub fn hotspots(&self, n: usize) -> Vec<Hotspot> {
        let total = self.total_bits();
        let mut per_pc: BTreeMap<u32, (u64, u64, Option<usize>, String)> = BTreeMap::new();
        for row in &self.rows {
            let entry = per_pc
                .entry(row.key.pc)
                .or_insert_with(|| (0, 0, row.block, row.opcode.clone()));
            entry.0 += row.stat.bits;
            entry.1 += row.stat.ops;
        }
        let mut spots: Vec<Hotspot> = per_pc
            .into_iter()
            .map(|(pc, (bits, ops, block, opcode))| Hotspot {
                pc,
                block: self.block_label(block).to_string(),
                opcode,
                bits,
                ops,
                share_pct: if total == 0 {
                    0.0
                } else {
                    100.0 * bits as f64 / total as f64
                },
            })
            .collect();
        spots.sort_by(|a, b| b.bits.cmp(&a.bits).then(a.pc.cmp(&b.pc)));
        spots.truncate(n);
        spots
    }

    /// Collapsed-stack flamegraph lines: one
    /// `workload;block;pc{pc}:{opcode} {bits}` line per PC with a
    /// non-zero charge, in block-then-PC order. Feed the output straight
    /// to `flamegraph.pl` / speedscope / inferno.
    pub fn collapsed_stacks(&self) -> String {
        let mut per_pc: BTreeMap<(Option<usize>, u32), (u64, String)> = BTreeMap::new();
        for row in &self.rows {
            let entry = per_pc
                .entry((row.block, row.key.pc))
                .or_insert_with(|| (0, row.opcode.clone()));
            entry.0 += row.stat.bits;
        }
        let workload = frame(&self.workload);
        let mut out = String::new();
        for ((block, pc), (bits, opcode)) in per_pc {
            if bits == 0 {
                continue;
            }
            let block = frame(self.block_label(block));
            let leaf = frame(&format!("pc{pc}:{opcode}"));
            out.push_str(&format!("{workload};{block};{leaf} {bits}\n"));
        }
        out
    }

    /// The attribution as a JSON document (used by `--json` output).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("workload", Json::Str(self.workload.clone())),
            ("scheme", Json::Str(self.scheme.clone())),
            ("total_bits", Json::UInt(self.total_bits())),
            (
                "sites",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("pc", Json::UInt(r.key.pc as u64)),
                                ("block", Json::Str(self.block_label(r.block).to_string())),
                                ("opcode", Json::Str(r.opcode.clone())),
                                ("class", Json::Str(r.key.class.to_string())),
                                ("module", Json::UInt(r.key.module as u64)),
                                ("case", Json::Str(r.key.case.to_string())),
                                ("bits", Json::UInt(r.stat.bits)),
                                ("ops", Json::UInt(r.stat.ops)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_isa::{Case, IntReg, ProgramBuilder};
    use fua_trace::{TraceEvent, TraceSink};

    fn program() -> Program {
        let r1 = IntReg::new(1);
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.li(r1, 3);
        b.bind(top);
        b.addi(r1, r1, -1);
        b.bgtz(r1, top);
        b.halt();
        b.build().unwrap()
    }

    fn sink_with(charges: &[(u32, u32)]) -> AttributionSink {
        let mut sink = AttributionSink::new();
        for &(pc, bits) in charges {
            sink.record(&TraceEvent::Energy {
                cycle: 0,
                serial: 0,
                pc,
                class: FuClass::IntAlu,
                module: 0,
                case: Case::C00,
                bits,
            });
        }
        sink
    }

    #[test]
    fn rows_resolve_blocks_and_opcodes() {
        let p = program();
        let sink = sink_with(&[(0, 4), (1, 9), (1, 1)]);
        let attr = EnergyAttribution::build("w", "s", &p, &sink);
        assert_eq!(attr.rows().len(), 2);
        assert_eq!(attr.rows()[0].block, Some(0));
        assert_eq!(attr.rows()[1].block, Some(1));
        assert_eq!(attr.total_bits(), 14);
        assert_eq!(attr.ledger(), sink.ledger());
    }

    #[test]
    fn out_of_text_pcs_map_to_the_unknown_block() {
        let p = program();
        let sink = sink_with(&[(999, 5)]);
        let attr = EnergyAttribution::build("w", "s", &p, &sink);
        assert_eq!(attr.rows()[0].block, None);
        assert_eq!(attr.block_label(None), "bb?");
        assert_eq!(attr.rows()[0].opcode, "?");
    }

    #[test]
    fn hotspots_rank_by_bits_with_pc_tiebreak() {
        let p = program();
        let attr = EnergyAttribution::build("w", "s", &p, &sink_with(&[(0, 3), (1, 10), (2, 3)]));
        let spots = attr.hotspots(10);
        assert_eq!(spots[0].pc, 1);
        assert_eq!(spots[1].pc, 0, "equal bits break ties toward lower PCs");
        assert_eq!(spots[2].pc, 2);
        assert!((spots[0].share_pct - 62.5).abs() < 1e-9);
        let top1 = attr.hotspots(1);
        assert_eq!(top1.len(), 1);
    }

    #[test]
    fn collapsed_stacks_sum_to_the_total_and_escape_frames() {
        let p = program();
        let sink = sink_with(&[(0, 4), (1, 9)]);
        let attr = EnergyAttribution::build("co mp;ress", "s", &p, &sink);
        let stacks = attr.collapsed_stacks();
        let mut total = 0u64;
        for line in stacks.lines() {
            let (frames, weight) = line.rsplit_once(' ').unwrap();
            assert_eq!(frames.matches(';').count(), 2, "three frames: {line}");
            assert!(frames.starts_with("co_mp_ress;bb"));
            total += weight.parse::<u64>().unwrap();
        }
        assert_eq!(total, attr.total_bits());
    }
}
