//! Energy attribution: who pays for the switched bits?
//!
//! The simulator's [`EnergyLedger`](fua_power::EnergyLedger) answers
//! *how many* input bits toggled per FU class; this crate answers
//! *where* — it partitions every ledger delta by the issuing static PC,
//! its enclosing basic block (via the [`fua_analysis`] CFG), the
//! steering case presented to the policy, and the FU module charged.
//!
//! The partition is **exact**: an [`AttributionSink`] counts every
//! [`Energy`](fua_trace::TraceEvent::Energy) event in exactly one site
//! bucket, so the reassembled [`ledger`](AttributionSink::ledger) equals
//! the simulator's own bit-for-bit, for every scheme and swap setting —
//! the same invariant the windowed-telemetry sink proves over time
//! intervals, proved here over static sites. And because
//! [`merge`](AttributionSink::merge) is key-ordered addition,
//! per-workload sinks merged in index order reproduce a serial pass
//! exactly, which is what makes `fua profile-energy --jobs N`
//! byte-identical to `--jobs 1`.
//!
//! On top of the raw partition:
//!
//! * [`EnergyAttribution`] resolves sites against the program's CFG and
//!   ranks [`hotspots`](EnergyAttribution::hotspots), and exports
//!   [`collapsed_stacks`](EnergyAttribution::collapsed_stacks) —
//!   `workload;block;pc` frames weighted by switched bits, ready for
//!   any flamegraph renderer;
//! * [`AttributionDiff`] aligns two attributions of the same workload
//!   by PC and reports where one steering [`Scheme`] saves or loses
//!   energy, per module and per steering case;
//! * [`attribute_suite`] fans the whole workload suite out across a
//!   deterministic [`fua_exec`] worker pool;
//! * [`CycleAttribution`] answers the sibling question — *where do the
//!   cycles go?* — by resolving the stall-slot partition (every issue
//!   slot of every cycle in exactly one taxonomy bucket) against the
//!   same CFG, with [`CriticalPath`] extraction and a
//!   [`joint_table`] pairing switched bits with slot spend per PC;
//!   `fua profile-cycles` drives [`profile_cycles_suite`].
//!
//! # Examples
//!
//! ```
//! use fua_attr::{attribute_workload, Scheme};
//!
//! let w = fua_workloads::by_name("compress", 1).unwrap();
//! let run = attribute_workload(&w, Scheme::Lut4, 2_000);
//! assert!(run.exact(), "attribution reproduces the ledger bit-for-bit");
//! let top = run.attribution.hotspots(3);
//! assert!(!top.is_empty());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod cycles;
mod diff;
mod estimate;
mod profile;
mod run;
mod sink;

pub use cycles::{
    joint_table, profile_cycles_suite, profile_cycles_workload, CriticalNode, CriticalPath,
    CycleAttribution, CycleProfiledRun, JointRow, StallHotspot, StallRow,
};
pub use diff::{case_labels, AttributionDiff, ClassDelta, PcDelta};
pub use estimate::{check_attribution, check_suite, check_workload, BoundViolation, EstimateCheck};
pub use profile::{EnergyAttribution, Hotspot, SiteRow, MAX_MODULES};
pub use run::{attribute_suite, attribute_with_config, attribute_workload, AttributedRun, Scheme};
pub use sink::{AttributionSink, SiteKey, SiteStat};
