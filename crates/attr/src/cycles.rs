//! Cycle attribution: where do the cycles go?
//!
//! The stall taxonomy partitions every issue slot of every cycle into
//! exactly one [`StallReason`] bucket; this module resolves those
//! buckets against the program's CFG (mirroring the energy-side
//! [`EnergyAttribution`](crate::EnergyAttribution)), extracts the
//! retirement critical path from the dependence records, and joins the
//! two attributions into a switched-bits-per-slot table.

use std::collections::BTreeMap;

use fua_analysis::Cfg;
use fua_exec::{map_indexed, Jobs};
use fua_isa::Program;
use fua_sim::{MachineConfig, SimResult, Simulator};
use fua_trace::{DepSink, Json, StallKey, StallReason, StallSink};
use fua_workloads::Workload;

use crate::profile::frame;
use crate::{AttributionSink, EnergyAttribution, Scheme};

/// One stall site with its CFG context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallRow {
    /// The charge site.
    pub key: StallKey,
    /// Issue slots accounted to the site.
    pub slots: u64,
    /// Basic block owning `key.pc` (`None` for frontend slots with no
    /// culprit PC, or a PC outside the program text).
    pub block: Option<usize>,
    /// The culprit's opcode rendered (`"?"` when there is no culprit).
    pub opcode: String,
}

/// One entry of the per-PC stall ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct StallHotspot {
    /// Static program counter of the culprit (`None` = frontend slots
    /// with no culprit instruction).
    pub pc: Option<u32>,
    /// Basic-block label (`"frontend"` for culprit-less slots).
    pub block: String,
    /// Opcode at the PC (`"?"` for culprit-less slots).
    pub opcode: String,
    /// Non-issued slots charged to the site.
    pub stalled: u64,
    /// Issued slots charged to the site.
    pub issued: u64,
    /// The reason holding the largest share of the stalled slots.
    pub top_reason: StallReason,
    /// Share of the run's total non-issued slots, in percent.
    pub share_pct: f64,
}

/// A complete attribution of one run's issue bandwidth to static sites.
///
/// Built from a [`StallSink`] plus the program it observed; rows are
/// stored in (pc, class, reason, case) order, so every derived
/// rendering is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleAttribution {
    /// The workload the run executed.
    pub workload: String,
    /// Label of the steering scheme the run used.
    pub scheme: String,
    /// Elapsed cycles of the attributed run.
    pub cycles: u64,
    /// Issue slots per cycle on the attributed machine.
    pub issue_width: u64,
    rows: Vec<StallRow>,
    block_labels: Vec<String>,
}

impl CycleAttribution {
    /// Resolves a sink's stall sites against `program`'s CFG.
    pub fn build(
        workload: &str,
        scheme: &str,
        program: &Program,
        sink: &StallSink,
        cycles: u64,
        issue_width: u64,
    ) -> Self {
        let cfg = Cfg::build(program);
        let insts = program.insts();
        let rows = sink
            .sites()
            .iter()
            .map(|(key, &slots)| StallRow {
                key: *key,
                slots,
                block: key.pc.and_then(|pc| cfg.try_block_of(pc as usize)),
                opcode: key
                    .pc
                    .and_then(|pc| insts.get(pc as usize))
                    .map_or_else(|| "?".to_string(), |i| i.op.to_string()),
            })
            .collect();
        let block_labels = (0..cfg.blocks().len())
            .map(|b| cfg.block_label(b))
            .collect();
        CycleAttribution {
            workload: workload.to_string(),
            scheme: scheme.to_string(),
            cycles,
            issue_width,
            rows,
            block_labels,
        }
    }

    /// The attributed sites, in (pc, class, reason, case) order.
    pub fn rows(&self) -> &[StallRow] {
        &self.rows
    }

    /// The label of block `b`, or `"bb?"` out of range.
    pub fn block_label(&self, b: Option<usize>) -> &str {
        b.and_then(|b| self.block_labels.get(b))
            .map_or("bb?", String::as_str)
    }

    /// Total issue slots across all sites.
    pub fn total_slots(&self) -> u64 {
        self.rows.iter().map(|r| r.slots).sum()
    }

    /// Slots that issued an instruction.
    pub fn issued_slots(&self) -> u64 {
        self.reason_totals()[StallReason::Issued.index()]
    }

    /// Slot totals per [`StallReason`], in [`StallReason::ALL`] order.
    pub fn reason_totals(&self) -> [u64; 8] {
        let mut totals = [0u64; 8];
        for row in &self.rows {
            totals[row.key.reason.index()] += row.slots;
        }
        totals
    }

    /// Whether the attribution accounts for the machine's entire issue
    /// bandwidth bit-for-bit — the exact-partition invariant:
    /// `total_slots == cycles × issue_width`.
    pub fn exact(&self) -> bool {
        self.total_slots() == self.cycles * self.issue_width
    }

    /// The `n` sites losing the most issue slots, ranked by non-issued
    /// slots (ties broken toward lower PCs, frontend sites last among
    /// equals), with each site's dominant stall reason.
    pub fn hotspots(&self, n: usize) -> Vec<StallHotspot> {
        // Per PC: issued slots, stalled slots, per-reason stalled
        // split, plus the site's block index and opcode for labelling.
        type PerPc = (u64, u64, [u64; 8], Option<usize>, String);
        let mut per_pc: BTreeMap<Option<u32>, PerPc> = BTreeMap::new();
        for row in &self.rows {
            let entry = per_pc
                .entry(row.key.pc)
                .or_insert_with(|| (0, 0, [0; 8], row.block, row.opcode.clone()));
            if row.key.reason == StallReason::Issued {
                entry.0 += row.slots;
            } else {
                entry.1 += row.slots;
                entry.2[row.key.reason.index()] += row.slots;
            }
        }
        let total_stalled: u64 = per_pc.values().map(|v| v.1).sum();
        let mut spots: Vec<StallHotspot> = per_pc
            .into_iter()
            .map(|(pc, (issued, stalled, mix, block, opcode))| {
                let top_reason = StallReason::ALL
                    .into_iter()
                    .filter(|r| *r != StallReason::Issued)
                    .max_by_key(|r| mix[r.index()])
                    .unwrap_or(StallReason::Issued);
                StallHotspot {
                    pc,
                    block: match pc {
                        Some(_) => self.block_label(block).to_string(),
                        None => "frontend".to_string(),
                    },
                    opcode,
                    stalled,
                    issued,
                    top_reason,
                    share_pct: if total_stalled == 0 {
                        0.0
                    } else {
                        100.0 * stalled as f64 / total_stalled as f64
                    },
                }
            })
            .collect();
        // None sorts before Some in the BTreeMap; rank by stalled slots
        // first, then put concrete PCs ahead of the frontend bucket.
        spots.sort_by(|a, b| {
            b.stalled
                .cmp(&a.stalled)
                .then(a.pc.is_none().cmp(&b.pc.is_none()))
                .then(a.pc.cmp(&b.pc))
        });
        spots.truncate(n);
        spots
    }

    /// Collapsed-stack flamegraph lines weighted by issue slots:
    /// `workload;block;pc{pc}:{opcode};{reason} {slots}` per culprit
    /// site and `workload;frontend;{reason} {slots}` for culprit-less
    /// frontend slots. Because the stall partition is exact, the line
    /// weights sum to `cycles × issue_width` — the whole machine's
    /// issue bandwidth appears in the graph, issued slots included.
    pub fn collapsed_stacks(&self) -> String {
        type Stack = (Option<usize>, Option<u32>, StallReason);
        let mut lines: BTreeMap<Stack, (u64, String)> = BTreeMap::new();
        for row in &self.rows {
            let entry = lines
                .entry((row.block, row.key.pc, row.key.reason))
                .or_insert_with(|| (0, row.opcode.clone()));
            entry.0 += row.slots;
        }
        let workload = frame(&self.workload);
        let mut out = String::new();
        for ((block, pc, reason), (slots, opcode)) in lines {
            if slots == 0 {
                continue;
            }
            let reason = frame(reason.name());
            match pc {
                Some(pc) => {
                    let block = frame(self.block_label(block));
                    let leaf = frame(&format!("pc{pc}:{opcode}"));
                    out.push_str(&format!("{workload};{block};{leaf};{reason} {slots}\n"));
                }
                None => {
                    out.push_str(&format!("{workload};frontend;{reason} {slots}\n"));
                }
            }
        }
        out
    }

    /// The attribution as a JSON document (used by `--json` output).
    pub fn to_json(&self) -> Json {
        let totals = self.reason_totals();
        Json::obj([
            ("workload", Json::Str(self.workload.clone())),
            ("scheme", Json::Str(self.scheme.clone())),
            ("cycles", Json::UInt(self.cycles)),
            ("issue_width", Json::UInt(self.issue_width)),
            ("total_slots", Json::UInt(self.total_slots())),
            ("exact", Json::Bool(self.exact())),
            (
                "reason_totals",
                Json::Obj(
                    StallReason::ALL
                        .into_iter()
                        .map(|r| (r.name().to_string(), Json::UInt(totals[r.index()])))
                        .collect(),
                ),
            ),
            (
                "sites",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            Json::obj([
                                (
                                    "pc",
                                    r.key.pc.map_or(Json::Null, |pc| Json::UInt(pc as u64)),
                                ),
                                (
                                    "block",
                                    Json::Str(match r.key.pc {
                                        Some(_) => self.block_label(r.block).to_string(),
                                        None => "frontend".to_string(),
                                    }),
                                ),
                                ("opcode", Json::Str(r.opcode.clone())),
                                ("class", Json::Str(r.key.class.to_string())),
                                ("reason", Json::Str(r.key.reason.name().to_string())),
                                (
                                    "case",
                                    r.key.case.map_or(Json::Null, |c| Json::Str(c.to_string())),
                                ),
                                ("slots", Json::UInt(r.slots)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// One node of the retirement critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalNode {
    /// Dynamic program-order serial.
    pub serial: u64,
    /// Static program counter.
    pub pc: u32,
    /// Opcode at the PC (`"?"` for an out-of-text PC).
    pub opcode: String,
    /// Dispatch (rename) cycle.
    pub dispatch_cycle: u64,
    /// Issue cycle (dispatch cycle for no-FU instructions).
    pub issue_cycle: u64,
    /// Completion cycle.
    pub done_cycle: u64,
    /// Dispatch-to-issue cycles spent waiting for producers
    /// (the [`OperandWait`](StallReason::OperandWait) portion).
    pub operand_wait: u64,
    /// Dispatch-to-issue cycles spent ready but unselected — structural
    /// slots ([`FuBusy`](StallReason::FuBusy) /
    /// [`SteeringDelay`](StallReason::SteeringDelay) territory).
    pub structural_wait: u64,
}

/// The longest completion-ordered dependence chain of a run, extracted
/// from a [`DepSink`]: the path ends at the last instruction to
/// complete and each predecessor is the producer that finished last.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CriticalPath {
    nodes: Vec<CriticalNode>,
}

impl CriticalPath {
    /// Walks the dependence records backwards from the last completion.
    pub fn extract(program: &Program, deps: &DepSink) -> Self {
        let insts = program.insts();
        let records = deps.records();
        let Some(start) = records.iter().max_by(
            // Latest completion wins; ties go to the later serial (the
            // deeper instruction in program order).
            |a, b| {
                a.done_cycle
                    .cmp(&b.done_cycle)
                    .then(a.serial.cmp(&b.serial))
            },
        ) else {
            return CriticalPath::default();
        };
        let mut chain = Vec::new();
        let mut cur = start;
        loop {
            // The critical producer is the one whose result arrived last.
            let pred = cur
                .deps
                .iter()
                .flatten()
                .filter_map(|&serial| deps.record_of(serial))
                .max_by(|a, b| {
                    a.done_cycle
                        .cmp(&b.done_cycle)
                        .then(a.serial.cmp(&b.serial))
                });
            let ready_cycle = pred
                .map(|p| p.done_cycle.max(cur.dispatch_cycle))
                .unwrap_or(cur.dispatch_cycle);
            let issue_cycle = cur.issue_cycle.unwrap_or(cur.dispatch_cycle);
            let operand_wait = ready_cycle.saturating_sub(cur.dispatch_cycle);
            let structural_wait = issue_cycle
                .saturating_sub(cur.dispatch_cycle)
                .saturating_sub(operand_wait);
            chain.push(CriticalNode {
                serial: cur.serial,
                pc: cur.pc,
                opcode: insts
                    .get(cur.pc as usize)
                    .map_or_else(|| "?".to_string(), |i| i.op.to_string()),
                dispatch_cycle: cur.dispatch_cycle,
                issue_cycle,
                done_cycle: cur.done_cycle,
                operand_wait,
                structural_wait,
            });
            match pred {
                Some(p) => cur = p,
                None => break,
            }
        }
        chain.reverse();
        CriticalPath { nodes: chain }
    }

    /// The path nodes, earliest instruction first.
    pub fn nodes(&self) -> &[CriticalNode] {
        &self.nodes
    }

    /// Cycles spanned from the first node's dispatch to the last node's
    /// completion (0 for an empty path).
    pub fn span_cycles(&self) -> u64 {
        match (self.nodes.first(), self.nodes.last()) {
            (Some(first), Some(last)) => last.done_cycle - first.dispatch_cycle,
            _ => 0,
        }
    }

    /// Total operand-wait cycles along the path.
    pub fn operand_wait(&self) -> u64 {
        self.nodes.iter().map(|n| n.operand_wait).sum()
    }

    /// Total structural-wait cycles along the path.
    pub fn structural_wait(&self) -> u64 {
        self.nodes.iter().map(|n| n.structural_wait).sum()
    }

    /// The path as a JSON document (used by `--json` output).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("span_cycles", Json::UInt(self.span_cycles())),
            ("operand_wait", Json::UInt(self.operand_wait())),
            ("structural_wait", Json::UInt(self.structural_wait())),
            (
                "nodes",
                Json::Arr(
                    self.nodes
                        .iter()
                        .map(|n| {
                            Json::obj([
                                ("serial", Json::UInt(n.serial)),
                                ("pc", Json::UInt(n.pc as u64)),
                                ("opcode", Json::Str(n.opcode.clone())),
                                ("dispatch", Json::UInt(n.dispatch_cycle)),
                                ("issue", Json::UInt(n.issue_cycle)),
                                ("done", Json::UInt(n.done_cycle)),
                                ("operand_wait", Json::UInt(n.operand_wait)),
                                ("structural_wait", Json::UInt(n.structural_wait)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// One row of the joint energy × cycles table: a PC with both its
/// switched-bit charge and its issue-slot spend.
#[derive(Debug, Clone, PartialEq)]
pub struct JointRow {
    /// Static program counter.
    pub pc: u32,
    /// Basic-block label.
    pub block: String,
    /// Opcode at the PC.
    pub opcode: String,
    /// Switched bits charged to the PC.
    pub bits: u64,
    /// Operations issued from the PC.
    pub ops: u64,
    /// Issue slots the PC filled.
    pub issued_slots: u64,
    /// Issue slots lost waiting on the PC.
    pub stalled_slots: u64,
    /// Mean switched bits per operation (0 for no ops).
    pub bits_per_op: f64,
}

/// Joins an energy attribution and a cycle attribution of the same run
/// by PC: switched bits per committed instruction next to the slots the
/// instruction filled and the slots the machine lost waiting on it.
/// Rows are ranked by switched bits (ties toward lower PCs) and
/// truncated to `n`.
pub fn joint_table(
    energy: &EnergyAttribution,
    cycles: &CycleAttribution,
    n: usize,
) -> Vec<JointRow> {
    let mut per_pc: BTreeMap<u32, JointRow> = BTreeMap::new();
    for row in energy.rows() {
        let entry = per_pc.entry(row.key.pc).or_insert_with(|| JointRow {
            pc: row.key.pc,
            block: energy.block_label(row.block).to_string(),
            opcode: row.opcode.clone(),
            bits: 0,
            ops: 0,
            issued_slots: 0,
            stalled_slots: 0,
            bits_per_op: 0.0,
        });
        entry.bits += row.stat.bits;
        entry.ops += row.stat.ops;
    }
    for row in cycles.rows() {
        let Some(pc) = row.key.pc else { continue };
        let entry = per_pc.entry(pc).or_insert_with(|| JointRow {
            pc,
            block: cycles.block_label(row.block).to_string(),
            opcode: row.opcode.clone(),
            bits: 0,
            ops: 0,
            issued_slots: 0,
            stalled_slots: 0,
            bits_per_op: 0.0,
        });
        if row.key.reason == StallReason::Issued {
            entry.issued_slots += row.slots;
        } else {
            entry.stalled_slots += row.slots;
        }
    }
    let mut rows: Vec<JointRow> = per_pc
        .into_values()
        .map(|mut r| {
            r.bits_per_op = if r.ops == 0 {
                0.0
            } else {
                r.bits as f64 / r.ops as f64
            };
            r
        })
        .collect();
    rows.sort_by(|a, b| b.bits.cmp(&a.bits).then(a.pc.cmp(&b.pc)));
    rows.truncate(n);
    rows
}

/// One workload's cycle-profiled run: the simulator result plus both
/// attributions and the extracted critical path.
#[derive(Debug)]
pub struct CycleProfiledRun {
    /// The simulator's own result (cycles, ledger, IPC inputs).
    pub result: SimResult,
    /// The per-site attribution of `result.ledger`.
    pub energy: EnergyAttribution,
    /// The per-site attribution of the run's issue bandwidth.
    pub cycles: CycleAttribution,
    /// The retirement critical path.
    pub path: CriticalPath,
}

impl CycleProfiledRun {
    /// Whether both attributions are exact partitions: the energy side
    /// reassembles the ledger bit-for-bit and the cycle side accounts
    /// `cycles × issue_width` slots.
    pub fn exact(&self) -> bool {
        self.energy.ledger() == self.result.ledger && self.cycles.exact()
    }
}

/// Runs one workload under `scheme` with energy, stall and dependence
/// sinks attached, and builds both attributions plus the critical path.
///
/// # Panics
///
/// Panics if the workload program faults (workload kernels never do).
pub fn profile_cycles_workload(w: &Workload, scheme: Scheme, limit: u64) -> CycleProfiledRun {
    let machine = MachineConfig::paper_default();
    let issue_width = machine.issue_width() as u64;
    let mut sim = Simulator::with_sink(
        machine,
        scheme.config(),
        (AttributionSink::new(), (StallSink::new(), DepSink::new())),
    );
    let result = sim
        .run_program(&w.program, limit)
        .unwrap_or_else(|e| panic!("workload {} faulted: {e}", w.name));
    let (energy_sink, (stall_sink, dep_sink)) = sim.into_sink();
    let energy = EnergyAttribution::build(w.name, scheme.label(), &w.program, &energy_sink);
    let cycles = CycleAttribution::build(
        w.name,
        scheme.label(),
        &w.program,
        &stall_sink,
        result.cycles,
        issue_width,
    );
    let path = CriticalPath::extract(&w.program, &dep_sink);
    CycleProfiledRun {
        result,
        energy,
        cycles,
        path,
    }
}

/// Cycle-profiles every workload in `workloads` under `scheme`, fanning
/// out across `jobs` workers. Results come back in workload-index
/// order, so the output is byte-identical to the serial pass for any
/// worker count.
pub fn profile_cycles_suite(
    workloads: &[Workload],
    scheme: Scheme,
    limit: u64,
    jobs: Jobs,
) -> Vec<CycleProfiledRun> {
    map_indexed(jobs, workloads, |_, w| {
        profile_cycles_workload(w, scheme, limit)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_isa::FuClass;
    use fua_trace::{TraceEvent, TraceSink};

    fn program() -> Program {
        let r1 = fua_isa::IntReg::new(1);
        let mut b = fua_isa::ProgramBuilder::new();
        let top = b.new_label();
        b.li(r1, 3);
        b.bind(top);
        b.addi(r1, r1, -1);
        b.bgtz(r1, top);
        b.halt();
        b.build().unwrap()
    }

    fn stall_sink(charges: &[(Option<u32>, StallReason, u32)]) -> StallSink {
        let mut sink = StallSink::new();
        for &(pc, reason, slots) in charges {
            sink.record(&TraceEvent::Stall {
                cycle: 0,
                class: FuClass::IntAlu,
                reason,
                slots,
                pc,
                case: None,
            });
        }
        sink
    }

    #[test]
    fn attribution_resolves_blocks_and_checks_exactness() {
        let p = program();
        let sink = stall_sink(&[
            (Some(1), StallReason::Issued, 1),
            (Some(1), StallReason::OperandWait, 3),
            (None, StallReason::FetchStarved, 6),
        ]);
        let attr = CycleAttribution::build("w", "s", &p, &sink, 1, 10);
        assert_eq!(attr.total_slots(), 10);
        assert!(attr.exact());
        assert_eq!(attr.issued_slots(), 1);
        let short = CycleAttribution::build("w", "s", &p, &sink, 2, 10);
        assert!(!short.exact(), "20 slots expected, 10 accounted");
    }

    #[test]
    fn hotspots_rank_by_stalled_slots_with_dominant_reason() {
        let p = program();
        let sink = stall_sink(&[
            (Some(1), StallReason::OperandWait, 5),
            (Some(1), StallReason::FuBusy, 2),
            (Some(2), StallReason::FuBusy, 3),
            (None, StallReason::FetchStarved, 4),
        ]);
        let attr = CycleAttribution::build("w", "s", &p, &sink, 2, 7);
        let spots = attr.hotspots(10);
        assert_eq!(spots[0].pc, Some(1));
        assert_eq!(spots[0].top_reason, StallReason::OperandWait);
        assert_eq!(spots[0].stalled, 7);
        assert_eq!(spots[1].pc, None);
        assert_eq!(spots[1].block, "frontend");
        assert_eq!(spots[2].pc, Some(2));
        assert!((spots[0].share_pct - 50.0).abs() < 1e-9);
    }

    #[test]
    fn collapsed_stacks_cover_the_whole_issue_bandwidth() {
        let p = program();
        let sink = stall_sink(&[
            (Some(0), StallReason::Issued, 2),
            (Some(1), StallReason::OperandWait, 3),
            (None, StallReason::BranchRecovery, 5),
        ]);
        let attr = CycleAttribution::build("co mp;ress", "s", &p, &sink, 1, 10);
        let stacks = attr.collapsed_stacks();
        let mut total = 0u64;
        for line in stacks.lines() {
            let (frames, weight) = line.rsplit_once(' ').unwrap();
            assert!(frames.starts_with("co_mp_ress;"), "{line}");
            total += weight.parse::<u64>().unwrap();
        }
        assert_eq!(total, attr.total_slots(), "flamegraph covers every slot");
        assert!(stacks.contains(";frontend;branch-recovery 5\n"), "{stacks}");
    }

    #[test]
    fn critical_path_follows_the_latest_producer() {
        let p = program();
        let mut deps = DepSink::new();
        // serial 0: no deps, done at 1. serial 1: no deps, done at 5.
        // serial 2: depends on both; 1 finishes later, so the path is
        // 1 -> 2 and the wait at 2 is operand wait.
        for (serial, dep1, dep2) in [(0, None, None), (1, None, None), (2, Some(0), Some(1))] {
            deps.record(&TraceEvent::Dependence {
                cycle: 0,
                serial,
                pc: serial as u32,
                dep1,
                dep2,
            });
        }
        deps.record(&TraceEvent::Stage {
            stage: fua_trace::Stage::Writeback,
            cycle: 5,
            serial: 1,
            opcode: fua_isa::Opcode::Add,
        });
        deps.record(&TraceEvent::Execute {
            cycle: 5,
            serial: 2,
            class: FuClass::IntAlu,
            module: 0,
            latency: 1,
            opcode: fua_isa::Opcode::Add,
        });
        deps.record(&TraceEvent::Stage {
            stage: fua_trace::Stage::Writeback,
            cycle: 6,
            serial: 2,
            opcode: fua_isa::Opcode::Add,
        });
        let path = CriticalPath::extract(&p, &deps);
        let serials: Vec<u64> = path.nodes().iter().map(|n| n.serial).collect();
        assert_eq!(serials, [1, 2]);
        assert_eq!(path.span_cycles(), 6);
        let tail = &path.nodes()[1];
        assert_eq!(tail.operand_wait, 5, "waited for serial 1 to finish");
        assert_eq!(tail.structural_wait, 0);
        assert_eq!(CriticalPath::extract(&p, &DepSink::new()).nodes().len(), 0);
    }

    #[test]
    fn joint_table_merges_energy_and_slot_charges_by_pc() {
        let p = program();
        let mut energy_sink = AttributionSink::new();
        energy_sink.record(&TraceEvent::Energy {
            cycle: 0,
            serial: 0,
            pc: 1,
            class: FuClass::IntAlu,
            module: 0,
            case: fua_isa::Case::C00,
            bits: 12,
        });
        let energy = EnergyAttribution::build("w", "s", &p, &energy_sink);
        let sink = stall_sink(&[
            (Some(1), StallReason::Issued, 1),
            (Some(1), StallReason::OperandWait, 4),
            (Some(2), StallReason::FuBusy, 2),
        ]);
        let cycles = CycleAttribution::build("w", "s", &p, &sink, 1, 7);
        let rows = joint_table(&energy, &cycles, 10);
        assert_eq!(rows[0].pc, 1);
        assert_eq!(rows[0].bits, 12);
        assert_eq!(rows[0].issued_slots, 1);
        assert_eq!(rows[0].stalled_slots, 4);
        assert!((rows[0].bits_per_op - 12.0).abs() < 1e-9);
        assert_eq!(rows[1].pc, 2, "slot-only PCs still appear");
        assert_eq!(rows[1].bits, 0);
    }

    #[test]
    fn profiled_runs_partition_the_issue_bandwidth_exactly() {
        let w = fua_workloads::by_name("compress", 1).unwrap();
        let run = profile_cycles_workload(&w, Scheme::Lut4, 2_000);
        assert!(run.exact(), "both partitions must be exact");
        assert_eq!(
            run.cycles.total_slots(),
            run.result.cycles * 10,
            "paper machine has 10 issue slots per cycle"
        );
        assert!(!run.path.nodes().is_empty());
        assert!(run.path.span_cycles() <= run.result.cycles);
    }

    #[test]
    fn parallel_cycle_profiling_matches_serial() {
        let workloads: Vec<Workload> = ["compress", "turb3d"]
            .iter()
            .map(|n| fua_workloads::by_name(n, 1).unwrap())
            .collect();
        let serial = profile_cycles_suite(&workloads, Scheme::Lut4, 1_500, Jobs::serial());
        let parallel = profile_cycles_suite(&workloads, Scheme::Lut4, 1_500, Jobs::new(4).unwrap());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.cycles, p.cycles);
            assert_eq!(s.path, p.path);
            assert_eq!(s.cycles.collapsed_stacks(), p.cycles.collapsed_stacks());
        }
    }
}
