//! The attribution sink: folds [`TraceEvent::Energy`] provenance into
//! per-site switched-bit counters.

use std::collections::BTreeMap;

use fua_isa::{Case, FuClass};
use fua_power::EnergyLedger;
use fua_trace::{TraceEvent, TraceSink};

/// One static charge site: the issuing PC plus where the charge landed
/// (FU class and module) and the information-bit case that steered it.
///
/// The ordering is derived, so a `BTreeMap` keyed by `SiteKey` iterates
/// in a deterministic (pc, class, module, case) order regardless of the
/// order charges arrived in — the property the parallel merge and every
/// rendered report rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteKey {
    /// Static program counter (instruction index) of the issuing
    /// instruction.
    pub pc: u32,
    /// The FU class charged.
    pub class: FuClass,
    /// The module whose input latches toggled.
    pub module: u8,
    /// The instruction's information-bit case at steering time.
    pub case: Case,
}

/// Accumulated charges for one [`SiteKey`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteStat {
    /// Switched input bits charged at this site.
    pub bits: u64,
    /// Operations issued from this site.
    pub ops: u64,
}

impl SiteStat {
    fn add(&mut self, other: SiteStat) {
        self.bits += other.bits;
        self.ops += other.ops;
    }
}

/// A [`TraceSink`] that partitions the energy ledger by static site.
///
/// Every [`TraceEvent::Energy`] is counted in exactly one [`SiteKey`]
/// bucket, so the column sums reproduce the simulator's own
/// [`EnergyLedger`] bit-for-bit — see [`ledger`](AttributionSink::ledger).
/// All other events are ignored. [`merge`](AttributionSink::merge) is
/// associative and key-ordered, so per-workload sinks merged in
/// workload-index order equal one sink threaded through a serial run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttributionSink {
    sites: BTreeMap<SiteKey, SiteStat>,
}

impl AttributionSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The per-site stats, in (pc, class, module, case) order.
    pub fn sites(&self) -> impl Iterator<Item = (&SiteKey, &SiteStat)> {
        self.sites.iter()
    }

    /// Distinct charge sites recorded.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Whether no charges have been recorded.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Folds another sink's sites into this one (key-wise addition).
    pub fn merge(&mut self, other: &AttributionSink) {
        for (key, stat) in &other.sites {
            self.sites.entry(*key).or_default().add(*stat);
        }
    }

    /// Per-class switched-bit totals across all sites.
    pub fn switched_totals(&self) -> [u64; 4] {
        let mut totals = [0u64; 4];
        for (key, stat) in &self.sites {
            totals[key.class.index()] += stat.bits;
        }
        totals
    }

    /// Per-class operation totals across all sites.
    pub fn ops_totals(&self) -> [u64; 4] {
        let mut totals = [0u64; 4];
        for (key, stat) in &self.sites {
            totals[key.class.index()] += stat.ops;
        }
        totals
    }

    /// Reassembles the site partition into an [`EnergyLedger`]. For a
    /// sink that observed a whole run, this equals the simulator's own
    /// ledger bit-for-bit — the exact-partition invariant.
    pub fn ledger(&self) -> EnergyLedger {
        let mut ledger = EnergyLedger::new();
        ledger.accumulate(self.switched_totals(), self.ops_totals());
        ledger
    }
}

impl TraceSink for AttributionSink {
    fn record(&mut self, event: &TraceEvent) {
        if let TraceEvent::Energy {
            pc,
            class,
            module,
            case,
            bits,
            ..
        } = *event
        {
            self.sites
                .entry(SiteKey {
                    pc,
                    class,
                    module,
                    case,
                })
                .or_default()
                .add(SiteStat {
                    bits: bits as u64,
                    ops: 1,
                });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn energy(pc: u32, class: FuClass, module: u8, case: Case, bits: u32) -> TraceEvent {
        TraceEvent::Energy {
            cycle: 0,
            serial: 0,
            pc,
            class,
            module,
            case,
            bits,
        }
    }

    #[test]
    fn charges_partition_by_site_and_reassemble_exactly() {
        let mut sink = AttributionSink::new();
        let mut ledger = EnergyLedger::new();
        for (pc, class, module, case, bits) in [
            (3u32, FuClass::IntAlu, 0u8, Case::C00, 5u32),
            (3, FuClass::IntAlu, 0, Case::C00, 2),
            (3, FuClass::IntAlu, 1, Case::C11, 7),
            (9, FuClass::FpAlu, 2, Case::C01, 11),
        ] {
            sink.record(&energy(pc, class, module, case, bits));
            ledger.charge(class, bits);
        }
        assert_eq!(sink.site_count(), 3);
        assert_eq!(sink.ledger(), ledger);
        let first = sink.sites().next().unwrap();
        assert_eq!(first.1.bits, 7, "same-key charges accumulate");
        assert_eq!(first.1.ops, 2);
    }

    #[test]
    fn non_energy_events_are_ignored() {
        let mut sink = AttributionSink::new();
        sink.record(&TraceEvent::CycleSummary {
            cycle: 0,
            window: 3,
            issued: 1,
        });
        assert!(sink.is_empty());
    }

    #[test]
    fn merge_is_order_independent_and_matches_one_sink() {
        let events = [
            energy(1, FuClass::IntAlu, 0, Case::C00, 4),
            energy(2, FuClass::IntMul, 0, Case::C10, 9),
            energy(1, FuClass::IntAlu, 0, Case::C00, 1),
            energy(5, FuClass::FpMul, 0, Case::C11, 2),
        ];
        let mut one = AttributionSink::new();
        for e in &events {
            one.record(e);
        }
        let mut a = AttributionSink::new();
        let mut b = AttributionSink::new();
        for (i, e) in events.iter().enumerate() {
            if i % 2 == 0 {
                a.record(e);
            } else {
                b.record(e);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, one);
        assert_eq!(ba, one);
    }
}
