//! Differential attribution: where one steering scheme saves (or loses)
//! energy relative to another, aligned by static PC.

use fua_isa::{Case, FuClass};
use fua_trace::Json;

use crate::{EnergyAttribution, MAX_MODULES};

/// One PC's movement between two schemes. `delta` is
/// `bits_b - bits_a`: negative means scheme B switched fewer bits at
/// this site (a saving), positive means it lost ground.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcDelta {
    /// Static program counter.
    pub pc: u32,
    /// Basic-block label for the PC.
    pub block: String,
    /// Opcode at the PC.
    pub opcode: String,
    /// Switched bits under scheme A.
    pub bits_a: u64,
    /// Switched bits under scheme B.
    pub bits_b: u64,
    /// `bits_b as i128 - bits_a as i128`.
    pub delta: i128,
}

/// A per-class breakdown of where the two schemes differ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassDelta {
    /// The FU class.
    pub class: FuClass,
    /// Per-module `bits_b - bits_a`, in module order.
    pub module_delta: [i128; MAX_MODULES],
    /// Per-case `bits_b - bits_a`, in [`Case::ALL`] order.
    pub case_delta: [i128; 4],
}

impl ClassDelta {
    /// Whether every module and case moved by zero bits.
    pub fn is_zero(&self) -> bool {
        self.module_delta.iter().all(|&d| d == 0) && self.case_delta.iter().all(|&d| d == 0)
    }
}

/// A PC-aligned comparison of two attributions of the same workload.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionDiff {
    /// The workload both runs executed.
    pub workload: String,
    /// Scheme label of side A (the baseline of the comparison).
    pub scheme_a: String,
    /// Scheme label of side B.
    pub scheme_b: String,
    /// Total switched bits under scheme A.
    pub total_a: u64,
    /// Total switched bits under scheme B.
    pub total_b: u64,
    /// Per-class module/case movements, in [`FuClass::ALL`] order.
    pub classes: Vec<ClassDelta>,
    /// Every PC whose charge moved, sorted by |delta| descending (ties
    /// toward lower PCs).
    pub movers: Vec<PcDelta>,
}

impl AttributionDiff {
    /// Aligns two attributions of the same workload by PC.
    ///
    /// # Panics
    ///
    /// Panics if the two attributions name different workloads — the
    /// comparison would be meaningless.
    pub fn between(a: &EnergyAttribution, b: &EnergyAttribution) -> Self {
        assert_eq!(
            a.workload, b.workload,
            "differential attribution requires the same workload on both sides"
        );
        let bits_a = a.pc_bits();
        let bits_b = b.pc_bits();
        let pcs: std::collections::BTreeSet<u32> =
            bits_a.keys().chain(bits_b.keys()).copied().collect();
        let context = |pc: u32| -> (String, String) {
            // Prefer side B's resolution (same program ⇒ same answer);
            // fall back to A for PCs only it charged.
            for attr in [b, a] {
                if let Some(row) = attr.rows().iter().find(|r| r.key.pc == pc) {
                    return (attr.block_label(row.block).to_string(), row.opcode.clone());
                }
            }
            ("bb?".to_string(), "?".to_string())
        };
        let mut movers: Vec<PcDelta> = pcs
            .into_iter()
            .map(|pc| {
                let ba = bits_a.get(&pc).copied().unwrap_or(0);
                let bb = bits_b.get(&pc).copied().unwrap_or(0);
                let (block, opcode) = context(pc);
                PcDelta {
                    pc,
                    block,
                    opcode,
                    bits_a: ba,
                    bits_b: bb,
                    delta: bb as i128 - ba as i128,
                }
            })
            .filter(|d| d.delta != 0)
            .collect();
        movers.sort_by(|x, y| {
            y.delta
                .unsigned_abs()
                .cmp(&x.delta.unsigned_abs())
                .then(x.pc.cmp(&y.pc))
        });

        let classes = FuClass::ALL
            .iter()
            .map(|&class| {
                let (ma, mb) = (a.module_bits(class), b.module_bits(class));
                let (ca, cb) = (a.case_bits(class), b.case_bits(class));
                let mut module_delta = [0i128; MAX_MODULES];
                for (d, (&x, &y)) in module_delta.iter_mut().zip(ma.iter().zip(mb.iter())) {
                    *d = y as i128 - x as i128;
                }
                let mut case_delta = [0i128; 4];
                for (d, (&x, &y)) in case_delta.iter_mut().zip(ca.iter().zip(cb.iter())) {
                    *d = y as i128 - x as i128;
                }
                ClassDelta {
                    class,
                    module_delta,
                    case_delta,
                }
            })
            .collect();

        AttributionDiff {
            workload: a.workload.clone(),
            scheme_a: a.scheme.clone(),
            scheme_b: b.scheme.clone(),
            total_a: a.total_bits(),
            total_b: b.total_bits(),
            classes,
            movers,
        }
    }

    /// `total_b - total_a`.
    pub fn total_delta(&self) -> i128 {
        self.total_b as i128 - self.total_a as i128
    }

    /// Scheme B's saving relative to A, in percent of A's total
    /// (positive = B switches fewer bits). 0 when A's total is 0.
    pub fn saving_pct(&self) -> f64 {
        if self.total_a == 0 {
            0.0
        } else {
            100.0 * -(self.total_delta() as f64) / self.total_a as f64
        }
    }

    /// Whether the two attributions are bit-for-bit identical.
    pub fn is_zero(&self) -> bool {
        self.movers.is_empty() && self.classes.iter().all(ClassDelta::is_zero)
    }

    /// The diff as a JSON document (used by `--json` output).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("workload", Json::Str(self.workload.clone())),
            ("scheme_a", Json::Str(self.scheme_a.clone())),
            ("scheme_b", Json::Str(self.scheme_b.clone())),
            ("total_a", Json::UInt(self.total_a)),
            ("total_b", Json::UInt(self.total_b)),
            ("saving_pct", Json::Float(self.saving_pct())),
            (
                "classes",
                Json::Arr(
                    self.classes
                        .iter()
                        .filter(|c| !c.is_zero())
                        .map(|c| {
                            Json::obj([
                                ("class", Json::Str(c.class.to_string())),
                                (
                                    "module_delta",
                                    Json::Arr(
                                        c.module_delta
                                            .iter()
                                            .map(|&d| Json::Float(d as f64))
                                            .collect(),
                                    ),
                                ),
                                (
                                    "case_delta",
                                    Json::Arr(
                                        c.case_delta
                                            .iter()
                                            .map(|&d| Json::Float(d as f64))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "movers",
                Json::Arr(
                    self.movers
                        .iter()
                        .map(|m| {
                            Json::obj([
                                ("pc", Json::UInt(m.pc as u64)),
                                ("block", Json::Str(m.block.clone())),
                                ("opcode", Json::Str(m.opcode.clone())),
                                ("bits_a", Json::UInt(m.bits_a)),
                                ("bits_b", Json::UInt(m.bits_b)),
                                ("delta", Json::Float(m.delta as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Aligns per-case deltas with case labels for rendering.
pub fn case_labels() -> [String; 4] {
    Case::ALL.map(|c| c.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttributionSink;
    use fua_isa::{IntReg, Program, ProgramBuilder};
    use fua_trace::{TraceEvent, TraceSink};

    fn program() -> Program {
        let r1 = IntReg::new(1);
        let mut b = ProgramBuilder::new();
        b.li(r1, 3);
        b.addi(r1, r1, -1);
        b.halt();
        b.build().unwrap()
    }

    fn attr(label: &str, charges: &[(u32, u8, u32)]) -> EnergyAttribution {
        let mut sink = AttributionSink::new();
        for &(pc, module, bits) in charges {
            sink.record(&TraceEvent::Energy {
                cycle: 0,
                serial: 0,
                pc,
                class: FuClass::IntAlu,
                module,
                case: Case::C00,
                bits,
            });
        }
        EnergyAttribution::build("w", label, &program(), &sink)
    }

    #[test]
    fn identical_attributions_diff_to_zero() {
        let a = attr("naive", &[(0, 0, 5), (1, 1, 7)]);
        let d = AttributionDiff::between(&a, &a.clone());
        assert!(d.is_zero());
        assert_eq!(d.total_delta(), 0);
        assert_eq!(d.saving_pct(), 0.0);
    }

    #[test]
    fn movers_are_ranked_by_absolute_delta() {
        let a = attr("naive", &[(0, 0, 10), (1, 0, 10)]);
        let b = attr("lut4", &[(0, 0, 2), (1, 0, 9)]);
        let d = AttributionDiff::between(&a, &b);
        assert_eq!(d.movers.len(), 2);
        assert_eq!(d.movers[0].pc, 0);
        assert_eq!(d.movers[0].delta, -8);
        assert_eq!(d.total_delta(), -9);
        assert!((d.saving_pct() - 45.0).abs() < 1e-9);
        let ialu = &d.classes[FuClass::IntAlu.index()];
        assert_eq!(ialu.module_delta[0], -9);
        assert_eq!(ialu.case_delta[Case::C00.index()], -9);
    }

    #[test]
    fn pcs_charged_on_only_one_side_still_align() {
        let a = attr("naive", &[(0, 0, 4)]);
        let b = attr("lut4", &[(1, 0, 6)]);
        let d = AttributionDiff::between(&a, &b);
        assert_eq!(d.movers.len(), 2);
        let gone = d.movers.iter().find(|m| m.pc == 0).unwrap();
        assert_eq!((gone.bits_a, gone.bits_b, gone.delta), (4, 0, -4));
        let new = d.movers.iter().find(|m| m.pc == 1).unwrap();
        assert_eq!((new.bits_a, new.bits_b, new.delta), (0, 6, 6));
        assert_ne!(new.opcode, "?", "context comes from whichever side has it");
    }

    #[test]
    #[should_panic(expected = "same workload")]
    fn mismatched_workloads_panic() {
        let a = attr("naive", &[(0, 0, 4)]);
        let mut sink = AttributionSink::new();
        sink.record(&TraceEvent::Energy {
            cycle: 0,
            serial: 0,
            pc: 0,
            class: FuClass::IntAlu,
            module: 0,
            case: Case::C00,
            bits: 1,
        });
        let other = EnergyAttribution::build("other", "lut4", &program(), &sink);
        AttributionDiff::between(&a, &other);
    }
}
