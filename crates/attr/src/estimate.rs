//! The static-vs-dynamic join: checks a [`TransitionEstimate`]'s per-PC
//! bounds against exact measured attribution, and summarises how tight
//! they are.
//!
//! Soundness is per PC: `bits_per_op × ops(pc)` must dominate the bits
//! the [`EnergyAttribution`] measured at that PC, for every scheme whose
//! swap behaviour the estimate's [`SwapModel`](fua_analysis::SwapModel)
//! covers. Precision is the aggregate `bound / actual` ratio, with the
//! least precise basic block called out so regressions have an address.

use std::collections::BTreeMap;

use fua_analysis::{estimate_transitions, TransitionEstimate};
use fua_exec::{map_indexed, Jobs};
use fua_workloads::Workload;

use crate::{attribute_workload, EnergyAttribution, Scheme};

/// One soundness violation: a PC whose measured switched bits exceed
/// the static bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundViolation {
    /// The offending static PC.
    pub pc: u32,
    /// `bits_per_op × ops` — the static ceiling for the PC.
    pub bound_bits: u64,
    /// The bits the attribution actually measured there.
    pub actual_bits: u64,
    /// Operations issued from the PC.
    pub ops: u64,
}

/// The result of checking one workload's estimate against one measured
/// attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateCheck {
    /// The workload checked.
    pub workload: String,
    /// The scheme label the attribution ran under.
    pub scheme: String,
    /// Charged PCs compared.
    pub pcs: usize,
    /// `Σ bits_per_op × ops` over the charged PCs.
    pub bound_bits: u64,
    /// `Σ measured bits` over the charged PCs.
    pub actual_bits: u64,
    /// Every PC whose measurement exceeds its bound (empty = sound).
    pub violations: Vec<BoundViolation>,
    /// `(block label, bound/actual ratio)` of the least precise block
    /// among blocks with a non-zero measurement.
    pub worst_block: Option<(String, f64)>,
}

impl EstimateCheck {
    /// Whether every per-PC bound dominated its measurement.
    pub fn sound(&self) -> bool {
        self.violations.is_empty()
    }

    /// The aggregate `bound / actual` ratio (1.0 would be an exact
    /// estimate; soundness requires ≥ 1.0 in aggregate). A run with no
    /// measured bits reports 1.0.
    pub fn ratio(&self) -> f64 {
        if self.actual_bits == 0 {
            1.0
        } else {
            self.bound_bits as f64 / self.actual_bits as f64
        }
    }
}

/// Joins a static estimate with a measured attribution of the same
/// program.
///
/// Every PC the attribution charged is compared against its static
/// bound; a charged PC with *no* bound (impossible for an estimate of
/// the same program, since executed code is reachable) counts as a
/// violation with a zero ceiling rather than a panic, so foreign data
/// degrades loudly but safely.
pub fn check_attribution(est: &TransitionEstimate, attr: &EnergyAttribution) -> EstimateCheck {
    // Collapse the (pc, class, module, case) rows to per-PC totals.
    let mut per_pc: BTreeMap<u32, (u64, u64, Option<usize>)> = BTreeMap::new();
    for row in attr.rows() {
        let entry = per_pc.entry(row.key.pc).or_insert((0, 0, row.block));
        entry.0 += row.stat.bits;
        entry.1 += row.stat.ops;
    }

    let mut bound_bits = 0u64;
    let mut actual_bits = 0u64;
    let mut violations = Vec::new();
    let mut per_block: BTreeMap<Option<usize>, (u64, u64)> = BTreeMap::new();
    for (&pc, &(bits, ops, block)) in &per_pc {
        let ceiling = est
            .bound_of(pc as usize)
            .map_or(0, |b| b.bits_per_op as u64 * ops);
        bound_bits += ceiling;
        actual_bits += bits;
        if bits > ceiling {
            violations.push(BoundViolation {
                pc,
                bound_bits: ceiling,
                actual_bits: bits,
                ops,
            });
        }
        let blk = per_block.entry(block).or_insert((0, 0));
        blk.0 += ceiling;
        blk.1 += bits;
    }

    let worst_block = per_block
        .iter()
        .filter(|(_, &(_, bits))| bits > 0)
        .map(|(&block, &(bound, bits))| {
            (
                attr.block_label(block).to_string(),
                bound as f64 / bits as f64,
            )
        })
        .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0.cmp(&a.0)));

    EstimateCheck {
        workload: attr.workload.clone(),
        scheme: attr.scheme.clone(),
        pcs: per_pc.len(),
        bound_bits,
        actual_bits,
        violations,
        worst_block,
    }
}

/// Estimates `w` under `scheme`'s swap model, runs the exact dynamic
/// attribution, and joins the two.
pub fn check_workload(w: &Workload, scheme: Scheme, limit: u64) -> EstimateCheck {
    let est = estimate_transitions(&w.program, scheme.swap_model());
    let run = attribute_workload(w, scheme, limit);
    check_attribution(&est, &run.attribution)
}

/// Checks every workload under `scheme`, fanning out across `jobs`
/// workers. Results come back in workload-index order, so the output is
/// byte-identical to the serial pass for any worker count.
pub fn check_suite(
    workloads: &[Workload],
    scheme: Scheme,
    limit: u64,
    jobs: Jobs,
) -> Vec<EstimateCheck> {
    map_indexed(jobs, workloads, |_, w| check_workload(w, scheme, limit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_analysis::SwapModel;

    #[test]
    fn compress_bounds_dominate_measurement_under_every_scheme() {
        let w = fua_workloads::by_name("compress", 1).unwrap();
        for scheme in Scheme::ALL {
            let check = check_workload(&w, scheme, 2_000);
            assert!(
                check.sound(),
                "{}: {:?}",
                scheme.name(),
                check.violations.first()
            );
            assert!(check.pcs > 0);
            assert!(check.ratio() >= 1.0, "{}: {}", scheme.name(), check.ratio());
            assert!(check.worst_block.is_some());
        }
    }

    #[test]
    fn a_deflated_bound_is_reported_as_a_violation() {
        // Fabricate the mismatch directly: an estimate of a bare-halt
        // program carries no bounds, so every PC the real run charged
        // violates its zero ceiling.
        let w = fua_workloads::by_name("compress", 1).unwrap();
        let run = attribute_workload(&w, Scheme::Lut4, 2_000);
        let mut b = fua_isa::ProgramBuilder::new();
        b.halt();
        let est = estimate_transitions(&b.build().unwrap(), SwapModel::Either);
        let check = check_attribution(&est, &run.attribution);
        assert!(!check.sound());
        assert_eq!(check.bound_bits, 0);
        assert!(check.actual_bits > 0);
    }

    #[test]
    fn parallel_checks_match_serial() {
        let workloads: Vec<Workload> = ["compress", "turb3d"]
            .iter()
            .map(|n| fua_workloads::by_name(n, 1).unwrap())
            .collect();
        let serial = check_suite(&workloads, Scheme::Lut4, 1_500, Jobs::serial());
        let parallel = check_suite(&workloads, Scheme::Lut4, 1_500, Jobs::new(3).unwrap());
        assert_eq!(serial, parallel);
    }
}
