//! Named steering schemes and attribution runners — the glue the
//! `fua profile-energy` front end drives.

use fua_analysis::SwapModel;
use fua_exec::{map_indexed, Jobs};
use fua_sim::{MachineConfig, SimResult, Simulator, SteeringConfig};
use fua_steer::SteeringKind;
use fua_workloads::Workload;

use crate::{AttributionSink, EnergyAttribution};

/// A steering scheme addressable by name on the command line.
///
/// Every scheme except [`Naive`](Scheme::Naive) includes the paper's
/// hardware swap rules, mirroring the Figure-4 "hardware" bars.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// The unmodified baseline machine: FCFS steering, no swapping.
    Naive,
    /// Full Hamming-distance steering + hardware swap.
    FullHam,
    /// 1-bit Hamming steering + hardware swap.
    OneBitHam,
    /// 2-bit LUT steering + hardware swap.
    Lut2,
    /// 4-bit LUT steering + hardware swap (the paper's recommendation).
    Lut4,
    /// 8-bit LUT steering + hardware swap.
    Lut8,
}

impl Scheme {
    /// Every named scheme, in Figure-4 bar order.
    pub const ALL: [Scheme; 6] = [
        Scheme::FullHam,
        Scheme::OneBitHam,
        Scheme::Lut4,
        Scheme::Lut2,
        Scheme::Lut8,
        Scheme::Naive,
    ];

    /// The command-line spelling.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Naive => "naive",
            Scheme::FullHam => "fullham",
            Scheme::OneBitHam => "1bitham",
            Scheme::Lut2 => "lut2",
            Scheme::Lut4 => "lut4",
            Scheme::Lut8 => "lut8",
        }
    }

    /// The human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Naive => "Original",
            Scheme::FullHam => "Full Ham + hw swap",
            Scheme::OneBitHam => "1-bit Ham + hw swap",
            Scheme::Lut2 => "2-bit LUT + hw swap",
            Scheme::Lut4 => "4-bit LUT + hw swap",
            Scheme::Lut8 => "8-bit LUT + hw swap",
        }
    }

    /// The operand-order model the static switched-bit estimator must
    /// assume for this scheme: the naive machine never swaps operands,
    /// every hardware-swap scheme may latch a commutative operation in
    /// either order.
    pub fn swap_model(self) -> SwapModel {
        match self {
            Scheme::Naive => SwapModel::Direct,
            _ => SwapModel::Either,
        }
    }

    /// Builds the steering configuration for a simulation run.
    pub fn config(self) -> SteeringConfig {
        match self {
            Scheme::Naive => SteeringConfig::original(),
            Scheme::FullHam => SteeringConfig::paper_scheme(SteeringKind::FullHam, true),
            Scheme::OneBitHam => SteeringConfig::paper_scheme(SteeringKind::OneBitHam, true),
            Scheme::Lut2 => SteeringConfig::paper_scheme(SteeringKind::Lut { slots: 1 }, true),
            Scheme::Lut4 => SteeringConfig::paper_scheme(SteeringKind::Lut { slots: 2 }, true),
            Scheme::Lut8 => SteeringConfig::paper_scheme(SteeringKind::Lut { slots: 4 }, true),
        }
    }
}

impl std::str::FromStr for Scheme {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "naive" | "original" => Ok(Scheme::Naive),
            "fullham" | "full-ham" => Ok(Scheme::FullHam),
            "1bitham" | "1-bit-ham" | "onebitham" => Ok(Scheme::OneBitHam),
            "lut2" => Ok(Scheme::Lut2),
            "lut4" => Ok(Scheme::Lut4),
            "lut8" => Ok(Scheme::Lut8),
            other => Err(format!(
                "unknown scheme '{other}' (expected one of: naive, fullham, 1bitham, \
                 lut2, lut4, lut8)"
            )),
        }
    }
}

/// One workload's attributed run: the simulator result plus the built
/// attribution of its energy ledger.
#[derive(Debug)]
pub struct AttributedRun {
    /// The simulator's own result (ledger, cycles, IPC inputs).
    pub result: SimResult,
    /// The per-site attribution of `result.ledger`.
    pub attribution: EnergyAttribution,
}

impl AttributedRun {
    /// Whether the attribution reassembles the simulator's ledger
    /// bit-for-bit — the exact-partition invariant.
    pub fn exact(&self) -> bool {
        self.attribution.ledger() == self.result.ledger
    }
}

/// Runs one workload under `scheme` with an [`AttributionSink`] attached
/// and resolves the sites against the workload's CFG.
///
/// # Panics
///
/// Panics if the workload program faults (workload kernels never do).
pub fn attribute_workload(w: &Workload, scheme: Scheme, limit: u64) -> AttributedRun {
    attribute_with_config(w, scheme.config(), scheme.label(), limit)
}

/// Runs one workload under an arbitrary steering configuration. The
/// estimator soundness tests use this to cover the swap-disabled
/// variants no named [`Scheme`] exposes.
///
/// # Panics
///
/// Panics if the workload program faults (workload kernels never do).
pub fn attribute_with_config(
    w: &Workload,
    config: SteeringConfig,
    label: &str,
    limit: u64,
) -> AttributedRun {
    let mut sim = Simulator::with_sink(
        MachineConfig::paper_default(),
        config,
        AttributionSink::new(),
    );
    let result = sim
        .run_program(&w.program, limit)
        .unwrap_or_else(|e| panic!("workload {} faulted: {e}", w.name));
    let sink = sim.into_sink();
    let attribution = EnergyAttribution::build(w.name, label, &w.program, &sink);
    AttributedRun {
        result,
        attribution,
    }
}

/// Attributes every workload in `workloads` under `scheme`, fanning out
/// across `jobs` workers. Results come back in workload-index order, so
/// the output is byte-identical to the serial pass for any worker count.
pub fn attribute_suite(
    workloads: &[Workload],
    scheme: Scheme,
    limit: u64,
    jobs: Jobs,
) -> Vec<AttributedRun> {
    map_indexed(jobs, workloads, |_, w| attribute_workload(w, scheme, limit))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_names_round_trip_through_parsing() {
        for scheme in Scheme::ALL {
            assert_eq!(scheme.name().parse::<Scheme>().unwrap(), scheme);
        }
        assert_eq!("LUT4".parse::<Scheme>().unwrap(), Scheme::Lut4);
        assert_eq!("original".parse::<Scheme>().unwrap(), Scheme::Naive);
        let err = "lut16".parse::<Scheme>().unwrap_err();
        assert!(err.contains("lut16") && err.contains("lut4"), "{err}");
    }

    #[test]
    fn attributed_runs_are_exact_partitions() {
        let w = fua_workloads::by_name("compress", 1).unwrap();
        let run = attribute_workload(&w, Scheme::Lut4, 2_000);
        assert!(run.exact());
        assert!(run.attribution.total_bits() > 0);
        assert_eq!(run.attribution.workload, "compress");
    }

    #[test]
    fn parallel_attribution_matches_serial() {
        let workloads: Vec<Workload> = ["compress", "turb3d"]
            .iter()
            .map(|n| fua_workloads::by_name(n, 1).unwrap())
            .collect();
        let serial = attribute_suite(&workloads, Scheme::Lut4, 1_500, Jobs::serial());
        let parallel = attribute_suite(&workloads, Scheme::Lut4, 1_500, Jobs::new(4).unwrap());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.attribution, p.attribution);
            assert_eq!(
                s.attribution.collapsed_stacks(),
                p.attribution.collapsed_stacks()
            );
        }
    }
}
