//! Dynamic instruction records emitted by the interpreter.

use fua_isa::{Case, FuClass, Opcode, Reg, Word};

/// A functional-unit operation with resolved operand values — the bits the
/// FU's input latches will see when the operation issues.
///
/// For memory instructions this is the *effective-address add* executed on
/// an integer ALU (`OP1` = base register value, `OP2` = sign-extended
/// offset). For unary FP operations the second input port latches zero.
///
/// # Examples
///
/// ```
/// use fua_isa::{Case, FuClass, Word};
/// use fua_vm::FuOp;
///
/// let op = FuOp {
///     class: FuClass::IntAlu,
///     op1: Word::int(3),
///     op2: Word::int(-1),
///     commutative: true,
/// };
/// assert_eq!(op.case(), Case::C01);
/// assert_eq!(op.swapped().case(), Case::C10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuOp {
    /// Which FU pool executes the operation.
    pub class: FuClass,
    /// First input-port value.
    pub op1: Word,
    /// Second input-port value.
    pub op2: Word,
    /// Whether hardware may swap the two ports (the paper's
    /// `Commutative(Ij)`).
    pub commutative: bool,
}

impl FuOp {
    /// The instruction's case: concatenated information bits of both ports.
    #[inline]
    pub fn case(&self) -> Case {
        Case::of_operands(self.op1, self.op2)
    }

    /// The instruction's case as a pre-decoded 2-bit index
    /// (`op1_bit << 1 | op2_bit`), for hot paths that carry the case
    /// through operand swaps with [`Case::swap_index`] instead of
    /// re-inspecting the operand words. `Case::from_index_masked`
    /// recovers the [`Case`] branchlessly.
    #[inline]
    pub fn case_bits(&self) -> u8 {
        ((self.op1.info_bit() as u8) << 1) | (self.op2.info_bit() as u8)
    }

    /// The operation with its ports exchanged (callers must check
    /// [`FuOp::commutative`] for legality).
    #[inline]
    pub fn swapped(&self) -> FuOp {
        FuOp {
            class: self.class,
            op1: self.op2,
            op2: self.op1,
            commutative: self.commutative,
        }
    }
}

/// A memory access performed by a load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Byte address of the access.
    pub addr: u32,
    /// `true` for loads, `false` for stores.
    pub is_load: bool,
    /// Access width in bytes (4 or 8).
    pub width: u8,
}

/// A resolved control-transfer outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchInfo {
    /// Whether the branch was taken (always `true` for jumps).
    pub taken: bool,
    /// Instruction index control transfers to when taken.
    pub target: u32,
    /// Whether the transfer is unconditional.
    pub unconditional: bool,
}

/// One retired dynamic instruction.
///
/// Every retired instruction produces a `DynOp`, including those that
/// occupy no functional unit (jumps, halts, decode-level constant loads) —
/// the timing model still spends fetch/decode bandwidth on them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynOp {
    /// Program-order serial number (0-based).
    pub serial: u64,
    /// Index of the static instruction that produced this record.
    pub static_idx: u32,
    /// The opcode.
    pub opcode: Opcode,
    /// The functional-unit operation, if the instruction uses an FU.
    pub fu: Option<FuOp>,
    /// The memory access, for loads and stores.
    pub mem: Option<MemAccess>,
    /// The branch outcome, for control transfers.
    pub branch: Option<BranchInfo>,
    /// Source registers read (dependence tracking).
    pub srcs: [Option<Reg>; 2],
    /// Destination register written, if any.
    pub dst: Option<Reg>,
}

impl DynOp {
    /// Convenience accessor: the FU class, if the instruction executes on
    /// one.
    #[inline]
    pub fn fu_class(&self) -> Option<FuClass> {
        self.fu.map(|f| f.class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuop_swap_exchanges_ports() {
        let op = FuOp {
            class: FuClass::FpAlu,
            op1: Word::fp(1.0),
            op2: Word::fp(0.1),
            commutative: true,
        };
        let s = op.swapped();
        assert_eq!(s.op1, Word::fp(0.1));
        assert_eq!(s.op2, Word::fp(1.0));
        assert_eq!(s.swapped(), op);
    }

    #[test]
    fn case_tracks_info_bits() {
        let op = FuOp {
            class: FuClass::IntAlu,
            op1: Word::int(-5),
            op2: Word::int(9),
            commutative: false,
        };
        assert_eq!(op.case(), Case::C10);
    }
}
