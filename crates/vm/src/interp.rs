//! The interpreter proper.

use fua_isa::{FpReg, FuClass, Inst, IntReg, Opcode, Program, Reg, Src, Word};

use crate::{BranchInfo, DynOp, FuOp, MemAccess, VmError};

/// Default data-memory size (1 MiB), plenty for every bundled workload.
pub const DEFAULT_MEM_BYTES: usize = 1 << 20;

/// A fully materialised execution trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// The retired instructions, in program order.
    pub ops: Vec<DynOp>,
    /// Whether the program reached `halt` (as opposed to the step limit).
    pub halted: bool,
}

/// Architectural interpreter: registers, memory, and a program counter.
///
/// See the crate-level docs for an end-to-end example. For long workloads
/// prefer [`Vm::run_with`], which streams [`DynOp`]s to a callback instead
/// of materialising a [`Trace`].
#[derive(Debug, Clone)]
pub struct Vm<'p> {
    program: &'p Program,
    iregs: [i32; 32],
    fregs: [f64; 32],
    mem: Vec<u8>,
    pc: u32,
    serial: u64,
    halted: bool,
}

impl<'p> Vm<'p> {
    /// Creates a VM with [`DEFAULT_MEM_BYTES`] of memory, initialised with
    /// the program's data image at address 0.
    pub fn new(program: &'p Program) -> Self {
        Self::with_mem_bytes(program, DEFAULT_MEM_BYTES.max(program.data().len()))
    }

    /// Creates a VM with a custom memory size.
    ///
    /// # Panics
    ///
    /// Panics if `mem_bytes` is smaller than the program's data image.
    pub fn with_mem_bytes(program: &'p Program, mem_bytes: usize) -> Self {
        assert!(
            mem_bytes >= program.data().len(),
            "memory smaller than the program's data image"
        );
        let mut mem = vec![0u8; mem_bytes];
        mem[..program.data().len()].copy_from_slice(program.data());
        Vm {
            program,
            iregs: [0; 32],
            fregs: [0.0; 32],
            mem,
            pc: 0,
            serial: 0,
            halted: false,
        }
    }

    /// Current value of an integer register.
    #[inline]
    pub fn int_reg(&self, r: IntReg) -> i32 {
        self.iregs[r.index()]
    }

    /// Current value of a floating-point register.
    #[inline]
    pub fn fp_reg(&self, r: FpReg) -> f64 {
        self.fregs[r.index()]
    }

    /// Sets an integer register (useful for parameterising workloads).
    #[inline]
    pub fn set_int_reg(&mut self, r: IntReg, v: i32) {
        self.iregs[r.index()] = v;
    }

    /// Sets a floating-point register.
    #[inline]
    pub fn set_fp_reg(&mut self, r: FpReg, v: f64) {
        self.fregs[r.index()] = v;
    }

    /// Whether the program has executed `halt`.
    #[inline]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions retired so far.
    #[inline]
    pub fn retired(&self) -> u64 {
        self.serial
    }

    /// The full data-memory image (for whole-state comparisons, e.g.
    /// verifying that a transformed program computes the same result).
    #[inline]
    pub fn memory(&self) -> &[u8] {
        &self.mem
    }

    /// Snapshot of the integer register file.
    #[inline]
    pub fn int_regs(&self) -> [i32; 32] {
        self.iregs
    }

    /// Snapshot of the floating-point register file.
    #[inline]
    pub fn fp_regs(&self) -> [f64; 32] {
        self.fregs
    }

    /// Reads a 32-bit word from data memory (for checking results).
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on out-of-bounds or unaligned access.
    pub fn read_word(&self, addr: u32) -> Result<i32, VmError> {
        let b = self.load_bytes::<4>(addr)?;
        Ok(i32::from_le_bytes(b))
    }

    /// Reads a double from data memory.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on out-of-bounds or unaligned access.
    pub fn read_double(&self, addr: u32) -> Result<f64, VmError> {
        let b = self.load_bytes::<8>(addr)?;
        Ok(f64::from_bits(u64::from_le_bytes(b)))
    }

    /// Executes until `halt` or until `limit` instructions have retired,
    /// collecting the full trace.
    ///
    /// # Errors
    ///
    /// Propagates the first [`VmError`] raised by any instruction.
    pub fn run(&mut self, limit: u64) -> Result<Trace, VmError> {
        let mut ops = Vec::new();
        self.run_with(limit, |op| ops.push(op))?;
        Ok(Trace {
            ops,
            halted: self.halted,
        })
    }

    /// Streaming variant of [`Vm::run`]: calls `sink` for every retired
    /// instruction without materialising the trace.
    ///
    /// # Errors
    ///
    /// Propagates the first [`VmError`] raised by any instruction.
    pub fn run_with(&mut self, limit: u64, mut sink: impl FnMut(DynOp)) -> Result<(), VmError> {
        for _ in 0..limit {
            match self.step()? {
                Some(op) => sink(op),
                None => break,
            }
        }
        Ok(())
    }

    /// Retires one instruction, returning its [`DynOp`], or `None` if the
    /// VM has already halted.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on memory faults, malformed instructions, or a
    /// program counter outside the text.
    pub fn step(&mut self) -> Result<Option<DynOp>, VmError> {
        if self.halted {
            return Ok(None);
        }
        let pc = self.pc;
        if pc as usize >= self.program.len() {
            return Err(VmError::PcOutOfRange { pc });
        }
        let inst = *self.program.inst(pc as usize);
        let op = self.exec(pc, &inst)?;
        self.serial += 1;
        Ok(Some(op))
    }

    // --- execution helpers ---

    fn ivalue(&self, pc: u32, src: Src) -> Result<i32, VmError> {
        match src {
            Src::IReg(r) => Ok(self.iregs[r.index()]),
            Src::Imm(v) => Ok(v),
            _ => Err(VmError::MalformedInst { index: pc }),
        }
    }

    fn fvalue(&self, pc: u32, src: Src) -> Result<f64, VmError> {
        match src {
            Src::FReg(r) => Ok(self.fregs[r.index()]),
            Src::FImm(b) => Ok(f64::from_bits(b)),
            _ => Err(VmError::MalformedInst { index: pc }),
        }
    }

    fn write_dst(&mut self, pc: u32, dst: Option<Reg>, value: Word) -> Result<(), VmError> {
        match (dst, value) {
            (Some(Reg::Int(r)), Word::Int(v)) => {
                self.iregs[r.index()] = v as i32;
                Ok(())
            }
            (Some(Reg::Fp(r)), Word::Fp(b)) => {
                self.fregs[r.index()] = f64::from_bits(b);
                Ok(())
            }
            _ => Err(VmError::MalformedInst { index: pc }),
        }
    }

    fn check_access(&self, addr: u32, width: u8) -> Result<usize, VmError> {
        if !addr.is_multiple_of(width as u32) {
            return Err(VmError::UnalignedAccess { addr, width });
        }
        let end = addr as u64 + width as u64;
        if end > self.mem.len() as u64 {
            return Err(VmError::OutOfBoundsMemory {
                addr,
                width,
                mem_bytes: self.mem.len() as u32,
            });
        }
        Ok(addr as usize)
    }

    fn load_bytes<const N: usize>(&self, addr: u32) -> Result<[u8; N], VmError> {
        let base = self.check_access(addr, N as u8)?;
        let mut out = [0u8; N];
        out.copy_from_slice(&self.mem[base..base + N]);
        Ok(out)
    }

    fn store_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), VmError> {
        let base = self.check_access(addr, bytes.len() as u8)?;
        self.mem[base..base + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    fn srcs_of(inst: &Inst) -> [Option<Reg>; 2] {
        [inst.src1.reg(), inst.src2.reg()]
    }

    #[allow(clippy::too_many_lines)]
    fn exec(&mut self, pc: u32, inst: &Inst) -> Result<DynOp, VmError> {
        use Opcode::*;

        let mut fu = None;
        let mut mem = None;
        let mut branch = None;
        let mut next_pc = pc + 1;

        match inst.op {
            // --- integer ALU and multiplier ---
            Add | Sub | And | Or | Xor | Nor | Sll | Srl | Sra | Slt | Sle | Sgt | Sge | Seq
            | Sne | Li | Mul | Div | Rem => {
                let a = self.ivalue(pc, inst.src1)?;
                let b = self.ivalue(pc, inst.src2)?;
                let result = int_alu(inst.op, a, b);
                fu = Some(FuOp {
                    class: inst.op.fu_class().expect("integer op has an FU"),
                    op1: Word::int(a),
                    op2: Word::int(b),
                    commutative: inst.op.commutative(),
                });
                self.write_dst(pc, inst.dst, Word::int(result))?;
            }

            // --- floating-point adder/subtractor unit ---
            FAdd | FSub => {
                let a = self.fvalue(pc, inst.src1)?;
                let b = self.fvalue(pc, inst.src2)?;
                let result = if inst.op == FAdd { a + b } else { a - b };
                fu = Some(FuOp {
                    class: FuClass::FpAlu,
                    op1: Word::fp(a),
                    op2: Word::fp(b),
                    commutative: inst.op.commutative(),
                });
                self.write_dst(pc, inst.dst, Word::fp(result))?;
            }
            FCmpLt | FCmpLe | FCmpGt | FCmpGe | FCmpEq | FCmpNe => {
                let a = self.fvalue(pc, inst.src1)?;
                let b = self.fvalue(pc, inst.src2)?;
                let result = match inst.op {
                    FCmpLt => a < b,
                    FCmpLe => a <= b,
                    FCmpGt => a > b,
                    FCmpGe => a >= b,
                    FCmpEq => a == b,
                    _ => a != b,
                };
                fu = Some(FuOp {
                    class: FuClass::FpAlu,
                    op1: Word::fp(a),
                    op2: Word::fp(b),
                    commutative: inst.op.commutative(),
                });
                self.write_dst(pc, inst.dst, Word::int(result as i32))?;
            }
            CvtIf => {
                let v = self.ivalue(pc, inst.src1)?;
                // The FPAU's input bus carries the 64-bit sign-extended
                // integer; its mantissa-range bits are what the power model
                // sees.
                fu = Some(FuOp {
                    class: FuClass::FpAlu,
                    op1: Word::Fp(v as i64 as u64),
                    op2: Word::fp(0.0),
                    commutative: false,
                });
                self.write_dst(pc, inst.dst, Word::fp(v as f64))?;
            }
            CvtFi => {
                let v = self.fvalue(pc, inst.src1)?;
                fu = Some(FuOp {
                    class: FuClass::FpAlu,
                    op1: Word::fp(v),
                    op2: Word::fp(0.0),
                    commutative: false,
                });
                self.write_dst(pc, inst.dst, Word::int(v as i32))?;
            }
            FNeg | FAbs | FMov => {
                let v = self.fvalue(pc, inst.src1)?;
                let result = match inst.op {
                    FNeg => -v,
                    FAbs => v.abs(),
                    _ => v,
                };
                fu = Some(FuOp {
                    class: FuClass::FpAlu,
                    op1: Word::fp(v),
                    op2: Word::fp(0.0),
                    commutative: false,
                });
                self.write_dst(pc, inst.dst, Word::fp(result))?;
            }

            // --- floating-point multiplier/divider ---
            FMul | FDiv => {
                let a = self.fvalue(pc, inst.src1)?;
                let b = self.fvalue(pc, inst.src2)?;
                let result = if inst.op == FMul { a * b } else { a / b };
                fu = Some(FuOp {
                    class: FuClass::FpMul,
                    op1: Word::fp(a),
                    op2: Word::fp(b),
                    commutative: inst.op.commutative(),
                });
                self.write_dst(pc, inst.dst, Word::fp(result))?;
            }

            // --- memory ---
            Lw | Lf => {
                let base = self.ivalue(pc, inst.src1)?;
                let addr = base.wrapping_add(inst.imm) as u32;
                fu = Some(agu_op(base, inst.imm));
                if inst.op == Lw {
                    let b = self.load_bytes::<4>(addr)?;
                    mem = Some(MemAccess {
                        addr,
                        is_load: true,
                        width: 4,
                    });
                    self.write_dst(pc, inst.dst, Word::int(i32::from_le_bytes(b)))?;
                } else {
                    let b = self.load_bytes::<8>(addr)?;
                    mem = Some(MemAccess {
                        addr,
                        is_load: true,
                        width: 8,
                    });
                    self.write_dst(pc, inst.dst, Word::Fp(u64::from_le_bytes(b)))?;
                }
            }
            Sw => {
                let data = self.ivalue(pc, inst.src1)?;
                let base = self.ivalue(pc, inst.src2)?;
                let addr = base.wrapping_add(inst.imm) as u32;
                fu = Some(agu_op(base, inst.imm));
                self.store_bytes(addr, &data.to_le_bytes())?;
                mem = Some(MemAccess {
                    addr,
                    is_load: false,
                    width: 4,
                });
            }
            Sf => {
                let data = self.fvalue(pc, inst.src1)?;
                let base = self.ivalue(pc, inst.src2)?;
                let addr = base.wrapping_add(inst.imm) as u32;
                fu = Some(agu_op(base, inst.imm));
                self.store_bytes(addr, &data.to_bits().to_le_bytes())?;
                mem = Some(MemAccess {
                    addr,
                    is_load: false,
                    width: 8,
                });
            }

            // --- control ---
            Beq | Bne | Blez | Bgtz => {
                let a = self.ivalue(pc, inst.src1)?;
                let b = match inst.op {
                    Beq | Bne => self.ivalue(pc, inst.src2)?,
                    _ => 0,
                };
                let taken = match inst.op {
                    Beq => a == b,
                    Bne => a != b,
                    Blez => a <= 0,
                    _ => a > 0,
                };
                fu = Some(FuOp {
                    class: FuClass::IntAlu,
                    op1: Word::int(a),
                    op2: Word::int(b),
                    commutative: inst.op.commutative(),
                });
                branch = Some(BranchInfo {
                    taken,
                    target: inst.imm as u32,
                    unconditional: false,
                });
                if taken {
                    next_pc = inst.imm as u32;
                }
            }
            J => {
                branch = Some(BranchInfo {
                    taken: true,
                    target: inst.imm as u32,
                    unconditional: true,
                });
                next_pc = inst.imm as u32;
            }
            Halt => {
                self.halted = true;
                next_pc = pc;
            }

            // --- decode-level moves ---
            FLi => {
                let v = self.fvalue(pc, inst.src1)?;
                self.write_dst(pc, inst.dst, Word::fp(v))?;
            }
        }

        self.pc = next_pc;
        Ok(DynOp {
            serial: self.serial,
            static_idx: pc,
            opcode: inst.op,
            fu,
            mem,
            branch,
            srcs: Self::srcs_of(inst),
            dst: inst.dst,
        })
    }
}

/// The effective-address add executed on an integer ALU for every memory
/// instruction: `OP1` = base register value, `OP2` = sign-extended offset.
fn agu_op(base: i32, offset: i32) -> FuOp {
    FuOp {
        class: FuClass::IntAlu,
        op1: Word::int(base),
        op2: Word::int(offset),
        commutative: false,
    }
}

/// The integer ALU/multiplier function, exposed so static analyses can
/// constant-fold with exactly the interpreter's semantics (wrapping
/// arithmetic, `div`-by-zero → 0, `rem`-by-zero → dividend).
///
/// # Panics
///
/// Panics if `op` is not an integer ALU/multiplier opcode.
pub fn int_alu(op: Opcode, a: i32, b: i32) -> i32 {
    use Opcode::*;
    match op {
        Add | Li => a.wrapping_add(b),
        Sub => a.wrapping_sub(b),
        And => a & b,
        Or => a | b,
        Xor => a ^ b,
        Nor => !(a | b),
        Sll => ((a as u32) << (b as u32 & 31)) as i32,
        Srl => ((a as u32) >> (b as u32 & 31)) as i32,
        Sra => a >> (b as u32 & 31),
        Slt => (a < b) as i32,
        Sle => (a <= b) as i32,
        Sgt => (a > b) as i32,
        Sge => (a >= b) as i32,
        Seq => (a == b) as i32,
        Sne => (a != b) as i32,
        Mul => a.wrapping_mul(b),
        Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        Rem => {
            if b == 0 {
                a
            } else if a == i32::MIN && b == -1 {
                0
            } else {
                a % b
            }
        }
        _ => unreachable!("not an integer ALU opcode: {op}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_isa::{Case, ProgramBuilder};

    fn r(i: u8) -> IntReg {
        IntReg::new(i)
    }

    fn f(i: u8) -> FpReg {
        FpReg::new(i)
    }

    #[test]
    fn loop_sums_correctly() {
        // sum = 1 + 2 + ... + 10
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.li(r(1), 10); // counter
        b.li(r(2), 0); // sum
        b.bind(top);
        b.add(r(2), r(2), r(1));
        b.addi(r(1), r(1), -1);
        b.bgtz(r(1), top);
        b.halt();
        let p = b.build().expect("valid");
        let mut vm = Vm::new(&p);
        let t = vm.run(1_000).expect("runs");
        assert!(t.halted);
        assert_eq!(vm.int_reg(r(2)), 55);
    }

    #[test]
    fn memory_round_trip_int_and_fp() {
        let mut b = ProgramBuilder::new();
        let words = b.data_words(&[11, 22, 33]);
        let dbls = b.data_doubles(&[1.5, -2.25]);
        b.li(r(1), words);
        b.lw(r(2), r(1), 4); // 22
        b.addi(r(2), r(2), 1);
        b.sw(r(2), r(1), 8); // mem[2] = 23
        b.li(r(3), dbls);
        b.lf(f(1), r(3), 8); // -2.25
        b.fneg(f(2), f(1));
        b.sf(f(2), r(3), 0);
        b.halt();
        let p = b.build().expect("valid");
        let mut vm = Vm::new(&p);
        vm.run(100).expect("runs");
        assert_eq!(vm.int_reg(r(2)), 23);
        assert_eq!(vm.read_word(words as u32 + 8).expect("in range"), 23);
        assert_eq!(vm.read_double(dbls as u32).expect("in range"), 2.25);
    }

    #[test]
    fn agu_operands_are_base_and_offset() {
        let mut b = ProgramBuilder::new();
        let base = b.data_words(&[7, 8]);
        b.li(r(1), base);
        b.lw(r(2), r(1), 4);
        b.halt();
        let p = b.build().expect("valid");
        let t = Vm::new(&p).run(10).expect("runs");
        let load = &t.ops[1];
        let fu = load.fu.expect("loads use the IALU for the address");
        assert_eq!(fu.class, FuClass::IntAlu);
        assert_eq!(fu.op1, Word::int(base));
        assert_eq!(fu.op2, Word::int(4));
        assert!(!fu.commutative);
        assert_eq!(load.mem.expect("is a load").width, 4);
    }

    #[test]
    fn li_presents_zero_and_immediate_to_the_alu() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), -7);
        b.halt();
        let p = b.build().expect("valid");
        let t = Vm::new(&p).run(10).expect("runs");
        let fu = t.ops[0].fu.expect("li executes on the IALU");
        assert_eq!(fu.op1, Word::int(0));
        assert_eq!(fu.op2, Word::int(-7));
        assert_eq!(fu.case(), Case::C01);
    }

    #[test]
    fn unary_fp_ops_latch_zero_on_port_two() {
        let mut b = ProgramBuilder::new();
        b.fli(f(1), 3.75);
        b.fabs(f(2), f(1));
        b.halt();
        let p = b.build().expect("valid");
        let t = Vm::new(&p).run(10).expect("runs");
        assert!(t.ops[0].fu.is_none(), "fli is decode-level");
        let fu = t.ops[1].fu.expect("fabs uses the FPAU");
        assert_eq!(fu.op2, Word::fp(0.0));
        assert_eq!(fu.class, FuClass::FpAlu);
    }

    #[test]
    fn cvtif_carries_sign_extended_integer_bits() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), -3);
        b.cvtif(f(1), r(1));
        b.halt();
        let p = b.build().expect("valid");
        let mut vm = Vm::new(&p);
        let t = vm.run(10).expect("runs");
        assert_eq!(vm.fp_reg(f(1)), -3.0);
        let fu = t.ops[1].fu.expect("cvtif uses the FPAU");
        assert_eq!(fu.op1, Word::Fp(-3i64 as u64));
    }

    #[test]
    fn branch_records_outcome_and_redirects() {
        let mut b = ProgramBuilder::new();
        let skip = b.new_label();
        b.li(r(1), 1);
        b.bgtz(r(1), skip);
        b.li(r(2), 99); // skipped
        b.bind(skip);
        b.halt();
        let p = b.build().expect("valid");
        let mut vm = Vm::new(&p);
        let t = vm.run(10).expect("runs");
        assert_eq!(vm.int_reg(r(2)), 0);
        let br = t.ops[1].branch.expect("bgtz is a branch");
        assert!(br.taken);
        assert_eq!(br.target, 3);
        assert!(t.ops[1].fu.is_some(), "branch compare uses the IALU");
    }

    #[test]
    fn division_edge_cases() {
        assert_eq!(int_alu(Opcode::Div, 7, 0), 0);
        assert_eq!(int_alu(Opcode::Rem, 7, 0), 7);
        assert_eq!(int_alu(Opcode::Div, i32::MIN, -1), i32::MIN); // wrapping
        assert_eq!(int_alu(Opcode::Rem, i32::MIN, -1), 0);
    }

    #[test]
    fn out_of_bounds_access_is_reported() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 0x7FFF_0000u32 as i32);
        b.lw(r(2), r(1), 0);
        b.halt();
        let p = b.build().expect("valid");
        let err = Vm::new(&p).run(10).expect_err("faults");
        assert!(matches!(err, VmError::OutOfBoundsMemory { .. }));
    }

    #[test]
    fn unaligned_access_is_reported() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 2);
        b.lw(r(2), r(1), 0);
        b.halt();
        let p = b.build().expect("valid");
        let err = Vm::new(&p).run(10).expect_err("faults");
        assert_eq!(err, VmError::UnalignedAccess { addr: 2, width: 4 });
    }

    #[test]
    fn limit_stops_without_halting() {
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.bind(top);
        b.li(r(1), 1);
        b.j(top);
        b.halt();
        let p = b.build().expect("valid");
        let t = Vm::new(&p).run(7).expect("runs");
        assert!(!t.halted);
        assert_eq!(t.ops.len(), 7);
    }

    #[test]
    fn serial_numbers_are_dense_and_ordered() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 1);
        b.addi(r(1), r(1), 1);
        b.halt();
        let p = b.build().expect("valid");
        let t = Vm::new(&p).run(10).expect("runs");
        for (i, op) in t.ops.iter().enumerate() {
            assert_eq!(op.serial, i as u64);
        }
    }
}
