//! Exhaustive per-opcode semantic tests for the interpreter.

use fua_isa::{FpReg, IntReg, Opcode, ProgramBuilder};

use crate::Vm;

fn r(i: u8) -> IntReg {
    IntReg::new(i)
}

fn f(i: u8) -> FpReg {
    FpReg::new(i)
}

/// Runs `op rd, a, b` and returns rd.
fn int_op(op: Opcode, a: i32, b: i32) -> i32 {
    let mut builder = ProgramBuilder::new();
    builder.li(r(1), a);
    builder.li(r(2), b);
    builder.alu(op, r(3), r(1), r(2));
    builder.halt();
    let p = builder.build().expect("valid");
    let mut vm = Vm::new(&p);
    vm.run(10).expect("runs");
    vm.int_reg(r(3))
}

/// Runs a binary FP op and returns the result.
fn fp_op(op: Opcode, a: f64, b: f64) -> f64 {
    let mut builder = ProgramBuilder::new();
    builder.fli(f(1), a);
    builder.fli(f(2), b);
    builder.fpu(op, f(3), f(1), f(2));
    builder.halt();
    let p = builder.build().expect("valid");
    let mut vm = Vm::new(&p);
    vm.run(10).expect("runs");
    vm.fp_reg(f(3))
}

/// Runs an FP compare and returns the integer flag.
fn fp_cmp(op: Opcode, a: f64, b: f64) -> i32 {
    let mut builder = ProgramBuilder::new();
    builder.fli(f(1), a);
    builder.fli(f(2), b);
    builder.fcmp(op, r(3), f(1), f(2));
    builder.halt();
    let p = builder.build().expect("valid");
    let mut vm = Vm::new(&p);
    vm.run(10).expect("runs");
    vm.int_reg(r(3))
}

#[test]
fn arithmetic_and_logic() {
    assert_eq!(int_op(Opcode::Add, 7, -3), 4);
    assert_eq!(int_op(Opcode::Add, i32::MAX, 1), i32::MIN); // wrapping
    assert_eq!(int_op(Opcode::Sub, 3, 10), -7);
    assert_eq!(int_op(Opcode::Sub, i32::MIN, 1), i32::MAX); // wrapping
    assert_eq!(int_op(Opcode::And, 0b1100, 0b1010), 0b1000);
    assert_eq!(int_op(Opcode::Or, 0b1100, 0b1010), 0b1110);
    assert_eq!(int_op(Opcode::Xor, 0b1100, 0b1010), 0b0110);
    assert_eq!(int_op(Opcode::Nor, 0, 0), -1);
    assert_eq!(int_op(Opcode::Nor, -1, 0), 0);
}

#[test]
fn shifts_mask_the_amount() {
    assert_eq!(int_op(Opcode::Sll, 1, 4), 16);
    assert_eq!(int_op(Opcode::Sll, 1, 32), 1, "shift amount is mod 32");
    assert_eq!(int_op(Opcode::Srl, -1, 28), 0xF);
    assert_eq!(int_op(Opcode::Sra, -16, 2), -4);
    assert_eq!(int_op(Opcode::Sra, 16, 2), 4);
    assert_eq!(int_op(Opcode::Srl, i32::MIN, 31), 1);
}

#[test]
fn comparison_family_is_consistent() {
    for (a, b) in [(1, 2), (2, 1), (5, 5), (-3, 3), (i32::MIN, i32::MAX)] {
        assert_eq!(int_op(Opcode::Slt, a, b), (a < b) as i32, "{a} slt {b}");
        assert_eq!(int_op(Opcode::Sle, a, b), (a <= b) as i32, "{a} sle {b}");
        assert_eq!(int_op(Opcode::Sgt, a, b), (a > b) as i32, "{a} sgt {b}");
        assert_eq!(int_op(Opcode::Sge, a, b), (a >= b) as i32, "{a} sge {b}");
        assert_eq!(int_op(Opcode::Seq, a, b), (a == b) as i32, "{a} seq {b}");
        assert_eq!(int_op(Opcode::Sne, a, b), (a != b) as i32, "{a} sne {b}");
        // The compiler-flip identity the swap pass relies on:
        // a < b  ==  b > a, and so on.
        assert_eq!(int_op(Opcode::Slt, a, b), int_op(Opcode::Sgt, b, a));
        assert_eq!(int_op(Opcode::Sle, a, b), int_op(Opcode::Sge, b, a));
    }
}

#[test]
fn multiplier_family() {
    assert_eq!(int_op(Opcode::Mul, 7, -3), -21);
    assert_eq!(int_op(Opcode::Mul, 1 << 20, 1 << 20), 0, "low 32 bits");
    assert_eq!(int_op(Opcode::Div, 22, 7), 3);
    assert_eq!(int_op(Opcode::Div, -22, 7), -3, "truncating");
    assert_eq!(int_op(Opcode::Rem, 22, 7), 1);
    assert_eq!(int_op(Opcode::Rem, -22, 7), -1);
}

#[test]
fn fp_arithmetic() {
    assert_eq!(fp_op(Opcode::FAdd, 1.5, 2.25), 3.75);
    assert_eq!(fp_op(Opcode::FSub, 1.5, 2.25), -0.75);
    assert_eq!(fp_op(Opcode::FMul, 1.5, -2.0), -3.0);
    assert_eq!(fp_op(Opcode::FDiv, 1.0, 4.0), 0.25);
    assert!(fp_op(Opcode::FDiv, 1.0, 0.0).is_infinite());
}

#[test]
fn fp_compares_and_their_flips() {
    for (a, b) in [(1.0, 2.0), (2.0, 1.0), (1.5, 1.5), (-0.0, 0.0)] {
        assert_eq!(fp_cmp(Opcode::FCmpLt, a, b), (a < b) as i32);
        assert_eq!(fp_cmp(Opcode::FCmpLe, a, b), (a <= b) as i32);
        assert_eq!(fp_cmp(Opcode::FCmpGt, a, b), (a > b) as i32);
        assert_eq!(fp_cmp(Opcode::FCmpGe, a, b), (a >= b) as i32);
        assert_eq!(fp_cmp(Opcode::FCmpEq, a, b), (a == b) as i32);
        assert_eq!(fp_cmp(Opcode::FCmpNe, a, b), (a != b) as i32);
        assert_eq!(fp_cmp(Opcode::FCmpLt, a, b), fp_cmp(Opcode::FCmpGt, b, a));
    }
    // NaN compares false on everything except Ne.
    assert_eq!(fp_cmp(Opcode::FCmpLt, f64::NAN, 1.0), 0);
    assert_eq!(fp_cmp(Opcode::FCmpEq, f64::NAN, f64::NAN), 0);
    assert_eq!(fp_cmp(Opcode::FCmpNe, f64::NAN, f64::NAN), 1);
}

#[test]
fn unary_fp_ops() {
    let run = |build: &dyn Fn(&mut ProgramBuilder)| -> f64 {
        let mut b = ProgramBuilder::new();
        build(&mut b);
        b.halt();
        let p = b.build().expect("valid");
        let mut vm = Vm::new(&p);
        vm.run(10).expect("runs");
        vm.fp_reg(f(2))
    };
    assert_eq!(
        run(&|b| {
            b.fli(f(1), -2.5);
            b.fneg(f(2), f(1));
        }),
        2.5
    );
    assert_eq!(
        run(&|b| {
            b.fli(f(1), -2.5);
            b.fabs(f(2), f(1));
        }),
        2.5
    );
    assert_eq!(
        run(&|b| {
            b.fli(f(1), 7.0);
            b.fmov(f(2), f(1));
        }),
        7.0
    );
}

#[test]
fn conversions_truncate_and_saturate() {
    let cvtfi = |v: f64| -> i32 {
        let mut b = ProgramBuilder::new();
        b.fli(f(1), v);
        b.cvtfi(r(1), f(1));
        b.halt();
        let p = b.build().expect("valid");
        let mut vm = Vm::new(&p);
        vm.run(10).expect("runs");
        vm.int_reg(r(1))
    };
    assert_eq!(cvtfi(2.9), 2);
    assert_eq!(cvtfi(-2.9), -2);
    assert_eq!(cvtfi(1e12), i32::MAX, "saturating");
    assert_eq!(cvtfi(-1e12), i32::MIN);
    assert_eq!(cvtfi(f64::NAN), 0);

    let cvtif = |v: i32| -> f64 {
        let mut b = ProgramBuilder::new();
        b.li(r(1), v);
        b.cvtif(f(1), r(1));
        b.halt();
        let p = b.build().expect("valid");
        let mut vm = Vm::new(&p);
        vm.run(10).expect("runs");
        vm.fp_reg(f(1))
    };
    assert_eq!(cvtif(-7), -7.0);
    assert_eq!(cvtif(i32::MAX), i32::MAX as f64);
}

#[test]
fn branch_family_semantics() {
    // Each branch opcode, taken and not taken.
    let run = |op: Opcode, a: i32, b_val: i32| -> bool {
        let mut b = ProgramBuilder::new();
        let taken = b.new_label();
        b.li(r(1), a);
        b.li(r(2), b_val);
        match op {
            Opcode::Beq => b.beq(r(1), r(2), taken),
            Opcode::Bne => b.bne(r(1), r(2), taken),
            Opcode::Blez => b.blez(r(1), taken),
            _ => b.bgtz(r(1), taken),
        }
        b.li(r(3), 1); // fall-through marker
        b.bind(taken);
        b.halt();
        let p = b.build().expect("valid");
        let mut vm = Vm::new(&p);
        vm.run(10).expect("runs");
        vm.int_reg(r(3)) == 0
    };
    assert!(run(Opcode::Beq, 5, 5));
    assert!(!run(Opcode::Beq, 5, 6));
    assert!(run(Opcode::Bne, 5, 6));
    assert!(!run(Opcode::Bne, 5, 5));
    assert!(run(Opcode::Blez, 0, 0));
    assert!(run(Opcode::Blez, -1, 0));
    assert!(!run(Opcode::Blez, 1, 0));
    assert!(run(Opcode::Bgtz, 1, 0));
    assert!(!run(Opcode::Bgtz, 0, 0));
}

#[test]
fn store_word_is_byte_exact() {
    let mut b = ProgramBuilder::new();
    let buf = b.alloc_data(16);
    b.li(r(1), buf);
    b.li(r(2), 0x1234_5678);
    b.sw(r(2), r(1), 4);
    b.lw(r(3), r(1), 4);
    b.halt();
    let p = b.build().expect("valid");
    let mut vm = Vm::new(&p);
    vm.run(10).expect("runs");
    assert_eq!(vm.int_reg(r(3)), 0x1234_5678);
    // Little-endian byte order in memory.
    assert_eq!(vm.memory()[buf as usize + 4], 0x78);
    assert_eq!(vm.memory()[buf as usize + 7], 0x12);
}

#[test]
fn fp_memory_preserves_bit_patterns() {
    let mut b = ProgramBuilder::new();
    let buf = b.alloc_data(16);
    b.li(r(1), buf);
    b.fli(f(1), f64::from_bits(0x7FF8_0000_0000_0001)); // a quiet NaN payload
    b.sf(f(1), r(1), 8);
    b.lf(f(2), r(1), 8);
    b.halt();
    let p = b.build().expect("valid");
    let mut vm = Vm::new(&p);
    vm.run(10).expect("runs");
    assert_eq!(vm.fp_reg(f(2)).to_bits(), 0x7FF8_0000_0000_0001);
}
