//! Architectural interpreter for the functional-unit-assignment study.
//!
//! The [`Vm`] executes a [`fua_isa::Program`] at architectural level
//! (registers + byte-addressable memory) and emits one [`DynOp`] per
//! retired instruction. A `DynOp` carries everything the out-of-order
//! timing model and the power model need: the functional-unit class, the
//! *resolved operand values* (the bits the FU's input latches will see),
//! source/destination registers for dependence tracking, memory addresses,
//! and branch outcomes.
//!
//! The split mirrors trace-driven simulators such as SimpleScalar's
//! `sim-outorder` front end: functional execution here, timing and power in
//! the `fua-sim` crate.
//!
//! # Examples
//!
//! ```
//! use fua_isa::{IntReg, ProgramBuilder};
//! use fua_vm::Vm;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let r1 = IntReg::new(1);
//! let mut b = ProgramBuilder::new();
//! b.li(r1, 5);
//! b.addi(r1, r1, 7);
//! b.halt();
//! let program = b.build()?;
//!
//! let mut vm = Vm::new(&program);
//! let trace = vm.run(1_000)?;
//! assert_eq!(trace.ops.len(), 3);
//! assert!(trace.halted);
//! assert_eq!(vm.int_reg(r1), 12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod dynop;
mod error;
mod interp;
#[cfg(test)]
mod semantics_tests;

pub use dynop::{BranchInfo, DynOp, FuOp, MemAccess};
pub use error::VmError;
pub use interp::{int_alu, Trace, Vm, DEFAULT_MEM_BYTES};
