//! Interpreter errors.

use std::error::Error;
use std::fmt;

/// Error raised while executing a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmError {
    /// A memory access fell outside the configured memory.
    OutOfBoundsMemory {
        /// Faulting byte address.
        addr: u32,
        /// Access width in bytes.
        width: u8,
        /// Memory size in bytes.
        mem_bytes: u32,
    },
    /// A memory access was not naturally aligned.
    UnalignedAccess {
        /// Faulting byte address.
        addr: u32,
        /// Access width in bytes.
        width: u8,
    },
    /// An instruction's operand slots do not match its opcode's format
    /// (possible only for hand-built [`fua_isa::Inst`] values that bypassed
    /// the program builder).
    MalformedInst {
        /// Index of the malformed static instruction.
        index: u32,
    },
    /// Control transferred outside the program text.
    PcOutOfRange {
        /// The faulting instruction index.
        pc: u32,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::OutOfBoundsMemory {
                addr,
                width,
                mem_bytes,
            } => write!(
                f,
                "memory access of {width} bytes at {addr:#x} exceeds memory of {mem_bytes} bytes"
            ),
            VmError::UnalignedAccess { addr, width } => {
                write!(f, "unaligned {width}-byte access at {addr:#x}")
            }
            VmError::MalformedInst { index } => {
                write!(f, "malformed instruction at index {index}")
            }
            VmError::PcOutOfRange { pc } => write!(f, "program counter {pc} out of range"),
        }
    }
}

impl Error for VmError {}
