//! SPEC95-analog workloads for the functional-unit-assignment study.
//!
//! The paper evaluates on SPEC95: seven integer benchmarks (`m88ksim`,
//! `ijpeg`, `li`, `go`, `compress`, `cc1`, `perl`) and eight
//! floating-point ones (`apsi`, `applu`, `hydro2d`, `wave5`, `swim`,
//! `mgrid`, `turb3d`, `fpppp`). The originals cannot be compiled for our
//! ISA, so this crate provides one synthetic kernel per benchmark that
//! reproduces the *operand bit-pattern character* the technique depends
//! on — small sign-extended integers, pointer-shaped addresses,
//! round/int-cast floating-point constants versus full-precision data —
//! and each program's rough mix of FU classes. See DESIGN.md §2 for the
//! substitution argument.
//!
//! Every workload is deterministic: data is generated from a fixed
//! per-workload seed.
//!
//! # Examples
//!
//! ```
//! use fua_workloads::{all, Category};
//!
//! let workloads = all(1);
//! assert_eq!(workloads.len(), 15);
//! let ints = workloads.iter().filter(|w| w.category == Category::Integer).count();
//! assert_eq!(ints, 7);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod fp;
mod int;
mod rng;
mod util;

pub use rng::SplitMix64;

use fua_isa::Program;

/// Which half of the suite a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Integer benchmark (drives the IALU results).
    Integer,
    /// Floating-point benchmark (drives the FPAU results).
    FloatingPoint,
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Category::Integer => f.write_str("integer"),
            Category::FloatingPoint => f.write_str("floating-point"),
        }
    }
}

/// A named, buildable benchmark program.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name (the SPEC95 program it stands in for).
    pub name: &'static str,
    /// One-line description of the kernel.
    pub description: &'static str,
    /// Integer or floating-point half of the suite.
    pub category: Category,
    /// The built program.
    pub program: Program,
}

macro_rules! workload {
    ($name:literal, $desc:literal, $cat:expr, $builder:path, $scale:expr) => {
        workload!($name, $desc, $cat, $builder, $scale, 0)
    };
    ($name:literal, $desc:literal, $cat:expr, $builder:path, $scale:expr, $input:expr) => {{
        let mut program = $builder($scale, $input);
        // Hand-written kernels are accidentally canonical; real compiler
        // output has arbitrary operand order. Scramble commutative
        // operand orders (seeded, deterministic) so the binaries look
        // like compiled code — the regime the paper's swap passes target.
        let mut order_rng = util::seeded_rng(concat!($name, "-operand-order"));
        util::scramble_commutative(&mut program, &mut order_rng);
        Workload {
            name: $name,
            description: $desc,
            category: $cat,
            program,
        }
    }};
}

/// Builds the seven integer workloads at the given scale (1 ≈ a hundred
/// thousand dynamic instructions each; iteration counts scale linearly).
pub fn integer(scale: u32) -> Vec<Workload> {
    integer_with_input(scale, 0)
}

/// As [`integer`], with an alternative input data set — the analogue of a
/// SPEC benchmark's train vs ref inputs. The *code* is identical across
/// inputs (same static instructions); only the data differs, which is
/// what makes cross-input profile-sensitivity studies meaningful.
pub fn integer_with_input(scale: u32, input: u32) -> Vec<Workload> {
    use Category::Integer as I;
    vec![
        workload!(
            "compress",
            "LZW-style hashing and dictionary lookups over a byte stream",
            I,
            int::compress::build_with_input,
            scale,
            input
        ),
        workload!(
            "go",
            "board evaluation: 2-D array walks, neighbour sums, branchy scoring",
            I,
            int::go::build_with_input,
            scale,
            input
        ),
        workload!(
            "li",
            "lisp interpreter: cons-cell pointer chasing and small-integer arithmetic",
            I,
            int::li::build_with_input,
            scale,
            input
        ),
        workload!(
            "ijpeg",
            "integer DCT butterflies with shifts and constant multiplies",
            I,
            int::ijpeg::build_with_input,
            scale,
            input
        ),
        workload!(
            "m88ksim",
            "CPU simulator: instruction decode via shift/mask field extraction",
            I,
            int::m88ksim::build_with_input,
            scale,
            input
        ),
        workload!(
            "cc1",
            "compiler symbol table: hashing, bucket probing, pointer arithmetic",
            I,
            int::cc1::build_with_input,
            scale,
            input
        ),
        workload!(
            "perl",
            "string scanning: byte extraction, character classes, hash buckets",
            I,
            int::perl::build_with_input,
            scale,
            input
        ),
    ]
}

/// Builds the eight floating-point workloads at the given scale.
pub fn floating_point(scale: u32) -> Vec<Workload> {
    floating_point_with_input(scale, 0)
}

/// As [`floating_point`], with an alternative input data set.
pub fn floating_point_with_input(scale: u32, input: u32) -> Vec<Workload> {
    use Category::FloatingPoint as F;
    vec![
        workload!(
            "swim",
            "shallow-water 2-D stencil with round coefficients",
            F,
            fp::swim::build_with_input,
            scale,
            input
        ),
        workload!(
            "mgrid",
            "multigrid relaxation: power-of-two weighted neighbour sums",
            F,
            fp::mgrid::build_with_input,
            scale,
            input
        ),
        workload!(
            "applu",
            "SSOR sweep: dense block multiply-accumulate with divisions",
            F,
            fp::applu::build_with_input,
            scale,
            input
        ),
        workload!(
            "hydro2d",
            "hydrodynamics: state products, absolute values, flux compares",
            F,
            fp::hydro2d::build_with_input,
            scale,
            input
        ),
        workload!(
            "wave5",
            "particle push: integer-cast positions and round increments",
            F,
            fp::wave5::build_with_input,
            scale,
            input
        ),
        workload!(
            "apsi",
            "weather series: alternating products and quotient updates",
            F,
            fp::apsi::build_with_input,
            scale,
            input
        ),
        workload!(
            "turb3d",
            "FFT-like butterflies with full-precision twiddle factors",
            F,
            fp::turb3d::build_with_input,
            scale,
            input
        ),
        workload!(
            "fpppp",
            "quantum-chemistry inner loop: long multiply-add dependence chains",
            F,
            fp::fpppp::build_with_input,
            scale,
            input
        ),
    ]
}

/// Builds the full 15-benchmark suite at the given scale.
pub fn all(scale: u32) -> Vec<Workload> {
    all_with_input(scale, 0)
}

/// As [`all`], with an alternative input data set.
pub fn all_with_input(scale: u32, input: u32) -> Vec<Workload> {
    let mut v = integer_with_input(scale, input);
    v.extend(floating_point_with_input(scale, input));
    v
}

/// Looks a workload up by name at the given scale.
pub fn by_name(name: &str, scale: u32) -> Option<Workload> {
    all(scale).into_iter().find(|w| w.name == name)
}

/// A shared, read-only pool of decoded workloads.
///
/// Building a workload decodes its whole program (and generates its data
/// segment) from the per-workload seed; a full experiment suite touches
/// every workload dozens of times — once per (scheme × swap-variant)
/// cell. The arena decodes each program **once** and hands out shared
/// slices, so sweep cells (including parallel ones — `&WorkloadArena` is
/// `Sync`, programs contain no interior mutability) borrow instead of
/// rebuilding. Arena-served programs are bit-identical to freshly built
/// ones (property-tested per workload × scale).
///
/// # Examples
///
/// ```
/// use fua_workloads::{by_name, WorkloadArena};
///
/// let arena = WorkloadArena::build(1);
/// assert_eq!(arena.all().len(), 15);
/// assert_eq!(arena.integer().len(), 7);
/// assert_eq!(arena.floating_point().len(), 8);
/// let fresh = by_name("compress", 1).unwrap();
/// assert_eq!(arena.by_name("compress").unwrap().program, fresh.program);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadArena {
    scale: u32,
    /// All 15 workloads in suite order: the integer half first, then the
    /// floating-point half (the same order [`all`] returns).
    workloads: Vec<Workload>,
    /// Index of the first floating-point workload.
    fp_start: usize,
}

impl WorkloadArena {
    /// Decodes the full 15-benchmark suite at `scale`, once.
    pub fn build(scale: u32) -> Self {
        let workloads = all(scale);
        let fp_start = workloads
            .iter()
            .position(|w| w.category == Category::FloatingPoint)
            .unwrap_or(workloads.len());
        WorkloadArena {
            scale,
            workloads,
            fp_start,
        }
    }

    /// The scale the arena was decoded at.
    pub fn scale(&self) -> u32 {
        self.scale
    }

    /// Every workload, in suite order (integer half first).
    pub fn all(&self) -> &[Workload] {
        &self.workloads
    }

    /// The integer workloads (drive the IALU experiments).
    pub fn integer(&self) -> &[Workload] {
        &self.workloads[..self.fp_start]
    }

    /// The floating-point workloads (drive the FPAU experiments).
    pub fn floating_point(&self) -> &[Workload] {
        &self.workloads[self.fp_start..]
    }

    /// A workload by benchmark name, if bundled.
    pub fn by_name(&self, name: &str) -> Option<&Workload> {
        self.workloads.iter().find(|w| w.name == name)
    }
}

/// The deterministic data-generation seed of a workload on input set
/// `input` — the value recorded in run manifests so an artifact pins the
/// exact data its numbers were measured on. Derived from the workload
/// name (FNV-1a) mixed with the input number; input 0 is the default
/// data set.
pub fn seed_of(name: &str, input: u32) -> u64 {
    util::seeded_rng_input(name, input).seed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_isa::FuClass;
    use fua_vm::Vm;

    #[test]
    fn every_workload_halts() {
        for w in all(1) {
            let mut vm = Vm::new(&w.program);
            let trace = vm.run(5_000_000).unwrap_or_else(|e| {
                panic!("workload {} faulted: {e}", w.name);
            });
            assert!(trace.halted, "workload {} did not halt", w.name);
            assert!(
                trace.ops.len() > 10_000,
                "workload {} too short: {} ops",
                w.name,
                trace.ops.len()
            );
        }
    }

    #[test]
    fn categories_exercise_the_right_units() {
        for w in all(1) {
            let mut vm = Vm::new(&w.program);
            let trace = vm.run(5_000_000).expect("runs");
            let fp_ops = trace
                .ops
                .iter()
                .filter(|o| matches!(o.fu_class(), Some(FuClass::FpAlu) | Some(FuClass::FpMul)))
                .count();
            match w.category {
                Category::Integer => {
                    // A little FP is tolerable; it must not dominate.
                    assert!(
                        (fp_ops as f64) < 0.05 * trace.ops.len() as f64,
                        "{} is not integer-dominated",
                        w.name
                    );
                }
                Category::FloatingPoint => {
                    assert!(
                        (fp_ops as f64) > 0.15 * trace.ops.len() as f64,
                        "{} exercises too little FP ({} of {})",
                        w.name,
                        fp_ops,
                        trace.ops.len()
                    );
                }
            }
        }
    }

    #[test]
    fn scale_extends_the_run() {
        let short = {
            let w = by_name("compress", 1).expect("exists");
            let mut vm = Vm::new(&w.program);
            vm.run(10_000_000).expect("runs").ops.len()
        };
        let long = {
            let w = by_name("compress", 2).expect("exists");
            let mut vm = Vm::new(&w.program);
            vm.run(10_000_000).expect("runs").ops.len()
        };
        assert!(long > short + short / 2, "short={short} long={long}");
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = all(1).iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 15);
    }

    #[test]
    fn input_sets_change_data_not_code() {
        let a = integer_with_input(1, 0);
        let b = integer_with_input(1, 1);
        for (wa, wb) in a.iter().zip(&b) {
            assert_eq!(wa.name, wb.name);
            // The static structure (opcodes, register operands) is
            // input-independent; only data — and data-derived immediates
            // such as entry pointers — may change.
            assert_eq!(wa.program.len(), wb.program.len(), "{}", wa.name);
            for (ia, ib) in wa.program.insts().iter().zip(wb.program.insts()) {
                assert_eq!(ia.op, ib.op, "{}: opcode stream differs", wa.name);
                assert_eq!(
                    ia.src1.reg(),
                    ib.src1.reg(),
                    "{}: register operands differ",
                    wa.name
                );
                assert_eq!(ia.src2.reg(), ib.src2.reg(), "{}", wa.name);
                assert_eq!(ia.dst, ib.dst, "{}", wa.name);
            }
            assert_ne!(
                wa.program.data(),
                wb.program.data(),
                "{}: data must differ across inputs",
                wa.name
            );
        }
    }

    #[test]
    fn alternative_inputs_still_halt() {
        for w in all_with_input(1, 2) {
            let mut vm = fua_vm::Vm::new(&w.program);
            let trace = vm.run(5_000_000).unwrap_or_else(|e| {
                panic!("workload {} (input 2) faulted: {e}", w.name);
            });
            assert!(trace.halted, "workload {} (input 2) did not halt", w.name);
        }
    }

    #[test]
    fn arena_partitions_the_suite_in_order() {
        let arena = WorkloadArena::build(1);
        assert_eq!(arena.scale(), 1);
        assert_eq!(arena.all().len(), 15);
        assert_eq!(arena.integer().len(), 7);
        assert_eq!(arena.floating_point().len(), 8);
        assert!(arena
            .integer()
            .iter()
            .all(|w| w.category == Category::Integer));
        assert!(arena
            .floating_point()
            .iter()
            .all(|w| w.category == Category::FloatingPoint));
        // Arena order is exactly `all` order.
        let names: Vec<&str> = arena.all().iter().map(|w| w.name).collect();
        let fresh: Vec<&str> = all(1).iter().map(|w| w.name).collect();
        assert_eq!(names, fresh);
        assert!(arena.by_name("turb3d").is_some());
        assert!(arena.by_name("nonesuch").is_none());
    }

    #[test]
    fn determinism_across_builds() {
        let a = by_name("go", 1).expect("exists");
        let b = by_name("go", 1).expect("exists");
        assert_eq!(a.program, b.program);
    }
}
