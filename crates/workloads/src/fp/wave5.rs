//! `wave5` analogue: particle push with integer-cast coordinates.
//!
//! Advances particles under a round time step, converting positions to
//! integer grid cells (`cvtfi`) to gather a field value, and converting a
//! crossing counter back to double (`cvtif`). Operand character: the
//! conversion-heavy kernel — int-cast doubles are one of the paper's
//! three named sources of trailing-zero mantissas.

use fua_isa::{FpReg, IntReg, Program, ProgramBuilder};

use crate::util;

const PARTICLES: i32 = 512;
const GRID: i32 = 64;

/// Builds the workload with an alternative input data set (see
/// [`crate::all_with_input`]).
pub fn build_with_input(scale: u32, input: u32) -> Program {
    let mut rng = util::seeded_rng_input("wave5", input);
    let mut b = ProgramBuilder::new();

    let n = PARTICLES as usize;
    // Magnitudes stay under GRID-2 so the first gather is in range.
    let pos_vals: Vec<f64> = (0..n)
        .map(|_| util::single_precision_double(&mut rng).abs() * 15.0)
        .collect();
    let pos = b.data_doubles(&pos_vals);
    let vel = b.data_doubles(&util::mixed_doubles(&mut rng, n, 0.6));
    let field = b.data_doubles(&util::mixed_doubles(&mut rng, GRID as usize, 0.75));
    let result = b.alloc_data(16);

    let i = IntReg::new(1);
    let addr = IntReg::new(2);
    let cell = IntReg::new(3);
    let faddr = IntReg::new(4);
    let pass = IntReg::new(5);
    let cond = IntReg::new(6);
    let crossings = IntReg::new(7);
    let base = IntReg::new(8);

    let x = FpReg::new(1);
    let v = FpReg::new(2);
    let e = FpReg::new(3);
    let dt = FpReg::new(4);
    let qm = FpReg::new(5);
    let lim = FpReg::new(6);
    let t = FpReg::new(7);

    b.fli(dt, 0.25);
    b.fli(qm, 0.5);
    b.fli(lim, GRID as f64 - 2.0);
    b.li(crossings, 0);
    b.li(pass, 22 * scale as i32);

    let outer = b.new_label();
    let push = b.new_label();
    let wrapped = b.new_label();

    b.bind(outer);
    b.li(i, 0);
    b.bind(push);
    b.slli(addr, i, 3);
    b.addi(base, addr, pos);
    b.lf(x, base, 0);
    // Gather: cell = (int)x, e = field[cell].
    b.cvtfi(cell, x);
    b.slli(faddr, cell, 3);
    b.addi(faddr, faddr, field);
    b.lf(e, faddr, 0);
    // v += qm * e * dt; x += v * dt.
    b.fmul(e, e, qm);
    b.fmul(e, e, dt);
    b.addi(faddr, addr, vel);
    b.lf(v, faddr, 0);
    b.fadd(v, v, e);
    b.sf(v, faddr, 0);
    b.fmul(t, v, dt);
    b.fadd(x, x, t);
    // Reflect out-of-range particles back towards the middle and count
    // the crossing (int counter cast to double to perturb the velocity —
    // the paper's "incrementing a floating point variable" pattern).
    b.fabs(x, x);
    b.fcmp(fua_isa::Opcode::FCmpLt, cond, x, lim);
    b.bgtz(cond, wrapped);
    b.fmov(x, lim);
    b.fmul(x, x, qm);
    b.addi(crossings, crossings, 1);
    b.cvtif(t, crossings);
    b.fmul(t, t, dt);
    b.fadd(v, v, t);
    b.sf(v, faddr, 0);
    b.bind(wrapped);
    b.sf(x, base, 0);
    b.addi(i, i, 1);
    b.slti(cond, i, PARTICLES);
    b.bgtz(cond, push);
    b.addi(pass, pass, -1);
    b.bgtz(pass, outer);

    b.li(addr, result);
    b.sw(crossings, addr, 8);
    b.halt();
    b.build().expect("wave5 workload assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_isa::Opcode;
    use fua_vm::Vm;

    #[test]
    fn conversions_flow_both_ways() {
        let p = build_with_input(1, 0);
        let mut vm = Vm::new(&p);
        let trace = vm.run(8_000_000).expect("runs");
        assert!(trace.halted);
        assert!(trace.ops.len() > 50_000);
        let to_int = trace
            .ops
            .iter()
            .filter(|o| o.opcode == Opcode::CvtFi)
            .count();
        let to_fp = trace
            .ops
            .iter()
            .filter(|o| o.opcode == Opcode::CvtIf)
            .count();
        assert!(to_int > 5_000, "gather casts, saw {to_int}");
        assert!(to_fp > 0, "counter casts, saw {to_fp}");
    }
}
