//! `mgrid` analogue: multigrid relaxation with power-of-two weights.
//!
//! 1-D V-cycle-flavoured relaxation: each point is smoothed with a
//! five-point kernel whose coefficients (0.5, 0.25, 0.125) are exact
//! powers of two, alternating between a fine and a coarse array. Operand
//! character: the most trailing-zero-rich kernel — most products carry a
//! round factor, the regime where the FP information bit shines.

use fua_isa::{FpReg, IntReg, Program, ProgramBuilder};

use crate::util;

const POINTS: i32 = 1024;

/// Builds the workload with an alternative input data set (see
/// [`crate::all_with_input`]).
pub fn build_with_input(scale: u32, input: u32) -> Program {
    let mut rng = util::seeded_rng_input("mgrid", input);
    let mut b = ProgramBuilder::new();

    let fine = b.data_doubles(&util::mixed_doubles(&mut rng, POINTS as usize, 0.85));
    let coarse = b.data_doubles(&util::mixed_doubles(&mut rng, (POINTS / 2) as usize, 0.85));
    let result = b.alloc_data(8);

    let i = IntReg::new(1);
    let addr = IntReg::new(2);
    let caddr = IntReg::new(3);
    let pass = IntReg::new(4);
    let cond = IntReg::new(5);
    let tmpreg = IntReg::new(6);

    let x = FpReg::new(1);
    let acc = FpReg::new(2);
    let t = FpReg::new(3);
    let w1 = FpReg::new(4);
    let w2 = FpReg::new(5);
    let w3 = FpReg::new(6);
    let sum = FpReg::new(7);

    b.fli(w1, 0.5);
    b.fli(w2, 0.25);
    b.fli(w3, 0.125);
    b.fli(sum, 0.0);
    b.li(pass, 10 * scale as i32);

    let outer = b.new_label();
    let smooth = b.new_label();
    let restrict_loop = b.new_label();

    b.bind(outer);
    // Smooth the fine grid.
    b.li(i, 2);
    b.bind(smooth);
    b.slli(addr, i, 3);
    b.addi(addr, addr, fine);
    b.lf(x, addr, 0);
    b.fmul(acc, x, w1);
    b.lf(t, addr, -8);
    b.fmul(t, t, w2);
    b.fadd(acc, acc, t);
    b.lf(t, addr, 8);
    b.fmul(t, t, w2);
    b.fadd(acc, acc, t);
    b.lf(t, addr, -16);
    b.fmul(t, t, w3);
    b.fadd(acc, acc, t);
    b.lf(t, addr, 16);
    b.fmul(t, t, w3);
    b.fadd(acc, acc, t);
    // Damp to keep the field bounded: x' = 0.5*x + 0.5*acc.
    b.fmul(x, x, w1);
    b.fmul(acc, acc, w1);
    b.fadd(x, x, acc);
    b.sf(x, addr, 0);
    b.addi(i, i, 1);
    b.slti(cond, i, POINTS - 2);
    b.bgtz(cond, smooth);
    // Restriction: coarse[j] = 0.25*fine[2j] + 0.25*fine[2j+1] + 0.5*coarse[j].
    b.li(i, 0);
    b.bind(restrict_loop);
    b.slli(tmpreg, i, 4);
    b.addi(addr, tmpreg, fine);
    b.slli(tmpreg, i, 3);
    b.addi(caddr, tmpreg, coarse);
    b.lf(acc, addr, 0);
    b.lf(t, addr, 8);
    b.fadd(acc, acc, t);
    b.fmul(acc, acc, w2);
    b.lf(t, caddr, 0);
    b.fmul(t, t, w1);
    b.fadd(acc, acc, t);
    b.sf(acc, caddr, 0);
    b.fadd(sum, sum, acc);
    b.addi(i, i, 1);
    b.slti(cond, i, POINTS / 2);
    b.bgtz(cond, restrict_loop);
    b.addi(pass, pass, -1);
    b.bgtz(pass, outer);

    b.li(addr, result);
    b.sf(sum, addr, 0);
    b.halt();
    b.build().expect("mgrid workload assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_isa::{FuClass, Word};
    use fua_vm::Vm;

    #[test]
    fn is_trailing_zero_rich() {
        let p = build_with_input(1, 0);
        let mut vm = Vm::new(&p);
        let trace = vm.run(5_000_000).expect("runs");
        assert!(trace.halted);
        assert!(trace.ops.len() > 50_000);
        // A healthy share of FPAU operands should have a clear (zero)
        // information bit.
        let (mut clear, mut total) = (0u64, 0u64);
        for op in &trace.ops {
            if let Some(fu) = op.fu {
                if matches!(fu.class, FuClass::FpAlu | FuClass::FpMul) {
                    total += 2;
                    clear += !fu.op1.info_bit() as u64 + !fu.op2.info_bit() as u64;
                }
            }
        }
        assert!(total > 0);
        assert!(
            clear as f64 / total as f64 > 0.2,
            "only {clear}/{total} operands were trailing-zero-rich"
        );
        let _ = Word::fp(0.0);
    }
}
