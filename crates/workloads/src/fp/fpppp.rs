//! `fpppp` analogue: quantum-chemistry multiply-add dependence chains.
//!
//! Long, mostly-serial fused update chains over electron-repulsion-like
//! coefficient tables: `s = s * a + b`, unrolled over four accumulators
//! with different tables. Operand character: the highest FP density and
//! the lowest ILP of the suite — the FPAU occupancy stays near 1,
//! matching `fpppp`'s reputation as the least parallel SPEC95 code.

use fua_isa::{FpReg, IntReg, Program, ProgramBuilder};

use crate::util;

const COEFFS: i32 = 1024;

/// Builds the workload with an alternative input data set (see
/// [`crate::all_with_input`]).
pub fn build_with_input(scale: u32, input: u32) -> Program {
    let mut rng = util::seeded_rng_input("fpppp", input);
    let mut b = ProgramBuilder::new();

    let n = COEFFS as usize;
    // Contraction factors just under 1 keep the chains stable.
    let a_vals: Vec<f64> = (0..n)
        .map(|_| 0.5 + 0.4 * util::full_precision_double(&mut rng).abs())
        .collect();
    let table_a = b.data_doubles(&a_vals);
    let table_b = b.data_doubles(&util::mixed_doubles(&mut rng, n, 0.3));
    let result = b.alloc_data(32);

    let i = IntReg::new(1);
    let aaddr = IntReg::new(2);
    let baddr = IntReg::new(3);
    let pass = IntReg::new(4);
    let cond = IntReg::new(5);
    let addr = IntReg::new(6);

    let s0 = FpReg::new(1);
    let s1 = FpReg::new(2);
    let s2 = FpReg::new(3);
    let s3 = FpReg::new(4);
    let a = FpReg::new(5);
    let c = FpReg::new(6);

    b.fli(s0, 0.1);
    b.fli(s1, 0.2);
    b.fli(s2, 0.3);
    b.fli(s3, 0.4);
    b.li(pass, 12 * scale as i32);

    let outer = b.new_label();
    let chain = b.new_label();

    b.bind(outer);
    b.li(i, 0);
    b.bind(chain);
    b.slli(aaddr, i, 3);
    b.addi(baddr, aaddr, table_b);
    b.addi(aaddr, aaddr, table_a);
    // Four staggered multiply-add chains over offset table slices.
    b.lf(a, aaddr, 0);
    b.lf(c, baddr, 0);
    b.fmul(s0, s0, a);
    b.fadd(s0, s0, c);
    b.lf(a, aaddr, 8);
    b.lf(c, baddr, 8);
    b.fmul(s1, s1, a);
    b.fsub(s1, s1, c);
    b.lf(a, aaddr, 16);
    b.lf(c, baddr, 16);
    b.fmul(s2, s2, a);
    b.fadd(s2, s2, c);
    b.lf(a, aaddr, 24);
    b.lf(c, baddr, 24);
    b.fmul(s3, s3, a);
    b.fsub(s3, s3, c);
    // Cross-couple to keep magnitudes bounded: s0 ↔ s2, s1 ↔ s3.
    b.fsub(s0, s0, s2);
    b.fsub(s1, s1, s3);
    b.addi(i, i, 4);
    b.slti(cond, i, COEFFS - 4);
    b.bgtz(cond, chain);
    b.addi(pass, pass, -1);
    b.bgtz(pass, outer);

    b.li(addr, result);
    b.sf(s0, addr, 0);
    b.sf(s1, addr, 8);
    b.sf(s2, addr, 16);
    b.sf(s3, addr, 24);
    b.halt();
    b.build().expect("fpppp workload assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_vm::Vm;

    #[test]
    fn chains_stay_bounded() {
        let p = build_with_input(1, 0);
        let mut vm = Vm::new(&p);
        let trace = vm.run(8_000_000).expect("runs");
        assert!(trace.halted);
        assert!(trace.ops.len() > 50_000);
        let result = (2 * COEFFS as u32) * 8;
        for k in 0..4 {
            let v = vm.read_double(result + k * 8).expect("in range");
            assert!(v.is_finite(), "accumulator {k} diverged: {v}");
        }
    }
}
