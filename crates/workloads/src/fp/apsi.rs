//! `apsi` analogue: pseudo-spectral weather series evaluation.
//!
//! Evaluates truncated exponential-style series per grid column:
//! `term = term * x / k` with the loop index cast to double (`cvtif`),
//! accumulated into a temperature field, alternating with round-constant
//! relaxation. Operand character: quotient-generated dense mantissas
//! against int-cast divisors — a mixed regime between `mgrid` and
//! `applu`.

use fua_isa::{FpReg, IntReg, Program, ProgramBuilder};

use crate::util;

const COLUMNS: i32 = 256;
const TERMS: i32 = 6;

/// Builds the workload with an alternative input data set (see
/// [`crate::all_with_input`]).
pub fn build_with_input(scale: u32, input: u32) -> Program {
    let mut rng = util::seeded_rng_input("apsi", input);
    let mut b = ProgramBuilder::new();

    let n = COLUMNS as usize;
    // Column parameters arrive as single-precision observations.
    let xs_vals: Vec<f64> = (0..n)
        .map(|_| util::single_precision_double(&mut rng) * 0.5)
        .collect();
    let xs = b.data_doubles(&xs_vals);
    let temp = b.data_doubles(&util::mixed_doubles(&mut rng, n, 0.6));
    let result = b.alloc_data(8);

    let col = IntReg::new(1);
    let k = IntReg::new(2);
    let addr = IntReg::new(3);
    let taddr = IntReg::new(4);
    let pass = IntReg::new(5);
    let cond = IntReg::new(6);

    let x = FpReg::new(1);
    let term = FpReg::new(2);
    let acc = FpReg::new(3);
    let kf = FpReg::new(4);
    let field = FpReg::new(5);
    let relax = FpReg::new(6);
    let one = FpReg::new(7);

    b.fli(relax, 0.75);
    b.fli(one, 1.0);
    b.li(pass, 16 * scale as i32);

    let outer = b.new_label();
    let col_loop = b.new_label();
    let term_loop = b.new_label();

    b.bind(outer);
    b.li(col, 0);
    b.bind(col_loop);
    b.slli(addr, col, 3);
    b.addi(taddr, addr, temp);
    b.addi(addr, addr, xs);
    b.lf(x, addr, 0);
    // exp-like series: acc = 1 + x + x^2/2 + ... + x^TERMS/TERMS!.
    b.fmov(term, one);
    b.fmov(acc, one);
    b.li(k, 1);
    b.bind(term_loop);
    b.fmul(term, term, x);
    b.cvtif(kf, k);
    b.fdiv(term, term, kf);
    b.fadd(acc, acc, term);
    b.addi(k, k, 1);
    b.slti(cond, k, TERMS + 1);
    b.bgtz(cond, term_loop);
    // Relaxation: T = 0.75*T + 0.25*acc.
    b.lf(field, taddr, 0);
    b.fmul(field, field, relax);
    b.fsub(acc, acc, field);
    b.fmul(acc, acc, relax);
    b.fsub(acc, field, acc);
    b.fadd(field, field, acc);
    b.fmul(field, field, relax);
    b.sf(field, taddr, 0);
    b.addi(col, col, 1);
    b.slti(cond, col, COLUMNS);
    b.bgtz(cond, col_loop);
    b.addi(pass, pass, -1);
    b.bgtz(pass, outer);

    b.li(addr, result);
    b.sf(field, addr, 0);
    b.halt();
    b.build().expect("apsi workload assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_isa::Opcode;
    use fua_vm::Vm;

    #[test]
    fn series_terms_divide_by_cast_indices() {
        let p = build_with_input(1, 0);
        let mut vm = Vm::new(&p);
        let trace = vm.run(8_000_000).expect("runs");
        assert!(trace.halted);
        assert!(trace.ops.len() > 50_000);
        let casts = trace
            .ops
            .iter()
            .filter(|o| o.opcode == Opcode::CvtIf)
            .count();
        let divs = trace
            .ops
            .iter()
            .filter(|o| o.opcode == Opcode::FDiv)
            .count();
        assert!(casts > 10_000);
        assert_eq!(casts, divs, "every term divides by a cast index");
        let result = (2 * COLUMNS as u32) * 8;
        assert!(vm.read_double(result).expect("in range").is_finite());
    }
}
