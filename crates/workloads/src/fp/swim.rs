//! `swim` analogue: shallow-water 2-D stencil with round coefficients.
//!
//! Jacobi-style sweeps over two 32×32 double grids: each interior point
//! becomes a weighted sum of its neighbours (weights 0.5/0.25 — exact
//! powers of two) plus a coupling term from the second field. Operand
//! character: the classic FPAU mix — trailing-zero-rich stencil weights
//! and partially round field values against full-precision accumulations.

use fua_isa::{FpReg, IntReg, Program, ProgramBuilder};

use crate::util;

const SIDE: i32 = 32;

/// Builds the workload with an alternative input data set (see
/// [`crate::all_with_input`]).
pub fn build_with_input(scale: u32, input: u32) -> Program {
    let mut rng = util::seeded_rng_input("swim", input);
    let mut b = ProgramBuilder::new();

    let n = (SIDE * SIDE) as usize;
    let u = b.data_doubles(&util::mixed_doubles(&mut rng, n, 0.7));
    let v = b.data_doubles(&util::mixed_doubles(&mut rng, n, 0.7));
    let result = b.alloc_data(8);

    let row = IntReg::new(1);
    let col = IntReg::new(2);
    let uaddr = IntReg::new(3);
    let vaddr = IntReg::new(4);
    let pass = IntReg::new(5);
    let cond = IntReg::new(6);
    let rowoff = IntReg::new(7);
    let addr = IntReg::new(8);

    let center = FpReg::new(1);
    let acc = FpReg::new(2);
    let tmp = FpReg::new(3);
    let half = FpReg::new(4);
    let quarter = FpReg::new(5);
    let couple = FpReg::new(6);
    let checksum = FpReg::new(7);

    b.fli(half, 0.5);
    b.fli(quarter, 0.25);
    b.fli(checksum, 0.0);
    b.li(pass, 6 * scale as i32);

    let outer = b.new_label();
    let row_loop = b.new_label();
    let col_loop = b.new_label();

    b.bind(outer);
    b.li(row, 1);
    b.bind(row_loop);
    b.muli(rowoff, row, SIDE * 8);
    b.li(col, 1);
    b.bind(col_loop);
    // uaddr = u + rowoff + col*8; vaddr likewise.
    b.slli(addr, col, 3);
    b.add(addr, addr, rowoff);
    b.addi(uaddr, addr, u);
    b.addi(vaddr, addr, v);
    // acc = 0.25*(u[n] + u[s] + u[w] + u[e])
    b.lf(acc, uaddr, -(SIDE * 8));
    b.lf(tmp, uaddr, SIDE * 8);
    b.fadd(acc, acc, tmp);
    b.lf(tmp, uaddr, -8);
    b.fadd(acc, acc, tmp);
    b.lf(tmp, uaddr, 8);
    b.fadd(acc, acc, tmp);
    b.fmul(acc, acc, quarter);
    // couple = 0.5 * v[center]
    b.lf(couple, vaddr, 0);
    b.fmul(couple, couple, half);
    // u' = 0.5*u + 0.25*stencil + couple*0.25 (keeps values bounded).
    b.lf(center, uaddr, 0);
    b.fmul(center, center, half);
    b.fmul(acc, acc, half);
    b.fadd(center, center, acc);
    b.fmul(couple, couple, quarter);
    b.fadd(center, center, couple);
    b.sf(center, uaddr, 0);
    b.fadd(checksum, checksum, center);
    b.addi(col, col, 1);
    b.slti(cond, col, SIDE - 1);
    b.bgtz(cond, col_loop);
    b.addi(row, row, 1);
    b.slti(cond, row, SIDE - 1);
    b.bgtz(cond, row_loop);
    b.addi(pass, pass, -1);
    b.bgtz(pass, outer);

    b.li(addr, result);
    b.sf(checksum, addr, 0);
    b.halt();
    b.build().expect("swim workload assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_vm::Vm;

    #[test]
    fn converges_without_blowing_up() {
        let p = build_with_input(1, 0);
        let mut vm = Vm::new(&p);
        let trace = vm.run(5_000_000).expect("runs");
        assert!(trace.halted);
        assert!(trace.ops.len() > 50_000);
        let result = 2 * (SIDE * SIDE) as u32 * 8;
        let checksum = vm.read_double(result).expect("in range");
        assert!(checksum.is_finite());
    }
}
