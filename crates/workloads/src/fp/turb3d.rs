//! `turb3d` analogue: FFT-style butterflies with dense twiddle factors.
//!
//! Strided radix-2 butterflies over a complex-like double array, each
//! pair rotated by a precomputed full-precision twiddle factor. Operand
//! character: almost entirely dense mantissas on both FPAU and FP
//! multiplier — the workload where the FP information bit predicts
//! *least*, stressing the scheme's worst case.

use fua_isa::{FpReg, IntReg, Program, ProgramBuilder};

use crate::util;

const POINTS: i32 = 512; // complex points: 2 doubles each
const STAGES: [i32; 4] = [1, 2, 4, 8];

/// Builds the workload with an alternative input data set (see
/// [`crate::all_with_input`]).
pub fn build_with_input(scale: u32, input: u32) -> Program {
    let mut rng = util::seeded_rng_input("turb3d", input);
    let mut b = ProgramBuilder::new();

    let n = (POINTS * 2) as usize;
    let data = b.data_doubles(&util::mixed_doubles(&mut rng, n, 0.3));
    // Twiddles: (cos, sin)-like dense pairs, norm < 1.
    let twiddle_vals: Vec<f64> = (0..64)
        .map(|_| util::full_precision_double(&mut rng) * 0.7)
        .collect();
    let twiddles = b.data_doubles(&twiddle_vals);
    let result = b.alloc_data(8);

    let i = IntReg::new(1);
    let aaddr = IntReg::new(2);
    let baddr = IntReg::new(3);
    let waddr = IntReg::new(4);
    let pass = IntReg::new(5);
    let cond = IntReg::new(6);
    let tmp = IntReg::new(7);
    let addr = IntReg::new(8);

    let ar = FpReg::new(1);
    let ai = FpReg::new(2);
    let br = FpReg::new(3);
    let bi = FpReg::new(4);
    let wr = FpReg::new(5);
    let wi = FpReg::new(6);
    let tr = FpReg::new(7);
    let ti = FpReg::new(8);
    let half = FpReg::new(9);

    b.fli(half, 0.5);
    b.li(pass, 4 * scale as i32);

    let outer = b.new_label();

    b.bind(outer);
    for (s, &stride) in STAGES.iter().enumerate() {
        let stage_loop = b.new_label();
        b.li(i, 0);
        b.bind(stage_loop);
        // a = data[i], b = data[i + stride] (complex, 16 bytes each).
        b.slli(aaddr, i, 4);
        b.addi(aaddr, aaddr, data);
        b.addi(baddr, aaddr, stride * 16);
        // twiddle index = (i + stage) & 31, pairs of doubles.
        b.addi(tmp, i, s as i32);
        b.andi(tmp, tmp, 31);
        b.slli(waddr, tmp, 4);
        b.addi(waddr, waddr, twiddles);
        b.lf(ar, aaddr, 0);
        b.lf(ai, aaddr, 8);
        b.lf(br, baddr, 0);
        b.lf(bi, baddr, 8);
        b.lf(wr, waddr, 0);
        b.lf(wi, waddr, 8);
        // t = w * b (complex multiply).
        b.fmul(tr, wr, br);
        b.fmul(ti, wi, bi);
        b.fsub(tr, tr, ti);
        b.fmul(ti, wr, bi);
        b.fmul(bi, wi, br);
        b.fadd(ti, ti, bi);
        // a' = 0.5*(a + t); b' = 0.5*(a - t)  (damped to stay bounded).
        b.fadd(br, ar, tr);
        b.fmul(br, br, half);
        b.fsub(ar, ar, tr);
        b.fmul(ar, ar, half);
        b.fadd(bi, ai, ti);
        b.fmul(bi, bi, half);
        b.fsub(ai, ai, ti);
        b.fmul(ai, ai, half);
        b.sf(br, aaddr, 0);
        b.sf(bi, aaddr, 8);
        b.sf(ar, baddr, 0);
        b.sf(ai, baddr, 8);
        b.addi(i, i, 1);
        b.slti(cond, i, POINTS - stride);
        b.bgtz(cond, stage_loop);
    }
    b.addi(pass, pass, -1);
    b.bgtz(pass, outer);

    b.li(addr, result);
    b.sf(ar, addr, 0);
    b.halt();
    b.build().expect("turb3d workload assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_isa::FuClass;
    use fua_vm::Vm;

    #[test]
    fn multiplier_sees_dense_operands() {
        let p = build_with_input(1, 0);
        let mut vm = Vm::new(&p);
        let trace = vm.run(8_000_000).expect("runs");
        assert!(trace.halted);
        assert!(trace.ops.len() > 50_000);
        let (mut dense, mut total) = (0u64, 0u64);
        for op in &trace.ops {
            if let Some(fu) = op.fu {
                if fu.class == FuClass::FpMul {
                    total += 1;
                    dense += fu.op1.info_bit() as u64;
                }
            }
        }
        assert!(total > 10_000);
        assert!(
            dense as f64 / total as f64 > 0.6,
            "turb3d multiplies should be dense: {dense}/{total}"
        );
    }
}
