//! The eight floating-point workloads (SPEC95fp analogues).

pub mod applu;
pub mod apsi;
pub mod fpppp;
pub mod hydro2d;
pub mod mgrid;
pub mod swim;
pub mod turb3d;
pub mod wave5;
