//! `applu` analogue: SSOR block solve with dense coefficients.
//!
//! Repeated 5×5 block matrix–vector products with full-precision
//! coefficients, followed by a diagonal solve (`fdiv`). Operand
//! character: dense mantissas dominating (case 11 heavy) with regular
//! divider traffic — the counterweight to `mgrid`'s round values.

use fua_isa::{FpReg, IntReg, Program, ProgramBuilder};

use crate::util;

const BLOCK: i32 = 5;
const BLOCKS: i32 = 64;

/// Builds the workload with an alternative input data set (see
/// [`crate::all_with_input`]).
pub fn build_with_input(scale: u32, input: u32) -> Program {
    let mut rng = util::seeded_rng_input("applu", input);
    let mut b = ProgramBuilder::new();

    let n_mat = (BLOCKS * BLOCK * BLOCK) as usize;
    let n_vec = (BLOCKS * BLOCK) as usize;
    let mats = b.data_doubles(&util::mixed_doubles(&mut rng, n_mat, 0.1));
    let vecs = b.data_doubles(&util::mixed_doubles(&mut rng, n_vec, 0.35));
    // Diagonals bounded away from zero.
    let diag_vals: Vec<f64> = (0..n_vec)
        .map(|_| 1.0 + util::single_precision_double(&mut rng).abs())
        .collect();
    let diags = b.data_doubles(&diag_vals);
    let result = b.alloc_data(8);

    let blk = IntReg::new(1);
    let rowi = IntReg::new(2);
    let maddr = IntReg::new(4);
    let vaddr = IntReg::new(5);
    let daddr = IntReg::new(6);
    let pass = IntReg::new(7);
    let cond = IntReg::new(8);
    let tmpreg = IntReg::new(9);
    let addr = IntReg::new(10);

    let acc = FpReg::new(1);
    let a = FpReg::new(2);
    let x = FpReg::new(3);
    let d = FpReg::new(4);
    let sum = FpReg::new(5);
    let damp = FpReg::new(6);

    b.fli(sum, 0.0);
    b.fli(damp, 0.0625);
    b.li(pass, 6 * scale as i32);

    let outer = b.new_label();
    let blk_loop = b.new_label();
    let row_loop = b.new_label();

    b.bind(outer);
    b.li(blk, 0);
    // Stepping pointers: maddr walks the matrix rows contiguously, vaddr
    // rewinds to the block's vector each row.
    b.li(maddr, mats);
    b.bind(blk_loop);
    b.li(rowi, 0);
    b.bind(row_loop);
    // acc = Σ_j A[blk][i][j] * x[blk][j], 5-way unrolled.
    b.muli(vaddr, blk, BLOCK * 8);
    b.addi(vaddr, vaddr, vecs);
    b.lf(a, maddr, 0);
    b.lf(x, vaddr, 0);
    b.fmul(acc, a, x);
    for j in 1..BLOCK {
        b.lf(a, maddr, j * 8);
        b.lf(x, vaddr, j * 8);
        b.fmul(a, a, x);
        b.fadd(acc, acc, a);
    }
    b.addi(maddr, maddr, BLOCK * 8);
    // Diagonal solve and damped update: x[i] += damp * acc / d.
    b.muli(daddr, blk, BLOCK);
    b.add(daddr, daddr, rowi);
    b.slli(daddr, daddr, 3);
    b.addi(tmpreg, daddr, diags);
    b.lf(d, tmpreg, 0);
    b.fdiv(acc, acc, d);
    b.fmul(acc, acc, damp);
    b.addi(tmpreg, daddr, vecs);
    b.lf(x, tmpreg, 0);
    b.fadd(x, x, acc);
    b.sf(x, tmpreg, 0);
    b.fadd(sum, sum, acc);
    b.addi(rowi, rowi, 1);
    b.slti(cond, rowi, BLOCK);
    b.bgtz(cond, row_loop);
    b.addi(blk, blk, 1);
    b.slti(cond, blk, BLOCKS);
    b.bgtz(cond, blk_loop);
    b.addi(pass, pass, -1);
    b.bgtz(pass, outer);

    b.li(addr, result);
    b.sf(sum, addr, 0);
    b.halt();
    b.build().expect("applu workload assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_isa::Opcode;
    use fua_vm::Vm;

    #[test]
    fn exercises_the_divider_and_stays_finite() {
        let p = build_with_input(1, 0);
        let mut vm = Vm::new(&p);
        let trace = vm.run(5_000_000).expect("runs");
        assert!(trace.halted);
        assert!(trace.ops.len() > 50_000);
        let divides = trace
            .ops
            .iter()
            .filter(|o| o.opcode == Opcode::FDiv)
            .count();
        assert!(divides > 500, "applu should use fdiv, saw {divides}");
        let result = ((BLOCKS * BLOCK * BLOCK) as u32 + 2 * (BLOCKS * BLOCK) as u32) * 8;
        assert!(vm.read_double(result).expect("in range").is_finite());
    }
}
