//! `hydro2d` analogue: hydrodynamical flux updates with limiters.
//!
//! Computes momentum fluxes (`rho * v`), central-difference pressure
//! updates, and an upwind limiter driven by FP compares and `fabs`.
//! Operand character: products of physical quantities (dense mantissas)
//! mixed with halved differences, plus FPAU compare traffic none of the
//! other kernels has.

use fua_isa::{FpReg, IntReg, Opcode, Program, ProgramBuilder};

use crate::util;

const CELLS: i32 = 768;

/// Builds the workload with an alternative input data set (see
/// [`crate::all_with_input`]).
pub fn build_with_input(scale: u32, input: u32) -> Program {
    let mut rng = util::seeded_rng_input("hydro2d", input);
    let mut b = ProgramBuilder::new();

    let n = CELLS as usize;
    // Densities near 1, velocities mixed-sign, pressures positive.
    // Densities came through single-precision input files, as real
    // hydro codes' initial conditions often do.
    let rho_vals: Vec<f64> = (0..n)
        .map(|_| 0.5 + util::single_precision_double(&mut rng).abs())
        .collect();
    let rho = b.data_doubles(&rho_vals);
    let vel = b.data_doubles(&util::mixed_doubles(&mut rng, n, 0.5));
    let pres_vals: Vec<f64> = (0..n)
        .map(|_| 1.0 + util::single_precision_double(&mut rng).abs())
        .collect();
    let pres = b.data_doubles(&pres_vals);
    let flux = b.alloc_data(n * 8);
    let result = b.alloc_data(8);

    let i = IntReg::new(1);
    let addr = IntReg::new(2);
    let faddr = IntReg::new(3);
    let pass = IntReg::new(4);
    let cond = IntReg::new(5);
    let base = IntReg::new(6);

    let r = FpReg::new(1);
    let v = FpReg::new(2);
    let f = FpReg::new(3);
    let p = FpReg::new(4);
    let t = FpReg::new(5);
    let half = FpReg::new(6);
    let sum = FpReg::new(7);
    let zero = FpReg::new(8);
    let damp = FpReg::new(9);

    b.fli(half, 0.5);
    b.fli(zero, 0.0);
    b.fli(sum, 0.0);
    b.fli(damp, 0.001);
    b.li(pass, 9 * scale as i32);

    let outer = b.new_label();
    let flux_loop = b.new_label();
    let update_loop = b.new_label();
    let upwind = b.new_label();
    let limited = b.new_label();

    b.bind(outer);
    // Pass 1: momentum flux f[i] = rho[i] * v[i].
    b.li(i, 0);
    b.bind(flux_loop);
    b.slli(addr, i, 3);
    b.addi(base, addr, rho);
    b.lf(r, base, 0);
    b.addi(base, addr, vel);
    b.lf(v, base, 0);
    b.fmul(f, r, v);
    b.addi(faddr, addr, flux);
    b.sf(f, faddr, 0);
    b.addi(i, i, 1);
    b.slti(cond, i, CELLS);
    b.bgtz(cond, flux_loop);
    // Pass 2: pressure update with an upwind limiter.
    b.li(i, 1);
    b.bind(update_loop);
    b.slli(addr, i, 3);
    b.addi(faddr, addr, flux);
    b.lf(f, faddr, 0);
    // limiter: if f < 0 use |f| damped, else central difference.
    b.fcmp(Opcode::FCmpLt, cond, f, zero);
    b.bgtz(cond, upwind);
    b.lf(t, faddr, 8);
    b.fsub(t, t, f);
    b.fmul(t, t, half);
    b.j(limited);
    b.bind(upwind);
    b.fabs(t, f);
    b.fneg(t, t);
    b.bind(limited);
    b.fmul(t, t, damp);
    b.addi(base, addr, pres);
    b.lf(p, base, 0);
    b.fadd(p, p, t);
    b.sf(p, base, 0);
    b.fadd(sum, sum, t);
    b.addi(i, i, 1);
    b.slti(cond, i, CELLS - 1);
    b.bgtz(cond, update_loop);
    b.addi(pass, pass, -1);
    b.bgtz(pass, outer);

    b.li(addr, result);
    b.sf(sum, addr, 0);
    b.halt();
    b.build().expect("hydro2d workload assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_vm::Vm;

    #[test]
    fn fp_compares_steer_the_limiter() {
        let p = build_with_input(1, 0);
        let mut vm = Vm::new(&p);
        let trace = vm.run(5_000_000).expect("runs");
        assert!(trace.halted);
        assert!(trace.ops.len() > 50_000);
        let cmps = trace
            .ops
            .iter()
            .filter(|o| o.opcode == Opcode::FCmpLt)
            .count();
        assert!(cmps > 1_000, "hydro2d should compare fluxes, saw {cmps}");
        let result = (4 * CELLS as u32) * 8;
        assert!(vm.read_double(result).expect("in range").is_finite());
    }
}
