//! Shared helpers for workload construction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic per-workload RNG: the seed is derived from the workload
/// name so every build of a given workload is identical.
pub fn seeded_rng(name: &str) -> StdRng {
    seeded_rng_input(name, 0)
}

/// As [`seeded_rng`], but additionally keyed by an *input set* number —
/// the analogue of running a SPEC benchmark on its train vs ref inputs.
/// Input 0 is the default data set.
pub fn seeded_rng_input(name: &str, input: u32) -> StdRng {
    let mut seed = [0u8; 32];
    for (i, b) in name.bytes().cycle().take(32).enumerate() {
        seed[i] = b.wrapping_mul(31).wrapping_add(i as u8);
    }
    for (i, b) in input.to_le_bytes().iter().enumerate() {
        seed[28 + i] ^= b.wrapping_mul(167);
    }
    StdRng::from_seed(seed)
}

/// `n` random words in `[lo, hi)`.
pub fn random_words(rng: &mut StdRng, n: usize, lo: i32, hi: i32) -> Vec<i32> {
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// `n` small non-negative words (the sign-extension-friendly regime that
/// dominates integer programs).
pub fn small_words(rng: &mut StdRng, n: usize, max: i32) -> Vec<i32> {
    random_words(rng, n, 0, max.max(1))
}

/// A mixed double population mirroring the paper's three trailing-zero
/// sources (Section 4.2): a `round_fraction` share of trailing-zero-rich
/// values — half "round" constants/integer casts, half single-precision
/// values cast to double (29 trailing mantissa zeros) — and the rest
/// full-precision.
pub fn mixed_doubles(rng: &mut StdRng, n: usize, round_fraction: f64) -> Vec<f64> {
    (0..n)
        .map(|_| {
            if rng.gen_bool(round_fraction) {
                if rng.gen_bool(0.5) {
                    round_double(rng)
                } else {
                    single_precision_double(rng)
                }
            } else {
                full_precision_double(rng)
            }
        })
        .collect()
}

/// A double that came through a 32-bit float — the paper's "casting of
/// single precision numbers into double precision by the hardware":
/// full 23-bit float mantissa, 29 trailing zeros after widening.
pub fn single_precision_double(rng: &mut StdRng) -> f64 {
    (full_precision_double(rng) as f32) as f64
}

/// Randomises the operand order of every software-swappable instruction
/// with probability ½.
///
/// Hand-written kernels are accidentally canonical; a real compiler's
/// operand order is arbitrary (whatever register allocation produced).
/// Scrambling restores that property, which is precisely what the paper's
/// profile-guided swap pass exists to clean up.
pub fn scramble_commutative(program: &mut fua_isa::Program, rng: &mut StdRng) {
    for idx in 0..program.len() {
        let inst = *program.inst(idx);
        if let Some(swapped) = inst.swapped() {
            if rng.gen_bool(0.5) {
                program.replace_inst(idx, swapped);
            }
        }
    }
}

/// A "round" double: an integer in a small range, possibly scaled by a
/// power of two — exactly the values produced by integer casts and round
/// program constants.
pub fn round_double(rng: &mut StdRng) -> f64 {
    let base = rng.gen_range(-64i32..64) as f64;
    let scale = match rng.gen_range(0..4) {
        0 => 1.0,
        1 => 0.5,
        2 => 0.25,
        _ => 2.0,
    };
    base * scale
}

/// A full-precision double with magnitude in `[1/16, 2)` and a uniformly
/// random 52-bit mantissa.
///
/// Built from raw bits rather than `gen_range`: uniform float sampling
/// produces values of the form `k·2⁻⁵³`, which renormalise to mantissas
/// with trailing zeros near zero — exactly the bias this helper must
/// avoid.
pub fn full_precision_double(rng: &mut StdRng) -> f64 {
    let mantissa = rng.gen::<u64>() & ((1u64 << 52) - 1);
    let exponent = rng.gen_range(1019u64..1024); // magnitude in [1/16, 2)
    let sign = (rng.gen::<bool>() as u64) << 63;
    f64::from_bits(sign | (exponent << 52) | mantissa)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_isa::Word;

    #[test]
    fn rng_is_deterministic_per_name() {
        let a: Vec<i32> = random_words(&mut seeded_rng("x"), 8, 0, 100);
        let b: Vec<i32> = random_words(&mut seeded_rng("x"), 8, 0, 100);
        let c: Vec<i32> = random_words(&mut seeded_rng("y"), 8, 0, 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn round_doubles_have_clear_info_bits() {
        let mut rng = seeded_rng("round");
        for _ in 0..100 {
            let v = round_double(&mut rng);
            assert!(
                !Word::fp(v).info_bit(),
                "{v} should read as trailing-zero-rich"
            );
        }
    }

    #[test]
    fn full_precision_doubles_are_dense() {
        let mut rng = seeded_rng("dense");
        let dense = (0..200)
            .filter(|_| Word::fp(full_precision_double(&mut rng)).info_bit())
            .count();
        assert!(dense > 170, "only {dense} of 200 were full precision");
    }

    #[test]
    fn mixed_population_respects_the_fraction() {
        let mut rng = seeded_rng("mixed");
        let vals = mixed_doubles(&mut rng, 1000, 0.4);
        let round = vals.iter().filter(|v| !Word::fp(**v).info_bit()).count();
        assert!((300..600).contains(&round), "round count {round}");
    }
}
