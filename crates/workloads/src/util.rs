//! Shared helpers for workload construction.

use crate::rng::SplitMix64;

/// Deterministic per-workload RNG: the seed is derived from the workload
/// name so every build of a given workload is identical.
pub fn seeded_rng(name: &str) -> SplitMix64 {
    seeded_rng_input(name, 0)
}

/// As [`seeded_rng`], but additionally keyed by an *input set* number —
/// the analogue of running a SPEC benchmark on its train vs ref inputs.
/// Input 0 is the default data set.
pub fn seeded_rng_input(name: &str, input: u32) -> SplitMix64 {
    // FNV-1a over the name, mixed with the input number. Any decent hash
    // works; what matters is that (name, input) pairs get distinct seeds.
    let mut seed = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x1000_0000_01B3);
    }
    seed ^= (input as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    SplitMix64::new(seed)
}

/// `n` random words in `[lo, hi)`.
pub fn random_words(rng: &mut SplitMix64, n: usize, lo: i32, hi: i32) -> Vec<i32> {
    (0..n).map(|_| rng.range_i32(lo, hi)).collect()
}

/// `n` small non-negative words (the sign-extension-friendly regime that
/// dominates integer programs).
pub fn small_words(rng: &mut SplitMix64, n: usize, max: i32) -> Vec<i32> {
    random_words(rng, n, 0, max.max(1))
}

/// A mixed double population mirroring the paper's three trailing-zero
/// sources (Section 4.2): a `round_fraction` share of trailing-zero-rich
/// values — half "round" constants/integer casts, half single-precision
/// values cast to double (29 trailing mantissa zeros) — and the rest
/// full-precision.
pub fn mixed_doubles(rng: &mut SplitMix64, n: usize, round_fraction: f64) -> Vec<f64> {
    (0..n)
        .map(|_| {
            if rng.chance(round_fraction) {
                if rng.flip() {
                    round_double(rng)
                } else {
                    single_precision_double(rng)
                }
            } else {
                full_precision_double(rng)
            }
        })
        .collect()
}

/// A double that came through a 32-bit float — the paper's "casting of
/// single precision numbers into double precision by the hardware":
/// full 23-bit float mantissa, 29 trailing zeros after widening.
pub fn single_precision_double(rng: &mut SplitMix64) -> f64 {
    (full_precision_double(rng) as f32) as f64
}

/// Randomises the operand order of every software-swappable instruction
/// with probability ½.
///
/// Hand-written kernels are accidentally canonical; a real compiler's
/// operand order is arbitrary (whatever register allocation produced).
/// Scrambling restores that property, which is precisely what the paper's
/// profile-guided swap pass exists to clean up.
pub fn scramble_commutative(program: &mut fua_isa::Program, rng: &mut SplitMix64) {
    for idx in 0..program.len() {
        let inst = *program.inst(idx);
        if let Some(swapped) = inst.swapped() {
            if rng.flip() {
                program.replace_inst(idx, swapped);
            }
        }
    }
}

/// A "round" double: an integer in a small range, possibly scaled by a
/// power of two — exactly the values produced by integer casts and round
/// program constants.
pub fn round_double(rng: &mut SplitMix64) -> f64 {
    let base = rng.range_i32(-64, 64) as f64;
    let scale = match rng.bounded(4) {
        0 => 1.0,
        1 => 0.5,
        2 => 0.25,
        _ => 2.0,
    };
    base * scale
}

/// A full-precision double with magnitude in `[1/16, 2)` and a uniformly
/// random 52-bit mantissa.
///
/// Built from raw bits rather than a float range: uniform float sampling
/// produces values of the form `k·2⁻⁵³`, which renormalise to mantissas
/// with trailing zeros near zero — exactly the bias this helper must
/// avoid.
pub fn full_precision_double(rng: &mut SplitMix64) -> f64 {
    let mantissa = rng.next_u64() & ((1u64 << 52) - 1);
    let exponent = 1019 + rng.bounded(5); // magnitude in [1/16, 2)
    let sign = (rng.flip() as u64) << 63;
    f64::from_bits(sign | (exponent << 52) | mantissa)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_isa::Word;

    #[test]
    fn rng_is_deterministic_per_name() {
        let a: Vec<i32> = random_words(&mut seeded_rng("x"), 8, 0, 100);
        let b: Vec<i32> = random_words(&mut seeded_rng("x"), 8, 0, 100);
        let c: Vec<i32> = random_words(&mut seeded_rng("y"), 8, 0, 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn input_sets_get_distinct_streams() {
        let a: Vec<i32> = random_words(&mut seeded_rng_input("x", 0), 8, 0, 100);
        let b: Vec<i32> = random_words(&mut seeded_rng_input("x", 1), 8, 0, 100);
        assert_ne!(a, b);
    }

    #[test]
    fn round_doubles_have_clear_info_bits() {
        let mut rng = seeded_rng("round");
        for _ in 0..100 {
            let v = round_double(&mut rng);
            assert!(
                !Word::fp(v).info_bit(),
                "{v} should read as trailing-zero-rich"
            );
        }
    }

    #[test]
    fn full_precision_doubles_are_dense() {
        let mut rng = seeded_rng("dense");
        let dense = (0..200)
            .filter(|_| Word::fp(full_precision_double(&mut rng)).info_bit())
            .count();
        assert!(dense > 170, "only {dense} of 200 were full precision");
    }

    #[test]
    fn mixed_population_respects_the_fraction() {
        let mut rng = seeded_rng("mixed");
        let vals = mixed_doubles(&mut rng, 1000, 0.4);
        let round = vals.iter().filter(|v| !Word::fp(**v).info_bit()).count();
        assert!((300..600).contains(&round), "round count {round}");
    }
}
