//! `compress` analogue: LZW-style hashing and dictionary probing.
//!
//! The kernel streams a pseudo-random symbol sequence, hashes each symbol
//! with a multiplicative hash, probes a direct-mapped dictionary, and
//! either records a hit (checksum update) or inserts the symbol. Operand
//! character: small positive symbols, mid-size hash products, table
//! pointers — the sign-extension-friendly regime that makes case 00
//! dominate the IALU.

use fua_isa::{IntReg, Program, ProgramBuilder};

use crate::util;

/// Builds the workload with an alternative input data set (see
/// [`crate::all_with_input`]).
pub fn build_with_input(scale: u32, input: u32) -> Program {
    let mut rng = util::seeded_rng_input("compress", input);
    let mut b = ProgramBuilder::new();

    const N: usize = 2048; // input symbols
    const TABLE: i32 = 1024; // dictionary entries

    let input = b.data_words(&util::small_words(&mut rng, N, 1 << 16));
    let table = b.alloc_data(TABLE as usize * 4);
    let result = b.alloc_data(8);

    let tab = IntReg::new(2);
    let i = IntReg::new(3);
    let ptr = IntReg::new(4);
    let cur = IntReg::new(5);
    let hash = IntReg::new(6);
    let addr = IntReg::new(7);
    let probe = IntReg::new(8);
    let sum = IntReg::new(9);
    let pass = IntReg::new(10);

    b.li(tab, table);
    b.li(sum, 0);
    b.li(pass, 4 * scale as i32);

    let outer = b.new_label();
    let inner = b.new_label();
    let hit = b.new_label();
    let cont = b.new_label();

    b.bind(outer);
    b.li(i, N as i32);
    b.li(ptr, input);
    b.bind(inner);
    b.lw(cur, ptr, 0);
    // Multiplicative hash into the dictionary.
    b.muli(hash, cur, 0x9E3B);
    b.srli(hash, hash, 6);
    b.andi(hash, hash, TABLE - 1);
    b.slli(addr, hash, 2);
    b.add(addr, addr, tab);
    b.lw(probe, addr, 0);
    b.beq(probe, cur, hit);
    // Miss: insert and count.
    b.sw(cur, addr, 0);
    b.addi(sum, sum, 1);
    b.j(cont);
    b.bind(hit);
    b.add(sum, sum, cur);
    b.bind(cont);
    b.addi(ptr, ptr, 4);
    b.addi(i, i, -1);
    b.bgtz(i, inner);
    b.addi(pass, pass, -1);
    b.bgtz(pass, outer);

    b.li(addr, result);
    b.sw(sum, addr, 0);
    b.halt();
    b.build().expect("compress workload assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_vm::Vm;

    #[test]
    fn runs_to_completion_and_produces_a_checksum() {
        let p = build_with_input(1, 0);
        let mut vm = Vm::new(&p);
        let trace = vm.run(2_000_000).expect("runs");
        assert!(trace.halted);
        assert!(trace.ops.len() > 50_000);
        // The checksum is stored and non-zero.
        let result_addr = {
            // result block follows input (2048*4) and table (1024*4).
            (2048 * 4 + 1024 * 4) as u32
        };
        assert_ne!(vm.read_word(result_addr).expect("in range"), 0);
    }

    #[test]
    fn is_deterministic() {
        assert_eq!(build_with_input(1, 0), build_with_input(1, 0));
    }
}
