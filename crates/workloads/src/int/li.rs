//! `li` analogue: lisp-interpreter pointer chasing over cons cells.
//!
//! A shuffled linked list of cons cells (`[tag|value, next]` pairs) is
//! traversed repeatedly; number cells are accumulated, symbol cells bump
//! a counter, and every few passes the accumulator is "garbage collected"
//! (masked). Operand character: pointer-valued operands mixed with small
//! tagged integers — the widest integer value spread of the suite.

use fua_isa::{IntReg, Program, ProgramBuilder};

use crate::util;

const CELLS: usize = 512;

/// Builds the workload with an alternative input data set (see
/// [`crate::all_with_input`]).
pub fn build_with_input(scale: u32, input: u32) -> Program {
    let mut rng = util::seeded_rng_input("li", input);
    let mut b = ProgramBuilder::new();

    // Keep byte address 0 free so a null `next` pointer is unambiguous.
    let guard = b.alloc_data(8);
    let heap = guard + 8;

    // Build a randomly-ordered singly linked list: cell k occupies bytes
    // [heap+8k, heap+8k+8): word 0 = tagged value (odd = symbol, even =
    // number), word 1 = absolute byte address of the next cell, 0
    // terminates.
    let mut order: Vec<usize> = (0..CELLS).collect();
    rng.shuffle(&mut order);
    let mut words = vec![0i32; CELLS * 2];
    for w in order.windows(2) {
        let (cell, next) = (w[0], w[1]);
        words[cell * 2] = util::random_words(&mut rng, 1, 0, 4096)[0];
        words[cell * 2 + 1] = heap + (next * 8) as i32;
    }
    let last = *order.last().expect("non-empty");
    words[last * 2] = 7;
    words[last * 2 + 1] = 0;
    let heap_actual = b.data_words(&words);
    assert_eq!(heap_actual, heap, "layout assumption");
    let result = b.alloc_data(8);
    let head = (order[0] * 8) as i32 + heap;

    let ptr = IntReg::new(1);
    let tagged = IntReg::new(2);
    let acc = IntReg::new(3);
    let symbols = IntReg::new(4);
    let pass = IntReg::new(5);
    let cond = IntReg::new(6);
    let addr = IntReg::new(7);

    b.li(acc, 0);
    b.li(symbols, 0);
    b.li(pass, 120 * scale as i32);

    let outer = b.new_label();
    let walk = b.new_label();
    let number = b.new_label();
    let advance = b.new_label();
    let done_walk = b.new_label();

    b.bind(outer);
    b.li(ptr, head);
    b.bind(walk);
    b.lw(tagged, ptr, 0);
    b.andi(cond, tagged, 1);
    b.blez(cond, number);
    // Symbol cell.
    b.addi(symbols, symbols, 1);
    b.j(advance);
    b.bind(number);
    b.srai(tagged, tagged, 1); // untag
    b.add(acc, acc, tagged);
    b.bind(advance);
    b.lw(ptr, ptr, 4);
    b.bgtz(ptr, walk);
    b.bind(done_walk);
    // "GC": keep the accumulator bounded.
    b.andi(acc, acc, 0xFFFF);
    b.addi(pass, pass, -1);
    b.bgtz(pass, outer);

    b.li(addr, result);
    b.sw(acc, addr, 0);
    b.sw(symbols, addr, 4);
    b.halt();
    b.build().expect("li workload assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_vm::Vm;

    #[test]
    fn walks_the_whole_list_every_pass() {
        let p = build_with_input(1, 0);
        let mut vm = Vm::new(&p);
        let trace = vm.run(5_000_000).expect("runs");
        assert!(trace.halted);
        assert!(trace.ops.len() > 50_000);
        let result = (8 + CELLS * 8) as u32;
        let symbols = vm.read_word(result + 4).expect("in range");
        // Symbols counted across 120 passes: a multiple of 120.
        assert!(symbols > 0);
        assert_eq!(symbols % 120, 0);
    }
}
