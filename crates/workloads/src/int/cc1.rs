//! `cc1` analogue: compiler symbol-table hashing with linear probing.
//!
//! Interns a stream of symbol keys into an open-addressed hash table:
//! multiplicative hash, linear probe with wraparound, compare, insert on
//! an empty slot. Operand character: pointer arithmetic against table
//! bases, equality compares between wide keys, occasional remainders —
//! the most lookup-bound integer kernel.

use fua_isa::{IntReg, Opcode, Program, ProgramBuilder};

use crate::util;

const KEYS: usize = 1536;
const TABLE: i32 = 4096;

/// Builds the workload with an alternative input data set (see
/// [`crate::all_with_input`]).
pub fn build_with_input(scale: u32, input: u32) -> Program {
    let mut rng = util::seeded_rng_input("cc1", input);
    let mut b = ProgramBuilder::new();

    // Keys repeat (symbols are re-interned constantly in a compiler).
    let mut keys = util::random_words(&mut rng, KEYS / 2, 1, i32::MAX);
    let repeats = keys.clone();
    keys.extend(repeats);
    let key_base = b.data_words(&keys);
    let table = b.alloc_data(TABLE as usize * 4);
    let result = b.alloc_data(8);

    let kptr = IntReg::new(1);
    let key = IntReg::new(2);
    let slot = IntReg::new(3);
    let addr = IntReg::new(4);
    let probe = IntReg::new(5);
    let tab = IntReg::new(6);
    let i = IntReg::new(7);
    let pass = IntReg::new(8);
    let hits = IntReg::new(9);
    let cond = IntReg::new(10);

    b.li(tab, table);
    b.li(hits, 0);
    b.li(pass, 3 * scale as i32);

    let outer = b.new_label();
    let key_loop = b.new_label();
    let probe_loop = b.new_label();
    let insert = b.new_label();
    let found = b.new_label();
    let next_key = b.new_label();

    b.bind(outer);
    b.li(kptr, key_base);
    b.li(i, KEYS as i32);
    b.bind(key_loop);
    b.lw(key, kptr, 0);
    // hash = (key * 0x61C9) mod TABLE, via mask.
    b.muli(slot, key, 0x61C9);
    b.srli(slot, slot, 8);
    b.andi(slot, slot, TABLE - 1);
    b.bind(probe_loop);
    b.slli(addr, slot, 2);
    b.add(addr, addr, tab);
    b.lw(probe, addr, 0);
    b.beq(probe, key, found);
    b.blez(probe, insert); // empty slot (0) terminates the probe
                           // Linear probe with wraparound.
    b.addi(slot, slot, 1);
    b.alui(Opcode::Rem, slot, slot, TABLE);
    b.j(probe_loop);
    b.bind(insert);
    b.sw(key, addr, 0);
    b.j(next_key);
    b.bind(found);
    b.addi(hits, hits, 1);
    b.bind(next_key);
    b.addi(kptr, kptr, 4);
    b.addi(i, i, -1);
    b.bgtz(i, key_loop);
    b.addi(pass, pass, -1);
    b.bgtz(pass, outer);

    b.li(addr, result);
    b.sw(hits, addr, 0);
    b.halt();
    let _ = cond;
    b.build().expect("cc1 workload assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_vm::Vm;

    #[test]
    fn repeated_keys_hit_after_first_intern() {
        let p = build_with_input(1, 0);
        let mut vm = Vm::new(&p);
        let trace = vm.run(5_000_000).expect("runs");
        assert!(trace.halted);
        assert!(trace.ops.len() > 50_000);
        let result = (KEYS as u32) * 4 + (TABLE as u32) * 4;
        let hits = vm.read_word(result).expect("in range");
        // First pass: second half of the keys hit (they repeat the first
        // half). Later passes: everything hits.
        let expected = (KEYS / 2) as i32 + 2 * KEYS as i32;
        assert_eq!(hits, expected);
    }
}
