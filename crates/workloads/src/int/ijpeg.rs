//! `ijpeg` analogue: integer DCT butterflies over 8×8 blocks.
//!
//! Each pass transforms a set of 8×8 pixel blocks with add/subtract
//! butterflies and fixed-point constant multiplies (×181 >> 8 ≈ √2/2),
//! the core arithmetic of JPEG's integer DCT. Operand character:
//! medium-magnitude signed values with frequent sign changes — the
//! integer kernel with the most case-10/01 traffic.

use fua_isa::{IntReg, Program, ProgramBuilder};

use crate::util;

const BLOCKS: usize = 24;

/// Builds the workload with an alternative input data set (see
/// [`crate::all_with_input`]).
pub fn build_with_input(scale: u32, input: u32) -> Program {
    let mut rng = util::seeded_rng_input("ijpeg", input);
    let mut b = ProgramBuilder::new();

    let pixels = util::random_words(&mut rng, BLOCKS * 64, -128, 128);
    let data = b.data_words(&pixels);
    let result = b.alloc_data(8);

    let blk = IntReg::new(1);
    let rowptr = IntReg::new(2);
    let row = IntReg::new(3);
    let a0 = IntReg::new(4);
    let a1 = IntReg::new(5);
    let s = IntReg::new(6);
    let d = IntReg::new(7);
    let t = IntReg::new(8);
    let pass = IntReg::new(9);
    let cond = IntReg::new(10);
    let sum = IntReg::new(11);
    let addr = IntReg::new(12);

    b.li(pass, 18 * scale as i32);
    b.li(sum, 0);

    let outer = b.new_label();
    let blk_loop = b.new_label();
    let row_loop = b.new_label();

    b.bind(outer);
    b.li(blk, 0);
    b.bind(blk_loop);
    // rowptr = data + blk*256
    b.muli(rowptr, blk, 256);
    b.addi(rowptr, rowptr, data);
    b.li(row, 8);
    b.bind(row_loop);
    // One radix-2 butterfly stage over four pairs of the row.
    for k in 0..4i32 {
        let off = k * 4;
        let mirror = (7 - k) * 4;
        b.lw(a0, rowptr, off);
        b.lw(a1, rowptr, mirror);
        b.add(s, a0, a1);
        b.sub(d, a0, a1);
        // Fixed-point rotation: d' = (d * 181) >> 8.
        b.muli(t, d, 181);
        b.srai(t, t, 8);
        b.sw(s, rowptr, off);
        b.sw(t, rowptr, mirror);
        b.add(sum, sum, s);
    }
    b.addi(rowptr, rowptr, 32);
    b.addi(row, row, -1);
    b.bgtz(row, row_loop);
    b.addi(blk, blk, 1);
    b.slti(cond, blk, BLOCKS as i32);
    b.bgtz(cond, blk_loop);
    // Keep magnitudes bounded across passes.
    b.srai(sum, sum, 4);
    b.addi(pass, pass, -1);
    b.bgtz(pass, outer);

    b.li(addr, result);
    b.sw(sum, addr, 0);
    b.halt();
    b.build().expect("ijpeg workload assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_isa::FuClass;
    use fua_vm::Vm;

    #[test]
    fn runs_with_multiplier_traffic() {
        let p = build_with_input(1, 0);
        let mut vm = Vm::new(&p);
        let trace = vm.run(5_000_000).expect("runs");
        assert!(trace.halted);
        assert!(trace.ops.len() > 50_000);
        let muls = trace
            .ops
            .iter()
            .filter(|o| o.fu_class() == Some(FuClass::IntMul))
            .count();
        assert!(muls > 1_000, "ijpeg should exercise the multiplier");
    }
}
