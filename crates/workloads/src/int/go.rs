//! `go` analogue: branchy board evaluation over a 19×19 grid.
//!
//! Repeatedly scores every interior point of a Go-like board by summing
//! the four neighbours, comparing against thresholds, and updating a
//! score. Operand character: tiny values (stones are 0/1/2), small sums,
//! dense conditional branches — the most branch-heavy integer kernel.

use fua_isa::{IntReg, Program, ProgramBuilder};

use crate::util;

const SIDE: i32 = 19;

/// Builds the workload with an alternative input data set (see
/// [`crate::all_with_input`]).
pub fn build_with_input(scale: u32, input: u32) -> Program {
    let mut rng = util::seeded_rng_input("go", input);
    let mut b = ProgramBuilder::new();

    let cells = util::random_words(&mut rng, (SIDE * SIDE) as usize, 0, 3);
    let board = b.data_words(&cells);
    let result = b.alloc_data(8);

    let row = IntReg::new(1);
    let col = IntReg::new(2);
    let addr = IntReg::new(3);
    let here = IntReg::new(4);
    let acc = IntReg::new(5);
    let tmp = IntReg::new(6);
    let score = IntReg::new(7);
    let pass = IntReg::new(8);
    let rowbase = IntReg::new(9);
    let cond = IntReg::new(10);

    b.li(score, 0);
    b.li(pass, 24 * scale as i32);

    let outer = b.new_label();
    let row_loop = b.new_label();
    let col_loop = b.new_label();
    let alive = b.new_label();
    let scored = b.new_label();
    let col_next = b.new_label();
    let row_next = b.new_label();

    b.bind(outer);
    b.li(row, 1);
    b.bind(row_loop);
    // rowbase = board + row * SIDE * 4
    b.muli(rowbase, row, SIDE * 4);
    b.addi(rowbase, rowbase, board);
    b.li(col, 1);
    b.bind(col_loop);
    b.slli(addr, col, 2);
    b.add(addr, addr, rowbase);
    b.lw(here, addr, 0);
    // Sum the four neighbours.
    b.lw(acc, addr, -4);
    b.lw(tmp, addr, 4);
    b.add(acc, acc, tmp);
    b.lw(tmp, addr, -(SIDE * 4));
    b.add(acc, acc, tmp);
    b.lw(tmp, addr, SIDE * 4);
    b.add(acc, acc, tmp);
    // Liberties heuristic: empty-neighbour-rich stones score.
    b.slti(cond, acc, 3);
    b.bgtz(cond, alive);
    // Crowded: penalise by the stone value.
    b.sub(score, score, here);
    b.j(scored);
    b.bind(alive);
    b.add(score, score, here);
    b.addi(score, score, 1);
    b.bind(scored);
    b.bind(col_next);
    b.addi(col, col, 1);
    b.slti(cond, col, SIDE - 1);
    b.bgtz(cond, col_loop);
    b.bind(row_next);
    b.addi(row, row, 1);
    b.slti(cond, row, SIDE - 1);
    b.bgtz(cond, row_loop);
    b.addi(pass, pass, -1);
    b.bgtz(pass, outer);

    b.li(addr, result);
    b.sw(score, addr, 0);
    b.halt();
    b.build().expect("go workload assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_vm::Vm;

    #[test]
    fn runs_and_scores() {
        let p = build_with_input(1, 0);
        let mut vm = Vm::new(&p);
        let trace = vm.run(5_000_000).expect("runs");
        assert!(trace.halted);
        assert!(trace.ops.len() > 50_000);
        // Plenty of conditional branches.
        let branches = trace
            .ops
            .iter()
            .filter(|o| o.branch.map(|b| !b.unconditional).unwrap_or(false))
            .count();
        assert!(branches * 10 > trace.ops.len(), "go should be branchy");
    }
}
