//! The seven integer workloads (SPEC95int analogues).

pub mod cc1;
pub mod compress;
pub mod go;
pub mod ijpeg;
pub mod li;
pub mod m88ksim;
pub mod perl;
