//! `m88ksim` analogue: instruction-set-simulator decode loop.
//!
//! Fetches 32-bit "guest instructions" from a pseudo-random text segment,
//! extracts opcode/register/immediate fields with shifts and masks,
//! dispatches on the opcode, and updates a guest register file in memory.
//! Operand character: full-width encodings mixed with 5-bit field values
//! — wide values feeding shifts, then small extracted fields.

use fua_isa::{IntReg, Program, ProgramBuilder};

use crate::util;

const TEXT_WORDS: usize = 1024;
const GUEST_REGS: i32 = 32;

/// Builds the workload with an alternative input data set (see
/// [`crate::all_with_input`]).
pub fn build_with_input(scale: u32, input: u32) -> Program {
    let mut rng = util::seeded_rng_input("m88ksim", input);
    let mut b = ProgramBuilder::new();

    let text = b.data_words(&util::random_words(
        &mut rng,
        TEXT_WORDS,
        i32::MIN,
        i32::MAX,
    ));
    let regs = b.alloc_data(GUEST_REGS as usize * 4);
    let result = b.alloc_data(8);

    let pc = IntReg::new(1);
    let word = IntReg::new(2);
    let opcode = IntReg::new(3);
    let rs = IntReg::new(4);
    let rt = IntReg::new(5);
    let imm = IntReg::new(6);
    let va = IntReg::new(7);
    let vb = IntReg::new(8);
    let vr = IntReg::new(9);
    let addr = IntReg::new(10);
    let count = IntReg::new(11);
    let cond = IntReg::new(12);
    let regbase = IntReg::new(13);
    let retired = IntReg::new(14);

    b.li(regbase, regs);
    b.li(retired, 0);
    b.li(count, 64 * scale as i32 * TEXT_WORDS as i32 / 16);

    let fetch = b.new_label();
    let alu_op = b.new_label();
    let imm_op = b.new_label();
    let writeback = b.new_label();

    b.li(pc, text);
    b.bind(fetch);
    b.lw(word, pc, 0);
    // Field extraction.
    b.srli(opcode, word, 26);
    b.srli(rs, word, 21);
    b.andi(rs, rs, 31);
    b.srli(rt, word, 16);
    b.andi(rt, rt, 31);
    b.andi(imm, word, 0xFFFF);
    // Read guest sources.
    b.slli(addr, rs, 2);
    b.add(addr, addr, regbase);
    b.lw(va, addr, 0);
    b.slli(addr, rt, 2);
    b.add(addr, addr, regbase);
    b.lw(vb, addr, 0);
    // Dispatch: opcodes < 32 are register ALU ops, the rest immediate.
    b.slti(cond, opcode, 32);
    b.bgtz(cond, alu_op);
    b.j(imm_op);
    b.bind(alu_op);
    b.add(vr, va, vb);
    b.xor(vr, vr, opcode);
    b.j(writeback);
    b.bind(imm_op);
    b.add(vr, va, imm);
    b.bind(writeback);
    // Bound magnitudes, write the destination (rt), advance the guest pc.
    b.andi(vr, vr, 0x07FF_FFFF);
    b.slli(addr, rt, 2);
    b.add(addr, addr, regbase);
    b.sw(vr, addr, 0);
    b.addi(retired, retired, 1);
    b.addi(pc, pc, 4);
    // Wrap the guest text segment.
    let skip_wrap = b.new_label();
    b.slti(cond, pc, text + (TEXT_WORDS as i32) * 4);
    b.bgtz(cond, skip_wrap);
    b.li(pc, text);
    b.bind(skip_wrap);
    b.addi(count, count, -1);
    b.bgtz(count, fetch);

    b.li(addr, result);
    b.sw(retired, addr, 0);
    b.halt();
    b.build().expect("m88ksim workload assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_vm::Vm;

    #[test]
    fn decodes_and_retires_guest_instructions() {
        let p = build_with_input(1, 0);
        let mut vm = Vm::new(&p);
        let trace = vm.run(5_000_000).expect("runs");
        assert!(trace.halted);
        assert!(trace.ops.len() > 50_000);
        let result = (TEXT_WORDS as u32) * 4 + (GUEST_REGS as u32) * 4;
        let retired = vm.read_word(result).expect("in range");
        assert_eq!(retired, 64 * 1024 / 16);
    }
}
