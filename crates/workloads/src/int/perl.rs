//! `perl` analogue: byte-level string scanning and classification.
//!
//! Scans a packed "script" a byte at a time (word loads + shifts +
//! masks), classifies each character (letter / digit / other), keeps
//! per-class counters, and hashes identifier characters into buckets with
//! a remainder-based hash. Operand character: byte-sized values after
//! extraction, wide packed words before — plus regular `rem` traffic,
//! which the other integer kernels lack.

use fua_isa::{IntReg, Opcode, Program, ProgramBuilder};

use crate::util;

const TEXT_WORDS: usize = 1024;
const BUCKETS: i32 = 64;

/// Builds the workload with an alternative input data set (see
/// [`crate::all_with_input`]).
pub fn build_with_input(scale: u32, input: u32) -> Program {
    let mut rng = util::seeded_rng_input("perl", input);
    let mut b = ProgramBuilder::new();

    // Pseudo-text: bytes in the printable range packed four per word.
    let words: Vec<i32> = (0..TEXT_WORDS)
        .map(|_| {
            let mut w = 0i32;
            for _ in 0..4 {
                let c = util::random_words(&mut rng, 1, 0x20, 0x7F)[0];
                w = (w << 8) | c;
            }
            w
        })
        .collect();
    let text = b.data_words(&words);
    let buckets = b.alloc_data(BUCKETS as usize * 4);
    let result = b.alloc_data(16);

    let ptr = IntReg::new(1);
    let word = IntReg::new(2);
    let ch = IntReg::new(3);
    let letters = IntReg::new(5);
    let digits = IntReg::new(6);
    let hash = IntReg::new(7);
    let addr = IntReg::new(8);
    let tmp = IntReg::new(9);
    let i = IntReg::new(10);
    let pass = IntReg::new(11);
    let cond = IntReg::new(12);
    let bucket_base = IntReg::new(13);

    b.li(bucket_base, buckets);
    b.li(letters, 0);
    b.li(digits, 0);
    b.li(hash, 5381);
    b.li(pass, 14 * scale as i32);

    let outer = b.new_label();
    let word_loop = b.new_label();

    b.bind(outer);
    b.li(ptr, text);
    b.li(i, TEXT_WORDS as i32);
    b.bind(word_loop);
    b.lw(word, ptr, 0);
    // Unrolled byte extraction: shifts of 24, 16, 8, 0.
    for byte in 0..4i32 {
        let not_letter = b.new_label();
        let not_digit = b.new_label();
        let classified = b.new_label();

        b.srli(ch, word, 24 - 8 * byte);
        b.andi(ch, ch, 0xFF);
        // Letter? ('a'..='z')
        b.slti(cond, ch, 'a' as i32);
        b.bgtz(cond, not_letter);
        b.slti(cond, ch, 'z' as i32 + 1);
        b.blez(cond, not_letter);
        b.addi(letters, letters, 1);
        // Identifier hash: h = h*33 + ch, bucketed by remainder.
        b.muli(hash, hash, 33);
        b.add(hash, hash, ch);
        b.andi(hash, hash, 0xFFFFF);
        b.alui(Opcode::Rem, tmp, hash, BUCKETS);
        b.slli(tmp, tmp, 2);
        b.add(tmp, tmp, bucket_base);
        b.lw(addr, tmp, 0);
        b.addi(addr, addr, 1);
        b.sw(addr, tmp, 0);
        b.j(classified);
        b.bind(not_letter);
        // Digit? ('0'..='9')
        b.slti(cond, ch, '0' as i32);
        b.bgtz(cond, not_digit);
        b.slti(cond, ch, '9' as i32 + 1);
        b.blez(cond, not_digit);
        b.addi(digits, digits, 1);
        b.bind(not_digit);
        b.bind(classified);
    }
    b.addi(ptr, ptr, 4);
    b.addi(i, i, -1);
    b.bgtz(i, word_loop);
    b.addi(pass, pass, -1);
    b.bgtz(pass, outer);

    b.li(addr, result);
    b.sw(letters, addr, 0);
    b.sw(digits, addr, 4);
    b.sw(hash, addr, 8);
    b.halt();
    b.build().expect("perl workload assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_vm::Vm;

    #[test]
    fn classifies_the_text() {
        let p = build_with_input(1, 0);
        let mut vm = Vm::new(&p);
        let trace = vm.run(5_000_000).expect("runs");
        assert!(trace.halted);
        assert!(trace.ops.len() > 50_000);
        let result = (TEXT_WORDS as u32) * 4 + (BUCKETS as u32) * 4;
        let letters = vm.read_word(result).expect("in range");
        let digits = vm.read_word(result + 4).expect("in range");
        assert!(letters > 0);
        assert!(digits > 0);
        assert!(letters > digits, "lowercase range is wider than digits");
    }
}
