//! In-tree seeded pseudo-random number generator.
//!
//! The container that builds this repository has no network access, so the
//! workloads cannot depend on the `rand` crate. This module provides the
//! small deterministic generator the kernels need: SplitMix64, seeded from
//! the workload name and input-set number. SplitMix64 passes BigCrush,
//! has a full 2⁶⁴ period, and — crucially for this crate — is entirely
//! specified by a dozen lines of code, so the data streams are
//! reproducible from the source alone.
//!
//! Note: the streams differ from the `rand::StdRng` streams the seed
//! repository used, so absolute workload numbers shifted; EXPERIMENTS.md
//! records the regenerated values.

/// A SplitMix64 generator (Steele, Lea & Flood, OOPSLA 2014).
///
/// # Examples
///
/// ```
/// use fua_workloads::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The current state — for a freshly-seeded generator, the seed
    /// itself (recorded in run manifests for reproducibility).
    pub fn seed(&self) -> u64 {
        self.state
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)` via Lemire's multiply-shift
    /// rejection method (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bounded(0)");
        // Rejection sampling over the top bits keeps the distribution
        // exactly uniform for any bound.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let (hi, lo) = {
                let wide = (r as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// A uniform signed word in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi as i64 - lo as i64) as u64;
        lo.wrapping_add(self.bounded(span) as i32)
    }

    /// A uniform value in `[lo, hi)` over `usize`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.bounded((hi - lo) as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 uniform mantissa bits give a uniform double in [0, 1).
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }

    /// A fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_stream_is_stable() {
        // First outputs for seed 1234567, from the published SplitMix64
        // reference implementation.
        let mut rng = SplitMix64::new(1234567);
        let first: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        let mut again = SplitMix64::new(1234567);
        let second: Vec<u64> = (0..3).map(|_| again.next_u64()).collect();
        assert_eq!(first, second);
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn bounded_is_in_range_and_hits_every_residue() {
        let mut rng = SplitMix64::new(9);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.bounded(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_i32_covers_negative_spans() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..1_000 {
            let v = rng.range_i32(-5, 5);
            assert!((-5..5).contains(&v));
        }
        // Full-width range must not overflow.
        let _ = rng.range_i32(i32::MIN, i32::MAX);
    }

    #[test]
    fn chance_tracks_probability() {
        let mut rng = SplitMix64::new(77);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2_600..3_400).contains(&hits), "hits {hits}");
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(5);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left order intact");
    }
}
