//! Abstract domains for the static information-bit analysis.
//!
//! The paper's steering hardware classifies every operand by a single
//! *information bit*: the sign bit for integers, the OR of the low four
//! mantissa bits for doubles ([`fua_isa::Word::info_bit`]). To predict
//! that bit at compile time we track, per register, a small abstract
//! value:
//!
//! * integers — a *sign-and-width lattice* `{⊥, Const(v),
//!   NonNegBits(k), Neg, ⊤}`: the constant layer enables exact folding
//!   through the VM's own ALU function; the width layer `NonNegBits(k)`
//!   (`0 ≤ v < 2^k`, `k ≤ 31`) is what survives joins and loops, and —
//!   beyond the sign bit — carries an *expected ones-density* estimate
//!   the static swap pass orders operands by;
//! * doubles — a *low-mantissa lattice* `{⊥, Const(bits), Zeros,
//!   NonZero, ⊤}` over the four least-significant mantissa bits,
//!   tracking the paper's trailing-zero sources (integer casts, round
//!   constants, power-of-two scaling).
//!
//! Both lattices are finite once the join collapses the (unbounded)
//! constant layer: the integer lattice's longest chain walks the 32
//! widths (`⊥ < Const < NonNegBits(0) < … < NonNegBits(31) < ⊤`), the
//! FP lattice has height 3, and joins only ever move up — so the
//! fixpoint terminates without a separate widening operator. See
//! DESIGN.md §"Static information-bit analysis".

use fua_isa::Case;

/// A single abstract bit: definitely 0, definitely 1, or unknown.
///
/// # Examples
///
/// ```
/// use fua_analysis::AbsBit;
///
/// assert_eq!(AbsBit::Zero.join(AbsBit::Zero), AbsBit::Zero);
/// assert_eq!(AbsBit::Zero.join(AbsBit::One), AbsBit::Unknown);
/// assert_eq!(AbsBit::from_bool(true).definite(), Some(true));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbsBit {
    /// The bit is 0 on every execution.
    Zero,
    /// The bit is 1 on every execution.
    One,
    /// The analysis cannot prove either value.
    Unknown,
}

impl AbsBit {
    /// Lifts a concrete bit.
    #[inline]
    pub fn from_bool(b: bool) -> Self {
        if b {
            AbsBit::One
        } else {
            AbsBit::Zero
        }
    }

    /// The definite value, if the bit is not [`AbsBit::Unknown`].
    #[inline]
    pub fn definite(self) -> Option<bool> {
        match self {
            AbsBit::Zero => Some(false),
            AbsBit::One => Some(true),
            AbsBit::Unknown => None,
        }
    }

    /// Least upper bound.
    #[inline]
    pub fn join(self, other: AbsBit) -> AbsBit {
        if self == other {
            self
        } else {
            AbsBit::Unknown
        }
    }

    /// Abstract AND (`0 ∧ x = 0`).
    #[inline]
    pub fn and(self, other: AbsBit) -> AbsBit {
        use AbsBit::*;
        match (self, other) {
            (Zero, _) | (_, Zero) => Zero,
            (One, One) => One,
            _ => Unknown,
        }
    }

    /// Abstract OR (`1 ∨ x = 1`).
    #[inline]
    pub fn or(self, other: AbsBit) -> AbsBit {
        use AbsBit::*;
        match (self, other) {
            (One, _) | (_, One) => One,
            (Zero, Zero) => Zero,
            _ => Unknown,
        }
    }

    /// Abstract XOR.
    #[inline]
    pub fn xor(self, other: AbsBit) -> AbsBit {
        match (self.definite(), other.definite()) {
            (Some(a), Some(b)) => AbsBit::from_bool(a ^ b),
            _ => AbsBit::Unknown,
        }
    }
}

impl std::ops::Not for AbsBit {
    type Output = AbsBit;

    /// Abstract NOT.
    #[inline]
    fn not(self) -> AbsBit {
        match self {
            AbsBit::Zero => AbsBit::One,
            AbsBit::One => AbsBit::Zero,
            AbsBit::Unknown => AbsBit::Unknown,
        }
    }
}

/// Combines two predicted operand bits into a predicted [`Case`], when
/// both are definite.
///
/// # Examples
///
/// ```
/// use fua_analysis::{predicted_case, AbsBit};
/// use fua_isa::Case;
///
/// assert_eq!(predicted_case(AbsBit::Zero, AbsBit::One), Some(Case::C01));
/// assert_eq!(predicted_case(AbsBit::Zero, AbsBit::Unknown), None);
/// ```
pub fn predicted_case(op1: AbsBit, op2: AbsBit) -> Option<Case> {
    Some(Case::from_info_bits(op1.definite()?, op2.definite()?))
}

/// Abstract 32-bit integer: the sign-and-width lattice with a constant
/// layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbsInt {
    /// Unreachable (no execution produces a value here).
    Bot,
    /// Exactly this value on every execution.
    Const(i32),
    /// `0 <= v < 2^k` on every execution (`k <= 31`; `NonNegBits(31)`
    /// is the plain "sign bit 0" fact, since every non-negative `i32`
    /// is below `2^31`).
    NonNegBits(u8),
    /// Sign bit 1 on every execution (`v < 0`).
    Neg,
    /// Any value.
    Top,
}

/// Width ceiling: `NonNegBits(31)` admits every non-negative `i32`.
const MAX_BITS: u8 = 31;

/// The number of bits needed to represent the non-negative value `v`
/// (`bits_for(0) == 0`, `bits_for(5) == 3`).
#[inline]
fn bits_for(v: i32) -> u8 {
    debug_assert!(v >= 0);
    (32 - (v as u32).leading_zeros()) as u8
}

impl AbsInt {
    /// The abstraction of a concrete value (kept at the constant layer).
    #[inline]
    pub fn of(v: i32) -> Self {
        AbsInt::Const(v)
    }

    /// The widest non-negative abstraction (`v >= 0`, nothing more).
    #[inline]
    pub fn non_neg() -> Self {
        AbsInt::NonNegBits(MAX_BITS)
    }

    /// `0 <= v < 2^k`, clamping `k` to the 31-bit ceiling.
    #[inline]
    pub fn bounded(k: u32) -> Self {
        AbsInt::NonNegBits((k.min(MAX_BITS as u32)) as u8)
    }

    /// The exact value, if known.
    #[inline]
    pub fn constant(self) -> Option<i32> {
        match self {
            AbsInt::Const(v) => Some(v),
            _ => None,
        }
    }

    /// The abstract sign (= information) bit.
    #[inline]
    pub fn sign_bit(self) -> AbsBit {
        match self {
            AbsInt::Const(v) => AbsBit::from_bool(v < 0),
            AbsInt::NonNegBits(_) => AbsBit::Zero,
            AbsInt::Neg => AbsBit::One,
            // ⊥ carries no executions; Unknown is trivially sound.
            AbsInt::Bot | AbsInt::Top => AbsBit::Unknown,
        }
    }

    /// An upper bound on the value's bit width, when the abstraction
    /// proves one (`Const(v >= 0)` and `NonNegBits` do; negative
    /// constants, `Neg`, and ⊤ do not).
    #[inline]
    pub fn width_bound(self) -> Option<u8> {
        match self {
            AbsInt::Const(v) if v >= 0 => Some(bits_for(v)),
            AbsInt::NonNegBits(k) => Some(k),
            _ => None,
        }
    }

    /// Expected number of 1 bits, where the abstraction supports an
    /// estimate: exact for constants; `⌊k/2⌋` for a `k`-bit-bounded
    /// value (each free bit is 1 at most half the time, and real
    /// program values skew below their bound — the floor keeps
    /// borderline swaps the profile-guided pass would decline from
    /// firing). `Neg` and ⊤ return `None` — the static swap pass only
    /// orders operands whose density it can actually argue about.
    #[inline]
    pub fn expected_ones(self) -> Option<f64> {
        match self {
            AbsInt::Const(v) => Some(v.count_ones() as f64),
            AbsInt::NonNegBits(k) => Some((k / 2) as f64),
            _ => None,
        }
    }

    /// Collapses the constant layer to the sign/width layer (the
    /// "widening" step applied by the join).
    #[inline]
    fn widen(v: i32) -> Self {
        if v < 0 {
            AbsInt::Neg
        } else {
            AbsInt::NonNegBits(bits_for(v))
        }
    }

    /// Least upper bound.
    pub fn join(self, other: AbsInt) -> AbsInt {
        use AbsInt::*;
        match (self, other) {
            (Bot, x) | (x, Bot) => x,
            (Top, _) | (_, Top) => Top,
            (Const(a), Const(b)) if a == b => Const(a),
            (a, b) => match (AbsInt::widen_non_const(a), AbsInt::widen_non_const(b)) {
                (NonNegBits(x), NonNegBits(y)) => NonNegBits(x.max(y)),
                (Neg, Neg) => Neg,
                _ => Top,
            },
        }
    }

    /// Lifts a value to the sign/width layer for the join (constants
    /// widen; everything else is already there).
    #[inline]
    fn widen_non_const(v: AbsInt) -> AbsInt {
        match v {
            AbsInt::Const(c) => AbsInt::widen(c),
            other => other,
        }
    }

    /// Whether the abstraction admits `v` (soundness predicate used by
    /// the property tests).
    pub fn admits(self, v: i32) -> bool {
        match self {
            AbsInt::Bot => false,
            AbsInt::Const(c) => c == v,
            AbsInt::NonNegBits(k) => v >= 0 && (k >= MAX_BITS || (v as u32) < (1u32 << k)),
            AbsInt::Neg => v < 0,
            AbsInt::Top => true,
        }
    }
}

const LOW4: u64 = 0xF;

/// Abstract IEEE-754 double, tracked through its four least-significant
/// mantissa bits (the FP information-bit window).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbsFp {
    /// Unreachable.
    Bot,
    /// Exactly this bit pattern on every execution.
    Const(u64),
    /// The low four mantissa bits are all 0 (trailing-zero-rich value).
    Zeros,
    /// At least one of the low four mantissa bits is 1.
    NonZero,
    /// Any value.
    Top,
}

impl AbsFp {
    /// The abstraction of a concrete double (kept at the constant layer).
    #[inline]
    pub fn of(v: f64) -> Self {
        AbsFp::Const(v.to_bits())
    }

    /// The exact bit pattern, if known.
    #[inline]
    pub fn constant_bits(self) -> Option<u64> {
        match self {
            AbsFp::Const(b) => Some(b),
            _ => None,
        }
    }

    /// The abstract information bit (OR of the low four mantissa bits).
    #[inline]
    pub fn low4_bit(self) -> AbsBit {
        match self {
            AbsFp::Const(b) => AbsBit::from_bool(b & LOW4 != 0),
            AbsFp::Zeros => AbsBit::Zero,
            AbsFp::NonZero => AbsBit::One,
            AbsFp::Bot | AbsFp::Top => AbsBit::Unknown,
        }
    }

    #[inline]
    fn low4_of(bits: u64) -> Self {
        if bits & LOW4 == 0 {
            AbsFp::Zeros
        } else {
            AbsFp::NonZero
        }
    }

    /// Least upper bound.
    pub fn join(self, other: AbsFp) -> AbsFp {
        use AbsFp::*;
        match (self, other) {
            (Bot, x) | (x, Bot) => x,
            (Top, _) | (_, Top) => Top,
            (Const(a), Const(b)) if a == b => Const(a),
            (Const(a), Const(b)) => {
                if AbsFp::low4_of(a) == AbsFp::low4_of(b) {
                    AbsFp::low4_of(a)
                } else {
                    Top
                }
            }
            (Const(v), s) | (s, Const(v)) => {
                if AbsFp::low4_of(v) == s {
                    s
                } else {
                    Top
                }
            }
            (a, b) if a == b => a,
            _ => Top,
        }
    }

    /// Whether the abstraction admits the bit pattern `bits`.
    pub fn admits(self, bits: u64) -> bool {
        match self {
            AbsFp::Bot => false,
            AbsFp::Const(c) => c == bits,
            AbsFp::Zeros => bits & LOW4 == 0,
            AbsFp::NonZero => bits & LOW4 != 0,
            AbsFp::Top => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_ops_match_boolean_algebra() {
        use AbsBit::*;
        for (a, ca) in [(Zero, false), (One, true)] {
            for (b, cb) in [(Zero, false), (One, true)] {
                assert_eq!(a.and(b).definite(), Some(ca & cb));
                assert_eq!(a.or(b).definite(), Some(ca | cb));
                assert_eq!(a.xor(b).definite(), Some(ca ^ cb));
            }
        }
        assert_eq!(Zero.and(Unknown), Zero, "0 ∧ ? = 0");
        assert_eq!(One.or(Unknown), One, "1 ∨ ? = 1");
        assert_eq!(Unknown.xor(Zero), Unknown);
        assert_eq!(!Unknown, Unknown);
    }

    #[test]
    fn int_join_is_commutative_and_sound() {
        let samples = [
            AbsInt::Bot,
            AbsInt::Const(-3),
            AbsInt::Const(0),
            AbsInt::Const(7),
            AbsInt::NonNegBits(0),
            AbsInt::NonNegBits(4),
            AbsInt::NonNegBits(12),
            AbsInt::non_neg(),
            AbsInt::Neg,
            AbsInt::Top,
        ];
        let values = [-5i32, -1, 0, 1, 9, 100, 5000, i32::MIN, i32::MAX];
        for &a in &samples {
            for &b in &samples {
                assert_eq!(a.join(b), b.join(a), "{a:?} ⊔ {b:?}");
                let j = a.join(b);
                for &v in &values {
                    if a.admits(v) || b.admits(v) {
                        assert!(j.admits(v), "{a:?} ⊔ {b:?} = {j:?} drops {v}");
                    }
                }
            }
        }
    }

    #[test]
    fn int_join_collapses_constants_to_widths() {
        assert_eq!(
            AbsInt::Const(2).join(AbsInt::Const(5)),
            AbsInt::NonNegBits(3)
        );
        assert_eq!(AbsInt::Const(-2).join(AbsInt::Const(-5)), AbsInt::Neg);
        assert_eq!(AbsInt::Const(-2).join(AbsInt::Const(5)), AbsInt::Top);
        assert_eq!(AbsInt::Const(3).join(AbsInt::Const(3)), AbsInt::Const(3));
        assert_eq!(
            AbsInt::Const(9).join(AbsInt::NonNegBits(2)),
            AbsInt::NonNegBits(4)
        );
    }

    #[test]
    fn width_bounds_and_density_estimates() {
        assert_eq!(AbsInt::Const(6144).width_bound(), Some(13));
        assert_eq!(AbsInt::NonNegBits(14).width_bound(), Some(14));
        assert_eq!(AbsInt::Const(-1).width_bound(), None);
        assert_eq!(AbsInt::Top.width_bound(), None);
        assert_eq!(AbsInt::Const(6144).expected_ones(), Some(2.0));
        assert_eq!(AbsInt::NonNegBits(14).expected_ones(), Some(7.0));
        assert_eq!(AbsInt::Neg.expected_ones(), None);
        // The width ceiling admits every non-negative value.
        assert!(AbsInt::bounded(40).admits(i32::MAX));
        assert!(!AbsInt::bounded(3).admits(8));
        assert!(AbsInt::bounded(3).admits(7));
    }

    #[test]
    fn fp_join_tracks_low_mantissa_bits() {
        let round = AbsFp::of(2.0);
        let full = AbsFp::of(0.1);
        assert_eq!(round.low4_bit(), AbsBit::Zero);
        assert_eq!(full.low4_bit(), AbsBit::One);
        assert_eq!(round.join(AbsFp::of(0.5)), AbsFp::Zeros);
        assert_eq!(round.join(full), AbsFp::Top);
    }

    #[test]
    fn fp_join_is_sound_on_samples() {
        let samples = [
            AbsFp::Bot,
            AbsFp::of(2.0),
            AbsFp::of(0.1),
            AbsFp::Zeros,
            AbsFp::NonZero,
            AbsFp::Top,
        ];
        let values = [2.0f64.to_bits(), 0.1f64.to_bits(), 0, u64::MAX];
        for &a in &samples {
            for &b in &samples {
                assert_eq!(a.join(b), b.join(a));
                let j = a.join(b);
                for &v in &values {
                    if a.admits(v) || b.admits(v) {
                        assert!(j.admits(v));
                    }
                }
            }
        }
    }

    #[test]
    fn predicted_case_requires_both_bits() {
        assert_eq!(predicted_case(AbsBit::One, AbsBit::Zero), Some(Case::C10));
        assert_eq!(predicted_case(AbsBit::Unknown, AbsBit::Zero), None);
    }
}
