//! Control-flow graph construction over [`fua_isa::Program`]s.
//!
//! Basic blocks are maximal straight-line instruction runs; edges follow
//! the VM's control semantics ([`fua_vm::Vm::step`]): conditional
//! branches have a taken edge and a fall-through edge, `j` a single
//! edge, `halt` none. A control target outside the text produces no
//! edge — the linter reports it separately as a hazard.

use fua_isa::{Opcode, Program};

/// A basic block: instruction indices `[start, end)` plus CFG edges.
#[derive(Debug, Clone)]
pub struct Block {
    /// Index of the first instruction in the block.
    pub start: usize,
    /// One past the last instruction in the block.
    pub end: usize,
    /// Successor block ids.
    pub succs: Vec<usize>,
    /// Predecessor block ids.
    pub preds: Vec<usize>,
}

impl Block {
    /// The instruction indices belonging to this block.
    pub fn insts(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }
}

/// The control-flow graph of a program.
///
/// # Examples
///
/// ```
/// use fua_analysis::Cfg;
/// use fua_isa::{IntReg, ProgramBuilder};
///
/// let r1 = IntReg::new(1);
/// let mut b = ProgramBuilder::new();
/// let top = b.new_label();
/// b.li(r1, 3);
/// b.bind(top);
/// b.addi(r1, r1, -1);
/// b.bgtz(r1, top);
/// b.halt();
/// let program = b.build().unwrap();
///
/// let cfg = Cfg::build(&program);
/// assert_eq!(cfg.blocks().len(), 3); // preamble, loop body, halt
/// assert!(cfg.reachable().iter().all(|&r| r));
/// ```
#[derive(Debug, Clone)]
pub struct Cfg {
    blocks: Vec<Block>,
    /// Block id owning each instruction.
    block_of: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG of `program`.
    pub fn build(program: &Program) -> Self {
        let n = program.len();
        let insts = program.insts();

        // Leaders: entry, every control target in range, and every
        // instruction following a control transfer.
        let mut leader = vec![false; n];
        if n > 0 {
            leader[0] = true;
        }
        for (i, inst) in insts.iter().enumerate() {
            if inst.op.is_control() {
                if i + 1 < n {
                    leader[i + 1] = true;
                }
                if inst.op != Opcode::Halt {
                    let t = inst.imm;
                    if (0..n as i32).contains(&t) {
                        leader[t as usize] = true;
                    }
                }
            }
        }

        let mut blocks: Vec<Block> = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0usize;
        for i in 0..n {
            if i > start && leader[i] {
                blocks.push(Block {
                    start,
                    end: i,
                    succs: Vec::new(),
                    preds: Vec::new(),
                });
                start = i;
            }
            block_of[i] = blocks.len();
        }
        if n > 0 {
            blocks.push(Block {
                start,
                end: n,
                succs: Vec::new(),
                preds: Vec::new(),
            });
        }

        // Edges.
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for (b, block) in blocks.iter().enumerate() {
            let last = &insts[block.end - 1];
            let fallthrough = block.end < n;
            let push_target = |edges: &mut Vec<(usize, usize)>| {
                let t = last.imm;
                if (0..n as i32).contains(&t) {
                    edges.push((b, block_of[t as usize]));
                }
            };
            match last.op {
                Opcode::Halt => {}
                Opcode::J => push_target(&mut edges),
                op if op.is_branch() => {
                    push_target(&mut edges);
                    if fallthrough {
                        edges.push((b, block_of[block.end]));
                    }
                }
                _ => {
                    if fallthrough {
                        edges.push((b, block_of[block.end]));
                    }
                }
            }
        }
        for (from, to) in edges {
            if !blocks[from].succs.contains(&to) {
                blocks[from].succs.push(to);
            }
            if !blocks[to].preds.contains(&from) {
                blocks[to].preds.push(from);
            }
        }

        Cfg { blocks, block_of }
    }

    /// The basic blocks, in program order (block 0 is the entry).
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The block owning instruction `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn block_of(&self, idx: usize) -> usize {
        self.block_of[idx]
    }

    /// The block owning instruction `idx`, or `None` if `idx` is outside
    /// the program text. The non-panicking variant of
    /// [`block_of`](Cfg::block_of), for callers mapping externally
    /// sourced PCs (e.g. trace events) back onto the CFG.
    pub fn try_block_of(&self, idx: usize) -> Option<usize> {
        self.block_of.get(idx).copied()
    }

    /// A short, stable, human-readable label for block `b`:
    /// `"bb{b}@{start}..{end}"` (instruction-index range, half-open).
    /// Used by profilers to name blocks in reports and flamegraph frames.
    ///
    /// # Panics
    ///
    /// Panics if `b` is not a valid block id.
    pub fn block_label(&self, b: usize) -> String {
        let blk = &self.blocks[b];
        format!("bb{b}@{}..{}", blk.start, blk.end)
    }

    /// Forward reachability from the entry block.
    pub fn reachable(&self) -> Vec<bool> {
        self.flood(&[0], |b| &self.blocks[b].succs)
    }

    /// Blocks from which some `halt` instruction is reachable (backward
    /// reachability over the CFG). A reachable block *not* in this set
    /// can only spin until the execution limit — the linter's
    /// infinite-loop hazard.
    pub fn reaches_halt(&self, program: &Program) -> Vec<bool> {
        let halting: Vec<usize> = self
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, blk)| {
                program.insts()[blk.insts()]
                    .iter()
                    .any(|i| i.op == Opcode::Halt)
            })
            .map(|(b, _)| b)
            .collect();
        self.flood(&halting, |b| &self.blocks[b].preds)
    }

    fn flood<'a>(&'a self, seeds: &[usize], next: impl Fn(usize) -> &'a [usize]) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack: Vec<usize> = seeds.to_vec();
        for &s in seeds {
            seen[s] = true;
        }
        while let Some(b) = stack.pop() {
            for &s in next(b) {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_isa::{IntReg, ProgramBuilder};

    fn r(i: u8) -> IntReg {
        IntReg::new(i)
    }

    #[test]
    fn straight_line_is_one_block() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 1);
        b.addi(r(1), r(1), 1);
        b.halt();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.blocks().len(), 1);
        assert!(cfg.blocks()[0].succs.is_empty());
    }

    #[test]
    fn branch_splits_blocks_and_links_both_ways() {
        let mut b = ProgramBuilder::new();
        let skip = b.new_label();
        b.li(r(1), 1);
        b.bgtz(r(1), skip);
        b.li(r(2), 9);
        b.bind(skip);
        b.halt();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.blocks().len(), 3);
        let entry = &cfg.blocks()[0];
        assert_eq!(entry.succs.len(), 2, "taken + fall-through");
        let halt_block = cfg.block_of(p.len() - 1);
        assert_eq!(cfg.blocks()[halt_block].preds.len(), 2);
    }

    #[test]
    fn try_block_of_covers_the_text_and_nothing_more() {
        let mut b = ProgramBuilder::new();
        let skip = b.new_label();
        b.li(r(1), 1);
        b.bgtz(r(1), skip);
        b.li(r(2), 9);
        b.bind(skip);
        b.halt();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        for idx in 0..p.len() {
            assert_eq!(cfg.try_block_of(idx), Some(cfg.block_of(idx)));
        }
        assert_eq!(cfg.try_block_of(p.len()), None);
    }

    #[test]
    fn block_labels_carry_the_instruction_range() {
        let mut b = ProgramBuilder::new();
        let skip = b.new_label();
        b.li(r(1), 1);
        b.bgtz(r(1), skip);
        b.li(r(2), 9);
        b.bind(skip);
        b.halt();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.block_label(0), "bb0@0..2");
        let last = cfg.block_of(p.len() - 1);
        assert!(cfg.block_label(last).starts_with(&format!("bb{last}@")));
    }

    #[test]
    fn unreachable_code_after_jump_is_detected() {
        let mut b = ProgramBuilder::new();
        let end = b.new_label();
        b.j(end);
        b.li(r(1), 1); // dead
        b.bind(end);
        b.halt();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        let reach = cfg.reachable();
        let dead = cfg.block_of(1);
        assert!(!reach[dead]);
        assert!(reach[cfg.block_of(2)]);
    }

    #[test]
    fn loop_without_exit_cannot_reach_halt() {
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.bind(top);
        b.addi(r(1), r(1), 1);
        b.j(top);
        b.halt(); // unreachable, but present so the builder accepts
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        let reaches = cfg.reaches_halt(&p);
        assert!(!reaches[cfg.block_of(0)]);
        assert!(reaches[cfg.block_of(2)]);
    }
}
