//! Static verification of steering lookup tables.
//!
//! A [`LutTable`] drives real (modelled) hardware, so defects in it are
//! silent power or correctness bugs: an entry naming a module that does
//! not exist, two slots steered to the same module in one cycle, a case
//! that never reaches its home module, or a Quine–McCluskey cover that
//! differs from the table it claims to implement. [`verify_lut`] checks
//! all four statically, exhaustively over the table's vector space
//! (≤ 256 vectors for the widths the paper considers).

use std::fmt;

use fua_isa::Case;
use fua_steer::LutTable;
use fua_synth::{minimize, TruthTable};

/// One verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LutViolation {
    /// An entry names a module index outside `0..modules`.
    InvalidModule {
        /// The offending vector.
        vector: usize,
        /// The slot within the entry.
        slot: usize,
        /// The out-of-range module index.
        module: u8,
    },
    /// Two slots of one entry steer to the same module.
    DuplicateModule {
        /// The offending vector.
        vector: usize,
        /// The module assigned twice.
        module: u8,
    },
    /// A case with a homed module is not routed home when it is the
    /// only real instruction in the cycle.
    HomeMiss {
        /// The case that missed its home.
        case: Case,
        /// The module the table chose instead.
        got: u8,
    },
    /// The minimised two-level cover disagrees with the table.
    CoverMismatch {
        /// The LUT output bit that disagrees.
        output: usize,
        /// The minterm (input vector) where it disagrees.
        minterm: u16,
    },
}

impl fmt::Display for LutViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LutViolation::InvalidModule {
                vector,
                slot,
                module,
            } => write!(
                f,
                "vector {vector:#x} slot {slot} names module {module}, which does not exist"
            ),
            LutViolation::DuplicateModule { vector, module } => write!(
                f,
                "vector {vector:#x} steers two slots to module {module}"
            ),
            LutViolation::HomeMiss { case, got } => write!(
                f,
                "case {case} alone in the cycle is routed to module {got}, not its home"
            ),
            LutViolation::CoverMismatch { output, minterm } => write!(
                f,
                "minimised cover of output {output} disagrees with the table at minterm {minterm:#x}"
            ),
        }
    }
}

/// Verifies a steering table. Returns every violation found (empty =
/// the table is well-formed).
///
/// # Examples
///
/// ```
/// use fua_analysis::verify_lut;
/// use fua_stats::CaseProfile;
/// use fua_steer::{LutBuilder, PAPER_IALU_OCCUPANCY};
///
/// let lut = LutBuilder::new(CaseProfile::paper_ialu(), 32)
///     .modules(4)
///     .occupancy(&PAPER_IALU_OCCUPANCY)
///     .build(2);
/// assert!(verify_lut(&lut).is_empty());
/// ```
pub fn verify_lut(lut: &LutTable) -> Vec<LutViolation> {
    let mut violations = Vec::new();
    let vectors = 1usize << lut.vector_bits();
    let modules = lut.modules() as u8;

    // 1. Entry well-formedness: in-range and injective per vector.
    for vector in 0..vectors {
        let entry = lut.entry(vector);
        let mut used = vec![false; lut.modules()];
        for (slot, &m) in entry.iter().enumerate() {
            if m >= modules {
                violations.push(LutViolation::InvalidModule {
                    vector,
                    slot,
                    module: m,
                });
                continue;
            }
            if used[m as usize] {
                violations.push(LutViolation::DuplicateModule { vector, module: m });
            }
            used[m as usize] = true;
        }
    }

    // 2. Home coverage: a case that has a home module must reach *a*
    // module homed at it whenever it is the only real instruction in
    // the cycle (the remaining slots hold least-case padding, which the
    // encoder would emit for an idle slot).
    for case in Case::ALL {
        if !lut.homes().contains(&case) {
            continue;
        }
        let mut cases = vec![lut.least_case(); lut.slots()];
        cases[0] = case;
        let entry = lut.entry(lut.encode(&cases));
        let m = entry[0] as usize;
        if m < lut.modules() && lut.homes()[m] != case {
            violations.push(LutViolation::HomeMiss {
                case,
                got: entry[0],
            });
        }
    }

    // 3. The Quine–McCluskey cover of every output bit must equal the
    // table exactly — the synthesised network computes what the table
    // says, over the full vector space.
    let tt = TruthTable::from_lut(lut);
    for output in 0..tt.outputs() {
        let sop = minimize(&tt, output);
        for minterm in 0..(1u32 << tt.inputs()) as u16 {
            if sop.eval(minterm) != tt.output(minterm, output) {
                violations.push(LutViolation::CoverMismatch { output, minterm });
            }
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_stats::CaseProfile;
    use fua_steer::{LutBuilder, PAPER_FPAU_OCCUPANCY, PAPER_IALU_OCCUPANCY};

    fn ialu_profile() -> CaseProfile {
        CaseProfile::paper_ialu()
    }

    #[test]
    fn paper_ialu_tables_verify_at_all_widths() {
        for slots in [1, 2, 4] {
            let lut = LutBuilder::new(ialu_profile(), 32)
                .modules(4)
                .occupancy(&PAPER_IALU_OCCUPANCY)
                .build(slots);
            let v = verify_lut(&lut);
            assert!(v.is_empty(), "slots={slots}: {v:?}");
        }
    }

    #[test]
    fn paper_fpau_tables_verify_at_all_widths() {
        let profile = CaseProfile::paper_fpau();
        for slots in [1, 2] {
            let lut = LutBuilder::new(profile, 52)
                .modules(2)
                .occupancy(&PAPER_FPAU_OCCUPANCY)
                .build(slots);
            let v = verify_lut(&lut);
            assert!(v.is_empty(), "slots={slots}: {v:?}");
        }
    }

    #[test]
    fn corrupted_entry_is_caught() {
        let lut = LutBuilder::new(ialu_profile(), 32)
            .modules(4)
            .occupancy(&PAPER_IALU_OCCUPANCY)
            .build(2);
        let tampered = tamper(&lut, 9); // module index out of range
        let v = verify_lut(&tampered);
        assert!(v
            .iter()
            .any(|x| matches!(x, LutViolation::InvalidModule { .. })));
    }

    #[test]
    fn duplicate_assignment_is_caught() {
        let lut = LutBuilder::new(ialu_profile(), 32)
            .modules(4)
            .occupancy(&PAPER_IALU_OCCUPANCY)
            .build(2);
        // Copy slot 0's module into slot 1 of some vector.
        let entry0 = lut.entry(5)[0];
        let tampered = tamper_at(&lut, 5, 1, entry0);
        let v = verify_lut(&tampered);
        assert!(v
            .iter()
            .any(|x| matches!(x, LutViolation::DuplicateModule { .. })));
    }

    /// Rebuilds a table with vector 0, slot 0 replaced by `module`.
    fn tamper(lut: &LutTable, module: u8) -> LutTable {
        tamper_at(lut, 0, 0, module)
    }

    fn tamper_at(lut: &LutTable, vector: usize, slot: usize, module: u8) -> LutTable {
        let entries: Vec<Vec<u8>> = (0..(1usize << lut.vector_bits()))
            .map(|v| {
                let mut e = lut.entry(v).to_vec();
                if v == vector {
                    e[slot] = module;
                }
                e
            })
            .collect();
        LutTable::from_parts(
            lut.slots(),
            lut.modules(),
            lut.homes().to_vec(),
            lut.least_case(),
            entries,
        )
    }
}
