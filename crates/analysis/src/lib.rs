//! Static analyses over [`fua_isa::Program`]s: information-bit
//! prediction, a program linter, and a steering-LUT verifier.
//!
//! The paper's hardware classifies every operand pair into one of four
//! *cases* from the operands' information bits (sign bit for integers,
//! the OR of the low four mantissa bits for floating point). The
//! dynamic pipeline observes those bits at issue time; this crate
//! predicts them **statically**, by abstract interpretation over a
//! small sign/low-mantissa lattice, so a compiler pass can canonicalise
//! operand order without ever profiling the program.
//!
//! Three public surfaces:
//!
//! - [`InfoBitAnalysis`] — CFG + reaching-state fixpoint producing a
//!   [`PortPrediction`] (two [`AbsBit`]s, hence an optional
//!   [`fua_isa::Case`]) for every reachable instruction that occupies a
//!   functional unit.
//! - [`lint_program`] — hazard linter: uninitialised reads, dead
//!   writes, unreachable blocks, control transfers that fault, and
//!   loops that can only end at the execution limit.
//! - [`verify_lut`] — exhaustive checker for steering tables and their
//!   Quine–McCluskey covers.
//!
//! # Examples
//!
//! ```
//! use fua_analysis::InfoBitAnalysis;
//! use fua_isa::{Case, IntReg, ProgramBuilder};
//!
//! let (r1, r2, r3) = (IntReg::new(1), IntReg::new(2), IntReg::new(3));
//! let mut b = ProgramBuilder::new();
//! b.li(r1, 5); // non-negative constant
//! b.li(r2, -3); // negative constant
//! b.add(r3, r1, r2);
//! b.halt();
//! let program = b.build().unwrap();
//!
//! let analysis = InfoBitAnalysis::run(&program);
//! // add r3, r1, r2 presents (sign 0, sign 1) => case C01.
//! assert_eq!(analysis.predicted_case(2), Some(Case::C01));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod absint;
mod cfg;
mod dataflow;
mod domain;
mod lint;
mod transition;
mod verify;

pub use absint::{AbsState, InfoBitAnalysis, PortPrediction};
pub use cfg::{Block, Cfg};
pub use dataflow::{DataFlow, DefSite, UseInfo};
pub use domain::{predicted_case, AbsBit, AbsFp, AbsInt};
pub use lint::{lint_program, Lint, LintKind};
pub use transition::{
    estimate_transitions, BitWord, BlockBound, PcBound, SwapModel, TransitionEstimate,
};
pub use verify::{verify_lut, LutViolation};
