//! Abstract interpretation predicting each instruction's steering
//! [`Case`] at compile time.
//!
//! The interpreter runs a worklist fixpoint over the [`Cfg`], carrying
//! one abstract register file ([`AbsState`]) per block entry. Transfer
//! functions mirror [`fua_vm`]'s concrete semantics exactly — constant
//! folding goes through the VM's own [`fua_vm::int_alu`] so wrapping
//! arithmetic and division edge cases can never diverge from execution.
//! Memory is not tracked: every load produces ⊤.
//!
//! After the fixpoint, one pass per reachable block records the abstract
//! information bit presented on each functional-unit input port — the
//! operands an FU's latches would see, per [`fua_vm::FuOp`]: `li`
//! presents `(0, imm)`, address generation presents `(base, offset)`,
//! stores take the base from their *second* source slot, unary FP ops
//! latch `0.0` on port two, and `cvtif` carries the sign-extended
//! integer on the FP bus.

use fua_isa::{Case, FuClass, Inst, Opcode, Program, Src};
use fua_vm::int_alu;

use crate::{predicted_case, AbsBit, AbsFp, AbsInt, BitWord, Cfg};

/// Abstract register file: one lattice value per architectural register.
#[derive(Debug, Clone, PartialEq)]
pub struct AbsState {
    ints: [AbsInt; 32],
    fps: [AbsFp; 32],
}

impl AbsState {
    /// The state at program entry: the VM zero-initialises every
    /// register ([`fua_vm::Vm::new`]), so entry values are exact
    /// constants. (Reads that *rely* on this are still reported by the
    /// linter as uninitialised-read warnings.)
    pub fn vm_entry() -> Self {
        AbsState {
            ints: [AbsInt::Const(0); 32],
            fps: [AbsFp::Const(0.0f64.to_bits()); 32],
        }
    }

    /// The empty state (⊥ everywhere), the identity of [`AbsState::join_from`].
    pub fn bottom() -> Self {
        AbsState {
            ints: [AbsInt::Bot; 32],
            fps: [AbsFp::Bot; 32],
        }
    }

    /// The abstract value of an integer register.
    pub fn int(&self, idx: usize) -> AbsInt {
        self.ints[idx]
    }

    /// The abstract value of a floating-point register.
    pub fn fp(&self, idx: usize) -> AbsFp {
        self.fps[idx]
    }

    /// Pointwise join; returns whether `self` changed.
    pub fn join_from(&mut self, other: &AbsState) -> bool {
        let mut changed = false;
        for (a, &b) in self.ints.iter_mut().zip(&other.ints) {
            let j = a.join(b);
            changed |= j != *a;
            *a = j;
        }
        for (a, &b) in self.fps.iter_mut().zip(&other.fps) {
            let j = a.join(b);
            changed |= j != *a;
            *a = j;
        }
        changed
    }

    fn ivalue(&self, src: Src) -> AbsInt {
        match src {
            Src::IReg(r) => self.ints[r.index()],
            Src::Imm(v) => AbsInt::Const(v),
            _ => AbsInt::Top,
        }
    }

    fn fvalue(&self, src: Src) -> AbsFp {
        match src {
            Src::FReg(r) => self.fps[r.index()],
            Src::FImm(b) => AbsFp::Const(b),
            _ => AbsFp::Top,
        }
    }

    fn write_int(&mut self, inst: &Inst, v: AbsInt) {
        if let Some(fua_isa::Reg::Int(r)) = inst.dst {
            self.ints[r.index()] = v;
        }
    }

    fn write_fp(&mut self, inst: &Inst, v: AbsFp) {
        if let Some(fua_isa::Reg::Fp(r)) = inst.dst {
            self.fps[r.index()] = v;
        }
    }
}

/// The statically predicted FU input-port information bits of one
/// instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortPrediction {
    /// The functional-unit pool the instruction executes on.
    pub class: FuClass,
    /// Abstract information bit on input port 1.
    pub op1: AbsBit,
    /// Abstract information bit on input port 2.
    pub op2: AbsBit,
    /// The abstract integer value on port 1, when the port carries the
    /// integer bus (`None` for FP-bus ports). The static swap pass's
    /// density tier orders operands by these.
    pub op1_int: Option<AbsInt>,
    /// The abstract integer value on port 2 (see [`Self::op1_int`]).
    pub op2_int: Option<AbsInt>,
    /// Per-bit abstraction of the power-model bits on port 1 (all 32
    /// bits on the integer bus, the 52 mantissa bits on the FP bus).
    /// The static switched-bit estimator bounds latch transitions with
    /// these.
    pub op1_word: BitWord,
    /// Per-bit abstraction of port 2 (see [`Self::op1_word`]).
    pub op2_word: BitWord,
}

impl PortPrediction {
    /// The predicted steering case, when both port bits are definite.
    pub fn case(&self) -> Option<Case> {
        predicted_case(self.op1, self.op2)
    }

    /// Expected ones-densities of the two ports, when both operands are
    /// integer-bus values the analysis bounded (see
    /// [`AbsInt::expected_ones`]).
    pub fn ones_estimates(&self) -> Option<(f64, f64)> {
        Some((
            self.op1_int?.expected_ones()?,
            self.op2_int?.expected_ones()?,
        ))
    }
}

/// Result of the information-bit analysis over one program.
///
/// # Examples
///
/// ```
/// use fua_analysis::InfoBitAnalysis;
/// use fua_isa::{Case, IntReg, ProgramBuilder};
///
/// let (r1, r2) = (IntReg::new(1), IntReg::new(2));
/// let mut b = ProgramBuilder::new();
/// b.li(r1, 5);      // r1 = 5  (non-negative)
/// b.li(r2, -3);     // r2 = -3 (negative)
/// b.add(r2, r1, r2);
/// b.halt();
/// let program = b.build().unwrap();
///
/// let analysis = InfoBitAnalysis::run(&program);
/// // add sees (5, -3): info bits (0, 1) → case 01.
/// assert_eq!(analysis.predicted_case(2), Some(Case::C01));
/// ```
#[derive(Debug, Clone)]
pub struct InfoBitAnalysis {
    cfg: Cfg,
    ports: Vec<Option<PortPrediction>>,
    reachable_inst: Vec<bool>,
    entry_states: Vec<AbsState>,
}

impl InfoBitAnalysis {
    /// Runs the fixpoint and records per-instruction port predictions.
    pub fn run(program: &Program) -> Self {
        let cfg = Cfg::build(program);
        let nblocks = cfg.blocks().len();
        let mut entry: Vec<AbsState> = vec![AbsState::bottom(); nblocks];
        let mut on_worklist = vec![false; nblocks];
        let mut worklist: Vec<usize> = Vec::new();
        if nblocks > 0 {
            entry[0] = AbsState::vm_entry();
            worklist.push(0);
            on_worklist[0] = true;
        }
        while let Some(b) = worklist.pop() {
            on_worklist[b] = false;
            let mut state = entry[b].clone();
            for idx in cfg.blocks()[b].insts() {
                transfer(program.inst(idx), &mut state, &mut |_| {});
            }
            for &s in &cfg.blocks()[b].succs {
                if entry[s].join_from(&state) && !on_worklist[s] {
                    on_worklist[s] = true;
                    worklist.push(s);
                }
            }
        }

        // Recording pass over reachable blocks.
        let reachable = cfg.reachable();
        let mut ports: Vec<Option<PortPrediction>> = vec![None; program.len()];
        let mut reachable_inst = vec![false; program.len()];
        for (b, block) in cfg.blocks().iter().enumerate() {
            if !reachable[b] {
                continue;
            }
            let mut state = entry[b].clone();
            for idx in block.insts() {
                reachable_inst[idx] = true;
                transfer(program.inst(idx), &mut state, &mut |p| {
                    ports[idx] = Some(p);
                });
            }
        }

        InfoBitAnalysis {
            cfg,
            ports,
            reachable_inst,
            entry_states: entry,
        }
    }

    /// The control-flow graph the analysis ran over.
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }

    /// The port prediction for instruction `idx`, or `None` when the
    /// instruction occupies no FU (`j`, `halt`, `fli`) or is
    /// unreachable.
    pub fn prediction(&self, idx: usize) -> Option<&PortPrediction> {
        self.ports.get(idx).and_then(|p| p.as_ref())
    }

    /// The predicted case for instruction `idx`, when both operand bits
    /// are definite.
    pub fn predicted_case(&self, idx: usize) -> Option<Case> {
        self.prediction(idx).and_then(|p| p.case())
    }

    /// Whether instruction `idx` is reachable from the entry.
    pub fn is_reachable(&self, idx: usize) -> bool {
        self.reachable_inst.get(idx).copied().unwrap_or(false)
    }

    /// The abstract state at entry of the block owning instruction
    /// `idx` (exposed for the soundness property tests).
    pub fn entry_state_of(&self, idx: usize) -> &AbsState {
        &self.entry_states[self.cfg.block_of(idx)]
    }

    /// Counts of (instructions with an FU, both-bits-definite
    /// predictions) — the analysis' coverage summary.
    pub fn coverage(&self) -> (usize, usize) {
        let with_fu = self.ports.iter().flatten().count();
        let definite = self
            .ports
            .iter()
            .flatten()
            .filter(|p| p.case().is_some())
            .count();
        (with_fu, definite)
    }
}

/// Reports an integer-bus port pair through `record`.
fn record_int(record: &mut dyn FnMut(PortPrediction), class: FuClass, a: AbsInt, b: AbsInt) {
    record(PortPrediction {
        class,
        op1: a.sign_bit(),
        op2: b.sign_bit(),
        op1_int: Some(a),
        op2_int: Some(b),
        op1_word: BitWord::from_int(a),
        op2_word: BitWord::from_int(b),
    });
}

/// Reports an FP-bus port pair (no integer abstractions) through
/// `record`.
fn record_fp(record: &mut dyn FnMut(PortPrediction), class: FuClass, a: AbsFp, b: AbsFp) {
    record(PortPrediction {
        class,
        op1: a.low4_bit(),
        op2: b.low4_bit(),
        op1_int: None,
        op2_int: None,
        op1_word: BitWord::from_fp(a),
        op2_word: BitWord::from_fp(b),
    });
}

/// Applies one instruction to `state`, reporting the FU port bits (if
/// the instruction occupies an FU) through `record`.
fn transfer(inst: &Inst, state: &mut AbsState, record: &mut dyn FnMut(PortPrediction)) {
    use Opcode::*;
    match inst.op {
        Add | Sub | And | Or | Xor | Nor | Sll | Srl | Sra | Slt | Sle | Sgt | Sge | Seq | Sne
        | Li | Mul | Div | Rem => {
            let a = state.ivalue(inst.src1);
            let b = state.ivalue(inst.src2);
            record_int(
                record,
                inst.op.fu_class().expect("integer op has an FU"),
                a,
                b,
            );
            state.write_int(inst, int_transfer(inst.op, a, b));
        }
        FAdd | FSub => {
            let a = state.fvalue(inst.src1);
            let b = state.fvalue(inst.src2);
            record_fp(record, FuClass::FpAlu, a, b);
            let folded = match (a.constant_bits(), b.constant_bits()) {
                (Some(x), Some(y)) => {
                    let (x, y) = (f64::from_bits(x), f64::from_bits(y));
                    Some(AbsFp::of(if inst.op == FAdd { x + y } else { x - y }))
                }
                // Mantissa alignment can populate or clear any low bits.
                _ => None,
            };
            state.write_fp(inst, folded.unwrap_or(AbsFp::Top));
        }
        FCmpLt | FCmpLe | FCmpGt | FCmpGe | FCmpEq | FCmpNe => {
            let a = state.fvalue(inst.src1);
            let b = state.fvalue(inst.src2);
            record_fp(record, FuClass::FpAlu, a, b);
            let folded = match (a.constant_bits(), b.constant_bits()) {
                (Some(x), Some(y)) => {
                    let (x, y) = (f64::from_bits(x), f64::from_bits(y));
                    let r = match inst.op {
                        FCmpLt => x < y,
                        FCmpLe => x <= y,
                        FCmpGt => x > y,
                        FCmpGe => x >= y,
                        FCmpEq => x == y,
                        _ => x != y,
                    };
                    AbsInt::Const(r as i32)
                }
                // Compare results are 0/1 either way.
                _ => AbsInt::bounded(1),
            };
            state.write_int(inst, folded);
        }
        CvtIf => {
            let v = state.ivalue(inst.src1);
            // The FP bus carries the sign-extended integer; its low four
            // bits are the integer's low four bits — known only for
            // constants.
            let op1_word = BitWord::fp_from_int(v);
            let op1 = match v.constant() {
                Some(c) => AbsBit::from_bool((c as i64 as u64) & 0xF != 0),
                None => AbsBit::Unknown,
            };
            record(PortPrediction {
                class: FuClass::FpAlu,
                op1,
                op2: AbsBit::Zero,
                op1_int: None,
                op2_int: None,
                op1_word,
                op2_word: BitWord::from_fp(AbsFp::of(0.0)),
            });
            // Every i32 is exact in f64 with ≥ 21 trailing mantissa
            // zeros, so the *result* is always trailing-zero-rich.
            let out = match v.constant() {
                Some(c) => AbsFp::of(c as f64),
                None => AbsFp::Zeros,
            };
            state.write_fp(inst, out);
        }
        CvtFi => {
            let v = state.fvalue(inst.src1);
            record_fp(record, FuClass::FpAlu, v, AbsFp::of(0.0));
            let out = match v.constant_bits() {
                Some(b) => AbsInt::Const(f64::from_bits(b) as i32),
                None => AbsInt::Top,
            };
            state.write_int(inst, out);
        }
        FNeg | FAbs | FMov => {
            let v = state.fvalue(inst.src1);
            record_fp(record, FuClass::FpAlu, v, AbsFp::of(0.0));
            let out = match (inst.op, v) {
                (FNeg, AbsFp::Const(b)) => AbsFp::of(-f64::from_bits(b)),
                (FAbs, AbsFp::Const(b)) => AbsFp::of(f64::from_bits(b).abs()),
                // Sign-bit surgery never touches the mantissa, so the
                // low-4 abstraction passes through unchanged.
                _ => v,
            };
            state.write_fp(inst, out);
        }
        FMul | FDiv => {
            let a = state.fvalue(inst.src1);
            let b = state.fvalue(inst.src2);
            record_fp(record, FuClass::FpMul, a, b);
            let folded = match (a.constant_bits(), b.constant_bits()) {
                (Some(x), Some(y)) => {
                    let (x, y) = (f64::from_bits(x), f64::from_bits(y));
                    Some(AbsFp::of(if inst.op == FMul { x * y } else { x / y }))
                }
                // Product mantissas round into the low bits; no
                // trailing-zero guarantee survives in general.
                _ => None,
            };
            state.write_fp(inst, folded.unwrap_or(AbsFp::Top));
        }
        Lw | Lf => {
            let base = state.ivalue(inst.src1);
            record_int(record, FuClass::IntAlu, base, AbsInt::Const(inst.imm));
            if inst.op == Lw {
                state.write_int(inst, AbsInt::Top);
            } else {
                state.write_fp(inst, AbsFp::Top);
            }
        }
        Sw | Sf => {
            // Address generation reads the *base*, which stores carry in
            // their second source slot (the first is the data).
            let base = state.ivalue(inst.src2);
            record_int(record, FuClass::IntAlu, base, AbsInt::Const(inst.imm));
        }
        Beq | Bne => {
            let a = state.ivalue(inst.src1);
            let b = state.ivalue(inst.src2);
            record_int(record, FuClass::IntAlu, a, b);
        }
        Blez | Bgtz => {
            let a = state.ivalue(inst.src1);
            record_int(record, FuClass::IntAlu, a, AbsInt::Const(0));
        }
        J | Halt => {}
        FLi => {
            state.write_fp(inst, state.fvalue(inst.src1));
        }
    }
}

/// The integer transfer function. Both-constant operands fold through
/// the VM's own ALU; otherwise the result is approximated on the
/// sign-and-width lattice, always erring toward ⊤ where 32-bit
/// wrapping could flip the sign.
fn int_transfer(op: Opcode, a: AbsInt, b: AbsInt) -> AbsInt {
    use Opcode::*;
    if let (Some(x), Some(y)) = (a.constant(), b.constant()) {
        return AbsInt::Const(int_alu(op, x, y));
    }
    let from_sign = |s: AbsBit| match s {
        AbsBit::Zero => AbsInt::non_neg(),
        AbsBit::One => AbsInt::Neg,
        AbsBit::Unknown => AbsInt::Top,
    };
    // Proven value widths (`0 <= v < 2^k`), where available.
    let (wa, wb) = (
        a.width_bound().map(u32::from),
        b.width_bound().map(u32::from),
    );
    match op {
        // Identity shortcuts that need no sign reasoning.
        Add | Li if b.constant() == Some(0) => a,
        Add | Li if a.constant() == Some(0) => b,
        Sub | Xor | Or if b.constant() == Some(0) => a,
        // A k-bit + j-bit sum stays below 2^(max(k,j)+1); any wider and
        // 32-bit wrapping could flip the sign (2^30 + 2^30 < 0).
        Add => match (wa, wb) {
            (Some(x), Some(y)) if x.max(y) <= 30 => AbsInt::bounded(x.max(y) + 1),
            _ => AbsInt::Top,
        },
        Sub | Li => AbsInt::Top,
        // A k-bit × j-bit product stays below 2^(k+j).
        Mul => match (wa, wb) {
            (Some(x), Some(y)) if x + y <= 31 => AbsInt::bounded(x + y),
            _ => AbsInt::Top,
        },
        // AND against a width-bounded operand clears every higher bit,
        // whatever the other operand holds — the mask idiom
        // (`andi slot, slot, TABLE-1`) that bounds hash indices.
        And => match (wa, wb) {
            (Some(x), Some(y)) => AbsInt::bounded(x.min(y)),
            (Some(x), None) | (None, Some(x)) => AbsInt::bounded(x),
            (None, None) => from_sign(a.sign_bit().and(b.sign_bit())),
        },
        Or => match (wa, wb) {
            (Some(x), Some(y)) => AbsInt::bounded(x.max(y)),
            _ => from_sign(a.sign_bit().or(b.sign_bit())),
        },
        Xor => match (wa, wb) {
            (Some(x), Some(y)) => AbsInt::bounded(x.max(y)),
            _ => from_sign(a.sign_bit().xor(b.sign_bit())),
        },
        Nor => from_sign(!a.sign_bit().or(b.sign_bit())),
        Sll => match (wa, b.constant().map(|c| (c & 31) as u32)) {
            (_, Some(0)) => a,
            (Some(x), Some(s)) if x + s <= 31 => AbsInt::bounded(x + s),
            _ => AbsInt::Top,
        },
        // Logical right shift by s >= 1 bounds *any* value below
        // 2^(32-s); a width-bounded input tightens that to 2^(k-s).
        Srl => match b.constant().map(|c| (c & 31) as u32) {
            Some(0) => a,
            Some(s) => AbsInt::bounded(wa.map_or(32 - s, |x| x.saturating_sub(s))),
            None => AbsInt::Top,
        },
        // Arithmetic shift replicates the sign bit and can only shrink
        // a non-negative value's width.
        Sra => match b.constant().map(|c| (c & 31) as u32) {
            Some(0) => a,
            Some(s) => match wa {
                Some(x) => AbsInt::bounded(x.saturating_sub(s)),
                None => from_sign(a.sign_bit()),
            },
            None => from_sign(a.sign_bit()),
        },
        Slt | Sle | Sgt | Sge | Seq | Sne => AbsInt::bounded(1),
        // Non-negative ÷ non-negative cannot overflow (the only
        // wrapping case is MIN ÷ -1), never exceeds the dividend, and
        // division by zero yields 0.
        Div => {
            if a.sign_bit() == AbsBit::Zero && b.sign_bit() == AbsBit::Zero {
                AbsInt::bounded(wa.unwrap_or(31))
            } else {
                AbsInt::Top
            }
        }
        // The remainder takes the dividend's sign; `rem` by zero yields
        // the dividend. For a non-negative dividend the result is
        // bounded both by the dividend's width and, for a known nonzero
        // modulus m, by |m| - 1.
        Rem => {
            if a.sign_bit() == AbsBit::Zero {
                let mut k = wa.unwrap_or(31);
                if let Some(m) = b.constant() {
                    if m != 0 {
                        k = k.min(32 - (m.unsigned_abs() - 1).leading_zeros());
                    }
                }
                AbsInt::bounded(k)
            } else {
                AbsInt::Top
            }
        }
        _ => unreachable!("not an integer ALU opcode: {op}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fua_isa::{FpReg, IntReg, ProgramBuilder};

    fn r(i: u8) -> IntReg {
        IntReg::new(i)
    }

    fn f(i: u8) -> FpReg {
        FpReg::new(i)
    }

    #[test]
    fn constants_fold_through_the_vm_alu() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), 6);
        b.li(r(2), -7);
        b.mul(r(3), r(1), r(2)); // -42, exactly known
        b.add(r(4), r(3), r(3)); // -84
        b.halt();
        let p = b.build().unwrap();
        let a = InfoBitAnalysis::run(&p);
        // add sees (-42, -42): case 11.
        assert_eq!(a.predicted_case(3), Some(Case::C11));
    }

    #[test]
    fn loop_counter_joins_to_a_definite_sign() {
        // Counter starts at 10, decrements to 0: values {10, …, 0} join
        // to NonNeg, so the bgtz port-1 bit stays definite.
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.li(r(1), 10);
        b.bind(top);
        b.addi(r(1), r(1), -1);
        b.bgtz(r(1), top);
        b.halt();
        let p = b.build().unwrap();
        let a = InfoBitAnalysis::run(&p);
        // addi's operands: r1 joins Const(10) with the loop value ⊤
        // (wrapping add) so port 1 is unknown, but imm -1 is definite.
        let pred = a.prediction(1).expect("addi has an FU");
        assert_eq!(pred.op2, AbsBit::One);
    }

    #[test]
    fn address_generation_ports_are_base_and_offset() {
        let mut b = ProgramBuilder::new();
        let base = b.data_words(&[1, 2]);
        b.li(r(1), base);
        b.lw(r(2), r(1), 4);
        b.sw(r(2), r(1), 0);
        b.halt();
        let p = b.build().unwrap();
        let a = InfoBitAnalysis::run(&p);
        // Load: base is a known non-negative address, offset 4 ≥ 0.
        assert_eq!(a.predicted_case(1), Some(Case::C00));
        // Store: base comes from src2; same prediction.
        assert_eq!(a.predicted_case(2), Some(Case::C00));
        // The loaded value itself is unknown.
        let load_pred = a.prediction(1).unwrap();
        assert_eq!(load_pred.class, FuClass::IntAlu);
    }

    #[test]
    fn li_presents_zero_and_the_immediate() {
        let mut b = ProgramBuilder::new();
        b.li(r(1), -7);
        b.halt();
        let p = b.build().unwrap();
        let a = InfoBitAnalysis::run(&p);
        assert_eq!(a.predicted_case(0), Some(Case::C01));
    }

    #[test]
    fn cvtif_result_is_trailing_zero_rich() {
        let mut b = ProgramBuilder::new();
        let data = b.data_words(&[5]);
        b.li(r(1), data);
        b.lw(r(2), r(1), 0); // unknown integer
        b.cvtif(f(1), r(2));
        b.fadd(f(2), f(1), f(1));
        b.halt();
        let p = b.build().unwrap();
        let a = InfoBitAnalysis::run(&p);
        // cvtif's own port 1 is unknown (low bits of an unknown int)…
        let cvt = a.prediction(2).unwrap();
        assert_eq!(cvt.op1, AbsBit::Unknown);
        assert_eq!(cvt.op2, AbsBit::Zero);
        // …but its *result* has clear low mantissa bits, so the fadd
        // sees case 00.
        assert_eq!(a.predicted_case(3), Some(Case::C00));
    }

    #[test]
    fn unary_fp_latches_zero_on_port_two() {
        let mut b = ProgramBuilder::new();
        b.fli(f(1), 0.1);
        b.fabs(f(2), f(1));
        b.halt();
        let p = b.build().unwrap();
        let a = InfoBitAnalysis::run(&p);
        assert!(a.prediction(0).is_none(), "fli is decode-level");
        assert_eq!(a.predicted_case(1), Some(Case::C10));
    }

    #[test]
    fn compare_results_are_non_negative() {
        let mut b = ProgramBuilder::new();
        let data = b.data_words(&[3]);
        b.li(r(1), data);
        b.lw(r(2), r(1), 0);
        b.slt(r(3), r(2), r(1)); // 0/1 whatever r2 is
        b.add(r(4), r(3), r(3)); // still can't overflow? no: 1+1=2 known ≥ 0? (join)
        b.halt();
        let p = b.build().unwrap();
        let a = InfoBitAnalysis::run(&p);
        let slt = a.prediction(2).unwrap();
        assert_eq!(slt.op1, AbsBit::Unknown);
        // add's port 1 reads slt's NonNeg result.
        let add = a.prediction(3).unwrap();
        assert_eq!(add.op1, AbsBit::Zero);
        assert_eq!(add.op2, AbsBit::Zero);
    }

    #[test]
    fn unreachable_code_gets_no_prediction() {
        let mut b = ProgramBuilder::new();
        let end = b.new_label();
        b.j(end);
        b.add(r(1), r(1), r(1)); // dead
        b.bind(end);
        b.halt();
        let p = b.build().unwrap();
        let a = InfoBitAnalysis::run(&p);
        assert!(!a.is_reachable(1));
        assert!(a.prediction(1).is_none());
        let (with_fu, definite) = a.coverage();
        assert_eq!(with_fu, 0);
        assert_eq!(definite, 0);
    }
}
